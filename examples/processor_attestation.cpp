// The paper's motivating scenario (Fig. 1, right): an embedded system pairs
// a microprocessor with an FPGA. The FPGA wants to act as the trusted
// hardware module that attests the processor's firmware — but since the
// FPGA is reconfigurable, it must first prove *its own* configuration.
//
// Flow:
//   1. SACHa self-attestation of the FPGA (the trust anchor is established);
//   2. the now-trusted FPGA runs Perito-Tsudik secure code update against
//      the bounded-memory MCU: fills its whole memory with firmware +
//      randomness and checks the keyed checksum;
//   3. a compromised MCU (pre-infected) is shown to come out clean, and a
//      *hardware-tampered* FPGA is shown to be rejected before it is ever
//      trusted with step 2.
#include <cstdio>

#include "attacks/env.hpp"
#include "attest/perito_tsudik.hpp"
#include "core/session.hpp"
#include "crypto/prg.hpp"

using namespace sacha;

namespace {

crypto::AesKey mcu_key() {
  crypto::Prg prg(99, "mcu-shared-key");
  return prg.key();
}

bool self_attest_fpga(attacks::AttackEnv& env, const core::SessionHooks& hooks,
                      const char* label) {
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  const core::AttestationReport report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  std::printf("  [%s] FPGA self-attestation: %s (%s)\n", label,
              report.verdict.ok() ? "PASS" : "FAIL",
              report.verdict.detail.c_str());
  return report.verdict.ok();
}

}  // namespace

int main() {
  std::printf("Hardware/software co-attestation: FPGA as the trusted module\n");
  std::printf("=============================================================\n\n");

  attacks::AttackEnv env = attacks::AttackEnv::small(/*seed=*/31);

  // --- Scenario A: honest FPGA, infected processor -----------------------
  std::printf("Scenario A: honest FPGA, processor infected with malware\n");
  if (!self_attest_fpga(env, {}, "A")) return 1;
  std::printf("  [A] FPGA is now a trusted hardware module.\n");

  attest::BoundedMemoryMcu mcu(8'192, mcu_key());
  const Bytes malware = bytes_of("RESIDENT MALWARE v2");
  mcu.infect(4'000, malware);
  std::printf("  [A] MCU infected at offset 4000 (%zu bytes).\n", malware.size());

  attest::PoseVerifier fpga_as_verifier(mcu_key(), 8'192);
  const Bytes firmware = bytes_of("motor-controller-fw-3.1");
  const attest::PoseReport pose = fpga_as_verifier.attest(mcu, firmware, 5);
  std::printf("  [A] secure code update + proof of erasure: %s (%s)\n",
              pose.attested ? "PASS" : "FAIL", pose.detail.c_str());
  const bool malware_gone =
      std::search(mcu.memory().begin(), mcu.memory().end(), malware.begin(),
                  malware.end()) == mcu.memory().end();
  std::printf("  [A] malware erased from MCU memory: %s\n\n",
              malware_gone ? "yes" : "NO");

  // --- Scenario B: the FPGA itself was tampered with ---------------------
  std::printf("Scenario B: adversary modified the FPGA configuration\n");
  core::SessionHooks tamper;
  tamper.after_config = [](core::SachaProver& p) {
    bitstream::Frame frame = p.memory().config_frame(5);
    frame.flip_bit(21);
    p.memory().write_frame(5, frame);
  };
  const bool trusted = self_attest_fpga(env, tamper, "B");
  std::printf("  [B] FPGA %s be used as a trusted module.\n\n",
              trusted ? "WOULD WRONGLY" : "is rejected and must NOT");

  const bool ok = pose.attested && malware_gone && !trusted;
  std::printf("%s\n", ok ? "Co-attestation scenario behaved as the paper argues."
                         : "UNEXPECTED OUTCOME — investigate!");
  return ok ? 0 : 1;
}
