// State attestation of an embedded softcore (§8 future work, implemented).
//
// The device runs a softcore processor inside its dynamic partition. After
// the regular SACHa attestation proves the *configuration*, the verifier
// lets the processor execute an agreed number of instructions, runs its own
// golden copy in lockstep, captures the device and compares the
// architectural state (registers, pc, halted flag) bit-for-bit through the
// configuration-readback path — the flip-flop positions the base protocol's
// Msk deliberately ignores.
#include <cstdio>

#include "core/state_attest.hpp"
#include "softcore/assembler.hpp"

using namespace sacha;
namespace sc = sacha::softcore;

namespace {

const char* kFirmware = R"(
    ; compute fib(n) iteratively, store progress to BRAM
    ldi r1, 0        ; a
    ldi r2, 1         ; b
    ldi r3, 0        ; i
    ldi r4, 12       ; n
  loop:
    add r5, r1, r2   ; t = a + b
    mov r1, r2
    mov r2, r5
    st  r2, r0, 8    ; mem[8] = b
    addi r3, r3, 1
    bne r3, r4, loop
    halt
)";

crypto::AesKey key() {
  crypto::AesKey k{};
  k.fill(0x77);
  return k;
}

fabric::Floorplan make_plan(const fabric::DeviceModel& device) {
  fabric::Floorplan plan(device);
  plan.add_partition({"StatPart",
                      fabric::PartitionKind::kStatic,
                      fabric::FrameRange{0, 6},
                      {.clb = 60, .bram18 = 4, .iob = 8, .dcm = 1, .icap = 1}});
  plan.add_partition({"DynPart",
                      fabric::PartitionKind::kDynamic,
                      fabric::FrameRange{6, 30},
                      {.clb = 340, .bram18 = 12, .iob = 24, .dcm = 1}});
  return plan;
}

}  // namespace

int main() {
  std::printf("State attestation of an embedded softcore\n");
  std::printf("=========================================\n\n");

  const auto device = fabric::DeviceModel::softcore_test_device();
  const auto plan = make_plan(device);
  auto program_result = sc::assemble(kFirmware);
  if (!program_result.ok()) {
    std::printf("assembler error: %s\n", program_result.message().c_str());
    return 1;
  }
  const sc::Program program = std::move(program_result).take();
  auto map_result = sc::StateMap::build(device, fabric::FrameRange{6, 29});
  if (!map_result.ok()) {
    std::printf("state map error: %s\n", map_result.message().c_str());
    return 1;
  }
  const sc::StateMap map = std::move(map_result).take();

  std::printf("firmware (%zu instructions):\n%s\n", program.size(),
              sc::disassemble(program).c_str());
  std::printf("state map: %zu architectural bits across %zu frames\n\n",
              map.bit_count(), map.frames_touched().size());

  // --- Honest run ----------------------------------------------------------
  core::SachaVerifier verifier(plan, {"static-v1", 1}, {"soc-app-v1", 1}, key(), 9);
  core::SachaProver prover(device, "soc-board", key());
  prover.boot(verifier.static_image());
  sc::SoftCore cpu(program);
  const core::StateAttestReport honest = core::run_state_attestation(
      verifier, prover, cpu, program, map, {.cpu_steps = 64});
  std::printf("honest device:\n");
  std::printf("  base attestation : %s\n", honest.base.verdict.ok() ? "PASS" : "FAIL");
  std::printf("  state capture    : %s (%zu frames checked)\n",
              honest.state_ok ? "PASS" : "FAIL", honest.frames_checked);
  std::printf("  capture MAC      : %s\n", honest.state_mac_ok ? "PASS" : "FAIL");
  std::printf("  expected state   : pc=%u halted=%d fib=r2=%u mem[8]=%u\n\n",
              honest.expected_state.pc, honest.expected_state.halted,
              honest.expected_state.regs[2], cpu.data_memory()[8]);

  // --- Hijacked control flow ----------------------------------------------
  core::SachaVerifier verifier2(plan, {"static-v1", 1}, {"soc-app-v1", 1}, key(), 10);
  core::SachaProver prover2(device, "soc-board", key());
  prover2.boot(verifier2.static_image());
  sc::SoftCore hijacked(program);
  hijacked.run(64);
  hijacked.mutable_state().pc = 1;        // control-flow hijack
  hijacked.mutable_state().regs[4] = 2;   // shortened loop bound
  const core::StateAttestReport attack = core::run_state_attestation(
      verifier2, prover2, hijacked, program, map, {.cpu_steps = 0});
  std::printf("hijacked device (pc redirected, loop bound altered):\n");
  std::printf("  base attestation : %s  <- configuration unchanged, base is blind\n",
              attack.base.verdict.ok() ? "PASS" : "FAIL");
  std::printf("  state capture    : %s  (%s)\n",
              attack.state_ok ? "PASS (BAD!)" : "FAIL, attack detected",
              attack.detail.c_str());

  const bool ok = honest.ok() && attack.base.verdict.ok() && !attack.state_ok;
  std::printf("\n%s\n", ok ? "State attestation closed the register-state gap."
                           : "UNEXPECTED OUTCOME — investigate!");
  return ok ? 0 : 1;
}
