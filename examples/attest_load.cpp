// attest_load — fleet load generator for a running attestd.
//
// Replays an N-member provisioned fleet against the service from a single
// event-loop process: every member is a real TCP connection running the
// full wire protocol, with optional socket-level fault shims (drop or
// delay responses, abrupt disconnects). Exits nonzero when any member
// fails to complete, so it doubles as the loopback smoke check in CI.
//
//   ./attest_load --connect 127.0.0.1:7460 --members 64 --tamper 1,3
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "crypto/merkle.hpp"
#include "core/signed_attest.hpp"
#include "net/attest_client.hpp"
#include "net/tcp.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "update/manifest.hpp"

using namespace sacha;

namespace {

void print_help() {
  std::printf(
      "usage: attest_load --connect HOST:PORT [options]\n"
      "  --members N        fleet size (default 16)\n"
      "  --concurrency N    connections in flight at once (default 0 = all)\n"
      "  --device small|softcore|virtex6|mixed\n"
      "                     member device scale (default small; mixed =\n"
      "                     alternate small/softcore by parity)\n"
      "  --seed N           provisioning base seed (default 42)\n"
      "  --session-seed N   fleet session seed (default 1)\n"
      "  --tamper LIST      comma-separated member indexes tampered\n"
      "                     post-configuration\n"
      "  --drop P           drop each response with probability P\n"
      "  --delay-us N       hold each response N microseconds\n"
      "  --disconnect I:K   member I closes abruptly after K responses\n"
      "                     (repeatable)\n"
      "  --timeout-ms N     per-member watchdog (default 30000)\n"
      "  --poll             force the poll(2) fallback in the client loop\n"
      "  --trace-sample R   head-sampling rate 0..1 (enables telemetry;\n"
      "                     default: keep SACHA_OBS / SACHA_OBS_SAMPLE)\n"
      "  --trace-out PATH   write the client-side spans as a Chrome trace\n"
      "                     (chrome://tracing / Perfetto)\n"
      "  --update-signer-seed N\n"
      "                     trust OTA offers signed by this operator\n"
      "                     identity (attestd's --update-signer-seed);\n"
      "                     offers are refused without it\n"
      "  --help             this text\n");
}

bool parse_scale(const std::string& v, net::FleetSpec& fleet) {
  if (v == "small") {
    fleet.scale = net::DeviceScale::kSmall;
  } else if (v == "softcore") {
    fleet.scale = net::DeviceScale::kSoftcore;
  } else if (v == "virtex6") {
    fleet.scale = net::DeviceScale::kVirtex6;
  } else if (v == "mixed") {
    fleet.mixed = true;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  net::LoadOptions options;
  std::string connect_spec;
  std::string trace_out;
  std::uint64_t update_signer_seed = 0;
  bool trust_updates = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      print_help();
      return 0;
    } else if (arg == "--connect") {
      connect_spec = next("--connect");
    } else if (arg == "--members") {
      options.members = std::strtoull(next("--members"), nullptr, 10);
    } else if (arg == "--concurrency") {
      options.concurrency = std::strtoull(next("--concurrency"), nullptr, 10);
    } else if (arg == "--device") {
      if (!parse_scale(next("--device"), options.fleet)) {
        std::fprintf(stderr, "bad --device (try --help)\n");
        return 2;
      }
    } else if (arg == "--seed") {
      options.fleet.base_seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (arg == "--session-seed") {
      options.fleet.session_seed =
          std::strtoull(next("--session-seed"), nullptr, 10);
    } else if (arg == "--tamper") {
      std::string list = next("--tamper");
      for (char* tok = std::strtok(list.data(), ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        options.tampered.insert(std::strtoull(tok, nullptr, 10));
      }
    } else if (arg == "--drop") {
      options.drop_probability = std::strtod(next("--drop"), nullptr);
    } else if (arg == "--delay-us") {
      options.delay_us = std::strtoull(next("--delay-us"), nullptr, 10);
    } else if (arg == "--disconnect") {
      const std::string spec = next("--disconnect");
      const auto colon = spec.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--disconnect wants I:K\n");
        return 2;
      }
      options.disconnect_after[std::strtoull(spec.c_str(), nullptr, 10)] =
          std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
    } else if (arg == "--timeout-ms") {
      options.timeout_ms = std::strtoull(next("--timeout-ms"), nullptr, 10);
    } else if (arg == "--poll") {
      options.prefer_epoll = false;
    } else if (arg == "--trace-sample") {
      options.trace_sample = std::strtod(next("--trace-sample"), nullptr);
      obs::set_enabled(true);  // sampling a disabled tracer keeps nothing
    } else if (arg == "--trace-out") {
      trace_out = next("--trace-out");
      obs::set_enabled(true);
    } else if (arg == "--update-signer-seed") {
      update_signer_seed =
          std::strtoull(next("--update-signer-seed"), nullptr, 10);
      trust_updates = true;
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }
  if (connect_spec.empty()) {
    std::fprintf(stderr, "attest_load: --connect HOST:PORT is required\n");
    return 2;
  }
  auto hostport = net::parse_host_port(connect_spec);
  if (!hostport.ok()) {
    std::fprintf(stderr, "attest_load: %s\n", hostport.message().c_str());
    return 2;
  }
  options.host = hostport.value().host;
  options.port = hostport.value().port;

  if (trust_updates) {
    // Each member plays an independent device trusting the same operator
    // root, so the one-time-leaf policy is fresh per offer: every device
    // verifying the same signed artifact sees its leaf for the first time.
    crypto::HashSigner trust(update_signer_seed, /*height=*/4);
    const crypto::Sha256Digest root = trust.root();
    options.on_update_offer =
        [root](const net::UpdateOfferMsg& offer) -> net::UpdateStatusMsg {
      net::UpdateStatusMsg status;
      status.version = offer.version;
      auto signed_manifest = update::SignedManifest::decode(offer.manifest);
      if (!signed_manifest.ok()) {
        status.state = "Idle";
        status.detail = "manifest decode: " + signed_manifest.message();
        return status;
      }
      core::LeafPolicy device_policy;
      const update::ManifestCheck check = update::verify_manifest(
          signed_manifest.value(), root, device_policy, /*device_type=*/"");
      status.accepted = check.ok();
      status.state = check.ok() ? "Staged" : "Idle";
      status.detail = check.ok() ? "manifest verified" : check.detail;
      return status;
    };
  }

  const net::LoadResult result = net::run_load(options);

  std::size_t tampered_caught = 0;
  for (const net::MemberOutcome& m : result.members) {
    const bool expected_fail = options.tampered.count(m.index) > 0 ||
                               options.disconnect_after.count(m.index) > 0;
    if (m.completed && !m.report.attested() &&
        options.tampered.count(m.index) > 0) {
      ++tampered_caught;
    }
    if (!m.completed && !expected_fail) {
      std::fprintf(stderr, "  member %zu incomplete: %s\n", m.index,
                   m.error.c_str());
    }
  }
  const double seconds = static_cast<double>(result.wall_ns) / 1e9;
  std::printf(
      "attest_load: %zu members, %zu completed, %zu attested "
      "(%zu/%zu tampered caught), peak %zu concurrent, %.3f s "
      "(%.1f attestations/s)\n",
      result.members.size(), result.completed, result.attested,
      tampered_caught, options.tampered.size(), result.peak_concurrent,
      seconds, seconds > 0 ? static_cast<double>(result.completed) / seconds
                           : 0.0);
  if (result.updates_offered > 0) {
    std::printf("attest_load: %zu update offers, %zu accepted\n",
                result.updates_offered, result.updates_accepted);
  }

  if (!trace_out.empty()) {
    std::size_t sampled = 0;
    for (const net::MemberOutcome& m : result.members) {
      if (m.sampled) ++sampled;
    }
    if (obs::write_chrome_trace(trace_out)) {
      std::printf("attest_load: %zu sampled timelines -> %s\n", sampled,
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "attest_load: failed to write %s\n",
                   trace_out.c_str());
    }
  }

  // Members we deliberately cut off never complete; everyone else must.
  const std::size_t expected_completed =
      result.members.size() -
      [&] {
        std::size_t cut = 0;
        for (const auto& [index, after] : options.disconnect_after) {
          if (index < result.members.size()) ++cut;
        }
        return cut;
      }();
  return result.completed >= expected_completed ? 0 : 1;
}
