// Attack demo: runs the §7.2 adversary suite against SACHa and prints the
// detection matrix. Every threat must come out DETECTED or PREVENTED.
#include <cstdio>

#include "attacks/library.hpp"

using namespace sacha;

int main() {
  std::printf("SACHa security evaluation — the Section 7.2 threat cases\n");
  std::printf("========================================================\n\n");

  const attacks::AttackEnv env = attacks::AttackEnv::small(/*seed=*/7);
  std::printf("(environment: %s device, %u frames; each attack runs a full "
              "attestation session)\n\n",
              env.plan.device().name().c_str(), env.plan.device().total_frames());

  int undetected = 0;
  std::printf("%-18s %-11s threat / evidence\n", "attack", "outcome");
  std::printf("%-18s %-11s -----------------\n", "------", "-------");
  for (const auto& attack : attacks::standard_suite()) {
    const attacks::AttackOutcome outcome = attack->run(env);
    std::printf("%-18s %-11s %s\n", outcome.name.c_str(),
                attacks::to_string(outcome.result), attack->description().c_str());
    std::printf("%-18s %-11s -> %s\n", "", "", outcome.evidence.c_str());
    if (outcome.result == attacks::AttackResult::kUndetected) ++undetected;
  }

  std::printf("\n%s\n",
              undetected == 0
                  ? "All attacks detected or structurally prevented."
                  : "SECURITY REGRESSION: at least one attack went unnoticed!");
  return undetected == 0 ? 0 : 1;
}
