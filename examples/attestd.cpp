// attestd — the standalone attestation service.
//
// Binds a real TCP port, multiplexes every prover connection on one epoll
// loop, and verifies sessions on a fleet-engine-style worker pool. Serves
// Prometheus metrics on the same port ("GET /metrics").
//
// Shutdown is graceful: the first SIGINT / SIGTERM (or stdin EOF) begins a
// drain — new HELLOs are refused with a typed ERROR, /healthz reports
// "draining", and in-flight sessions run to completion, bounded by
// --drain-ms — then the process exits 0 with the service counters. A
// second signal skips the drain and stops immediately.
//
// With --update-manifest the daemon stages a signed OTA offer: the spec is
// parsed, signed with the operator identity derived from
// --update-signer-seed, and offered (UPDATE_OFFER) after every passing
// session to peers speaking wire v3+.
//
//   ./attestd --port 7460 --update-manifest "version=2;app=app-v2:7" &
//   ./attest_load --connect 127.0.0.1:7460 --members 64
//   curl http://127.0.0.1:7460/metrics
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "crypto/merkle.hpp"
#include "net/attest_server.hpp"
#include "obs/export.hpp"
#include "update/manifest.hpp"

using namespace sacha;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = g_stop + 1; }

void print_help() {
  std::printf(
      "usage: attestd [options]\n"
      "  --host ADDR        bind address (default 127.0.0.1)\n"
      "  --port N           listen port (default 0 = ephemeral; printed)\n"
      "  --pool K           verify workers (default 0 = auto)\n"
      "  --batch-width N    members per CMAC batch drain, 1-8 (default 4)\n"
      "  --window N         pipelined commands per session (default 32)\n"
      "  --timeout-ms N     idle session cut-off (default 30000, 0 = never)\n"
      "  --poll             force the poll(2) fallback instead of epoll\n"
      "  --reuseport        bind with SO_REUSEPORT (several attestd\n"
      "                     processes can accept on one port)\n"
      "  --model-cache DIR  golden-model .sgm disk cache directory\n"
      "  --model-map        mmap cached models (share page cache across\n"
      "                     colocated shard processes)\n"
      "  --no-metrics       disable the HTTP endpoints\n"
      "  --trace-sample R   head-sampling rate 0..1 (default: keep the\n"
      "                     process rate from SACHA_OBS_SAMPLE)\n"
      "  --slo-latency-ms N SLO latency objective (default 250, 0 = off)\n"
      "  --slo-target P     SLO good-fraction target (default 0.999)\n"
      "  --tracez N         sampled timelines kept for /tracez (default 32)\n"
      "  --drain-ms N       graceful-shutdown bound: in-flight sessions get\n"
      "                     this long after SIGTERM (default 5000, 0 = wait\n"
      "                     forever)\n"
      "  --update-manifest S stage a signed OTA offer; S is\n"
      "                     \"version=<v>;app=<name>:<seed>[;device=<type>]\"\n"
      "  --update-signer-seed N  operator signing identity seed (default 31)\n"
      "  --help             this text\n"
      "HTTP (same port): /metrics /healthz /statusz /tracez\n");
}

}  // namespace

int main(int argc, char** argv) {
  net::AttestServerOptions options;
  std::uint64_t drain_ms = 5000;
  std::string update_spec;
  std::uint64_t update_signer_seed = 31;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      print_help();
      return 0;
    } else if (arg == "--host") {
      options.host = next("--host");
    } else if (arg == "--port") {
      options.port =
          static_cast<std::uint16_t>(std::strtoul(next("--port"), nullptr, 10));
    } else if (arg == "--pool") {
      options.pool_size = std::strtoull(next("--pool"), nullptr, 10);
    } else if (arg == "--batch-width") {
      options.verify_batch_width =
          std::strtoull(next("--batch-width"), nullptr, 10);
    } else if (arg == "--window") {
      options.command_window = std::strtoull(next("--window"), nullptr, 10);
    } else if (arg == "--timeout-ms") {
      options.session_timeout_ms =
          std::strtoull(next("--timeout-ms"), nullptr, 10);
    } else if (arg == "--poll") {
      options.prefer_epoll = false;
    } else if (arg == "--reuseport") {
      options.reuseport = true;
    } else if (arg == "--model-cache") {
      options.model_cache_dir = next("--model-cache");
    } else if (arg == "--model-map") {
      options.model_map = true;
    } else if (arg == "--no-metrics") {
      options.metrics_endpoint = false;
    } else if (arg == "--trace-sample") {
      options.trace_sample = std::strtod(next("--trace-sample"), nullptr);
    } else if (arg == "--slo-latency-ms") {
      options.slo_latency_ms =
          std::strtoull(next("--slo-latency-ms"), nullptr, 10);
    } else if (arg == "--slo-target") {
      options.slo_target = std::strtod(next("--slo-target"), nullptr);
    } else if (arg == "--tracez") {
      options.tracez_capacity = std::strtoull(next("--tracez"), nullptr, 10);
    } else if (arg == "--drain-ms") {
      drain_ms = std::strtoull(next("--drain-ms"), nullptr, 10);
    } else if (arg == "--update-manifest") {
      update_spec = next("--update-manifest");
    } else if (arg == "--update-signer-seed") {
      update_signer_seed =
          std::strtoull(next("--update-signer-seed"), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  // The /metrics endpoint is only useful with the registry recording.
  obs::set_enabled(true);

  if (!update_spec.empty()) {
    auto manifest = update::UpdateManifest::parse(update_spec);
    if (!manifest.ok()) {
      std::fprintf(stderr, "attestd: --update-manifest: %s\n",
                   manifest.message().c_str());
      return 2;
    }
    crypto::HashSigner signer(update_signer_seed, /*height=*/4);
    auto signed_manifest = update::sign_manifest(manifest.value(), signer);
    if (!signed_manifest.ok()) {
      std::fprintf(stderr, "attestd: signing manifest: %s\n",
                   signed_manifest.message().c_str());
      return 2;
    }
    options.update_offer = signed_manifest.value().encode();
    options.update_version = manifest.value().version;
    std::printf("attestd staged update: %s\n",
                manifest.value().describe().c_str());
  }

  net::AttestServer server(options);
  Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "attestd: %s\n", started.message().c_str());
    return 1;
  }
  std::printf("attestd listening on %s:%u (%s)\n", options.host.c_str(),
              server.port(), server.using_epoll() ? "epoll" : "poll");
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Park until a signal arrives or stdin closes (the smoke test's shutdown
  // handle: it pipes into attestd and closes the write end).
  struct pollfd stdin_poll = {STDIN_FILENO, POLLIN, 0};
  while (g_stop == 0) {
    const int n = ::poll(&stdin_poll, 1, 500);
    if (n < 0 && errno != EINTR) break;
    if (n > 0 && (stdin_poll.revents & (POLLIN | POLLHUP)) != 0) {
      char buf[256];
      const ssize_t got = ::read(STDIN_FILENO, buf, sizeof(buf));
      if (got <= 0) break;  // EOF: shut down
    }
  }

  // Graceful drain: refuse new HELLOs, let in-flight sessions finish
  // (bounded by --drain-ms; the server quarantines stragglers past the
  // deadline). A second signal skips straight to stop().
  server.begin_drain(drain_ms);
  std::printf("attestd draining (%llu ms bound)...\n",
              static_cast<unsigned long long>(drain_ms));
  std::fflush(stdout);
  while (!server.drained() && g_stop < 2) {
    struct timespec nap = {0, 50 * 1000 * 1000};
    ::nanosleep(&nap, nullptr);
  }

  const net::AttestServerStats stats = server.stats();
  server.stop();
  std::printf(
      "attestd: %llu accepted, %llu completed (%llu attested, %llu failed), "
      "%llu quarantined, %llu http, peak %llu connections, "
      "%llu batches (%llu steals), %llu offers (%llu accepted), "
      "%llu drain refusals\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.sessions_completed),
      static_cast<unsigned long long>(stats.sessions_attested),
      static_cast<unsigned long long>(stats.sessions_failed),
      static_cast<unsigned long long>(stats.quarantined),
      static_cast<unsigned long long>(stats.http_requests),
      static_cast<unsigned long long>(stats.peak_connections),
      static_cast<unsigned long long>(stats.verify_batches),
      static_cast<unsigned long long>(stats.verify_steals),
      static_cast<unsigned long long>(stats.updates_offered),
      static_cast<unsigned long long>(stats.updates_accepted),
      static_cast<unsigned long long>(stats.drain_refusals));
  return 0;
}
