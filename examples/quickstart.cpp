// Quickstart: provision a SACHa device, run one attestation, print the
// protocol trace of Fig. 9 (summarised) and the verdict.
//
// This uses the paper's actual proof-of-concept scale: the Virtex-6
// XC6VLX240T floorplan with 28,488 configuration frames, of which 26,400
// are dynamic. Expect the run to report ~1.44 s of theoretical protocol
// time — the number from Table 4.
#include <cstdio>

#include "attacks/env.hpp"
#include "core/session.hpp"

using namespace sacha;

int main() {
  std::printf("SACHa quickstart — self-attestation of configurable hardware\n");
  std::printf("=============================================================\n\n");

  // 1. Provisioning: floorplan, designs, and a shared device key (in a
  //    deployment the key comes from PUF enrollment; see key_rotation).
  attacks::AttackEnv env = attacks::AttackEnv::virtex6(/*seed=*/2024);
  std::printf("device          : %s (%u frames x %u words)\n",
              env.plan.device().name().c_str(), env.plan.device().total_frames(),
              env.plan.device().geometry().words_per_frame());
  std::printf("static partition: %u frames, %s\n",
              env.plan.find_partition("StatPart")->frames.count,
              env.plan.find_partition("StatPart")->resources.to_string().c_str());
  std::printf("dynamic partition: %u frames, %s\n\n",
              env.plan.find_partition("DynPart")->frames.count,
              env.plan.find_partition("DynPart")->resources.to_string().c_str());

  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  std::printf("BootMem loaded the static partition; device is online.\n\n");

  // 2. One full attestation session over an ideal channel.
  std::printf("running the SACHa protocol (Fig. 9):\n");
  std::printf("  Vrf -> Prv  ICAP_config(frame m..n)   [intended application]\n");
  std::printf("  Vrf -> Prv  ICAP_config(nonce)        [fresh nonce]\n");
  std::printf("  Vrf -> Prv  ICAP_readback(i), i chosen by Vrf, full memory\n");
  std::printf("  Prv -> Vrf  frame i + MAC update, per frame\n");
  std::printf("  Vrf -> Prv  MAC_checksum; Prv -> Vrf  MAC_K(readback)\n\n");

  const core::AttestationReport report = core::run_attestation(verifier, prover);

  std::printf("session summary\n");
  std::printf("  commands sent      : %llu\n",
              static_cast<unsigned long long>(report.commands_sent));
  std::printf("  bytes to prover    : %.1f MB\n",
              static_cast<double>(report.bytes_to_prover) / 1e6);
  std::printf("  bytes to verifier  : %.1f MB\n",
              static_cast<double>(report.bytes_to_verifier) / 1e6);
  std::printf("  theoretical time   : %.3f s  (paper: 1.443 s)\n",
              sim::to_seconds(report.theoretical_time));
  std::printf("  nonce              : %016llx\n",
              static_cast<unsigned long long>(verifier.nonce()));
  std::printf("\nverdict\n");
  std::printf("  protocol complete  : %s\n", report.verdict.protocol_ok ? "yes" : "NO");
  std::printf("  H_Prv == H_Vrf     : %s\n", report.verdict.mac_ok ? "yes" : "NO");
  std::printf("  Msk(B_Prv)==Msk(B_Vrf): %s\n", report.verdict.config_ok ? "yes" : "NO");
  std::printf("  => %s\n", report.verdict.ok() ? "DEVICE ATTESTED" : "ATTESTATION FAILED");
  std::printf("     (%s)\n", report.verdict.detail.c_str());
  return report.verdict.ok() ? 0 : 1;
}
