// sacha_cli — interactive driver for the whole library.
//
// Run attestation sessions against any modelled device, under any channel
// condition, with any adversary from the library, in MAC or signature
// mode, and get the per-action timing breakdown — all from the command
// line. `sacha_cli --help` lists everything.
#include <cstdio>
#include <cstring>
#include <string>

#include <deque>

#include <csignal>

#include <poll.h>
#include <unistd.h>

#include "attacks/library.hpp"
#include "bitstream/golden_model.hpp"
#include "core/signed_attest.hpp"
#include "core/swarm.hpp"
#include "fault/injector.hpp"
#include "net/attest_client.hpp"
#include "net/attest_server.hpp"
#include "net/tcp.hpp"
#include "obs/export.hpp"
#include "update/pipeline.hpp"

using namespace sacha;

namespace {

struct CliOptions {
  std::string device = "virtex6";  // small | softcore | virtex6
  std::string order = "offset";    // seq | offset | perm
  std::string attack;              // empty = honest run
  std::uint64_t latency_us = 0;
  std::uint64_t jitter_us = 0;
  double loss = 0.0;
  std::string fault_plan;          // fault::FaultPlan textual form
  std::string update_manifest;     // OTA: "version=<v>;app=<name>:<seed>"
  std::uint64_t deadline_ms = 0;   // session deadline (0 = unbounded)
  bool reliable = false;
  bool signed_mode = false;
  std::uint32_t frames_per_config = 1;
  std::uint32_t frames_per_readback = 1;
  std::string model_cache;        // GoldenModel on-disk cache directory
  std::uint64_t fleet = 0;        // members in a fleet run (0 = one session)
  std::string schedule = "mux";   // serial | parallel | mux
  std::uint64_t pool = 0;         // mux verify-pool size (0 = auto)
  std::uint64_t verify_batch = 4; // members interleaved per verify batch
  bool adaptive_slice = false;    // adapt rounds_per_slice to cost ratios
  std::uint64_t seed = 1;
  std::string listen_spec;   // serve attestations on HOST:PORT
  std::string connect_spec;  // attest against a remote attestd
  bool list_attacks = false;
  bool help = false;
  bool metrics = false;       // print the telemetry snapshot after the run
  std::string trace_out;      // write the session Chrome trace here
  double trace_sample = -1.0; // wire-session head-sampling override
};

void print_help() {
  std::printf(
      "usage: sacha_cli [options]\n"
      "  --device small|softcore|virtex6   device model (default virtex6)\n"
      "  --order seq|offset|perm           readback order (default offset)\n"
      "  --attack NAME                     run an adversary (see --list-attacks)\n"
      "  --list-attacks                    print the adversary library\n"
      "  --latency-us N                    per-message channel latency\n"
      "  --jitter-us N                     uniform extra latency [0, N]\n"
      "  --loss P                          packet loss probability\n"
      "  --fault-plan SPEC                 inject faults (plain/signed runs);\n"
      "                                    SPEC is ';'-separated clauses:\n"
      "                                    burst=enter:exit:loss corrupt=p\n"
      "                                    crash=at[:reboot] stall=at:len\n"
      "                                    spike=p:max_us seu=flips\n"
      "  --update-manifest SPEC            run the attestation-gated OTA\n"
      "                                    pipeline: stage, sign, pre-attest,\n"
      "                                    activate, post-attest, commit (or\n"
      "                                    roll back); SPEC is\n"
      "                                    \"version=<v>;app=<name>:<seed>\"\n"
      "                                    (faults from --fault-plan arm in\n"
      "                                    every phase session)\n"
      "  --deadline-ms N                   abort the session after N simulated ms\n"
      "  --reliable                        ack + retransmit on loss\n"
      "  --frames-per-config N             frames per ICAP_config command\n"
      "  --frames-per-readback N           frames per ICAP_readback command\n"
      "                                    (N > 1 forces sequential order)\n"
      "  --model-cache DIR                 warm-start the golden model from\n"
      "                                    DIR (built + persisted on miss)\n"
      "  --fleet N                         attest a fleet of N devices\n"
      "  --schedule serial|parallel|mux    fleet schedule (default mux)\n"
      "  --pool K                          mux verify-pool size (0 = auto)\n"
      "  --verify-batch N                  members interleaved per verify\n"
      "                                    batch, 1-8 (default 4; mux only)\n"
      "  --adaptive-slice                  adapt mux drive-slice length to\n"
      "                                    the observed verify/drive cost\n"
      "  --listen HOST:PORT                run as an attestation service\n"
      "                                    (real sockets; --pool and\n"
      "                                    --verify-batch shape the workers)\n"
      "  --connect HOST:PORT               attest this device (or --fleet N\n"
      "                                    members) against a remote attestd;\n"
      "                                    --loss drops responses, --latency-us\n"
      "                                    delays them\n"
      "  --signed                          hash-based signature mode\n"
      "  --seed N                          session/provisioning seed\n"
      "  --metrics                         print telemetry counters/histograms (JSON)\n"
      "  --trace-out FILE                  write the session timeline as a\n"
      "                                    Chrome trace_event JSON (chrome://tracing)\n"
      "  --trace-sample R                  head-sampling rate 0..1 for wire\n"
      "                                    sessions (default: SACHA_OBS_SAMPLE)\n"
      "  --help                            this text\n");
}

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help") {
      options.help = true;
    } else if (arg == "--list-attacks") {
      options.list_attacks = true;
    } else if (arg == "--reliable") {
      options.reliable = true;
    } else if (arg == "--signed") {
      options.signed_mode = true;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--trace-out") {
      const char* v = next("--trace-out");
      if (!v) return false;
      options.trace_out = v;
    } else if (arg == "--trace-sample") {
      const char* v = next("--trace-sample");
      if (!v) return false;
      options.trace_sample = std::strtod(v, nullptr);
    } else if (arg == "--device") {
      const char* v = next("--device");
      if (!v) return false;
      options.device = v;
    } else if (arg == "--order") {
      const char* v = next("--order");
      if (!v) return false;
      options.order = v;
    } else if (arg == "--attack") {
      const char* v = next("--attack");
      if (!v) return false;
      options.attack = v;
    } else if (arg == "--latency-us") {
      const char* v = next("--latency-us");
      if (!v) return false;
      options.latency_us = std::strtoull(v, nullptr, 10);
    } else if (arg == "--jitter-us") {
      const char* v = next("--jitter-us");
      if (!v) return false;
      options.jitter_us = std::strtoull(v, nullptr, 10);
    } else if (arg == "--loss") {
      const char* v = next("--loss");
      if (!v) return false;
      options.loss = std::strtod(v, nullptr);
    } else if (arg == "--fault-plan") {
      const char* v = next("--fault-plan");
      if (!v) return false;
      options.fault_plan = v;
    } else if (arg == "--update-manifest") {
      const char* v = next("--update-manifest");
      if (!v) return false;
      options.update_manifest = v;
    } else if (arg == "--deadline-ms") {
      const char* v = next("--deadline-ms");
      if (!v) return false;
      options.deadline_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--frames-per-config") {
      const char* v = next("--frames-per-config");
      if (!v) return false;
      options.frames_per_config =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--frames-per-readback") {
      const char* v = next("--frames-per-readback");
      if (!v) return false;
      options.frames_per_readback =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--model-cache") {
      const char* v = next("--model-cache");
      if (!v) return false;
      options.model_cache = v;
    } else if (arg == "--fleet") {
      const char* v = next("--fleet");
      if (!v) return false;
      options.fleet = std::strtoull(v, nullptr, 10);
    } else if (arg == "--schedule") {
      const char* v = next("--schedule");
      if (!v) return false;
      options.schedule = v;
    } else if (arg == "--pool") {
      const char* v = next("--pool");
      if (!v) return false;
      options.pool = std::strtoull(v, nullptr, 10);
    } else if (arg == "--verify-batch") {
      const char* v = next("--verify-batch");
      if (!v) return false;
      options.verify_batch = std::strtoull(v, nullptr, 10);
    } else if (arg == "--adaptive-slice") {
      options.adaptive_slice = true;
    } else if (arg == "--listen") {
      const char* v = next("--listen");
      if (!v) return false;
      options.listen_spec = v;
    } else if (arg == "--connect") {
      const char* v = next("--connect");
      if (!v) return false;
      options.connect_spec = v;
    } else if (arg == "--seed") {
      const char* v = next("--seed");
      if (!v) return false;
      options.seed = std::strtoull(v, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

attacks::AttackEnv build_env(const CliOptions& options) {
  attacks::AttackEnv env = options.device == "virtex6"
                               ? attacks::AttackEnv::virtex6(options.seed)
                               : attacks::AttackEnv::small(options.seed);
  if (options.device == "softcore") {
    // Softcore device with a matching 2-partition floorplan.
    const auto device = fabric::DeviceModel::softcore_test_device();
    fabric::Floorplan plan(device);
    plan.add_partition({"StatPart",
                        fabric::PartitionKind::kStatic,
                        fabric::FrameRange{0, 6},
                        {.clb = 60, .bram18 = 4, .iob = 8, .dcm = 1, .icap = 1}});
    plan.add_partition({"DynPart",
                        fabric::PartitionKind::kDynamic,
                        fabric::FrameRange{6, 30},
                        {.clb = 340, .bram18 = 12, .iob = 24, .dcm = 1}});
    env.plan = std::move(plan);
  }
  if (options.order == "seq") {
    env.verifier_options.order = core::ReadbackOrder::kSequentialFromZero;
  } else if (options.order == "perm") {
    env.verifier_options.order = core::ReadbackOrder::kRandomPermutation;
  } else {
    env.verifier_options.order = core::ReadbackOrder::kSequentialFromOffset;
  }
  env.verifier_options.frames_per_config = options.frames_per_config;
  env.verifier_options.frames_per_readback = options.frames_per_readback;
  env.session_options.channel.per_command_latency =
      options.latency_us * sim::kMicrosecond;
  env.session_options.channel.jitter_max = options.jitter_us * sim::kMicrosecond;
  env.session_options.channel.loss_probability = options.loss;
  env.session_options.reliable = options.reliable;
  env.session_options.deadline = options.deadline_ms * sim::kMillisecond;
  env.session_options.seed = options.seed;
  return env;
}

void print_report(const core::AttestationReport& report) {
  std::printf("\n%-38s %10s %14s\n", "action", "count", "total");
  for (const std::string& action : report.ledger.actions()) {
    std::printf("%-38s %10llu %12.6f s\n", action.c_str(),
                static_cast<unsigned long long>(report.ledger.count(action)),
                sim::to_seconds(report.ledger.total(action)));
  }
  std::printf("\ncommands sent      : %llu (%llu retransmissions)\n",
              static_cast<unsigned long long>(report.commands_sent),
              static_cast<unsigned long long>(report.retransmissions));
  std::printf("theoretical time   : %.6f s\n",
              sim::to_seconds(report.theoretical_time));
  std::printf("total time         : %.6f s\n", sim::to_seconds(report.total_time));
  std::printf("verdict            : %s (%s)\n",
              report.verdict.ok() ? "ATTESTED" : "FAILED",
              report.verdict.detail.c_str());
  if (report.failure != core::FailureKind::kNone) {
    std::printf("failure            : %s%s\n", core::to_string(report.failure),
                report.deadline_hit ? " (deadline hit)" : "");
  }
  if (report.messages_lost > 0 || report.retransmissions > 0) {
    std::printf("transport          : %llu lost, %llu retransmitted, "
                "%.6f s in backoff\n",
                static_cast<unsigned long long>(report.messages_lost),
                static_cast<unsigned long long>(report.retransmissions),
                sim::to_seconds(report.backoff_wait));
  }
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// --listen: serve attestations over real sockets until SIGINT/SIGTERM or
/// stdin EOF.
int run_listen_mode(const CliOptions& options) {
  auto hostport = net::parse_host_port(options.listen_spec);
  if (!hostport.ok()) {
    std::fprintf(stderr, "--listen: %s\n", hostport.message().c_str());
    return 2;
  }
  obs::set_enabled(true);  // the /metrics endpoint needs the registry live
  net::AttestServerOptions server_options;
  server_options.host = hostport.value().host;
  server_options.port = hostport.value().port;
  server_options.pool_size = static_cast<std::size_t>(options.pool);
  server_options.verify_batch_width =
      static_cast<std::size_t>(options.verify_batch);
  server_options.trace_sample = options.trace_sample;
  net::AttestServer server(server_options);
  Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "--listen: %s\n", started.message().c_str());
    return 1;
  }
  std::printf("listening on %s:%u (%s); GET /metrics served; "
              "ctrl-c or stdin EOF to stop\n",
              server_options.host.c_str(), server.port(),
              server.using_epoll() ? "epoll" : "poll");
  std::fflush(stdout);
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  struct pollfd stdin_poll = {STDIN_FILENO, POLLIN, 0};
  while (g_stop == 0) {
    const int n = ::poll(&stdin_poll, 1, 500);
    if (n < 0 && errno != EINTR) break;
    if (n > 0 && (stdin_poll.revents & (POLLIN | POLLHUP)) != 0) {
      char buf[256];
      if (::read(STDIN_FILENO, buf, sizeof(buf)) <= 0) break;
    }
  }
  const net::AttestServerStats stats = server.stats();
  server.stop();
  std::printf("served             : %llu sessions (%llu attested, "
              "%llu quarantined)\n",
              static_cast<unsigned long long>(stats.sessions_completed),
              static_cast<unsigned long long>(stats.sessions_attested),
              static_cast<unsigned long long>(stats.quarantined));
  return 0;
}

/// --connect: run this device (or --fleet N members) as remote provers.
/// --loss becomes the response-drop shim, --latency-us the delay shim.
int run_connect_mode(const CliOptions& options) {
  auto hostport = net::parse_host_port(options.connect_spec);
  if (!hostport.ok()) {
    std::fprintf(stderr, "--connect: %s\n", hostport.message().c_str());
    return 2;
  }
  net::LoadOptions load;
  load.host = hostport.value().host;
  load.port = hostport.value().port;
  load.members = options.fleet > 0 ? options.fleet : 1;
  load.trace_sample = options.trace_sample;
  load.fleet.base_seed = options.seed;
  load.fleet.session_seed = options.seed;
  if (options.device == "softcore") {
    load.fleet.scale = net::DeviceScale::kSoftcore;
  } else if (options.device == "virtex6") {
    load.fleet.scale = net::DeviceScale::kVirtex6;
  } else {
    load.fleet.scale = net::DeviceScale::kSmall;
  }
  load.drop_probability = options.loss;
  load.delay_us = options.latency_us;
  const net::LoadResult result = net::run_load(load);
  for (const net::MemberOutcome& m : result.members) {
    if (!m.completed) {
      std::printf("  member %zu INCOMPLETE: %s\n", m.index, m.error.c_str());
      continue;
    }
    std::printf("  member %zu %s (%s, %.3f ms)\n", m.index,
                m.report.attested() ? "ATTESTED" : "FAILED",
                core::to_string(m.report.failure),
                static_cast<double>(m.latency_ns) / 1e6);
  }
  std::printf("remote attestation : %zu/%zu completed, %zu attested, "
              "%.3f s wall\n",
              result.completed, result.members.size(), result.attested,
              static_cast<double>(result.wall_ns) / 1e9);
  return result.all_completed() && result.attested == result.completed ? 0 : 1;
}

/// Telemetry emission for every path that ran a session.
void emit_telemetry(const CliOptions& options) {
  if (!options.trace_out.empty()) {
    if (obs::write_chrome_trace(options.trace_out)) {
      std::printf("trace              : wrote %s (open in chrome://tracing)\n",
                  options.trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to '%s'\n",
                   options.trace_out.c_str());
    }
  }
  if (options.metrics) {
    std::printf("\n%s",
                obs::metrics_json(obs::MetricsRegistry::global().snapshot())
                    .c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) return 2;
  if (options.help) {
    print_help();
    return 0;
  }
  if (options.list_attacks) {
    std::printf("available adversaries:\n");
    for (const auto& attack : attacks::standard_suite()) {
      std::printf("  %-18s %s\n", attack->name().c_str(),
                  attack->description().c_str());
    }
    return 0;
  }

  // Either telemetry flag turns the runtime toggle on for this process.
  if (options.metrics || !options.trace_out.empty()) obs::set_enabled(true);

  if (!options.listen_spec.empty()) return run_listen_mode(options);
  if (!options.connect_spec.empty()) return run_connect_mode(options);

  fault::FaultPlan fault_plan;
  if (!options.fault_plan.empty()) {
    auto parsed = fault::FaultPlan::parse(options.fault_plan);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.message().c_str());
      return 2;
    }
    fault_plan = std::move(parsed).take();
  }

  attacks::AttackEnv env = build_env(options);

  // Warm-start the golden model from the on-disk cache. shared_cached()
  // populates the process intern cache, so every verifier built below
  // (single session or fleet) picks this instance up instead of rebuilding.
  std::shared_ptr<const bitstream::GoldenModel> warm_model;
  if (!options.model_cache.empty()) {
    auto source = bitstream::GoldenModel::CacheSource::kBuilt;
    warm_model = bitstream::GoldenModel::shared_cached(
        env.plan, env.static_spec, env.app_spec, options.model_cache, &source);
    std::printf("model cache        : %s (%s)\n", options.model_cache.c_str(),
                source == bitstream::GoldenModel::CacheSource::kInterned
                    ? "interned hit"
                : source == bitstream::GoldenModel::CacheSource::kLoaded
                    ? "loaded from disk"
                    : "built + persisted");
  }

  std::printf("device=%s frames=%u order=%s latency=%lluus loss=%.3f%s%s\n",
              env.plan.device().name().c_str(), env.plan.device().total_frames(),
              options.order.c_str(),
              static_cast<unsigned long long>(options.latency_us), options.loss,
              options.reliable ? " reliable" : "",
              options.signed_mode ? " signed" : "");

  if (!options.update_manifest.empty()) {
    auto parsed = update::UpdateManifest::parse(options.update_manifest);
    if (!parsed.ok()) {
      std::fprintf(stderr, "--update-manifest: %s\n",
                   parsed.message().c_str());
      return 2;
    }
    update::UpdateManifest manifest = std::move(parsed).take();
    // The stager's half: device type and payload digest come from a golden
    // model of the staged design on this device (what an OTA pipeline
    // computes before signing the artifact).
    attacks::AttackEnv staged = env;
    staged.app_spec = manifest.app;
    const core::SachaVerifier stager = staged.make_verifier();
    if (manifest.device_type.empty()) {
      manifest.device_type = stager.floorplan().device().name();
    }
    manifest.payload = update::payload_digest(*stager.golden_model());
    manifest.payload_bytes =
        update::payload_frame_bytes(*stager.golden_model());

    crypto::HashSigner signer(options.seed ^ 0x5157, 4);
    auto signed_manifest = update::sign_manifest(manifest, signer);
    if (!signed_manifest.ok()) {
      std::fprintf(stderr, "signing manifest: %s\n",
                   signed_manifest.message().c_str());
      return 2;
    }
    std::printf("manifest           : %s\n", manifest.describe().c_str());

    auto verifier = env.make_verifier();
    auto prover = env.make_prover();
    core::LeafPolicy policy;
    update::UpdateRunOptions run;
    run.session = env.session_options;
    run.session.seed = options.seed;
    std::deque<fault::FaultInjector> injectors;
    if (!fault_plan.empty()) {
      std::printf("fault plan         : %s\n", fault_plan.describe().c_str());
      run.configure = [&](core::SessionOptions& session,
                          core::SessionHooks& hooks, std::string_view phase,
                          std::uint32_t attempt) {
        injectors.emplace_back(fault_plan,
                               session.seed ^ (phase.size() + attempt));
        injectors.back().arm(session, hooks);
      };
    }
    const update::UpdateReport report = update::run_update(
        verifier, prover, signed_manifest.value(), signer.root(), policy,
        run);
    std::string trail;
    for (const auto& transition : report.trail) {
      if (trail.empty()) trail = update::to_string(transition.from);
      trail += std::string(" -> ") + update::to_string(transition.to);
    }
    std::printf("gate trail         : %s\n", trail.c_str());
    for (const auto& phase : report.phases) {
      std::printf("  %-16s %s (%u attempt%s)\n", phase.phase.c_str(),
                  phase.report.verdict.ok() ? "attested" : "FAILED",
                  phase.attempts, phase.attempts == 1 ? "" : "s");
    }
    std::printf("update             : %s v%llu%s\n",
                update::to_string(report.final_state),
                static_cast<unsigned long long>(report.version),
                report.final_state == update::UpdateState::kRolledBack
                    ? (report.old_image_attested
                           ? " (old image re-attested)"
                           : " (old image NOT attested)")
                    : "");
    emit_telemetry(options);
    return report.committed() ? 0 : 1;
  }

  if (!options.attack.empty()) {
    for (const auto& attack : attacks::standard_suite()) {
      if (attack->name() == options.attack) {
        const attacks::AttackOutcome outcome = attack->run(env);
        std::printf("\nattack '%s': %s\n  %s\n", outcome.name.c_str(),
                    attacks::to_string(outcome.result), outcome.evidence.c_str());
        emit_telemetry(options);
        return outcome.result == attacks::AttackResult::kUndetected ? 1 : 0;
      }
    }
    std::fprintf(stderr, "unknown attack '%s' (see --list-attacks)\n",
                 options.attack.c_str());
    return 2;
  }

  if (options.fleet > 0) {
    // Fleet mode: N independently provisioned devices attested under the
    // chosen schedule. The supervisor derives per-member session seeds
    // itself; the fault plan (if any) arms per member with its own stream.
    std::deque<attacks::AttackEnv> envs;
    std::deque<core::SachaVerifier> verifiers;
    std::deque<core::SachaProver> provers;
    std::deque<fault::FaultInjector> injectors;
    std::vector<core::SwarmMember> members;
    for (std::uint64_t i = 0; i < options.fleet; ++i) {
      CliOptions member_cli = options;
      member_cli.seed = options.seed + i;
      envs.push_back(build_env(member_cli));
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::uint64_t i = 0; i < options.fleet; ++i) {
      core::SwarmMember member{"node-" + std::to_string(i), &verifiers[i],
                               &provers[i], {}};
      if (!fault_plan.empty()) {
        injectors.emplace_back(fault_plan, options.seed + i);
        fault::FaultInjector& injector = injectors.back();
        member.configure = [&injector](core::SessionOptions& session,
                                       core::SessionHooks& member_hooks,
                                       std::uint32_t) {
          injector.arm(session, member_hooks);
        };
      }
      members.push_back(std::move(member));
    }
    core::SwarmOptions swarm;
    swarm.session = env.session_options;
    swarm.schedule = options.schedule == "serial"
                         ? core::SwarmSchedule::kSerial
                     : options.schedule == "parallel"
                         ? core::SwarmSchedule::kParallel
                         : core::SwarmSchedule::kMultiplexed;
    swarm.engine.pool_size = static_cast<std::size_t>(options.pool);
    swarm.engine.verify_batch_width =
        static_cast<std::size_t>(options.verify_batch);
    swarm.engine.adaptive_slice = options.adaptive_slice;
    if (!fault_plan.empty()) {
      std::printf("fault plan         : %s\n", fault_plan.describe().c_str());
    }
    const core::SwarmReport report = core::attest_swarm(members, swarm);
    std::printf("\nfleet              : %llu members, schedule=%s\n",
                static_cast<unsigned long long>(options.fleet),
                options.schedule.c_str());
    std::printf("attested           : %zu/%zu (%zu healed, %zu quarantined)\n",
                report.attested, members.size(), report.healed,
                report.quarantined);
    std::printf("makespan           : %.6f s (total work %.6f s)\n",
                sim::to_seconds(report.makespan),
                sim::to_seconds(report.total_work));
    if (swarm.schedule == core::SwarmSchedule::kMultiplexed) {
      std::printf("engine             : pool=%zu, thread-per-member would be "
                  "%.6f s (overlap %.2fx)\n",
                  report.engine.pool_size,
                  sim::to_seconds(report.engine.thread_per_member_makespan),
                  report.engine.overlap_efficiency);
      const double occupancy =
          report.engine.multi_absorb_calls > 0
              ? static_cast<double>(report.engine.multi_absorb_streams) /
                    static_cast<double>(report.engine.multi_absorb_calls)
              : 0.0;
      std::printf("verify batching    : width=%zu, occupancy %.2f "
                  "(%llu absorbs), %llu steals, slice=%u%s\n",
                  swarm.engine.verify_batch_width, occupancy,
                  static_cast<unsigned long long>(
                      report.engine.multi_absorb_calls),
                  static_cast<unsigned long long>(report.engine.verify_steals),
                  report.engine.rounds_per_slice_last,
                  swarm.engine.adaptive_slice ? " (adaptive)" : "");
    }
    std::printf("golden models      : %zu distinct, %zu B shared\n",
                report.distinct_golden_models, report.golden_model_bytes);
    if (report.messages_lost > 0 || report.retransmissions > 0) {
      std::printf("transport          : %llu lost, %llu retransmitted, "
                  "%.6f s in backoff\n",
                  static_cast<unsigned long long>(report.messages_lost),
                  static_cast<unsigned long long>(report.retransmissions),
                  sim::to_seconds(report.backoff_wait));
    }
    for (const auto& member : report.members) {
      if (!member.verdict.ok()) {
        std::printf("  %-10s FAILED: %s\n", member.id.c_str(),
                    member.verdict.detail.c_str());
      }
    }
    emit_telemetry(options);
    return report.all_attested() ? 0 : 1;
  }

  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  // Arm the fault plan on the honest session (attacks bring their own
  // hooks; the plan composes with them only through build_env's channel).
  fault::FaultInjector injector(fault_plan, options.seed);
  core::SessionHooks hooks;
  injector.arm(env.session_options, hooks);
  if (!fault_plan.empty()) {
    std::printf("fault plan         : %s\n", fault_plan.describe().c_str());
  }
  if (options.signed_mode) {
    crypto::HashSigner signer(options.seed ^ 0x5160, 4);
    core::LeafPolicy policy;
    const auto report = core::run_signed_attestation(
        verifier, prover, signer, signer.root(), 4, policy,
        env.session_options, hooks);
    print_report(report.base);
    std::printf("signature          : %s (leaf %u)\n",
                report.signature_ok && report.leaf_fresh ? "VALID" : "INVALID",
                report.leaf_index);
    emit_telemetry(options);
    return report.ok() ? 0 : 1;
  }
  const auto report =
      core::run_attestation(verifier, prover, env.session_options, hooks);
  print_report(report);
  std::printf("trace id           : %s\n",
              obs::to_string(report.trace_id).c_str());
  emit_telemetry(options);
  return report.verdict.ok() ? 0 : 1;
}
