// attest_coord — sharded attestation front door.
//
// Forks N attestd shard processes, consistent-hashes device ids onto them,
// and serves one well-known endpoint: v4 provers get a redirect HELLO_ACK
// naming their owning shard, older provers are proxied transparently.
// /statusz shows the shard table and the fleet Merkle root (every shard's
// hash-chained audit head folded into one digest); /metrics re-exports the
// union of every shard's scrape plus the routing counters.
//
//   ./attest_coord --port 7460 --shards 4 --model-cache /tmp/sgm &
//   ./attest_load --connect 127.0.0.1:7460 --members 256
//   curl http://127.0.0.1:7460/statusz
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include <poll.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "shard/coordinator.hpp"

using namespace sacha;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = g_stop + 1; }

void print_help() {
  std::printf(
      "usage: attest_coord [options]\n"
      "  --host ADDR        bind address (default 127.0.0.1)\n"
      "  --port N           front-door port (default 0 = ephemeral)\n"
      "  --shards N         shard processes to fork (default 2)\n"
      "  --vnodes N         virtual nodes per shard on the ring (default 64)\n"
      "  --shard-pool K     verify workers per shard (default 1)\n"
      "  --batch-width N    members per CMAC batch drain per shard\n"
      "  --timeout-ms N     idle session cut-off inside shards\n"
      "  --model-cache DIR  shared golden-model .sgm cache directory\n"
      "  --no-model-map     heap-load cached models instead of mmap\n"
      "  --health-ms N      control-thread cadence (default 200)\n"
      "  --poll             force the poll(2) fallback instead of epoll\n"
      "  --help             this text\n"
      "HTTP (front door): /metrics /healthz /statusz\n");
}

}  // namespace

int main(int argc, char** argv) {
  shard::CoordinatorOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help") {
      print_help();
      return 0;
    } else if (arg == "--host") {
      options.host = next("--host");
    } else if (arg == "--port") {
      options.port =
          static_cast<std::uint16_t>(std::strtoul(next("--port"), nullptr, 10));
    } else if (arg == "--shards") {
      options.shards = std::strtoull(next("--shards"), nullptr, 10);
    } else if (arg == "--vnodes") {
      options.vnodes = std::strtoull(next("--vnodes"), nullptr, 10);
    } else if (arg == "--shard-pool") {
      options.shard_pool = std::strtoull(next("--shard-pool"), nullptr, 10);
    } else if (arg == "--batch-width") {
      options.verify_batch_width =
          std::strtoull(next("--batch-width"), nullptr, 10);
    } else if (arg == "--timeout-ms") {
      options.session_timeout_ms =
          std::strtoull(next("--timeout-ms"), nullptr, 10);
    } else if (arg == "--model-cache") {
      options.model_cache_dir = next("--model-cache");
    } else if (arg == "--no-model-map") {
      options.model_map = false;
    } else if (arg == "--health-ms") {
      options.health_interval_ms =
          std::strtoull(next("--health-ms"), nullptr, 10);
    } else if (arg == "--poll") {
      options.prefer_epoll = false;
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  // A coordinator exists to be scraped: turn telemetry on before forking
  // shards so the children inherit the flag (same stance as attestd).
  obs::set_enabled(true);

  shard::ShardCoordinator coordinator(options);
  Status started = coordinator.start();
  if (!started.ok()) {
    std::fprintf(stderr, "attest_coord: %s\n", started.message().c_str());
    return 1;
  }
  std::printf("attest_coord listening on %s:%u (%zu shards:",
              options.host.c_str(), coordinator.port(),
              coordinator.shard_count());
  for (std::size_t i = 0; i < coordinator.shard_count(); ++i) {
    std::printf(" %u", coordinator.shard(i).port);
  }
  std::printf(")\n");
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  // Park until a signal arrives or stdin closes (same shutdown handle as
  // attestd: the smoke test pipes into the process and closes the end).
  struct pollfd stdin_poll = {STDIN_FILENO, POLLIN, 0};
  while (g_stop == 0) {
    const int n = ::poll(&stdin_poll, 1, 500);
    if (n < 0 && errno != EINTR) break;
    if (n > 0 && (stdin_poll.revents & (POLLIN | POLLHUP)) != 0) {
      char buf[256];
      const ssize_t got = ::read(STDIN_FILENO, buf, sizeof(buf));
      if (got <= 0) break;  // EOF: shut down
    }
  }

  const shard::FleetRollup rollup = coordinator.rollup();
  const shard::CoordinatorStats stats = coordinator.stats();
  coordinator.stop();
  std::string root_hex = to_hex(
      ByteSpan(rollup.root.data(), rollup.root.size()));
  std::printf(
      "attest_coord: %llu accepted (%llu redirected, %llu proxied), "
      "%llu http, %llu shards lost; fleet root %s over %zu shards "
      "(%llu audit entries)\n",
      static_cast<unsigned long long>(stats.accepted),
      static_cast<unsigned long long>(stats.redirects),
      static_cast<unsigned long long>(stats.proxied),
      static_cast<unsigned long long>(stats.http_requests),
      static_cast<unsigned long long>(stats.shards_lost), root_hex.c_str(),
      rollup.shards_covered,
      static_cast<unsigned long long>(rollup.audit_entries));
  return 0;
}
