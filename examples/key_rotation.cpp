// Key rotation via a DynPart PUF (§5.2.1, option 2).
//
// The MAC key can come from a PUF circuit that the *verifier ships inside
// the partial bitstream*. Each PUF circuit goes through enrollment before
// deployment; the verifier keeps a database of (circuit, key) pairs and can
// rotate the shared key by shipping a different circuit. This example walks
// the full lifecycle: enroll two circuits, attest under circuit v1, rotate
// to v2, attest again, and show that a clone without the real silicon
// cannot follow.
#include <cstdio>

#include "attacks/env.hpp"
#include "core/session.hpp"
#include "puf/enrollment.hpp"

using namespace sacha;

namespace {
constexpr std::uint32_t kRepetition = 15;
constexpr double kCellNoise = 0.06;
}  // namespace

int main() {
  std::printf("DynPart-PUF key rotation\n");
  std::printf("========================\n\n");

  // Provisioning: the device silicon (entropy source) responds differently
  // through each PUF circuit the verifier may ship.
  const std::uint64_t device_entropy = 0xDE71CEULL;
  const puf::SramPuf puf_v1(device_entropy ^ 1, puf::required_cells(kRepetition),
                            kCellNoise);
  const puf::SramPuf puf_v2(device_entropy ^ 2, puf::required_cells(kRepetition),
                            kCellNoise);

  puf::EnrollmentDb db;
  Rng rng(404);
  const puf::HelperData helper_v1 = db.enroll("board-7", "puf-circuit-v1", puf_v1,
                                              rng, kRepetition);
  const puf::HelperData helper_v2 = db.enroll("board-7", "puf-circuit-v2", puf_v2,
                                              rng, kRepetition);
  std::printf("enrolled 2 PUF circuits for board-7 (db size: %zu)\n\n", db.size());

  attacks::AttackEnv env = attacks::AttackEnv::small(/*seed=*/77);

  // --- Session 1: attest under circuit v1 --------------------------------
  env.key = *db.key_of("board-7", "puf-circuit-v1");
  core::SachaVerifier verifier1 = env.make_verifier();
  core::SachaProver prover(env.plan.device(), "board-7",
                           crypto::AesKey{});  // key not yet derived
  prover.boot(verifier1.static_image());
  auto key1 = core::key_from_puf(puf_v1, helper_v1, rng);
  if (!key1.ok()) {
    std::printf("PUF v1 key regeneration failed: %s\n", key1.message().c_str());
    return 1;
  }
  prover.set_key(key1.value());
  const auto r1 = core::run_attestation(verifier1, prover);
  std::printf("session 1 (circuit v1): %s\n", r1.verdict.ok() ? "ATTESTED" : "FAILED");

  // --- Rotation: the verifier ships circuit v2 in the partial bitstream --
  // (modelled: the application spec changes to one embedding puf-circuit-v2,
  // and the device re-derives its key through the new circuit)
  std::printf("\nrotating key: shipping puf-circuit-v2 in the next bitstream\n");
  env.key = *db.key_of("board-7", "puf-circuit-v2");
  env.app_spec = bitstream::DesignSpec{"intended-app-v1+puf-circuit-v2", 2};
  core::SachaVerifier verifier2 = env.make_verifier();
  auto key2 = core::key_from_puf(puf_v2, helper_v2, rng);
  if (!key2.ok()) {
    std::printf("PUF v2 key regeneration failed: %s\n", key2.message().c_str());
    return 1;
  }
  prover.set_key(key2.value());
  const auto r2 = core::run_attestation(verifier2, prover);
  std::printf("session 2 (circuit v2): %s\n", r2.verdict.ok() ? "ATTESTED" : "FAILED");

  // --- Old key is dead ----------------------------------------------------
  prover.set_key(key1.value());  // a stale (or leaked) v1 key
  const auto r3 = core::run_attestation(verifier2, prover);
  std::printf("session 3 (stale v1 key against v2 verifier): %s\n",
              r3.verdict.ok() ? "ACCEPTED (BAD!)" : "rejected, as intended");

  // --- A cloned board cannot follow the rotation --------------------------
  const puf::SramPuf clone_silicon(0xBADC107EULL ^ 2,
                                   puf::required_cells(kRepetition), kCellNoise);
  auto clone_key = core::key_from_puf(clone_silicon, helper_v2, rng);
  std::printf("clone tries to regenerate the v2 key: %s\n",
              clone_key.ok() ? "succeeded (BAD!)"
                             : "fuzzy extractor rejects the foreign silicon");

  const bool ok = r1.verdict.ok() && r2.verdict.ok() && !r3.verdict.ok() &&
                  !clone_key.ok();
  std::printf("\n%s\n", ok ? "Key-rotation lifecycle behaved as designed."
                           : "UNEXPECTED OUTCOME — investigate!");
  return ok ? 0 : 1;
}
