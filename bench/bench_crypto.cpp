// E9 — MAC core comparison.
//
// The PoC uses an area-optimised AES-CMAC core (283 CLB / 8 BRAM). This
// bench measures our software models of the two candidate MAC cores
// (AES-CMAC vs HMAC-SHA256) on the protocol's actual unit of work — one
// 324-byte configuration frame — and on a full configuration-memory stream,
// plus the primitive costs underneath.
//
// The AES engine has three tiers (reference / T-table / AES-NI, see
// crypto/aes.hpp); the tier sweep below is the crypto fast-path regression
// gate: it prints bytes/sec per tier, checks the MACs are bit-identical,
// and emits BENCH_crypto.json for trajectory tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_util.hpp"
#include "crypto/cmac.hpp"
#include "crypto/hmac.hpp"
#include "crypto/prg.hpp"
#include "crypto/sha256.hpp"

using namespace sacha;

namespace {

crypto::AesKey bench_key() {
  crypto::Prg prg(7, "bench-key");
  return prg.key();
}

std::vector<crypto::AesImpl> available_tiers() {
  std::vector<crypto::AesImpl> tiers = {crypto::AesImpl::kReference,
                                        crypto::AesImpl::kTtable};
  if (crypto::Aes128::aesni_supported()) tiers.push_back(crypto::AesImpl::kAesni);
  return tiers;
}

void BM_AesBlockEncrypt(benchmark::State& state) {
  const auto impl = static_cast<crypto::AesImpl>(state.range(0));
  const crypto::Aes128 aes(bench_key(), impl);
  crypto::AesBlock block{};
  for (auto _ : state) {
    aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
  state.SetLabel(crypto::to_string(aes.impl()));
}
BENCHMARK(BM_AesBlockEncrypt)
    ->Arg(static_cast<int>(crypto::AesImpl::kReference))
    ->Arg(static_cast<int>(crypto::AesImpl::kTtable))
    ->Arg(static_cast<int>(crypto::AesImpl::kAesni));

void BM_CmacFrameUpdate(benchmark::State& state) {
  const auto impl = static_cast<crypto::AesImpl>(state.range(0));
  crypto::Cmac cmac(bench_key(), impl);
  const Bytes frame(324, 0x3c);
  for (auto _ : state) {
    cmac.update(frame);
    benchmark::DoNotOptimize(cmac);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 324);
  state.SetLabel(crypto::to_string(cmac.impl()));
}
BENCHMARK(BM_CmacFrameUpdate)
    ->Arg(static_cast<int>(crypto::AesImpl::kReference))
    ->Arg(static_cast<int>(crypto::AesImpl::kTtable))
    ->Arg(static_cast<int>(crypto::AesImpl::kAesni));

void BM_HmacSha256FrameUpdate(benchmark::State& state) {
  crypto::HmacSha256 hmac(Bytes(16, 0x3c));
  const Bytes frame(324, 0x3c);
  for (auto _ : state) {
    hmac.update(frame);
    benchmark::DoNotOptimize(hmac);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 324);
}
BENCHMARK(BM_HmacSha256FrameUpdate);

void BM_Sha256FrameUpdate(benchmark::State& state) {
  crypto::Sha256 sha;
  const Bytes frame(324, 0x3c);
  for (auto _ : state) {
    sha.update(frame);
    benchmark::DoNotOptimize(sha);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 324);
}
BENCHMARK(BM_Sha256FrameUpdate);

void BM_CmacFullConfigMemory(benchmark::State& state) {
  // MAC over the whole XC6VLX240T configuration: 28,488 frames x 324 B.
  const auto impl = static_cast<crypto::AesImpl>(state.range(0));
  const Bytes frame(324, 0x7e);
  for (auto _ : state) {
    crypto::Cmac cmac(bench_key(), impl);
    for (std::uint32_t f = 0; f < fabric::kVirtex6TotalFrames; ++f) {
      cmac.update(frame);
    }
    benchmark::DoNotOptimize(cmac.finalize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fabric::kVirtex6TotalFrames * 324);
  state.SetLabel(crypto::to_string(crypto::Aes128::resolve(impl)));
}
BENCHMARK(BM_CmacFullConfigMemory)
    ->Arg(static_cast<int>(crypto::AesImpl::kReference))
    ->Arg(static_cast<int>(crypto::AesImpl::kTtable))
    ->Arg(static_cast<int>(crypto::AesImpl::kAesni))
    ->Unit(benchmark::kMillisecond);

void BM_HmacFullConfigMemory(benchmark::State& state) {
  const Bytes frame(324, 0x7e);
  for (auto _ : state) {
    crypto::HmacSha256 hmac(Bytes(16, 1));
    for (std::uint32_t f = 0; f < fabric::kVirtex6TotalFrames; ++f) {
      hmac.update(frame);
    }
    benchmark::DoNotOptimize(hmac.finalize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fabric::kVirtex6TotalFrames * 324);
}
BENCHMARK(BM_HmacFullConfigMemory)->Unit(benchmark::kMillisecond);

void BM_PrgBytes(benchmark::State& state) {
  crypto::Prg prg(1, "bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(prg.bytes(static_cast<std::size_t>(state.range(0))));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PrgBytes)->Arg(16)->Arg(324)->Arg(4096);

/// Best-of-3 AES-CMAC throughput of one tier over `data`, in bytes/sec.
double measure_cmac_throughput(crypto::AesImpl impl, const Bytes& data,
                               crypto::Mac& mac_out) {
  using clock = std::chrono::steady_clock;
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    crypto::Cmac cmac(bench_key(), impl);
    const auto t0 = clock::now();
    cmac.update(data);
    mac_out = cmac.finalize();
    const double secs = std::chrono::duration<double>(clock::now() - t0).count();
    if (secs > 0) best = std::max(best, static_cast<double>(data.size()) / secs);
  }
  return best;
}

void tier_sweep_and_emit() {
  benchutil::print_title("AES-CMAC tier sweep (frame-stream workload)");
  // One full XC6VLX240T readback volume: 28,488 frames x 324 bytes.
  const Bytes stream(static_cast<std::size_t>(fabric::kVirtex6TotalFrames) * 324,
                     0x5a);
  std::vector<benchutil::BenchRecord> records;
  double reference_bps = 0.0;
  crypto::Mac reference_mac{};
  bool macs_identical = true;

  std::printf("%-12s %14s %10s %8s\n", "tier", "throughput", "speedup", "MAC");
  for (crypto::AesImpl impl : available_tiers()) {
    crypto::Mac mac{};
    const double bps = measure_cmac_throughput(impl, stream, mac);
    if (impl == crypto::AesImpl::kReference) {
      reference_bps = bps;
      reference_mac = mac;
    }
    if (mac != reference_mac) macs_identical = false;
    const double speedup = reference_bps > 0 ? bps / reference_bps : 0.0;
    std::printf("%-12s %11.1f MB/s %9.2fx %8s\n", crypto::to_string(impl),
                bps / 1e6, speedup, mac == reference_mac ? "match" : "DIFFER");
    records.push_back({"bench_crypto",
                       std::string("cmac_") + crypto::to_string(impl) +
                           "_throughput",
                       bps, "bytes_per_sec"});
    if (impl != crypto::AesImpl::kReference) {
      records.push_back({"bench_crypto",
                         std::string("cmac_") + crypto::to_string(impl) +
                             "_speedup_vs_reference",
                         speedup, "x"});
    }
  }
  records.push_back({"bench_crypto", "tiers_bit_identical",
                     macs_identical ? 1.0 : 0.0, "bool"});
  std::printf("\nMACs across tiers: %s\n",
              macs_identical ? "bit-identical" : "MISMATCH — fast path broken");
  if (!crypto::Aes128::aesni_supported()) {
    std::printf("(AES-NI tier unavailable on this host; reported when present)\n");
  }
  benchutil::write_bench_json("BENCH_crypto.json", records);
}

void print_context() {
  benchutil::print_title("MAC core comparison (software models)");
  std::printf(
      "The PoC's hardware MAC updates cost 16 cycles/frame (128 ns @125 MHz)\n"
      "because the AES core is pipelined with the readback stream; the\n"
      "software numbers below set the scale for a host-side verifier, which\n"
      "must MAC the same 9.2 MB per attestation (Fig. 9: H_Vrf).\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_context();
  tier_sweep_and_emit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
