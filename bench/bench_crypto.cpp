// E9 — MAC core comparison.
//
// The PoC uses an area-optimised AES-CMAC core (283 CLB / 8 BRAM). This
// bench measures our software models of the two candidate MAC cores
// (AES-CMAC vs HMAC-SHA256) on the protocol's actual unit of work — one
// 324-byte configuration frame — and on a full configuration-memory stream,
// plus the primitive costs underneath.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "crypto/cmac.hpp"
#include "crypto/hmac.hpp"
#include "crypto/prg.hpp"
#include "crypto/sha256.hpp"

using namespace sacha;

namespace {

crypto::AesKey bench_key() {
  crypto::Prg prg(7, "bench-key");
  return prg.key();
}

void BM_AesBlockEncrypt(benchmark::State& state) {
  const crypto::Aes128 aes(bench_key());
  crypto::AesBlock block{};
  for (auto _ : state) {
    aes.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesBlockEncrypt);

void BM_CmacFrameUpdate(benchmark::State& state) {
  crypto::Cmac cmac(bench_key());
  const Bytes frame(324, 0x3c);
  for (auto _ : state) {
    cmac.update(frame);
    benchmark::DoNotOptimize(cmac);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 324);
}
BENCHMARK(BM_CmacFrameUpdate);

void BM_HmacSha256FrameUpdate(benchmark::State& state) {
  crypto::HmacSha256 hmac(Bytes(16, 0x3c));
  const Bytes frame(324, 0x3c);
  for (auto _ : state) {
    hmac.update(frame);
    benchmark::DoNotOptimize(hmac);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 324);
}
BENCHMARK(BM_HmacSha256FrameUpdate);

void BM_Sha256FrameUpdate(benchmark::State& state) {
  crypto::Sha256 sha;
  const Bytes frame(324, 0x3c);
  for (auto _ : state) {
    sha.update(frame);
    benchmark::DoNotOptimize(sha);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 324);
}
BENCHMARK(BM_Sha256FrameUpdate);

void BM_CmacFullConfigMemory(benchmark::State& state) {
  // MAC over the whole XC6VLX240T configuration: 28,488 frames x 324 B.
  const Bytes frame(324, 0x7e);
  for (auto _ : state) {
    crypto::Cmac cmac(bench_key());
    for (std::uint32_t f = 0; f < fabric::kVirtex6TotalFrames; ++f) {
      cmac.update(frame);
    }
    benchmark::DoNotOptimize(cmac.finalize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fabric::kVirtex6TotalFrames * 324);
}
BENCHMARK(BM_CmacFullConfigMemory)->Unit(benchmark::kMillisecond);

void BM_HmacFullConfigMemory(benchmark::State& state) {
  const Bytes frame(324, 0x7e);
  for (auto _ : state) {
    crypto::HmacSha256 hmac(Bytes(16, 1));
    for (std::uint32_t f = 0; f < fabric::kVirtex6TotalFrames; ++f) {
      hmac.update(frame);
    }
    benchmark::DoNotOptimize(hmac.finalize());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          fabric::kVirtex6TotalFrames * 324);
}
BENCHMARK(BM_HmacFullConfigMemory)->Unit(benchmark::kMillisecond);

void BM_PrgBytes(benchmark::State& state) {
  crypto::Prg prg(1, "bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(prg.bytes(static_cast<std::size_t>(state.range(0))));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PrgBytes)->Arg(16)->Arg(324)->Arg(4096);

void print_context() {
  benchutil::print_title("MAC core comparison (software models)");
  std::printf(
      "The PoC's hardware MAC updates cost 16 cycles/frame (128 ns @125 MHz)\n"
      "because the AES core is pipelined with the readback stream; the\n"
      "software numbers below set the scale for a host-side verifier, which\n"
      "must MAC the same 9.2 MB per attestation (Fig. 9: H_Vrf).\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_context();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
