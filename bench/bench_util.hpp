// Shared helpers for the experiment benches: a one-call full-scale
// Virtex-6 session runner and small formatting utilities. Every bench
// prints its paper table(s) first (the reproduction artifact) and then
// hands over to google-benchmark for the micro-timings.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "attacks/env.hpp"
#include "core/session.hpp"
#include "obs/export.hpp"

namespace sacha::benchutil {

// ---- Benchmark-regression emission --------------------------------------
//
// Benches append BenchRecords and write them as BENCH_<name>.json next to
// the working directory. The file is one JSON object:
//   {"records": [{bench, metric, value, unit}, ...], "metrics": {...}}
// `records` is the schema future PRs diff to track the perf trajectory;
// `metrics` embeds the telemetry registry snapshot at write time (all
// zeros when SACHA_OBS is off), so every BENCH_*.json also records the
// counter/histogram trajectory of the run that produced it.

struct BenchRecord {
  std::string bench;
  std::string metric;
  double value = 0.0;
  std::string unit;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Writes `records` (plus the current telemetry snapshot) to `path`;
/// returns false on I/O error.
inline bool write_bench_json(const std::string& path,
                             const std::vector<BenchRecord>& records) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n\"records\": [\n");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.6g, "
                 "\"unit\": \"%s\"}%s\n",
                 json_escape(r.bench).c_str(), json_escape(r.metric).c_str(),
                 r.value, json_escape(r.unit).c_str(),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "],\n\"metrics\": ");
  const std::string metrics =
      obs::metrics_json(obs::MetricsRegistry::global().snapshot());
  std::fwrite(metrics.data(), 1, metrics.size(), f);
  std::fprintf(f, "}\n");
  const bool ok = std::fclose(f) == 0;
  if (ok) std::printf("\n[bench-json] wrote %s (%zu records)\n", path.c_str(),
                      records.size());
  return ok;
}

struct V6Run {
  core::AttestationReport report;
  std::size_t commands = 0;
};

/// Runs one full attestation at proof-of-concept scale (XC6VLX240T,
/// 28,488 frames) and returns the report.
inline core::AttestationReport run_virtex6_session(
    const net::ChannelParams& channel = net::ChannelParams::ideal(),
    const core::VerifierOptions& verifier_options = {},
    std::uint64_t seed = 2019,
    const core::ProverOptions& prover_options = {}) {
  attacks::AttackEnv env = attacks::AttackEnv::virtex6(seed);
  env.verifier_options = verifier_options;
  env.session_options.channel = channel;
  env.prover_options = prover_options;
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  return core::run_attestation(verifier, prover, env.session_options);
}

inline void print_title(const char* title) {
  std::printf("\n%s\n", title);
  for (const char* p = title; *p; ++p) std::putchar('=');
  std::printf("\n");
}

/// "1 834 ns"-style thousands separator, matching the paper's tables.
inline std::string group_digits(std::uint64_t v) {
  std::string s = std::to_string(v);
  for (int i = static_cast<int>(s.size()) - 3; i > 0; i -= 3) {
    s.insert(static_cast<std::size_t>(i), " ");
  }
  return s;
}

inline double deviation_pct(double modeled, double paper) {
  if (paper == 0) return 0.0;
  return (modeled - paper) / paper * 100.0;
}

}  // namespace sacha::benchutil
