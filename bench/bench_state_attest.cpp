// E12 (extension) — state attestation cost and detection.
//
// Measures what the §8 extension adds on top of a base attestation (a
// targeted capture readback of the frames backing the processor state) and
// sweeps detection across tamper classes. Also reports the limitation
// experiment: the same state tampering passes baseline SACHa.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/state_attest.hpp"
#include "softcore/assembler.hpp"

using namespace sacha;
namespace sc = sacha::softcore;

namespace {

const char* kFirmware = R"(
    ldi r1, 1
    ldi r3, 977
  loop:
    add r2, r2, r1
    addi r1, r1, 1
    bne r1, r3, loop
    halt
)";

struct Rig {
  Rig()
      : device(fabric::DeviceModel::softcore_test_device()),
        plan(make_plan()),
        map(sc::StateMap::build(device, fabric::FrameRange{6, 29}).take()),
        program(sc::assemble(kFirmware).take()) {}

  fabric::Floorplan make_plan() {
    fabric::Floorplan p(device);
    p.add_partition({"StatPart",
                     fabric::PartitionKind::kStatic,
                     fabric::FrameRange{0, 6},
                     {.clb = 60, .bram18 = 4, .iob = 8, .dcm = 1, .icap = 1}});
    p.add_partition({"DynPart",
                     fabric::PartitionKind::kDynamic,
                     fabric::FrameRange{6, 30},
                     {.clb = 340, .bram18 = 12, .iob = 24, .dcm = 1}});
    return p;
  }

  static crypto::AesKey key() {
    crypto::AesKey k{};
    k.fill(0x31);
    return k;
  }

  core::StateAttestReport run(sc::SoftCore& cpu, std::uint64_t steps,
                              std::uint64_t seed) {
    core::SachaVerifier verifier(plan, {"static-v1", 1}, {"soc-app-v1", 1},
                                 key(), seed);
    core::SachaProver prover(device, "soc", key());
    prover.boot(verifier.static_image());
    return core::run_state_attestation(verifier, prover, cpu, program, map,
                                       {.cpu_steps = steps});
  }

  fabric::DeviceModel device;
  fabric::Floorplan plan;
  sc::StateMap map;
  sc::Program program;
};

void print_report() {
  benchutil::print_title("State attestation (future work #1, implemented)");
  Rig rig;
  std::printf("device: %s; state map: %zu bits over %zu frames\n\n",
              rig.device.name().c_str(), rig.map.bit_count(),
              rig.map.frames_touched().size());

  // Honest cost.
  sc::SoftCore honest(rig.program);
  const auto report = rig.run(honest, 256, 1);
  std::printf("honest run: base %s, state %s, capture frames: %zu of %u total\n",
              report.base.verdict.ok() ? "PASS" : "FAIL",
              report.state_ok ? "PASS" : "FAIL", report.frames_checked,
              rig.device.total_frames());
  std::printf("=> capture overhead is ~%zu extra readbacks (%.1f%% of a full "
              "readback pass)\n\n",
              report.frames_checked,
              100.0 * static_cast<double>(report.frames_checked) /
                  rig.device.total_frames());

  // Detection sweep.
  struct Case {
    const char* name;
    void (*tamper)(sc::SoftCore&);
  };
  const Case cases[] = {
      {"pc hijack", [](sc::SoftCore& c) { c.mutable_state().pc = 0; }},
      {"register corruption",
       [](sc::SoftCore& c) { c.mutable_state().regs[2] ^= 0x0001; }},
      {"forced halt", [](sc::SoftCore& c) { c.mutable_state().halted = true; }},
      {"loop-bound change",
       [](sc::SoftCore& c) { c.mutable_state().regs[3] = 1; }},
  };
  std::printf("%-22s %-14s %-14s\n", "state tamper", "baseline SACHa",
              "state attest");
  for (const Case& c : cases) {
    // Baseline: tampered state synced, plain SACHa run.
    core::SachaVerifier verifier(rig.plan, {"static-v1", 1}, {"soc-app-v1", 1},
                                 Rig::key(), 77);
    core::SachaProver prover(rig.device, "soc", Rig::key());
    prover.boot(verifier.static_image());
    sc::SoftCore cpu(rig.program);
    cpu.run(256);
    c.tamper(cpu);
    rig.map.sync_to_memory(cpu.state(), prover.memory());
    const auto base = core::run_attestation(verifier, prover);

    // Extension.
    sc::SoftCore cpu2(rig.program);
    cpu2.run(256);
    c.tamper(cpu2);
    const auto ext = rig.run(cpu2, 0, 78);
    std::printf("%-22s %-14s %-14s\n", c.name,
                base.verdict.ok() ? "MISSED" : "detected",
                ext.state_ok ? "MISSED" : "DETECTED");
  }
  std::printf("\nBaseline SACHa masks every flip-flop bit (that is what makes\n"
              "configuration attestation robust to a running application), so\n"
              "pure state compromises pass; the capture phase compares exactly\n"
              "those bits against a golden execution and catches all four.\n");
}

void BM_StateAttestHonest(benchmark::State& state) {
  Rig rig;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sc::SoftCore cpu(rig.program);
    benchmark::DoNotOptimize(rig.run(cpu, 256, seed++).ok());
  }
}
BENCHMARK(BM_StateAttestHonest)->Unit(benchmark::kMillisecond);

void BM_SoftCoreExecution(benchmark::State& state) {
  Rig rig;
  for (auto _ : state) {
    sc::SoftCore cpu(rig.program);
    benchmark::DoNotOptimize(cpu.run(10'000));
  }
}
BENCHMARK(BM_SoftCoreExecution);

void BM_StateMapSync(benchmark::State& state) {
  Rig rig;
  config::ConfigMemory memory(rig.device);
  sc::SoftCore cpu(rig.program);
  cpu.run(100);
  for (auto _ : state) {
    rig.map.sync_to_memory(cpu.state(), memory);
  }
}
BENCHMARK(BM_StateMapSync);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
