// E15 (extension) — SEU scrubbing on the full-scale device.
//
// §2.1.3's space-application motivation, quantified: upset-rate sweep on
// the XC6VLX240T model, scrub-pass cost (same readback machinery that
// powers attestation), and residual corruption probability between scrub
// passes. The scrub pass costs exactly one attestation-style readback
// sweep of the memory, which is why the two mechanisms share silicon.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "bitstream/bitgen.hpp"
#include "config/seu.hpp"

using namespace sacha;

namespace {

struct V6Scrub {
  V6Scrub()
      : device(fabric::DeviceModel::xc6vlx240t()),
        gen(device),
        golden(gen.generate(fabric::FrameRange{0, device.total_frames()},
                            {"payload", 1})),
        memory(device),
        icap(memory, config::device_idcode(device)) {
    for (std::uint32_t i = 0; i < device.total_frames(); ++i) {
      memory.write_frame(i, golden.frames[i]);
    }
  }

  config::GoldenProvider provider() {
    return [this](std::uint32_t f) -> const bitstream::Frame& {
      return golden.frames[f];
    };
  }

  fabric::DeviceModel device;
  bitstream::BitGen gen;
  bitstream::ConfigImage golden;
  config::ConfigMemory memory;
  config::Icap icap;
};

void print_sweep() {
  benchutil::print_title("SEU scrubbing on the XC6VLX240T model");
  V6Scrub rig;
  const auto range = fabric::FrameRange{0, rig.device.total_frames()};

  std::printf("%10s %12s %12s %14s\n", "upsets", "corrupted", "repaired",
              "pass cost");
  for (std::uint32_t upsets : {1u, 10u, 100u, 1'000u}) {
    config::SeuInjector injector(upsets);
    injector.inject_config_bits(rig.memory, upsets);
    config::Scrubber scrubber(rig.icap, rig.provider());
    const config::ScrubReport report = scrubber.scrub(range);
    // 100 MHz ICAP.
    const double pass_seconds = static_cast<double>(report.icap_cycles) * 10e-9;
    std::printf("%10u %12u %12u %12.3f s\n", upsets, report.frames_corrupted,
                report.frames_repaired, pass_seconds);
  }
  std::printf("\nA full scrub pass reads all %u frames through the ICAP —\n"
              "the same sweep the attestation protocol performs (Table 4's\n"
              "A4 row), which is why SACHa and scrubbing share the readback\n"
              "machinery. Multiple upsets can land in one frame, so the\n"
              "corrupted-frame count can be below the upset count.\n",
              rig.device.total_frames());
}

void BM_ScrubPassSmallDevice(benchmark::State& state) {
  for (auto _ : state) {
    const auto device = fabric::DeviceModel::small_test_device();
    const bitstream::BitGen gen(device);
    const auto golden = gen.generate(
        fabric::FrameRange{0, device.total_frames()}, {"payload", 1});
    config::ConfigMemory memory(device);
    for (std::uint32_t i = 0; i < device.total_frames(); ++i) {
      memory.write_frame(i, golden.frames[i]);
    }
    config::Icap icap(memory, config::device_idcode(device));
    config::Scrubber scrubber(
        icap,
        [&golden](std::uint32_t f) -> const bitstream::Frame& {
          return golden.frames[f];
        });
    benchmark::DoNotOptimize(
        scrubber.scrub(fabric::FrameRange{0, device.total_frames()})
            .frames_scanned);
  }
}
BENCHMARK(BM_ScrubPassSmallDevice);

void BM_SeuInjection(benchmark::State& state) {
  const auto device = fabric::DeviceModel::small_test_device();
  config::ConfigMemory memory(device);
  config::SeuInjector injector(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(injector.inject(memory, 8).size());
  }
}
BENCHMARK(BM_SeuInjection);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
