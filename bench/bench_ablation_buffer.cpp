// E6 — §6.1 ablation: BRAM command-buffer size vs communication steps.
//
// The PoC stages exactly one frame per network packet; the paper notes "a
// trade-off between the size of the BRAM-based memory and the number of
// communication steps can be made, as long as the memory is not capable of
// storing the partial bitstream at once". This bench sweeps frames-per-
// config-command, reporting protocol duration, command count, the BRAM the
// staging buffer needs, and whether the bounded-memory premise still holds.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace sacha;

namespace {

void print_sweep() {
  benchutil::print_title(
      "Ablation: frames per ICAP_config command (BRAM buffer vs steps)");
  const auto device = fabric::DeviceModel::xc6vlx240t();
  const std::uint64_t partial_bytes =
      device.bitstream_bytes(fabric::kVirtex6DynamicFrames);

  std::printf("%7s %10s %12s %14s %12s %9s\n", "frames", "commands",
              "buffer (B)", "theoretical", "lab total", "premise");
  for (std::uint32_t per : {1u, 2u, 4u, 8u, 16u, 32u}) {
    core::VerifierOptions options;
    options.frames_per_config = per;
    // The staging buffer grows with the command size — that is the paper's
    // trade-off: more BRAM for fewer communication steps.
    const std::uint64_t buffer_bytes =
        static_cast<std::uint64_t>(per) * device.frame_bytes() + 64;
    core::ProverOptions prover_options;
    prover_options.command_buffer_bytes = buffer_bytes;
    const auto ideal = benchutil::run_virtex6_session(
        net::ChannelParams::ideal(), options, 2019, prover_options);
    const auto lab = benchutil::run_virtex6_session(
        net::ChannelParams::lab(), options, 2019, prover_options);
    const bool premise_holds = buffer_bytes < partial_bytes;
    std::printf("%7u %10llu %12llu %12.3f s %10.2f s %9s%s\n", per,
                static_cast<unsigned long long>(ideal.commands_sent),
                static_cast<unsigned long long>(buffer_bytes),
                sim::to_seconds(ideal.theoretical_time),
                sim::to_seconds(lab.total_time),
                premise_holds ? "holds" : "BROKEN",
                ideal.verdict.ok() ? "" : "  [session FAILED]");
  }
  std::printf("\npartial bitstream: %llu bytes; the premise (buffer << partial\n"
              "bitstream) holds across the whole practical sweep, while the\n"
              "lab-network duration drops with the command count — the paper's\n"
              "trade-off, quantified.\n",
              static_cast<unsigned long long>(partial_bytes));
}

void print_readback_sweep() {
  benchutil::print_title(
      "Ablation: frames per ICAP_readback command (response buffer vs steps)");
  const auto device = fabric::DeviceModel::xc6vlx240t();
  const std::uint64_t partial_bytes =
      device.bitstream_bytes(fabric::kVirtex6DynamicFrames);

  std::printf("%7s %10s %12s %14s %12s %9s\n", "frames", "commands",
              "buffer (B)", "theoretical", "lab total", "premise");
  for (std::uint32_t per : {1u, 2u, 4u, 8u, 16u, 32u}) {
    core::VerifierOptions options;
    // per > 1 forces sequential order; pin the baseline to the same order
    // so the sweep varies exactly one knob.
    options.order = core::ReadbackOrder::kSequentialFromZero;
    options.frames_per_readback = per;
    // The response staging buffer is the readback-side mirror of the
    // config trade-off: the device assembles per × frame_bytes of readback
    // payload (plus header) before it can answer one command.
    const std::uint64_t buffer_bytes =
        static_cast<std::uint64_t>(per) * device.frame_bytes() + 64;
    const auto ideal = benchutil::run_virtex6_session(
        net::ChannelParams::ideal(), options, 2019);
    const auto lab = benchutil::run_virtex6_session(net::ChannelParams::lab(),
                                                    options, 2019);
    const bool premise_holds = buffer_bytes < partial_bytes;
    std::printf("%7u %10llu %12llu %12.3f s %10.2f s %9s%s\n", per,
                static_cast<unsigned long long>(ideal.commands_sent),
                static_cast<unsigned long long>(buffer_bytes),
                sim::to_seconds(ideal.theoretical_time),
                sim::to_seconds(lab.total_time),
                premise_holds ? "holds" : "BROKEN",
                ideal.verdict.ok() ? "" : "  [session FAILED]");
  }
  std::printf("\nreadback dominates the command count (28,488 frames), so\n"
              "batching it cuts lab-network duration far faster than the\n"
              "config sweep while the buffer premise still holds.\n");
}

void BM_SessionFramesPerConfig(benchmark::State& state) {
  core::VerifierOptions options;
  options.frames_per_config = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    attacks::AttackEnv env = attacks::AttackEnv::small();
    env.verifier_options = options;
    core::SachaVerifier verifier = env.make_verifier();
    core::SachaProver prover = env.make_prover();
    benchmark::DoNotOptimize(
        core::run_attestation(verifier, prover).verdict.ok());
  }
}
BENCHMARK(BM_SessionFramesPerConfig)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SessionFramesPerReadback(benchmark::State& state) {
  core::VerifierOptions options;
  options.order = core::ReadbackOrder::kSequentialFromZero;
  options.frames_per_readback = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    attacks::AttackEnv env = attacks::AttackEnv::small();
    env.verifier_options = options;
    core::SachaVerifier verifier = env.make_verifier();
    core::SachaProver prover = env.make_prover();
    benchmark::DoNotOptimize(
        core::run_attestation(verifier, prover).verdict.ok());
  }
}
BENCHMARK(BM_SessionFramesPerReadback)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  print_readback_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
