// E18 (extension) — attestation-gated OTA pipeline under faults, at scale.
//
// Three exit-code gates over src/update/:
//
//   1. Fault matrix: {burst loss, ICAP stall, device crash} x {pre-attest,
//      activate, post-attest} cells through run_update. Every cell must
//      end terminal (Committed or RolledBack) with the gate invariant
//      intact — zero commits without BOTH attestations, ever. Transport
//      cells (burst/stall on a reliable channel) must commit; the crash
//      cells must roll back, and a crash during Activating must bring the
//      device back attested on the OLD image (the crash-during-activation
//      rule).
//
//   2. Rolling wave: a 256-member fleet updated through EpochScheduler in
//      waves, converging inside the tick deadline with nobody
//      quarantined and every member committed through a two-attestation
//      pipeline.
//
//   3. Probe cost: a refresh-only probe at 2% coverage on the full
//      XC6VLX240T floorplan must cost <= 5% of a full session
//      (theoretical protocol time) — the economics that make continuous
//      attestation affordable between budgeted fulls.
//
// Emits BENCH_update.json; exit status 0 iff every gate holds, so CI can
// run this binary directly.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "attacks/env.hpp"
#include "bench_util.hpp"
#include "fault/injector.hpp"
#include "update/epoch.hpp"
#include "update/pipeline.hpp"

using namespace sacha;

namespace {

/// The OTA stager's half: a manifest for `new_app` on `env`'s device with
/// the payload digest computed from a throwaway golden model.
update::UpdateManifest make_manifest(const attacks::AttackEnv& env,
                                     const bitstream::DesignSpec& new_app,
                                     std::uint64_t version) {
  attacks::AttackEnv staged = env;
  staged.app_spec = new_app;
  const core::SachaVerifier v = staged.make_verifier();
  update::UpdateManifest manifest;
  manifest.version = version;
  manifest.device_type = v.floorplan().device().name();
  manifest.app = new_app;
  manifest.payload = update::payload_digest(*v.golden_model());
  manifest.payload_bytes = update::payload_frame_bytes(*v.golden_model());
  return manifest;
}

struct Cell {
  const char* fault_name;
  const char* plan_spec;   // fault::FaultPlan textual form
  bool reliable;           // transport faults need ack/retransmit to heal
  bool expect_commit;      // transport cells commit, crash cells roll back
  const char* phase_name;
  std::string_view phase;  // run_update phase label the plan arms in
};

update::UpdateReport run_cell(const Cell& cell, std::uint64_t seed) {
  attacks::AttackEnv env = attacks::AttackEnv::small(seed);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  crypto::HashSigner signer(seed ^ 0x5157, 3);
  auto signed_manifest = update::sign_manifest(
      make_manifest(env, {"app-v2", 2}, 2), signer);
  if (!signed_manifest.ok()) std::abort();

  const auto plan = fault::FaultPlan::parse(cell.plan_spec);
  if (!plan.ok()) std::abort();
  core::LeafPolicy policy;
  update::UpdateRunOptions run;
  run.session = env.session_options;
  run.session.seed = seed;
  run.session.reliable = cell.reliable;
  run.session.max_retries = 8;
  run.attest_retry_budget = 3;
  std::deque<fault::FaultInjector> injectors;
  run.configure = [&](core::SessionOptions& session, core::SessionHooks& hooks,
                      std::string_view phase, std::uint32_t attempt) {
    // The fault targets exactly one pipeline phase (every attempt of it);
    // the other phases — including the rollback recovery session — run
    // on a clean channel.
    if (phase != cell.phase) return;
    injectors.emplace_back(plan.value(), seed ^ (977u * (attempt + 1)));
    injectors.back().arm(session, hooks);
  };
  return update::run_update(verifier, prover, signed_manifest.value(),
                            signer.root(), policy, run);
}

bool fault_matrix(std::vector<benchutil::BenchRecord>& records) {
  benchutil::print_title(
      "Update gate fault matrix: burst x stall x crash, per phase");
  struct FaultRow {
    const char* name;
    const char* spec;
    bool reliable;
    bool expect_commit;
  };
  const FaultRow faults[] = {
      {"burst", "burst=0.05:0.5:1", true, true},
      {"stall", "stall=6:8", true, true},
      {"crash", "crash=8:4", false, false},
  };
  struct PhaseRow {
    const char* name;
    std::string_view label;
  };
  const PhaseRow phase_rows[] = {
      {"pre", update::phases::kPre},
      {"activate", update::phases::kActivate},
      {"post", update::phases::kPost},
  };
  std::printf("%18s %12s %10s %12s %8s\n", "cell", "final", "invariant",
              "old-attested", "status");
  bool all_ok = true;
  std::size_t phantom_commits = 0;
  for (const FaultRow& f : faults) {
    for (const PhaseRow& p : phase_rows) {
      const Cell cell{f.name, f.spec, f.reliable, f.expect_commit,
                      p.name,  p.label};
      const update::UpdateReport report = run_cell(cell, 0x9e00 + (&f - faults) * 16 + (&p - phase_rows));
      const std::string name =
          std::string(f.name) + "_" + p.name;
      const bool terminal =
          report.final_state == update::UpdateState::kCommitted ||
          report.final_state == update::UpdateState::kRolledBack;
      if (report.committed() &&
          !(report.pre_attested && report.post_attested)) {
        ++phantom_commits;
      }
      bool ok = terminal && report.invariant_ok &&
                report.committed() == f.expect_commit;
      // The crash-during-activation rule: the device reboots on the old
      // static image and the rollback session must re-attest it.
      if (f.expect_commit == false && p.label == update::phases::kActivate) {
        ok = ok && report.old_image_attested;
      }
      all_ok = all_ok && ok;
      std::printf("%18s %12s %10s %12s %8s\n", name.c_str(),
                  update::to_string(report.final_state),
                  report.invariant_ok ? "ok" : "BROKEN",
                  report.old_image_attested ? "yes" : "no",
                  ok ? "ok" : "FAILED");
      records.push_back({"bench_update", "cell_" + name + "_committed",
                         report.committed() ? 1.0 : 0.0, "bool"});
      records.push_back({"bench_update", "cell_" + name + "_invariant_ok",
                         report.invariant_ok ? 1.0 : 0.0, "bool"});
      records.push_back({"bench_update",
                         "cell_" + name + "_old_image_attested",
                         report.old_image_attested ? 1.0 : 0.0, "bool"});
    }
  }
  records.push_back({"bench_update", "commits_without_two_attestations",
                     static_cast<double>(phantom_commits), "updates"});
  if (phantom_commits > 0) {
    std::printf("GATE FAILED: %zu commit(s) without both attestations\n",
                phantom_commits);
  }
  if (!all_ok) std::printf("GATE FAILED: fault-matrix cell off contract\n");
  return all_ok && phantom_commits == 0;
}

constexpr std::size_t kWaveFleet = 256;
constexpr std::uint32_t kWave = 32;
constexpr int kTickDeadline = 12;  // 256 / 32 = 8 waves + slack

bool rolling_wave(std::vector<benchutil::BenchRecord>& records) {
  benchutil::print_title("Rolling update wave: 256 members, wave of 32");
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<update::EpochMember> members;
  for (std::size_t i = 0; i < kWaveFleet; ++i) {
    envs.push_back(attacks::AttackEnv::small(7000 + i));
    verifiers.push_back(envs.back().make_verifier());
    provers.push_back(envs.back().make_prover());
  }
  for (std::size_t i = 0; i < kWaveFleet; ++i) {
    // Members enter the scheduler provisioned: one full attestation.
    if (!core::run_attestation(verifiers[i], provers[i]).verdict.ok()) {
      std::abort();
    }
    members.push_back(update::EpochMember{"node-" + std::to_string(i),
                                          &verifiers[i], &provers[i], {}});
  }

  update::EpochOptions options;
  options.update_wave = kWave;
  options.freshness_window = 8;
  options.probe_coverage = 0.10;
  options.full_budget_fraction = 0.10;
  update::EpochScheduler scheduler(members, options);

  crypto::HashSigner signer(314, 3);
  auto signed_manifest =
      update::sign_manifest(make_manifest(envs[0], {"app-v2", 2}, 2), signer);
  if (!signed_manifest.ok()) std::abort();
  if (!scheduler.stage_update(signed_manifest.value(), signer.root()).ok()) {
    std::abort();
  }

  const auto wall_start = std::chrono::steady_clock::now();
  int ticks = 0;
  while (!scheduler.update_complete() && ticks < kTickDeadline) {
    scheduler.tick();
    ++ticks;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::size_t committed = 0, quarantined = 0, phantom = 0;
  for (const update::EpochMemberState& m : scheduler.members()) {
    if (m.update_committed) ++committed;
    if (m.health == update::Freshness::kQuarantined) ++quarantined;
  }
  bool invariants = true;
  for (const update::UpdateReport& report : scheduler.update_reports()) {
    invariants = invariants && report.invariant_ok;
    if (report.committed() &&
        !(report.pre_attested && report.post_attested)) {
      ++phantom;
    }
  }
  const bool converged = scheduler.update_complete();
  std::printf(
      "%zu members: committed %zu, quarantined %zu, %d ticks, %.2f s wall "
      "(%.1f updates/s)\n",
      kWaveFleet, committed, quarantined, ticks, wall_s,
      wall_s > 0 ? static_cast<double>(committed) / wall_s : 0.0);
  records.push_back({"bench_update", "wave_members",
                     static_cast<double>(kWaveFleet), "devices"});
  records.push_back({"bench_update", "wave_committed",
                     static_cast<double>(committed), "devices"});
  records.push_back({"bench_update", "wave_quarantined",
                     static_cast<double>(quarantined), "devices"});
  records.push_back(
      {"bench_update", "wave_ticks", static_cast<double>(ticks), "epochs"});
  records.push_back({"bench_update", "wave_wall", wall_s, "s"});
  records.push_back({"bench_update", "wave_phantom_commits",
                     static_cast<double>(phantom), "updates"});

  const bool ok = converged && committed == kWaveFleet && quarantined == 0 &&
                  invariants && phantom == 0;
  if (!ok) std::printf("GATE FAILED: rolling wave off contract\n");
  return ok;
}

constexpr double kProbeCoverage = 0.02;
constexpr double kProbeCostBound = 0.05;  // probe <= 5% of a full session

bool probe_cost(std::vector<benchutil::BenchRecord>& records) {
  benchutil::print_title(
      "Probe economics: refresh-only 2% probe vs full session (XC6VLX240T)");
  attacks::AttackEnv env = attacks::AttackEnv::virtex6(11);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const auto full = core::run_attestation(verifier, prover,
                                          env.session_options);
  if (!full.verdict.ok()) std::abort();

  verifier.set_refresh_only(true);
  verifier.set_probe_coverage(kProbeCoverage);
  const auto probe = core::run_attestation(verifier, prover,
                                           env.session_options);
  verifier.set_refresh_only(false);
  verifier.set_probe_coverage(1.0);
  const double ratio =
      static_cast<double>(probe.theoretical_time) /
      static_cast<double>(full.theoretical_time);
  const bool ok = probe.verdict.ok() && ratio <= kProbeCostBound;
  std::printf(
      "full %.3f s, probe %.4f s (%.1f%% coverage) -> ratio %.4f "
      "(bound %.2f) %s\n",
      sim::to_seconds(full.theoretical_time),
      sim::to_seconds(probe.theoretical_time), kProbeCoverage * 100.0, ratio,
      kProbeCostBound, ok ? "ok" : "FAILED");
  records.push_back(
      {"bench_update", "full_session_s", sim::to_seconds(full.theoretical_time), "s"});
  records.push_back({"bench_update", "probe_session_s",
                     sim::to_seconds(probe.theoretical_time), "s"});
  records.push_back({"bench_update", "probe_cost_ratio", ratio, "ratio"});
  records.push_back({"bench_update", "probe_cost_bound", kProbeCostBound,
                     "ratio"});
  if (!ok) std::printf("GATE FAILED: probe cost above bound\n");
  return ok;
}

bool gates_and_emit() {
  std::vector<benchutil::BenchRecord> records;
  const bool matrix_ok = fault_matrix(records);
  const bool wave_ok = rolling_wave(records);
  const bool probe_ok = probe_cost(records);
  records.push_back(
      {"bench_update", "gate_fault_matrix", matrix_ok ? 1.0 : 0.0, "bool"});
  records.push_back(
      {"bench_update", "gate_rolling_wave", wave_ok ? 1.0 : 0.0, "bool"});
  records.push_back(
      {"bench_update", "gate_probe_cost", probe_ok ? 1.0 : 0.0, "bool"});
  benchutil::write_bench_json("BENCH_update.json", records);
  return matrix_ok && wave_ok && probe_ok;
}

void BM_UpdatePipelineHappyPath(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_cell({"none", "none", false, true, "none", "no-phase"}, 0xbead)
            .committed());
  }
}
BENCHMARK(BM_UpdatePipelineHappyPath)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool gates_ok = gates_and_emit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gates_ok ? 0 : 1;
}
