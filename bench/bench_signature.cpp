// E14 (extension) — signature mode cost (future work #2).
//
// Measures the hash-based signature machinery the no-pre-shared-key mode
// adds on top of a session: Lamport keygen/sign/verify, Merkle tree
// construction per tree height, signature size on the wire, and a full
// signed attestation. Run context: the static partition already contains a
// hash core, so device-side cost is hashing only.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/signed_attest.hpp"

using namespace sacha;

namespace {

void print_report() {
  benchutil::print_title("Signature mode (no pre-shared key)");

  // Wire sizes.
  const std::size_t ots_bytes = 256 * 32;
  const std::size_t pk_bytes = 512 * 32;
  std::printf("Lamport OTS signature: %zu B revealed preimages + %zu B leaf "
              "public key\n", ots_bytes, pk_bytes);
  for (std::uint32_t h : {2u, 4u, 8u}) {
    std::printf("  tree h=%u: %u sessions per identity, +%u B auth path\n", h,
                1u << h, h * 32);
  }

  // End-to-end signed attestation with a public session key.
  attacks::AttackEnv env = attacks::AttackEnv::small(3);
  env.key = crypto::AesKey{};  // deliberately public
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  crypto::HashSigner signer(42, 4);
  core::LeafPolicy policy;
  const auto report = core::run_signed_attestation(
      verifier, prover, signer, signer.root(), 4, policy);
  std::printf("\nsigned attestation with PUBLIC session key: %s (%s)\n",
              report.ok() ? "PASS" : "FAIL", report.detail.c_str());
  std::printf("=> authenticity moves from the shared MAC key to the "
              "hash-based signature chain.\n");
}

void BM_LamportKeygen(benchmark::State& state) {
  std::uint32_t leaf = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::lamport_public(crypto::lamport_keygen(1, leaf++)));
  }
}
BENCHMARK(BM_LamportKeygen)->Unit(benchmark::kMillisecond);

void BM_LamportSign(benchmark::State& state) {
  const auto sk = crypto::lamport_keygen(2, 0);
  const auto digest = crypto::Sha256::compute(bytes_of("evidence"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::lamport_sign(sk, digest));
  }
}
BENCHMARK(BM_LamportSign);

void BM_LamportVerify(benchmark::State& state) {
  const auto sk = crypto::lamport_keygen(3, 0);
  const auto pk = crypto::lamport_public(sk);
  const auto digest = crypto::Sha256::compute(bytes_of("evidence"));
  const auto sig = crypto::lamport_sign(sk, digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::lamport_verify(pk, digest, sig));
  }
}
BENCHMARK(BM_LamportVerify);

void BM_HashSignerBuild(benchmark::State& state) {
  const auto height = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    crypto::HashSigner signer(7, height);
    benchmark::DoNotOptimize(signer.root());
  }
}
BENCHMARK(BM_HashSignerBuild)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_SignedAttestation(benchmark::State& state) {
  crypto::HashSigner signer(9, 10);
  core::LeafPolicy policy;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    attacks::AttackEnv env = attacks::AttackEnv::small(seed++);
    auto verifier = env.make_verifier();
    auto prover = env.make_prover();
    benchmark::DoNotOptimize(
        core::run_signed_attestation(verifier, prover, signer, signer.root(),
                                     10, policy)
            .ok());
  }
}
BENCHMARK(BM_SignedAttestation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
