// Verifier-side fast path: streaming masked-compare + MAC vs the retained
// baseline, and the shared-GoldenModel fleet memory model.
//
// PR 1 made the prover cheap, which moved the wall-clock and memory hot spot
// to SachaVerifier. This bench isolates the verifier's own work: a full
// Virtex-6 readback transcript (28,488 frames ≈ 9.2 MB) is captured once
// from an honest prover, then replayed into a streaming-mode and a
// retained-mode verifier. Headline numbers land in BENCH_verifier.json:
// masked-compare+MAC verify throughput per mode, the streaming speedup, the
// per-session retained readback bytes, and the fleet-sweep golden-model
// sharing ratio (one model per device type, not per member).
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <deque>
#include <span>

#include "bench_util.hpp"
#include "bitstream/golden_model.hpp"
#include "core/swarm.hpp"
#include "crypto/cmac.hpp"

using namespace sacha;

namespace {

/// One honest protocol transcript: every command's response, captured by
/// driving the prover directly (no channel), with the session driver's
/// register churn applied at the config→readback phase boundary.
struct Transcript {
  std::vector<std::optional<core::Response>> responses;
  std::size_t readback_bytes = 0;
};

Transcript capture_transcript(const attacks::AttackEnv& env) {
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  verifier.begin();
  Rng churn_rng(env.session_options.seed ^ 0xfeedface12345678ULL);

  Transcript t;
  const std::size_t n = verifier.command_count();
  t.responses.resize(n);
  bool config_phase_done = false;
  for (std::size_t i = 0; i < n; ++i) {
    const core::Command command = verifier.command(i);
    if (!config_phase_done && command.type != core::CommandType::kIcapConfig) {
      config_phase_done = true;
      prover.memory().tick_registers(
          churn_rng, env.session_options.register_flip_probability);
    }
    t.responses[i] = prover.handle(command).response;
    if (t.responses[i].has_value() &&
        t.responses[i]->type == core::ResponseType::kFrameData) {
      t.readback_bytes += t.responses[i]->frame_words.size() * 4;
    }
  }
  return t;
}

struct ReplayResult {
  double absorb_seconds = 0;    // begin + on_response for every command
  double verdict_seconds = 0;   // finish()
  double evidence_seconds = 0;  // expected_mac() — H_Vrf for the signed report
  std::size_t retained_bytes = 0;
  bool attested = false;
  double total() const {
    return absorb_seconds + verdict_seconds + evidence_seconds;
  }
};

/// Replays the transcript into a fresh verifier `reps` times and keeps the
/// best run of each phase: pure verifier-side work (absorb/buffer + MAC +
/// masked compare + verdict + signed-report evidence), no prover, no
/// channel. Response payloads are cloned *outside* the timed region — the
/// wire already delivered them once; both modes take them by move, so the
/// clone would only dilute the masked-compare+MAC ratio being measured.
/// The evidence phase is expected_mac(): run_signed_attestation calls it
/// after finish() to obtain H_Vrf for the signed report, and in retained
/// mode that is a second full re-serialize+CMAC pass over the transcript.
ReplayResult replay(const attacks::AttackEnv& base_env, core::VerifyMode mode,
                    const Transcript& t, int reps) {
  attacks::AttackEnv env = base_env;
  env.verifier_options.mode = mode;
  ReplayResult result;
  result.absorb_seconds = result.verdict_seconds = result.evidence_seconds =
      1e100;
  for (int rep = 0; rep < reps; ++rep) {
    core::SachaVerifier verifier = env.make_verifier();
    std::vector<std::optional<core::Response>> batch = t.responses;
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    verifier.begin();  // same seed ⇒ same nonce and schedule as the capture
    for (std::size_t i = 0; i < batch.size(); ++i) {
      (void)verifier.on_response(i, std::move(batch[i]));
    }
    const auto t1 = clock::now();
    const auto verdict = verifier.finish();
    const auto t2 = clock::now();
    const auto h_vrf = verifier.expected_mac();
    const auto t3 = clock::now();
    result.absorb_seconds = std::min(
        result.absorb_seconds, std::chrono::duration<double>(t1 - t0).count());
    result.verdict_seconds = std::min(
        result.verdict_seconds, std::chrono::duration<double>(t2 - t1).count());
    result.evidence_seconds = std::min(
        result.evidence_seconds,
        std::chrono::duration<double>(t3 - t2).count());
    result.retained_bytes = verifier.retained_readback_bytes();
    result.attested = verdict.ok() && h_vrf.has_value();
  }
  return result;
}

std::vector<benchutil::BenchRecord> g_records;

/// Shared XC6VLX240T capture: the headline replay and the multi-stream MAC
/// sweep both replay the same honest transcript.
const attacks::AttackEnv& virtex6_env() {
  static const attacks::AttackEnv env = attacks::AttackEnv::virtex6(2026);
  return env;
}

const Transcript& virtex6_transcript() {
  static const Transcript t = capture_transcript(virtex6_env());
  return t;
}

void virtex6_replay_headline() {
  benchutil::print_title(
      "Verifier fast path: streaming vs retained (XC6VLX240T, 28,488 frames)");
  const attacks::AttackEnv& env = virtex6_env();
  const Transcript& t = virtex6_transcript();
  const double mb = static_cast<double>(t.readback_bytes) / (1024.0 * 1024.0);

  const ReplayResult streaming =
      replay(env, core::VerifyMode::kStreaming, t, 5);
  const ReplayResult retained = replay(env, core::VerifyMode::kRetained, t, 3);
  const double stream_mbps = mb / streaming.total();
  const double retain_mbps = mb / retained.total();
  const double speedup = retained.total() / streaming.total();
  const double absorb_speedup =
      (retained.absorb_seconds + retained.verdict_seconds) /
      (streaming.absorb_seconds + streaming.verdict_seconds);

  std::printf("replayed transcript: %.1f MiB of readback\n", mb);
  std::printf("verifier-side work per attestation (masked compare + MAC + "
              "H_Vrf evidence for the signed report):\n");
  std::printf("%12s %12s %10s %10s %10s %14s %16s %10s\n", "mode", "absorb",
              "verdict", "evidence", "total", "throughput", "retained bytes",
              "verdict");
  std::printf("%12s %10.4f s %8.4f s %8.4f s %8.4f s %10.1f MiB/s %16zu %10s\n",
              "streaming", streaming.absorb_seconds, streaming.verdict_seconds,
              streaming.evidence_seconds, streaming.total(), stream_mbps,
              streaming.retained_bytes,
              streaming.attested ? "attested" : "FAILED");
  std::printf("%12s %10.4f s %8.4f s %8.4f s %8.4f s %10.1f MiB/s %16zu %10s\n",
              "retained", retained.absorb_seconds, retained.verdict_seconds,
              retained.evidence_seconds, retained.total(), retain_mbps,
              retained.retained_bytes,
              retained.attested ? "attested" : "FAILED");
  std::printf("=> streaming verify is %.1fx the retained baseline "
              "(%.1fx on absorb+verdict alone) and retains 0 B of readback "
              "per session.\n",
              speedup, absorb_speedup);

  const auto model =
      bitstream::GoldenModel::shared(env.plan, env.static_spec, env.app_spec);
  std::printf("golden model footprint: %.1f MiB (one copy per device type)\n",
              static_cast<double>(model->footprint_bytes()) /
                  (1024.0 * 1024.0));

  g_records.push_back({"bench_verifier", "streaming_verify_throughput",
                       stream_mbps, "MiB/s"});
  g_records.push_back({"bench_verifier", "retained_verify_throughput",
                       retain_mbps, "MiB/s"});
  g_records.push_back({"bench_verifier", "streaming_speedup", speedup, "x"});
  g_records.push_back({"bench_verifier", "streaming_absorb_verdict_speedup",
                       absorb_speedup, "x"});
  g_records.push_back({"bench_verifier", "streaming_verify_seconds",
                       streaming.total(), "s"});
  g_records.push_back({"bench_verifier", "retained_verify_seconds",
                       retained.total(), "s"});
  g_records.push_back({"bench_verifier", "streaming_retained_bytes",
                       static_cast<double>(streaming.retained_bytes), "B"});
  g_records.push_back({"bench_verifier", "retained_retained_bytes",
                       static_cast<double>(retained.retained_bytes), "B"});
  g_records.push_back({"bench_verifier", "golden_model_footprint",
                       static_cast<double>(model->footprint_bytes()), "B"});
}

/// Multi-stream CBC-MAC batch-width sweep — the tentpole's kernel-level
/// gate. 8 independent sessions' CMAC streams (distinct keys) each absorb
/// the full XC6VLX240T readback word stream; the single-stream baseline
/// folds them one after another (the AESENC dependency chain runs at
/// latency), the batched runs interleave them through CmacBatch at widths
/// 1/2/4/8 (the chain runs at throughput). Gate: every width's 8 tags are
/// bit-identical to the baseline's, and on the AES-NI tier the best width
/// is >= 1.5x the single-stream baseline. Returns false when the gate
/// fails (bench exit code — CI runs this binary directly).
bool multi_stream_mac_sweep() {
  benchutil::print_title(
      "Multi-stream CBC-MAC: interleaved batch widths vs single-stream "
      "(8 sessions x XC6VLX240T readback)");
  constexpr std::size_t kStreams = 8;

  // Concatenated readback words of the honest transcript — the exact data
  // the streaming verifier MACs, minus the protocol byte fraction.
  std::vector<std::uint32_t> words;
  for (const auto& response : virtex6_transcript().responses) {
    if (response.has_value() &&
        response->type == core::ResponseType::kFrameData) {
      words.insert(words.end(), response->frame_words.begin(),
                   response->frame_words.end());
    }
  }
  const double stream_mb =
      static_cast<double>(words.size()) * 4.0 / (1024.0 * 1024.0);

  std::array<crypto::AesKey, kStreams> keys{};
  for (std::size_t s = 0; s < kStreams; ++s) {
    for (std::size_t b = 0; b < keys[s].size(); ++b) {
      keys[s][b] = static_cast<std::uint8_t>(0xA5 ^ (s * 17 + b * 31));
    }
  }
  const crypto::AesImpl tier = crypto::Cmac(keys[0]).impl();
  std::printf("AES tier: %s, %.1f MiB per stream, %zu streams\n",
              crypto::to_string(tier), stream_mb, kStreams);

  constexpr int kReps = 3;
  const auto finalize_all = [&](std::array<crypto::Cmac, kStreams>* streams) {
    std::array<crypto::Mac, kStreams> tags{};
    for (std::size_t s = 0; s < kStreams; ++s) {
      tags[s] = (*streams)[s].finalize();
    }
    return tags;
  };
  const auto make_streams = [&] {
    return std::array<crypto::Cmac, kStreams>{
        crypto::Cmac(keys[0]), crypto::Cmac(keys[1]), crypto::Cmac(keys[2]),
        crypto::Cmac(keys[3]), crypto::Cmac(keys[4]), crypto::Cmac(keys[5]),
        crypto::Cmac(keys[6]), crypto::Cmac(keys[7])};
  };

  // Single-stream baseline: one dependent AESENC chain at a time.
  double serial_seconds = 1e100;
  std::array<crypto::Mac, kStreams> serial_tags{};
  for (int rep = 0; rep < kReps; ++rep) {
    auto streams = make_streams();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < kStreams; ++s) {
      streams[s].update(std::span<const std::uint32_t>(words));
    }
    serial_tags = finalize_all(&streams);
    const auto t1 = std::chrono::steady_clock::now();
    serial_seconds = std::min(serial_seconds,
                              std::chrono::duration<double>(t1 - t0).count());
  }
  const double total_mb = stream_mb * kStreams;
  std::printf("%10s %12s %14s %22s %8s\n", "width", "time", "throughput",
              "sessions/s/core", "tags");
  std::printf("%10s %10.4f s %10.1f MiB/s %18.2f /s %8s\n", "serial",
              serial_seconds, total_mb / serial_seconds,
              kStreams / serial_seconds, "--");
  g_records.push_back({"bench_verifier", "mac8_serial_throughput",
                       total_mb / serial_seconds, "MiB/s"});
  g_records.push_back({"bench_verifier", "mac8_serial_sessions_per_core",
                       kStreams / serial_seconds, "/s"});

  bool bit_identical = true;
  double best_seconds = 1e100;
  for (const std::size_t width : {1u, 2u, 4u, 8u}) {
    double batch_seconds = 1e100;
    std::array<crypto::Mac, kStreams> tags{};
    for (int rep = 0; rep < kReps; ++rep) {
      auto streams = make_streams();
      // Clones built outside the timed region: add() takes ownership, and
      // the wire hands the verifier owned payloads for free in production.
      std::vector<std::vector<std::uint32_t>> clones(kStreams, words);
      const auto t0 = std::chrono::steady_clock::now();
      crypto::CmacBatch batch(width);
      for (std::size_t s = 0; s < kStreams; ++s) {
        batch.add(streams[s], std::move(clones[s]));
      }
      batch.flush();
      tags = finalize_all(&streams);
      const auto t1 = std::chrono::steady_clock::now();
      batch_seconds = std::min(
          batch_seconds, std::chrono::duration<double>(t1 - t0).count());
    }
    const bool match = tags == serial_tags;
    bit_identical = bit_identical && match;
    if (width > 1) best_seconds = std::min(best_seconds, batch_seconds);
    std::printf("%10zu %10.4f s %10.1f MiB/s %18.2f /s %8s\n", width,
                batch_seconds, total_mb / batch_seconds,
                kStreams / batch_seconds, match ? "match" : "MISMATCH");
    const std::string prefix = "mac8_width" + std::to_string(width);
    g_records.push_back({"bench_verifier", prefix + "_throughput",
                         total_mb / batch_seconds, "MiB/s"});
    g_records.push_back({"bench_verifier", prefix + "_sessions_per_core",
                         kStreams / batch_seconds, "/s"});
  }

  const double speedup = serial_seconds / best_seconds;
  const bool gated_tier = tier == crypto::AesImpl::kAesni;
  const bool fast_enough = !gated_tier || speedup >= 1.5;
  std::printf("=> best interleaved width is %.2fx single-stream "
              "(gate: >= 1.5x on AES-NI%s), tags %s.\n",
              speedup, gated_tier ? "" : " — tier not gated here",
              bit_identical ? "bit-identical at every width" : "DIVERGED");
  g_records.push_back(
      {"bench_verifier", "mac8_batch_speedup", speedup, "x"});
  g_records.push_back({"bench_verifier", "mac8_bit_identical",
                       bit_identical ? 1.0 : 0.0, "bool"});
  g_records.push_back({"bench_verifier", "mac8_gate_tier_aesni",
                       gated_tier ? 1.0 : 0.0, "bool"});
  return bit_identical && fast_enough;
}

/// Fleet-size sweep: per-member retained readback bytes and golden-model
/// memory, shared (interned) vs what per-member copies would cost.
void fleet_memory_sweep() {
  benchutil::print_title(
      "Fleet memory: shared golden model + per-member retained readback");
  std::printf("%8s %10s %18s %20s %18s\n", "devices", "models",
              "shared model mem", "unshared would be", "retained readback");
  for (const std::size_t n : {1u, 4u, 16u, 32u}) {
    std::deque<attacks::AttackEnv> envs;
    std::deque<core::SachaVerifier> verifiers;
    std::deque<core::SachaProver> provers;
    std::vector<core::SwarmMember> members;
    for (std::size_t i = 0; i < n; ++i) {
      envs.push_back(attacks::AttackEnv::small(4200 + i));
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(core::SwarmMember{"node-" + std::to_string(i),
                                          &verifiers[i], &provers[i], {}});
    }
    const core::SwarmReport report = core::attest_swarm(members);
    std::printf("%8zu %10zu %16zu B %18zu B %16zu B%s\n", n,
                report.distinct_golden_models, report.golden_model_bytes,
                report.unshared_golden_model_bytes,
                report.retained_readback_bytes,
                report.all_attested() ? "" : "  [FAILURES]");
    if (n == 16) {
      g_records.push_back({"bench_verifier", "fleet16_distinct_models",
                           static_cast<double>(report.distinct_golden_models),
                           "models"});
      g_records.push_back({"bench_verifier", "fleet16_shared_model_bytes",
                           static_cast<double>(report.golden_model_bytes),
                           "B"});
      g_records.push_back({"bench_verifier", "fleet16_unshared_model_bytes",
                           static_cast<double>(
                               report.unshared_golden_model_bytes),
                           "B"});
      g_records.push_back({"bench_verifier", "fleet16_retained_readback_bytes",
                           static_cast<double>(report.retained_readback_bytes),
                           "B"});
    }
  }
  std::printf("=> golden-model memory is per device type, not per member.\n");
}

/// Heterogeneous fleet: two device types (distinct application designs) in
/// one multiplexed sweep. Members of a type intern one golden model, so
/// model memory scales with the number of types, not the fleet size.
void hetero_fleet_sweep() {
  benchutil::print_title(
      "Heterogeneous fleet: mixed device types under the multiplexed engine");
  const bitstream::DesignSpec apps[2] = {
      bitstream::DesignSpec{"intended-app-v1", 1},
      bitstream::DesignSpec{"sensor-app-v2", 7}};
  std::printf("%8s %8s %10s %18s %20s %10s\n", "devices", "types", "models",
              "shared model mem", "unshared would be", "attested");
  for (const std::size_t n : {2u, 8u, 16u, 32u}) {
    std::deque<attacks::AttackEnv> envs;
    std::deque<core::SachaVerifier> verifiers;
    std::deque<core::SachaProver> provers;
    std::vector<core::SwarmMember> members;
    for (std::size_t i = 0; i < n; ++i) {
      envs.push_back(attacks::AttackEnv::small(5200 + i));
      envs.back().app_spec = apps[i % 2];
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(core::SwarmMember{"node-" + std::to_string(i),
                                          &verifiers[i], &provers[i], {}});
    }
    core::SwarmOptions options;
    options.schedule = core::SwarmSchedule::kMultiplexed;
    options.engine.pool_size = 4;
    const core::SwarmReport report = core::attest_swarm(members, options);
    std::printf("%8zu %8zu %10zu %16zu B %18zu B %7zu/%zu%s\n", n,
                std::min<std::size_t>(n, 2), report.distinct_golden_models,
                report.golden_model_bytes, report.unshared_golden_model_bytes,
                report.attested, n,
                report.all_attested() ? "" : "  [FAILURES]");
    if (n == 16) {
      g_records.push_back({"bench_verifier", "hetero16_distinct_models",
                           static_cast<double>(report.distinct_golden_models),
                           "models"});
      g_records.push_back({"bench_verifier", "hetero16_shared_model_bytes",
                           static_cast<double>(report.golden_model_bytes),
                           "B"});
      g_records.push_back({"bench_verifier", "hetero16_unshared_model_bytes",
                           static_cast<double>(
                               report.unshared_golden_model_bytes),
                           "B"});
      g_records.push_back({"bench_verifier", "hetero16_retained_readback_bytes",
                           static_cast<double>(report.retained_readback_bytes),
                           "B"});
      g_records.push_back({"bench_verifier", "hetero16_attested",
                           static_cast<double>(report.attested), "sessions"});
    }
  }
  std::printf("=> model memory scales with device types (2 here), not fleet "
              "size, and the engine multiplexes both types in one pool.\n");
}

/// google-benchmark micro: verifier-side replay per mode at test-device
/// scale (16 frames), for the perf trajectory.
void BM_VerifierReplay(benchmark::State& state) {
  const auto mode = static_cast<core::VerifyMode>(state.range(0));
  attacks::AttackEnv env = attacks::AttackEnv::small(11);
  const Transcript t = capture_transcript(env);
  env.verifier_options.mode = mode;
  std::size_t bytes = 0;
  for (auto _ : state) {
    core::SachaVerifier verifier = env.make_verifier();
    verifier.begin();
    for (std::size_t i = 0; i < t.responses.size(); ++i) {
      std::optional<core::Response> response = t.responses[i];
      (void)verifier.on_response(i, std::move(response));
    }
    benchmark::DoNotOptimize(verifier.finish().ok());
    bytes += t.readback_bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_VerifierReplay)
    ->Arg(static_cast<int>(core::VerifyMode::kStreaming))
    ->Arg(static_cast<int>(core::VerifyMode::kRetained))
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // The CI telemetry gate runs this bench twice — SACHA_OBS unset and
  // SACHA_OBS=1 — and compares streaming_verify_throughput between the two
  // BENCH_verifier.json files; record which mode produced this one.
  std::printf("telemetry: %s\n", obs::enabled() ? "enabled" : "disabled");
  g_records.push_back({"bench_verifier", "telemetry_enabled",
                       obs::enabled() ? 1.0 : 0.0, "bool"});
  virtex6_replay_headline();
  const bool mac_gate_ok = multi_stream_mac_sweep();
  fleet_memory_sweep();
  hetero_fleet_sweep();
  benchutil::write_bench_json("BENCH_verifier.json", g_records);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!mac_gate_ok) {
    std::fprintf(stderr,
                 "FAIL: multi-stream CBC-MAC gate (>= 1.5x on AES-NI and "
                 "bit-identical tags) not met\n");
    return 1;
  }
  return 0;
}
