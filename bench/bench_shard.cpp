// bench_shard — sharded coordinator wallclock benchmark.
//
// Four gates, all enforced by exit code:
//   1. Bit-identity: a 16-member mixed fleet routed through the coordinator
//      (redirect path) must match BOTH a single attestd serving the same
//      fleet and the in-process SwarmSchedule::kMultiplexed oracle,
//      verdict-for-verdict and MAC-for-MAC. Sharding must never perturb
//      the protocol bytes.
//   2. Scaling: attestations/sec with {1, 2, 4, 8} shard processes. On a
//      host with >= 4 cores, 4 shards must reach >= 2x the 1-shard rate;
//      on a core-starved host (CI containers pinned to 1-2 cpus) the full
//      gate cannot physically pass — the bench then degrades to a
//      no-collapse check (4 shards >= 0.5x of 1 shard) and says so on
//      stdout, so the strong gate stays armed exactly where it is
//      meaningful.
//   3. Memory: a shard that maps the shared `.sgm` golden model
//      (load_mapped, MAP_SHARED) must add far less anonymous RSS than a
//      shard heap-loading the same file — the flat tables stay file-backed
//      page cache, one copy per host instead of one per process.
//   4. Rollup: after a fleet run, the coordinator's fleet Merkle root must
//      cover every shard (one leaf per shard, recomputable from the
//      scraped per-shard audit heads), with the shard audit entries
//      summing to the fleet's completed sessions.
//
// Writes BENCH_shard.json in the bench_util schema (same record shape as
// BENCH_net.json: attestations_per_s + session p50/p99/p999 per point).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "attacks/env.hpp"
#include "bench_util.hpp"
#include "bitstream/golden_model.hpp"
#include "core/swarm.hpp"
#include "crypto/merkle.hpp"
#include "net/attest_client.hpp"
#include "net/attest_server.hpp"
#include "shard/coordinator.hpp"

using namespace sacha;

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t at = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[at];
}

std::string make_temp_dir() {
  char tmpl[] = "/tmp/bench_shard_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  return dir != nullptr ? std::string(dir) : std::string("/tmp");
}

net::LoadOptions fleet_load(std::uint16_t port, std::size_t members) {
  net::LoadOptions load;
  load.host = "127.0.0.1";
  load.port = port;
  load.members = members;
  load.timeout_ms = 120000;
  return load;
}

/// Gate 1: verdicts and MACs through the coordinator == single attestd ==
/// in-process multiplexed oracle, on a mixed fleet with tampered members.
bool run_identity_gate(const std::string& cache_dir) {
  net::FleetSpec spec;
  spec.mixed = true;
  constexpr std::size_t kMembers = 16;
  const std::set<std::size_t> tampered = {1, 3};

  // In-process oracle.
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> swarm;
  for (std::size_t i = 0; i < kMembers; ++i) {
    envs.push_back(
        net::member_env(net::member_scale(spec, i), spec.base_seed + i));
    verifiers.push_back(envs.back().make_verifier());
    provers.push_back(envs.back().make_prover());
  }
  for (std::size_t i = 0; i < kMembers; ++i) {
    core::SwarmMember member{net::member_id(i), &verifiers[i], &provers[i],
                             {}};
    if (tampered.count(i) > 0) {
      member.hooks.after_config = [](core::SachaProver& p) {
        bitstream::Frame f = p.memory().config_frame(5);
        f.flip_bit(7);
        p.memory().write_frame(5, f);
      };
    }
    swarm.push_back(std::move(member));
  }
  core::SwarmOptions options;
  options.session = envs.front().session_options;
  options.session.seed = spec.session_seed;
  options.schedule = core::SwarmSchedule::kMultiplexed;
  options.retry_budget = 0;
  const core::SwarmReport oracle = core::attest_swarm(swarm, options);

  // Single-attestd baseline over loopback.
  net::AttestServer single;
  if (!single.start().ok()) {
    std::fprintf(stderr, "identity gate: single attestd failed to start\n");
    return false;
  }
  net::LoadOptions baseline_load = fleet_load(single.port(), kMembers);
  baseline_load.fleet = spec;
  baseline_load.tampered = tampered;
  const net::LoadResult baseline = net::run_load(baseline_load);
  single.stop();

  // The same fleet through a 3-shard coordinator (redirect path).
  shard::CoordinatorOptions coord_options;
  coord_options.shards = 3;
  coord_options.model_cache_dir = cache_dir;
  shard::ShardCoordinator coordinator(coord_options);
  if (!coordinator.start().ok()) {
    std::fprintf(stderr, "identity gate: coordinator failed to start\n");
    return false;
  }
  net::LoadOptions sharded_load = fleet_load(coordinator.port(), kMembers);
  sharded_load.fleet = spec;
  sharded_load.tampered = tampered;
  const net::LoadResult sharded = net::run_load(sharded_load);
  const shard::CoordinatorStats coord_stats = coordinator.stats();
  coordinator.stop();

  if (!baseline.all_completed() || !sharded.all_completed()) {
    std::fprintf(stderr, "identity gate: %zu/%zu baseline, %zu/%zu sharded\n",
                 baseline.completed, kMembers, sharded.completed, kMembers);
    return false;
  }
  if (sharded.redirects != kMembers) {
    std::fprintf(stderr,
                 "identity gate: %zu/%zu members redirected (all v4 members "
                 "must be routed by redirect)\n",
                 sharded.redirects, kMembers);
    return false;
  }
  for (std::size_t i = 0; i < kMembers; ++i) {
    const core::SwarmMemberResult& want = oracle.members[i];
    const net::MemberOutcome& base = baseline.members[i];
    const net::MemberOutcome& got = sharded.members[i];
    const bool verdict_match =
        got.report.protocol_ok == want.verdict.protocol_ok &&
        got.report.mac_ok == want.verdict.mac_ok &&
        got.report.config_ok == want.verdict.config_ok &&
        got.report.failure == want.failure &&
        got.report.protocol_ok == base.report.protocol_ok &&
        got.report.mac_ok == base.report.mac_ok &&
        got.report.config_ok == base.report.config_ok;
    const bool mac_match =
        got.client_mac.has_value() && want.mac.has_value() &&
        *got.client_mac == *want.mac && base.client_mac.has_value() &&
        *got.client_mac == *base.client_mac &&
        got.report.mac_present == base.report.mac_present &&
        (!got.report.mac_present || got.report.mac == base.report.mac);
    if (!verdict_match || !mac_match) {
      std::fprintf(stderr,
                   "identity gate: member %zu diverged (verdict %s, mac %s)\n",
                   i, verdict_match ? "ok" : "MISMATCH",
                   mac_match ? "ok" : "MISMATCH");
      return false;
    }
  }
  std::printf(
      "identity gate      : 16-member mixed fleet through %zu-shard "
      "coordinator bit-identical to single attestd and kMultiplexed "
      "(%zu attested, 2 tampered caught, %llu redirects)\n",
      std::size_t{3}, sharded.attested,
      static_cast<unsigned long long>(coord_stats.redirects));
  return true;
}

struct ShardPoint {
  std::size_t shards = 0;
  std::size_t completed = 0;
  bool all_completed = false;
  double rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

ShardPoint run_shard_point(std::size_t shards, std::size_t members,
                           const std::string& cache_dir) {
  shard::CoordinatorOptions options;
  options.shards = shards;
  options.shard_pool = 1;  // the shards ARE the parallelism under test
  options.model_cache_dir = cache_dir;
  shard::ShardCoordinator coordinator(options);
  ShardPoint point;
  point.shards = shards;
  if (!coordinator.start().ok()) {
    std::fprintf(stderr, "shard point %zu: coordinator failed to start\n",
                 shards);
    return point;
  }
  // Warm pass provisions every shard's verifier models so the measured
  // pass times steady-state routing, not first-session model builds.
  (void)net::run_load(fleet_load(coordinator.port(), std::min<std::size_t>(
                                                          members, 64)));
  const net::LoadResult result =
      net::run_load(fleet_load(coordinator.port(), members));
  coordinator.stop();

  point.completed = result.completed;
  point.all_completed = result.all_completed();
  const double seconds = static_cast<double>(result.wall_ns) / 1e9;
  point.rate =
      seconds > 0 ? static_cast<double>(result.completed) / seconds : 0;
  std::vector<double> latencies_ms;
  for (const net::MemberOutcome& m : result.members) {
    if (m.completed) {
      latencies_ms.push_back(static_cast<double>(m.latency_ns) / 1e6);
    }
  }
  point.p50_ms = percentile(latencies_ms, 0.50);
  point.p99_ms = percentile(latencies_ms, 0.99);
  point.p999_ms = percentile(latencies_ms, 0.999);
  return point;
}

/// RssAnon of this process in bytes (0 if unreadable / non-Linux).
std::uint64_t rss_anon_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("RssAnon:", 0) == 0) {
      return std::strtoull(line.c_str() + 8, nullptr, 10) * 1024;
    }
  }
  return 0;
}

struct LoadProbe {
  bool ok = false;            // model loaded in the child
  bool tables_mapped = false; // child's tables lived in a file mapping
  std::uint64_t rss_delta = 0;
};

/// Forks a child that loads the saved model (heap or mapped), touches every
/// table word, and reports its anonymous-RSS delta over a pipe.
LoadProbe child_load_probe(const std::string& path,
                           const attacks::AttackEnv& env, bool mapped) {
  LoadProbe probe;
  int fds[2];
  if (::pipe(fds) != 0) return probe;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return probe;
  }
  if (pid == 0) {
    ::close(fds[0]);
    const std::uint64_t before = rss_anon_bytes();
    auto model = mapped
                     ? bitstream::GoldenModel::load_mapped(
                           path, env.plan, env.static_spec, env.app_spec)
                     : bitstream::GoldenModel::load(
                           path, env.plan, env.static_spec, env.app_spec);
    std::uint64_t checksum = 0;
    if (model != nullptr) {
      // Touch every table word so mapped pages actually fault in — the
      // point is that they land in file-backed page cache, not RssAnon.
      for (std::uint32_t f = 0; f < model->total_frames(); ++f) {
        for (const std::uint32_t w : model->mask_words(f)) checksum += w;
        for (const std::uint32_t w : model->masked_golden_words(f)) {
          checksum += w;
        }
      }
    }
    const std::uint64_t after = rss_anon_bytes();
    const std::uint64_t delta = after > before ? after - before : 0;
    std::uint8_t wire[10];
    wire[0] = model != nullptr ? 1 : 0;
    wire[1] = (model != nullptr && model->tables_mapped()) ? 1 : 0;
    for (int i = 0; i < 8; ++i) {
      wire[2 + i] = static_cast<std::uint8_t>(delta >> (56 - 8 * i));
    }
    (void)!::write(fds[1], wire, sizeof(wire));
    ::close(fds[1]);
    // keep `checksum` alive so the touch loop cannot be optimised away
    ::_exit(checksum == 0xdeadbeef ? 3 : 0);
  }
  ::close(fds[1]);
  std::uint8_t wire[10] = {0};
  std::size_t got = 0;
  while (got < sizeof(wire)) {
    const ssize_t n = ::read(fds[0], wire + got, sizeof(wire) - got);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  ::close(fds[0]);
  (void)::waitpid(pid, nullptr, 0);
  if (got == sizeof(wire)) {
    probe.ok = wire[0] != 0;
    probe.tables_mapped = wire[1] != 0;
    for (int i = 0; i < 8; ++i) {
      probe.rss_delta = (probe.rss_delta << 8) | wire[2 + i];
    }
  }
  return probe;
}

/// Gate 3: the mmap'd golden model must keep per-shard anonymous RSS flat
/// where the heap load pays the full table cost per process.
bool run_rss_gate(const std::string& cache_dir,
                  std::vector<benchutil::BenchRecord>& records) {
  if (!bitstream::GoldenModel::mapping_supported()) {
    std::printf("memory gate        : skipped (mmap unsupported: portable "
                "build or non-Linux)\n");
    return true;
  }
  const attacks::AttackEnv env = attacks::AttackEnv::virtex6(7);
  const auto model =
      bitstream::GoldenModel::shared(env.plan, env.static_spec, env.app_spec);
  const std::string path =
      cache_dir + "/" +
      bitstream::GoldenModel::cache_digest(env.plan, env.static_spec,
                                           env.app_spec) +
      ".sgm";
  if (!model->save(path, env.plan)) {
    std::fprintf(stderr, "memory gate: failed to save %s\n", path.c_str());
    return false;
  }
  // Both children copy the (large) region images and specs; only the flat
  // streaming tables differ — heap-loaded they are anonymous memory, mapped
  // they are file-backed page cache shared across every shard on the host.
  // Gate on that difference: the mapped child must save at least 3/4 of the
  // table bytes relative to the heap child.
  const std::uint64_t table_bytes =
      2ull * model->total_frames() * model->words_per_frame() *
      sizeof(std::uint32_t);
  const LoadProbe heap = child_load_probe(path, env, false);
  const LoadProbe mapped = child_load_probe(path, env, true);
  records.push_back({"shard/memory", "heap_load_rss_anon",
                     static_cast<double>(heap.rss_delta) / 1e6, "MB"});
  records.push_back({"shard/memory", "mapped_load_rss_anon",
                     static_cast<double>(mapped.rss_delta) / 1e6, "MB"});
  records.push_back({"shard/memory", "table_bytes",
                     static_cast<double>(table_bytes) / 1e6, "MB"});
  if (!heap.ok || !mapped.ok || heap.tables_mapped || !mapped.tables_mapped) {
    std::fprintf(stderr,
                 "memory gate: probe children misbehaved (heap ok=%d "
                 "mapped=%d, mapped ok=%d mapped=%d)\n",
                 heap.ok, heap.tables_mapped, mapped.ok,
                 mapped.tables_mapped);
    return false;
  }
  const std::uint64_t saved = heap.rss_delta > mapped.rss_delta
                                  ? heap.rss_delta - mapped.rss_delta
                                  : 0;
  if (heap.rss_delta < table_bytes) {
    std::fprintf(stderr,
                 "memory gate: heap-load RssAnon delta %.1f MB is smaller "
                 "than the %.1f MB tables — the probe is not measuring\n",
                 static_cast<double>(heap.rss_delta) / 1e6,
                 static_cast<double>(table_bytes) / 1e6);
    return false;
  }
  if (saved * 4 < table_bytes * 3) {
    std::fprintf(stderr,
                 "memory gate: mapping saved only %.1f MB anon RSS of the "
                 "%.1f MB tables (heap %.1f MB vs mapped %.1f MB; need >= "
                 "3/4 of the tables file-backed)\n",
                 static_cast<double>(saved) / 1e6,
                 static_cast<double>(table_bytes) / 1e6,
                 static_cast<double>(heap.rss_delta) / 1e6,
                 static_cast<double>(mapped.rss_delta) / 1e6);
    return false;
  }
  std::printf(
      "memory gate        : mapped shard keeps %.1f MB of the %.1f MB flat "
      "tables out of anon RSS (heap load %.1f MB vs mapped %.1f MB)\n",
      static_cast<double>(saved) / 1e6,
      static_cast<double>(table_bytes) / 1e6,
      static_cast<double>(heap.rss_delta) / 1e6,
      static_cast<double>(mapped.rss_delta) / 1e6);
  return true;
}

/// Gate 4: one fleet Merkle root, one leaf per shard, recomputable from the
/// scraped audit heads, entries summing to the fleet's sessions.
bool run_rollup_gate(const std::string& cache_dir) {
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kMembers = 64;
  shard::CoordinatorOptions options;
  options.shards = kShards;
  options.shard_pool = 1;
  options.model_cache_dir = cache_dir;
  shard::ShardCoordinator coordinator(options);
  if (!coordinator.start().ok()) {
    std::fprintf(stderr, "rollup gate: coordinator failed to start\n");
    return false;
  }
  const net::LoadResult result =
      net::run_load(fleet_load(coordinator.port(), kMembers));
  const shard::FleetRollup rollup = coordinator.rollup();
  std::vector<crypto::Sha256Digest> leaves;
  std::uint64_t entries = 0;
  for (std::size_t i = 0; i < coordinator.shard_count(); ++i) {
    const shard::ShardInfo info = coordinator.shard(i);
    leaves.push_back(info.audit_head);
    entries += info.audit_entries;
  }
  coordinator.stop();

  if (!result.all_completed()) {
    std::fprintf(stderr, "rollup gate: %zu/%zu completed\n", result.completed,
                 kMembers);
    return false;
  }
  if (rollup.shards_covered != kShards ||
      rollup.leaves.size() != kShards) {
    std::fprintf(stderr,
                 "rollup gate: root covers %zu/%zu shards (%zu leaves)\n",
                 rollup.shards_covered, kShards, rollup.leaves.size());
    return false;
  }
  if (rollup.audit_entries != kMembers || entries != kMembers) {
    std::fprintf(stderr,
                 "rollup gate: audit entries %llu (rollup) / %llu (scrape), "
                 "expected %zu\n",
                 static_cast<unsigned long long>(rollup.audit_entries),
                 static_cast<unsigned long long>(entries), kMembers);
    return false;
  }
  const crypto::Sha256Digest recomputed = crypto::merkle_root(
      std::span<const crypto::Sha256Digest>(leaves));
  if (recomputed != rollup.root || rollup.root == crypto::Sha256Digest{}) {
    std::fprintf(stderr,
                 "rollup gate: root does not recompute from the per-shard "
                 "audit heads\n");
    return false;
  }
  std::printf(
      "rollup gate        : one fleet Merkle root over %zu shard audit "
      "chains (%llu entries) recomputes from the scraped heads\n",
      kShards, static_cast<unsigned long long>(rollup.audit_entries));
  return true;
}

}  // namespace

int main() {
  const std::string cache_dir = make_temp_dir();
  std::vector<benchutil::BenchRecord> records;
  bool gates_ok = run_identity_gate(cache_dir);

  constexpr std::size_t kMembers = 256;
  std::printf("\n%8s %12s %14s %12s %12s %12s\n", "shards", "completed",
              "attest/s", "p50 ms", "p99 ms", "p999 ms");
  double rate1 = 0.0;
  double rate4 = 0.0;
  for (const std::size_t shards :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const ShardPoint point = run_shard_point(shards, kMembers, cache_dir);
    std::printf("%8zu %12zu %14.1f %12.3f %12.3f %12.3f\n", point.shards,
                point.completed, point.rate, point.p50_ms, point.p99_ms,
                point.p999_ms);
    if (!point.all_completed) {
      std::fprintf(stderr, "shard sweep: %zu/%zu completed at %zu shards\n",
                   point.completed, kMembers, shards);
      gates_ok = false;
    }
    if (shards == 1) rate1 = point.rate;
    if (shards == 4) rate4 = point.rate;
    const std::string tag = "shard/" + std::to_string(shards) + "shards";
    records.push_back({tag, "attestations_per_s", point.rate, "1/s"});
    records.push_back({tag, "session_p50", point.p50_ms, "ms"});
    records.push_back({tag, "session_p99", point.p99_ms, "ms"});
    records.push_back({tag, "session_p999", point.p999_ms, "ms"});
  }
  const unsigned cores = std::thread::hardware_concurrency();
  const double speedup = rate1 > 0 ? rate4 / rate1 : 0.0;
  records.push_back({"shard/scaling", "speedup_4v1", speedup, "x"});
  records.push_back(
      {"shard/scaling", "host_cores", static_cast<double>(cores), "cores"});
  if (cores >= 4) {
    if (speedup < 2.0) {
      std::fprintf(stderr,
                   "scaling gate: 4 shards reached %.2fx of 1 shard on a "
                   "%u-core host (need >= 2x)\n",
                   speedup, cores);
      gates_ok = false;
    } else {
      std::printf("scaling gate       : 4 shards = %.2fx of 1 shard "
                  "(%u cores, full >= 2x gate)\n",
                  speedup, cores);
    }
  } else {
    // The full gate needs hardware parallelism for the shards to run on;
    // on a starved host only the no-collapse property is testable.
    if (speedup < 0.5) {
      std::fprintf(stderr,
                   "scaling gate: 4 shards collapsed to %.2fx of 1 shard "
                   "even on a %u-core host (need >= 0.5x)\n",
                   speedup, cores);
      gates_ok = false;
    } else {
      std::printf(
          "scaling gate       : DEGRADED — host has %u core(s), the >= 2x "
          "at-4-shards gate needs >= 4; checked no-collapse instead "
          "(%.2fx >= 0.5x). Run on a multicore host for the full gate.\n",
          cores, speedup);
    }
  }

  gates_ok = run_rss_gate(cache_dir, records) && gates_ok;
  gates_ok = run_rollup_gate(cache_dir) && gates_ok;

  if (!benchutil::write_bench_json("BENCH_shard.json", records)) {
    std::fprintf(stderr, "bench_shard: failed to write BENCH_shard.json\n");
    return 1;
  }
  std::printf("wrote BENCH_shard.json (%zu records)\n", records.size());
  return gates_ok ? 0 : 1;
}
