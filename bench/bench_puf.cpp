// E10 — PUF reliability sweep.
//
// §5.2.1 assumes an ideal key-generating PUF; this bench quantifies what
// "ideal enough" means for the fuzzy extractor: key-reproduction success
// versus SRAM cell noise and repetition-code strength, plus the PUF area
// (cells) each configuration costs. The cliff where reproduction collapses
// is the design constraint for choosing r.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "puf/enrollment.hpp"

using namespace sacha;

namespace {

double success_rate(std::uint32_t repetition, double noise, int trials,
                    std::uint64_t seed) {
  const puf::SramPuf puf(seed, puf::required_cells(repetition), noise);
  Rng rng(seed ^ 0x9999);
  const puf::Enrollment e = puf::generate(puf.nominal(), repetition, rng);
  int ok = 0;
  for (int t = 0; t < trials; ++t) {
    const auto key = puf::reproduce(puf.read(rng), e.helper);
    if (key.has_value() && *key == e.key) ++ok;
  }
  return static_cast<double>(ok) / trials;
}

void print_sweep() {
  benchutil::print_title("PUF key reproduction: noise x repetition sweep");
  const double noises[] = {0.02, 0.06, 0.10, 0.15, 0.20};
  const std::uint32_t reps[] = {3, 7, 15, 25, 51};
  constexpr int kTrials = 200;

  std::printf("%6s %8s", "r", "cells");
  for (double n : noises) std::printf("   p=%.2f", n);
  std::printf("\n");
  for (std::uint32_t r : reps) {
    std::printf("%6u %8zu", r, puf::required_cells(r));
    for (double n : noises) {
      std::printf("   %5.1f%%", 100.0 * success_rate(r, n, kTrials, 1000 + r));
    }
    std::printf("\n");
  }
  std::printf("\n(success over %d fresh power-up reads; 128-bit key;\n"
              " failures are *detected* by the helper-data commitment, never\n"
              " silent wrong keys)\n", kTrials);
  std::printf("Design point used by the examples: r=15 at p<=0.06 -> ~100%%\n"
              "with 1,920 PUF cells.\n");
}

void BM_FuzzyGenerate(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const puf::SramPuf puf(5, puf::required_cells(r), 0.06);
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(puf::generate(puf.nominal(), r, rng));
  }
}
BENCHMARK(BM_FuzzyGenerate)->Arg(7)->Arg(15)->Arg(51);

void BM_FuzzyReproduce(benchmark::State& state) {
  const auto r = static_cast<std::uint32_t>(state.range(0));
  const puf::SramPuf puf(5, puf::required_cells(r), 0.06);
  Rng rng(6);
  const puf::Enrollment e = puf::generate(puf.nominal(), r, rng);
  const BitVec response = puf.read(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(puf::reproduce(response, e.helper));
  }
}
BENCHMARK(BM_FuzzyReproduce)->Arg(7)->Arg(15)->Arg(51);

void BM_Enrollment(benchmark::State& state) {
  const std::uint32_t r = 15;
  const puf::SramPuf puf(5, puf::required_cells(r), 0.06);
  Rng rng(6);
  for (auto _ : state) {
    puf::EnrollmentDb db;
    benchmark::DoNotOptimize(db.enroll("d", "c", puf, rng, r));
  }
}
BENCHMARK(BM_Enrollment);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
