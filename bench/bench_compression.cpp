// E16 (extension) — compression vs the bounded-memory premise.
//
// SACHa's security rests on the partial bitstream not fitting in on-fabric
// BRAM; reference [24] observes that compression does not change this for
// real designs, whose bitstreams are high-entropy. This bench measures our
// LZ and RLE codecs on three content classes (synthetic routed design,
// sparse design, empty fabric) and recomputes the BRAM margin under each
// ratio — showing precisely when the premise would erode (only for
// near-empty regions, which no verifier would ship as "the application").
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "bitstream/bitgen.hpp"
#include "bitstream/compress.hpp"

using namespace sacha;

namespace {

Bytes sample_content(const char* kind, std::size_t bytes) {
  if (std::string(kind) == "routed") {
    const auto device = fabric::DeviceModel::xc6vlx240t();
    const bitstream::BitGen gen(device);
    const auto image = gen.generate(
        fabric::FrameRange{2'088,
                           static_cast<std::uint32_t>(bytes / device.frame_bytes())},
        {"app", 1});
    Bytes out;
    for (const auto& f : image.frames) append(out, f.to_bytes());
    return out;
  }
  if (std::string(kind) == "sparse") {
    // 1/8 of the words carry logic, the rest are zero (lightly used region).
    Rng rng(5);
    Bytes out(bytes, 0);
    for (std::size_t i = 0; i + 4 <= bytes; i += 32) {
      out[i] = static_cast<std::uint8_t>(rng.next_u64());
      out[i + 1] = static_cast<std::uint8_t>(rng.next_u64());
    }
    return out;
  }
  return Bytes(bytes, 0);  // empty fabric
}

void print_sweep() {
  benchutil::print_title("Compression vs the bounded-memory premise");
  const auto device = fabric::DeviceModel::xc6vlx240t();
  const double partial =
      static_cast<double>(device.bitstream_bytes(fabric::kVirtex6DynamicFrames));
  const double bram =
      static_cast<double>(fabric::bram_capacity_bytes({.bram18 = 760}));

  std::printf("partial bitstream: %.2f MB; DynPart BRAM: %.2f MB\n\n",
              partial / 1e6, bram / 1e6);
  std::printf("%-10s %10s %10s %16s %10s\n", "content", "lz ratio", "rle ratio",
              "compressed (MB)", "premise");
  for (const char* kind : {"routed", "sparse", "empty"}) {
    const Bytes sample = sample_content(kind, 648'000);  // 2,000 frames
    const double lz =
        bitstream::compression_ratio(sample.size(),
                                     bitstream::lz_compress(sample).size());
    const double rle =
        bitstream::compression_ratio(sample.size(),
                                     bitstream::rle_compress(sample).size());
    const double best = std::min(lz, rle);
    const double compressed_mb = partial * best / 1e6;
    std::printf("%-10s %10.3f %10.3f %15.2f %11s\n", kind, lz, rle,
                compressed_mb, compressed_mb * 1e6 > bram ? "holds" : "ERODES");
  }
  std::printf("\nRouted-design content is effectively incompressible, so the\n"
              "bounded-memory argument survives an adversary with a perfect\n"
              "decompressor; only near-empty regions would fit — and an empty\n"
              "region is not an application worth attesting.\n");
}

void BM_LzCompressFrameStream(benchmark::State& state) {
  const Bytes sample = sample_content("routed", 64'800);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitstream::lz_compress(sample).size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample.size()));
}
BENCHMARK(BM_LzCompressFrameStream)->Unit(benchmark::kMillisecond);

void BM_LzDecompress(benchmark::State& state) {
  const Bytes sample = sample_content("sparse", 64'800);
  const Bytes compressed = bitstream::lz_compress(sample);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bitstream::lz_decompress(compressed).ok());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sample.size()));
}
BENCHMARK(BM_LzDecompress)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
