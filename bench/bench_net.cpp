// bench_net — wallclock fleet benchmark over real loopback sockets.
//
// Two gates, both enforced by exit code so CI fails loudly:
//   1. Bit-identity: a 16-member mixed fleet attested over TCP must match
//      the in-process SwarmSchedule::kMultiplexed oracle verdict-for-
//      verdict and MAC-for-MAC.
//   2. Scale: the sweep must sustain >= 500 concurrent prover connections
//      on loopback with every session completing.
//
// The sweep opens {64, 256, 512} connections at once against one attestd
// and records attestations/sec plus p50/p99 session latency into
// BENCH_net.json (bench_util schema, diffable across PRs).
#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "core/swarm.hpp"
#include "net/attest_client.hpp"
#include "net/attest_server.hpp"
#include "net/tcp.hpp"

using namespace sacha;

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t at = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[at];
}

/// Gate 1: loopback verdicts and MACs bit-identical to the multiplexed
/// in-process engine on a 16-member mixed fleet with two tampered members.
bool run_identity_gate(net::AttestServer& server) {
  net::FleetSpec spec;
  spec.mixed = true;
  constexpr std::size_t kMembers = 16;
  const std::set<std::size_t> tampered = {1, 3};

  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> swarm;
  for (std::size_t i = 0; i < kMembers; ++i) {
    envs.push_back(
        net::member_env(net::member_scale(spec, i), spec.base_seed + i));
    verifiers.push_back(envs.back().make_verifier());
    provers.push_back(envs.back().make_prover());
  }
  for (std::size_t i = 0; i < kMembers; ++i) {
    core::SwarmMember member{net::member_id(i), &verifiers[i], &provers[i],
                             {}};
    if (tampered.count(i) > 0) {
      member.hooks.after_config = [](core::SachaProver& p) {
        bitstream::Frame f = p.memory().config_frame(5);
        f.flip_bit(7);
        p.memory().write_frame(5, f);
      };
    }
    swarm.push_back(std::move(member));
  }
  core::SwarmOptions options;
  options.session = envs.front().session_options;
  options.session.seed = spec.session_seed;
  options.schedule = core::SwarmSchedule::kMultiplexed;
  options.retry_budget = 0;
  const core::SwarmReport oracle = core::attest_swarm(swarm, options);

  net::LoadOptions load;
  load.host = "127.0.0.1";
  load.port = server.port();
  load.fleet = spec;
  load.members = kMembers;
  load.tampered = tampered;
  load.timeout_ms = 60000;
  const net::LoadResult result = net::run_load(load);

  if (!result.all_completed()) {
    std::fprintf(stderr, "identity gate: only %zu/%zu completed\n",
                 result.completed, result.members.size());
    return false;
  }
  for (std::size_t i = 0; i < kMembers; ++i) {
    const core::SwarmMemberResult& want = oracle.members[i];
    const net::MemberOutcome& got = result.members[i];
    const bool verdict_match =
        got.report.protocol_ok == want.verdict.protocol_ok &&
        got.report.mac_ok == want.verdict.mac_ok &&
        got.report.config_ok == want.verdict.config_ok &&
        got.report.failure == want.failure;
    const bool mac_match = got.client_mac.has_value() &&
                           want.mac.has_value() &&
                           *got.client_mac == *want.mac;
    if (!verdict_match || !mac_match) {
      std::fprintf(stderr,
                   "identity gate: member %zu diverged "
                   "(verdict %s, mac %s)\n",
                   i, verdict_match ? "ok" : "MISMATCH",
                   mac_match ? "ok" : "MISMATCH");
      return false;
    }
  }
  std::printf("identity gate      : 16-member mixed fleet bit-identical to "
              "kMultiplexed (%zu attested, 2 tampered caught)\n",
              result.attested);
  return true;
}

}  // namespace

int main() {
  net::AttestServerOptions server_options;
  server_options.session_timeout_ms = 120000;
  net::AttestServer server(server_options);
  Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_net: %s\n", started.message().c_str());
    return 1;
  }
  std::printf("bench_net: attestd on 127.0.0.1:%u (%s), pool auto\n",
              server.port(), server.using_epoll() ? "epoll" : "poll");

  bool gates_ok = run_identity_gate(server);

  std::vector<benchutil::BenchRecord> records;
  std::size_t peak_seen = 0;
  std::printf("\n%8s %12s %14s %12s %12s\n", "conns", "completed",
              "attest/s", "p50 ms", "p99 ms");
  for (const std::size_t conns : {std::size_t{64}, std::size_t{256},
                                  std::size_t{512}}) {
    net::LoadOptions load;
    load.host = "127.0.0.1";
    load.port = server.port();
    load.members = conns;
    load.concurrency = 0;  // all at once: the concurrent-connection sweep
    load.timeout_ms = 120000;
    const net::LoadResult result = net::run_load(load);

    std::vector<double> latencies_ms;
    for (const net::MemberOutcome& m : result.members) {
      if (m.completed) {
        latencies_ms.push_back(static_cast<double>(m.latency_ns) / 1e6);
      }
    }
    const double seconds = static_cast<double>(result.wall_ns) / 1e9;
    const double rate =
        seconds > 0 ? static_cast<double>(result.completed) / seconds : 0;
    const double p50 = percentile(latencies_ms, 0.50);
    const double p99 = percentile(latencies_ms, 0.99);
    peak_seen = std::max(peak_seen, result.peak_concurrent);
    std::printf("%8zu %12zu %14.1f %12.3f %12.3f\n", conns, result.completed,
                rate, p50, p99);

    if (!result.all_completed()) {
      std::fprintf(stderr, "scale gate: %zu/%zu completed at %zu conns\n",
                   result.completed, result.members.size(), conns);
      gates_ok = false;
    }
    const std::string tag = "net/" + std::to_string(conns) + "conns";
    records.push_back({tag, "attestations_per_s", rate, "1/s"});
    records.push_back({tag, "session_p50", p50, "ms"});
    records.push_back({tag, "session_p99", p99, "ms"});
    records.push_back({tag, "peak_concurrent",
                       static_cast<double>(result.peak_concurrent), "conns"});
  }

  const net::AttestServerStats stats = server.stats();
  records.push_back({"net/server", "verify_batches",
                     static_cast<double>(stats.verify_batches), "count"});
  records.push_back({"net/server", "verify_steals",
                     static_cast<double>(stats.verify_steals), "count"});
  records.push_back({"net/server", "peak_connections",
                     static_cast<double>(stats.peak_connections), "conns"});
  server.stop();

  if (peak_seen < 500) {
    std::fprintf(stderr,
                 "scale gate: peak concurrent connections %zu < 500\n",
                 peak_seen);
    gates_ok = false;
  } else {
    std::printf("\nscale gate         : sustained %zu concurrent prover "
                "connections\n",
                peak_seen);
  }

  if (!benchutil::write_bench_json("BENCH_net.json", records)) {
    std::fprintf(stderr, "bench_net: failed to write BENCH_net.json\n");
    return 1;
  }
  std::printf("wrote BENCH_net.json (%zu records)\n", records.size());
  return gates_ok ? 0 : 1;
}
