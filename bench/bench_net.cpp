// bench_net — wallclock fleet benchmark over real loopback sockets.
//
// Four gates, all enforced by exit code so CI fails loudly:
//   1. Bit-identity: a 16-member mixed fleet attested over TCP must match
//      the in-process SwarmSchedule::kMultiplexed oracle verdict-for-
//      verdict and MAC-for-MAC — with telemetry off AND with telemetry on
//      at full sampling (trace fields must never perturb the MAC path).
//   2. Merged timeline: a sampled session must yield one cross-process
//      timeline — prover-side and verifier-side phase spans under one
//      TraceId — exported to TRACE_net.json (chrome://tracing).
//   3. Scale: the sweep must sustain >= 500 concurrent prover connections
//      on loopback with every session completing.
//   4. Overhead: 1% head sampling with counters on must keep 512-conn
//      throughput within 2% of the telemetry-off baseline (best of 3 each).
//
// The sweep opens {64, 256, 512} connections at once against one attestd
// and records attestations/sec plus p50/p99/p999 session latency into
// BENCH_net.json (bench_util schema, diffable across PRs).
#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "bench_util.hpp"
#include "core/swarm.hpp"
#include "net/attest_client.hpp"
#include "net/attest_server.hpp"
#include "net/tcp.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace sacha;

namespace {

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t at = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[at];
}

/// Gate 1: loopback verdicts and MACs bit-identical to the multiplexed
/// in-process engine on a 16-member mixed fleet with two tampered members.
/// Run twice — telemetry off and telemetry on at full sampling — so a
/// divergence introduced by the trace plumbing trips the same oracle.
bool run_identity_gate(net::AttestServer& server, const char* label,
                       double trace_sample) {
  net::FleetSpec spec;
  spec.mixed = true;
  constexpr std::size_t kMembers = 16;
  const std::set<std::size_t> tampered = {1, 3};

  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> swarm;
  for (std::size_t i = 0; i < kMembers; ++i) {
    envs.push_back(
        net::member_env(net::member_scale(spec, i), spec.base_seed + i));
    verifiers.push_back(envs.back().make_verifier());
    provers.push_back(envs.back().make_prover());
  }
  for (std::size_t i = 0; i < kMembers; ++i) {
    core::SwarmMember member{net::member_id(i), &verifiers[i], &provers[i],
                             {}};
    if (tampered.count(i) > 0) {
      member.hooks.after_config = [](core::SachaProver& p) {
        bitstream::Frame f = p.memory().config_frame(5);
        f.flip_bit(7);
        p.memory().write_frame(5, f);
      };
    }
    swarm.push_back(std::move(member));
  }
  core::SwarmOptions options;
  options.session = envs.front().session_options;
  options.session.seed = spec.session_seed;
  options.schedule = core::SwarmSchedule::kMultiplexed;
  options.retry_budget = 0;
  const core::SwarmReport oracle = core::attest_swarm(swarm, options);

  net::LoadOptions load;
  load.host = "127.0.0.1";
  load.port = server.port();
  load.fleet = spec;
  load.members = kMembers;
  load.tampered = tampered;
  load.timeout_ms = 60000;
  load.trace_sample = trace_sample;
  const net::LoadResult result = net::run_load(load);

  if (!result.all_completed()) {
    std::fprintf(stderr, "identity gate (%s): only %zu/%zu completed\n",
                 label, result.completed, result.members.size());
    return false;
  }
  for (std::size_t i = 0; i < kMembers; ++i) {
    const core::SwarmMemberResult& want = oracle.members[i];
    const net::MemberOutcome& got = result.members[i];
    const bool verdict_match =
        got.report.protocol_ok == want.verdict.protocol_ok &&
        got.report.mac_ok == want.verdict.mac_ok &&
        got.report.config_ok == want.verdict.config_ok &&
        got.report.failure == want.failure;
    const bool mac_match = got.client_mac.has_value() &&
                           want.mac.has_value() &&
                           *got.client_mac == *want.mac;
    if (!verdict_match || !mac_match) {
      std::fprintf(stderr,
                   "identity gate (%s): member %zu diverged "
                   "(verdict %s, mac %s)\n",
                   label, i, verdict_match ? "ok" : "MISMATCH",
                   mac_match ? "ok" : "MISMATCH");
      return false;
    }
  }
  std::printf("identity gate      : 16-member mixed fleet bit-identical to "
              "kMultiplexed (%zu attested, 2 tampered caught, %s)\n",
              result.attested, label);
  return true;
}

/// Gate 2: the spans drained after the full-sampling identity run must
/// contain at least one trace id carrying phase spans from BOTH sides of
/// the wire — the prover-side client and the verifier-side service — i.e.
/// one merged cross-process timeline per attestation. Also writes the
/// drained spans to TRACE_net.json for chrome://tracing.
bool run_trace_merge_gate() {
  const std::vector<obs::SpanRecord> records = obs::Tracer::global().drain();
  struct Sides {
    bool prover_phase = false;
    bool verifier_phase = false;
    bool prover_session = false;
    bool verifier_session = false;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, Sides> by_trace;
  for (const obs::SpanRecord& r : records) {
    if (!r.trace.valid()) continue;
    Sides& s = by_trace[{r.trace.hi, r.trace.lo}];
    for (const auto& [key, value] : r.args) {
      if (key != "side") continue;
      const bool phase = r.category == "phase";
      if (value == "prover") {
        (phase ? s.prover_phase : s.prover_session) = true;
      } else if (value == "verifier") {
        (phase ? s.verifier_phase : s.verifier_session) = true;
      }
    }
  }
  std::size_t merged = 0;
  for (const auto& [trace, sides] : by_trace) {
    if (sides.prover_phase && sides.verifier_phase && sides.prover_session &&
        sides.verifier_session) {
      ++merged;
    }
  }
  if (!obs::write_text_file("TRACE_net.json",
                            obs::chrome_trace_json(records))) {
    std::fprintf(stderr, "trace gate: failed to write TRACE_net.json\n");
    return false;
  }
  if (merged == 0) {
    std::fprintf(stderr,
                 "trace gate: no merged timeline (%zu spans, %zu trace ids, "
                 "none with phase spans from both sides)\n",
                 records.size(), by_trace.size());
    return false;
  }
  std::printf("trace gate         : %zu merged cross-process timelines "
              "(%zu spans) -> TRACE_net.json\n",
              merged, records.size());
  return true;
}

struct SweepPoint {
  std::size_t conns = 0;
  std::size_t completed = 0;
  bool all_completed = false;
  double rate = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  std::size_t peak = 0;
};

SweepPoint run_sweep_point(net::AttestServer& server, std::size_t conns,
                           double trace_sample) {
  net::LoadOptions load;
  load.host = "127.0.0.1";
  load.port = server.port();
  load.members = conns;
  load.concurrency = 0;  // all at once: the concurrent-connection sweep
  load.timeout_ms = 120000;
  load.trace_sample = trace_sample;
  const net::LoadResult result = net::run_load(load);

  SweepPoint point;
  point.conns = conns;
  point.completed = result.completed;
  point.all_completed = result.all_completed();
  std::vector<double> latencies_ms;
  for (const net::MemberOutcome& m : result.members) {
    if (m.completed) {
      latencies_ms.push_back(static_cast<double>(m.latency_ns) / 1e6);
    }
  }
  const double seconds = static_cast<double>(result.wall_ns) / 1e9;
  point.rate =
      seconds > 0 ? static_cast<double>(result.completed) / seconds : 0;
  point.p50_ms = percentile(latencies_ms, 0.50);
  point.p99_ms = percentile(latencies_ms, 0.99);
  point.p999_ms = percentile(latencies_ms, 0.999);
  point.peak = result.peak_concurrent;
  return point;
}

}  // namespace

int main() {
  net::AttestServerOptions server_options;
  server_options.session_timeout_ms = 120000;
  net::AttestServer server(server_options);
  Status started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench_net: %s\n", started.message().c_str());
    return 1;
  }
  std::printf("bench_net: attestd on 127.0.0.1:%u (%s), pool auto\n",
              server.port(), server.using_epoll() ? "epoll" : "poll");

  bool gates_ok = run_identity_gate(server, "obs off", -1.0);

  // Same fleet with telemetry on at full sampling: the verdicts and MACs
  // must hit the same oracle, and the drained spans must merge into
  // cross-process timelines.
  obs::set_enabled(true);
  obs::Tracer::global().clear();
  gates_ok = run_identity_gate(server, "obs on, sample 1.0", 1.0) && gates_ok;
  gates_ok = run_trace_merge_gate() && gates_ok;
  obs::set_enabled(false);

  std::vector<benchutil::BenchRecord> records;
  std::size_t peak_seen = 0;
  bool all_completed = true;
  std::printf("\n%8s %12s %14s %12s %12s %12s\n", "conns", "completed",
              "attest/s", "p50 ms", "p99 ms", "p999 ms");
  const auto report_point = [&](const SweepPoint& point) {
    peak_seen = std::max(peak_seen, point.peak);
    all_completed = all_completed && point.all_completed;
    std::printf("%8zu %12zu %14.1f %12.3f %12.3f %12.3f\n", point.conns,
                point.completed, point.rate, point.p50_ms, point.p99_ms,
                point.p999_ms);
    if (!point.all_completed) {
      std::fprintf(stderr, "scale gate: %zu/%zu completed at %zu conns\n",
                   point.completed, point.conns, point.conns);
      gates_ok = false;
    }
    const std::string tag = "net/" + std::to_string(point.conns) + "conns";
    records.push_back({tag, "attestations_per_s", point.rate, "1/s"});
    records.push_back({tag, "session_p50", point.p50_ms, "ms"});
    records.push_back({tag, "session_p99", point.p99_ms, "ms"});
    records.push_back({tag, "session_p999", point.p999_ms, "ms"});
    records.push_back({tag, "peak_concurrent",
                       static_cast<double>(point.peak), "conns"});
  };
  for (const std::size_t conns : {std::size_t{64}, std::size_t{256}}) {
    report_point(run_sweep_point(server, conns, -1.0));
  }

  // 512 conns doubles as the overhead gate: best-of-3 with telemetry off
  // vs best-of-3 with counters + 1% head sampling on. Best-of-N damps the
  // loopback scheduler noise that a single pass would alias into the 2%
  // budget.
  SweepPoint best_off;
  for (int pass = 0; pass < 3; ++pass) {
    const SweepPoint point = run_sweep_point(server, 512, -1.0);
    if (point.rate > best_off.rate || pass == 0) best_off = point;
    all_completed = all_completed && point.all_completed;
  }
  report_point(best_off);

  obs::set_enabled(true);
  SweepPoint best_on;
  for (int pass = 0; pass < 3; ++pass) {
    const SweepPoint point = run_sweep_point(server, 512, 0.01);
    if (point.rate > best_on.rate || pass == 0) best_on = point;
    all_completed = all_completed && point.all_completed;
  }
  obs::set_enabled(false);

  const double overhead_pct =
      best_off.rate > 0
          ? (best_off.rate - best_on.rate) / best_off.rate * 100.0
          : 0.0;
  records.push_back({"net/obs", "rate_obs_off", best_off.rate, "1/s"});
  records.push_back({"net/obs", "rate_obs_on_1pct", best_on.rate, "1/s"});
  records.push_back({"net/obs", "overhead_pct", overhead_pct, "%"});
  if (!best_on.all_completed || overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "overhead gate: 512 conns at 1%% sampling ran %.2f%% slower "
                 "than obs-off (%.1f vs %.1f attest/s, budget 2%%)\n",
                 overhead_pct, best_on.rate, best_off.rate);
    gates_ok = false;
  } else {
    std::printf("overhead gate      : 1%% sampling costs %.2f%% at 512 conns "
                "(%.1f vs %.1f attest/s, budget 2%%)\n",
                overhead_pct, best_on.rate, best_off.rate);
  }

  const net::AttestServerStats stats = server.stats();
  records.push_back({"net/server", "verify_batches",
                     static_cast<double>(stats.verify_batches), "count"});
  records.push_back({"net/server", "verify_steals",
                     static_cast<double>(stats.verify_steals), "count"});
  records.push_back({"net/server", "peak_connections",
                     static_cast<double>(stats.peak_connections), "conns"});
  server.stop();

  if (peak_seen < 500) {
    std::fprintf(stderr,
                 "scale gate: peak concurrent connections %zu < 500\n",
                 peak_seen);
    gates_ok = false;
  } else {
    std::printf("\nscale gate         : sustained %zu concurrent prover "
                "connections\n",
                peak_seen);
  }

  if (!benchutil::write_bench_json("BENCH_net.json", records)) {
    std::fprintf(stderr, "bench_net: failed to write BENCH_net.json\n");
    return 1;
  }
  std::printf("wrote BENCH_net.json (%zu records)\n", records.size());
  return gates_ok ? 0 : 1;
}
