// E3 — Table 4: total timing of the SACHa protocol.
//
// Runs the full-scale protocol twice: over the ideal channel (reproducing
// the paper's *theoretical* 1.443 s) and over the calibrated lab channel
// (reproducing the *measured* 28.5 s, which the paper attributes to
// per-command network latency). Prints the counts-times-durations rows of
// Table 4 and the two headline totals.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.hpp"

using namespace sacha;

namespace {

struct PaperRow {
  const char* key;
  std::uint64_t paper_count;
  const char* paper_total;  // as printed in the paper
};

const PaperRow kPaper[] = {
    {core::actions::kA1, 26'400, "0.234 s"},
    {core::actions::kA2, 26'400, "0.050 s"},
    {core::actions::kA3, 28'488, "0.388 s"},
    {core::actions::kA4, 28'488, "0.685 s"},
    {core::actions::kA5, 1, "0.120 us"},
    {core::actions::kA6, 28'488, "3.646 ms"},
    {core::actions::kA7, 1, "0.136 us"},
    {core::actions::kA8, 28'488, "0.083 s"},
    {core::actions::kA9, 1, "0.344 us"},
    {core::actions::kA10, 1, "0.464 us"},
};

void print_table4() {
  const auto wall0 = std::chrono::steady_clock::now();
  const auto ideal = benchutil::run_virtex6_session(net::ChannelParams::ideal());
  const double ideal_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  const auto lab = benchutil::run_virtex6_session(net::ChannelParams::lab());

  benchutil::print_title("Table 4: total timing of the SACHa protocol");
  std::printf("(full XC6VLX240T sessions; ideal verdict: %s, lab verdict: %s)\n\n",
              ideal.verdict.ok() ? "attested" : "FAILED",
              lab.verdict.ok() ? "attested" : "FAILED");
  std::printf("%-36s %9s %9s %14s %12s\n", "Action", "count", "paper",
              "model total", "paper total");
  for (const PaperRow& row : kPaper) {
    const double total_s = sim::to_seconds(ideal.ledger.total(row.key));
    std::printf("%-36s %9llu %9llu %13.6fs %12s\n", row.key,
                static_cast<unsigned long long>(ideal.ledger.count(row.key)),
                static_cast<unsigned long long>(row.paper_count),
                total_s, row.paper_total);
  }
  std::printf("\n%-44s %10.3f s   (paper: 1.443 s)\n",
              "Theoretical duration (sum of A1-A10):",
              sim::to_seconds(ideal.theoretical_time));
  std::printf("%-44s %10.3f s   (paper: 28.5 s)\n",
              "Measured duration (lab channel):",
              sim::to_seconds(lab.total_time));
  std::printf("%-44s %10.3f s\n",
              "  of which per-command network latency:",
              sim::to_seconds(lab.ledger.total(core::actions::kNetLatency)));
  std::printf("\nJTAG reference from the paper: a direct full configuration\n"
              "takes ~28 s, i.e. the attested remote update costs about the\n"
              "same as a bench cable in the authors' lab.\n");

  // §5.2.2 refresh sessions: nonce-only reconfiguration, full readback.
  attacks::AttackEnv env = attacks::AttackEnv::virtex6(2019);
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  env.session_options.channel = net::ChannelParams::lab();
  const auto full = core::run_attestation(verifier, prover, env.session_options);
  verifier.set_refresh_only(true);
  const auto refresh = core::run_attestation(verifier, prover, env.session_options);
  std::printf("\nNonce-refresh session (Section 5.2.2): %s\n",
              refresh.verdict.ok() ? "attested" : "FAILED");
  std::printf("  full session    : %8.3f s lab, %6.1f MB shipped\n",
              sim::to_seconds(full.total_time),
              static_cast<double>(full.bytes_to_prover) / 1e6);
  std::printf("  refresh session : %8.3f s lab, %6.1f MB shipped  (%.1fx faster)\n",
              sim::to_seconds(refresh.total_time),
              static_cast<double>(refresh.bytes_to_prover) / 1e6,
              static_cast<double>(full.total_time) /
                  static_cast<double>(refresh.total_time));

  // Perf-trajectory record: simulated reproduction numbers plus the host
  // wall-clock of a full-scale session (the number the crypto fast path and
  // the ICAP readback-reserve fix move).
  benchutil::write_bench_json(
      "BENCH_protocol.json",
      {
          {"bench_table4_protocol", "theoretical_duration",
           sim::to_seconds(ideal.theoretical_time), "s"},
          {"bench_table4_protocol", "lab_duration",
           sim::to_seconds(lab.total_time), "s"},
          {"bench_table4_protocol", "full_session_host_wallclock", ideal_wall_s,
           "s"},
          {"bench_table4_protocol", "full_session_mac_bytes",
           static_cast<double>(fabric::kVirtex6TotalFrames) * 324, "bytes"},
      });
}

void BM_FullSessionSmallDevice(benchmark::State& state) {
  for (auto _ : state) {
    attacks::AttackEnv env = attacks::AttackEnv::small();
    core::SachaVerifier verifier = env.make_verifier();
    core::SachaProver prover = env.make_prover();
    const auto report = core::run_attestation(verifier, prover);
    benchmark::DoNotOptimize(report.verdict.ok());
  }
}
BENCHMARK(BM_FullSessionSmallDevice)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
