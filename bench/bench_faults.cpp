// E17 (extension) — fault-matrix robustness sweep.
//
// Sweeps the self-healing swarm supervisor across a burst-loss × device-
// crash × ICAP-stall matrix on small reliable-channel fleets and checks
// the PR's two contracts:
//
//   1. Convergence: in every cell, every member either attests (possibly
//      healed by a fresh-nonce re-attestation) or is quarantined with a
//      typed cause — no member is left undecided.
//   2. Bit-identity: the zero-fault cell, run through the supervisor,
//      produces member-for-member identical MACs and simulated durations
//      to the pre-supervisor one-shot attest_swarm.
//
// Exit status is the gate (0 = both contracts hold), so CI can run this
// binary directly. Emits BENCH_faults.json with the per-cell outcome.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <deque>

#include "bench_util.hpp"
#include "core/swarm.hpp"
#include "fault/injector.hpp"

using namespace sacha;

namespace {

constexpr std::size_t kFleetSize = 4;

struct Fleet {
  explicit Fleet(std::uint64_t base_seed = 4200) {
    for (std::size_t i = 0; i < kFleetSize; ++i) {
      envs.push_back(attacks::AttackEnv::small(base_seed + i));
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::size_t i = 0; i < kFleetSize; ++i) {
      members.push_back(core::SwarmMember{"node-" + std::to_string(i),
                                          &verifiers[i], &provers[i], {}});
    }
  }
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> members;
};

struct Cell {
  const char* name;
  double burst_enter;  // 0 = no burst loss
  bool crash;          // member 1 crashes mid-session (first attempt)
  bool stall;          // member 2's ICAP stalls (first attempt)
  /// Every member shares ONE Gilbert–Elliott uplink chain (fault-plan
  /// `uplink=` clause): co-located members burst together instead of
  /// independently.
  bool correlated_uplink = false;
};

struct CellOutcome {
  core::SwarmReport report;
  bool converged = false;
  bool all_terminal_ok = false;  // attested everywhere (recoverable cell)
};

CellOutcome run_cell(const Cell& cell) {
  // Cell isolation: each cell's uplink groups get fresh shared chains.
  fault::reset_uplink_bursts();
  Fleet fleet;
  std::deque<fault::FaultInjector> injectors;
  for (std::size_t i = 0; i < kFleetSize; ++i) {
    fault::FaultPlan plan;
    if (cell.burst_enter > 0.0) {
      plan.burst = {cell.burst_enter, 0.5, 0.0, 1.0};
    }
    if (cell.correlated_uplink) {
      plan.uplink = fault::UplinkFault{7, {0.05, 0.5, 0.0, 1.0}};
    }
    if (cell.crash && i == 1) plan.crash = fault::CrashFault{6, 2};
    if (cell.stall && i == 2) plan.stall = fault::StallFault{4, 3};
    injectors.emplace_back(plan, 4200 + i);
    fault::FaultInjector& injector = injectors.back();
    const bool device_fault = plan.crash.has_value() || plan.stall.has_value();
    fleet.members[i].configure = [&injector, device_fault](
                                     core::SessionOptions& options,
                                     core::SessionHooks& hooks,
                                     std::uint32_t attempt) {
      // Channel faults are environmental (every attempt); the one-shot
      // device faults hit only the first session, so a fresh-nonce retry
      // can heal the member.
      if (attempt == 0 || !device_fault) injector.arm(options, hooks);
    };
  }
  core::SwarmOptions options;
  options.session.reliable = true;
  options.session.max_retries = 8;
  options.retry_budget = 2;
  CellOutcome out;
  out.report = core::attest_swarm(fleet.members, options);
  out.converged = out.report.converged();
  out.all_terminal_ok = out.report.all_attested();
  return out;
}

/// The bit-identity gate: zero-fault supervised run vs the historical
/// one-shot attest_swarm, member for member.
bool zero_fault_bit_identical() {
  Fleet legacy_fleet;
  core::SessionOptions session;
  session.reliable = true;
  const auto legacy = core::attest_swarm(
      legacy_fleet.members, core::SwarmSchedule::kParallel, session);

  Fleet supervised_fleet;
  core::SwarmOptions options;
  options.session = session;
  options.retry_budget = 2;  // granted but never needed
  const auto supervised = core::attest_swarm(supervised_fleet.members, options);

  if (legacy.members.size() != supervised.members.size()) return false;
  if (supervised.reattempts != 0 || supervised.healed != 0 ||
      supervised.quarantined != 0) {
    return false;
  }
  for (std::size_t i = 0; i < legacy.members.size(); ++i) {
    const auto& a = legacy.members[i];
    const auto& b = supervised.members[i];
    if (!a.verdict.ok() || !b.verdict.ok()) return false;
    if (!a.mac || !b.mac || !(*a.mac == *b.mac)) return false;
    if (a.duration != b.duration) return false;
    if (a.retransmissions != b.retransmissions) return false;
  }
  return legacy.makespan == supervised.makespan &&
         legacy.total_work == supervised.total_work;
}

/// Runs the matrix; returns true iff every gate holds.
bool fault_matrix_and_emit() {
  benchutil::print_title(
      "Fault matrix: burst loss x crash x stall, supervised fleets");
  const Cell cells[] = {
      {"zero_fault", 0.0, false, false},
      {"burst", 0.03, false, false},
      {"crash", 0.0, true, false},
      {"stall", 0.0, false, true},
      {"burst_crash", 0.03, true, false},
      {"burst_stall", 0.03, false, true},
      {"crash_stall", 0.0, true, true},
      {"burst_crash_stall", 0.03, true, true},
      {"uplink_correlated", 0.0, false, false, true},
      {"uplink_crash", 0.0, true, false, true},
  };
  std::printf("%20s %9s %7s %12s %6s %13s %8s\n", "cell", "attested",
              "healed", "quarantined", "lost", "retransmitted", "status");
  std::vector<benchutil::BenchRecord> records;
  bool all_converged = true;
  bool recoverable_all_attested = true;
  for (const Cell& cell : cells) {
    const CellOutcome out = run_cell(cell);
    all_converged = all_converged && out.converged;
    // Every cell in this matrix is recoverable by construction (bounded
    // burst loss on a reliable channel, crash that reboots, stall that
    // drains), so the supervisor must attest everyone.
    recoverable_all_attested = recoverable_all_attested && out.all_terminal_ok;
    const auto& r = out.report;
    std::printf("%20s %9zu %7zu %12zu %6llu %13llu %8s\n", cell.name,
                r.attested, r.healed, r.quarantined,
                static_cast<unsigned long long>(r.messages_lost),
                static_cast<unsigned long long>(r.retransmissions),
                out.converged ? (out.all_terminal_ok ? "ok" : "CONVERGED")
                              : "STUCK");
    const std::string prefix = std::string("cell_") + cell.name;
    records.push_back({"bench_faults", prefix + "_attested",
                       static_cast<double>(r.attested), "sessions"});
    records.push_back({"bench_faults", prefix + "_healed",
                       static_cast<double>(r.healed), "sessions"});
    records.push_back({"bench_faults", prefix + "_quarantined",
                       static_cast<double>(r.quarantined), "sessions"});
    records.push_back({"bench_faults", prefix + "_reattempts",
                       static_cast<double>(r.reattempts), "sessions"});
    records.push_back({"bench_faults", prefix + "_messages_lost",
                       static_cast<double>(r.messages_lost), "messages"});
    records.push_back({"bench_faults", prefix + "_retransmissions",
                       static_cast<double>(r.retransmissions), "messages"});
    records.push_back({"bench_faults", prefix + "_backoff_wait",
                       sim::to_seconds(r.backoff_wait), "s"});
  }

  const bool identical = zero_fault_bit_identical();
  std::printf("\nzero-fault supervised == one-shot baseline: %s\n",
              identical ? "bit-identical" : "MISMATCH");
  records.push_back({"bench_faults", "zero_fault_bit_identical",
                     identical ? 1.0 : 0.0, "bool"});
  records.push_back({"bench_faults", "all_cells_converged",
                     all_converged ? 1.0 : 0.0, "bool"});
  records.push_back({"bench_faults", "recoverable_cells_all_attested",
                     recoverable_all_attested ? 1.0 : 0.0, "bool"});
  benchutil::write_bench_json("BENCH_faults.json", records);

  if (!all_converged) std::printf("GATE FAILED: a cell did not converge\n");
  if (!recoverable_all_attested) {
    std::printf("GATE FAILED: a recoverable cell quarantined a member\n");
  }
  if (!identical) {
    std::printf("GATE FAILED: supervisor changed the zero-fault report\n");
  }
  return all_converged && recoverable_all_attested && identical;
}

void BM_SupervisedFaultyFleet(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_cell({"burst_crash_stall", 0.03, true, true}).report.attested);
  }
}
BENCHMARK(BM_SupervisedFaultyFleet)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool gates_ok = fault_matrix_and_emit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gates_ok ? 0 : 1;
}
