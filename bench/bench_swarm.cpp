// E13 (extension) — swarm attestation scaling.
//
// Fleet-size sweep under serial and parallel scheduling at lab-network
// latency, plus isolation of a compromised minority. Shows the §4.2
// motivation quantitatively: per-device SACHa composes linearly in total
// work, and parallel scheduling keeps the makespan flat.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <deque>
#include <thread>

#include "bench_util.hpp"
#include "core/swarm.hpp"

using namespace sacha;

namespace {

struct Fleet {
  explicit Fleet(std::size_t n, std::uint64_t base_seed = 900) {
    for (std::size_t i = 0; i < n; ++i) {
      envs.push_back(attacks::AttackEnv::small(base_seed + i));
      verifiers.push_back(envs.back().make_verifier());
      provers.push_back(envs.back().make_prover());
    }
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(core::SwarmMember{"node-" + std::to_string(i),
                                          &verifiers[i], &provers[i], {}});
    }
  }
  std::deque<attacks::AttackEnv> envs;
  std::deque<core::SachaVerifier> verifiers;
  std::deque<core::SachaProver> provers;
  std::vector<core::SwarmMember> members;
};

void print_sweep() {
  benchutil::print_title("Swarm attestation: fleet-size sweep (lab channel)");
  core::SessionOptions options;
  options.channel = net::ChannelParams::lab();
  core::SwarmOptions mux_options;
  mux_options.session = options;
  mux_options.schedule = core::SwarmSchedule::kMultiplexed;
  mux_options.engine.pool_size = 4;
  mux_options.retry_budget = 0;
  std::printf("%8s %16s %16s %15s %10s %14s %8s\n", "devices",
              "serial makespan", "parallel makespan", "mux makespan (4)",
              "overlap", "total work", "models");
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u}) {
    Fleet serial_fleet(n);
    const auto serial =
        core::attest_swarm(serial_fleet.members, core::SwarmSchedule::kSerial,
                           options);
    Fleet parallel_fleet(n);
    const auto parallel = core::attest_swarm(
        parallel_fleet.members, core::SwarmSchedule::kParallel, options);
    Fleet mux_fleet(n);
    const auto mux = core::attest_swarm(mux_fleet.members, mux_options);
    std::printf("%8zu %14.3f s %14.3f s %13.3f s %9.2fx %12.3f s %8zu%s\n", n,
                sim::to_seconds(serial.makespan),
                sim::to_seconds(parallel.makespan),
                sim::to_seconds(mux.engine.makespan),
                mux.engine.overlap_efficiency,
                sim::to_seconds(serial.total_work),
                serial.distinct_golden_models,
                serial.all_attested() && parallel.all_attested() &&
                        mux.all_attested()
                    ? ""
                    : "  [FAILURES]");
  }
  std::printf("=> one golden model regardless of fleet size; the multiplexed "
              "engine packs N sessions\n   onto 4 verify lanes and overlaps "
              "channel latency with verify compute.\n");

  // Compromised-minority isolation.
  Fleet fleet(8);
  for (std::size_t i : {2u, 5u}) {
    fleet.members[i].hooks.after_config = [](core::SachaProver& p) {
      bitstream::Frame f = p.memory().config_frame(7);
      f.flip_bit(3);
      p.memory().write_frame(7, f);
    };
  }
  const auto report = core::attest_swarm(fleet.members);
  std::printf("\ncompromised-minority run (8 devices, 2 tampered): "
              "%zu attested, failed:",
              report.attested);
  for (const auto& id : report.failed_ids()) std::printf(" %s", id.c_str());
  std::printf("\n=> compromise is isolated per device; the aggregate never "
              "masks it.\n");
}

/// CI gate: at N=64 / pool=4 under lab latency the multiplexed engine must
/// (a) produce member reports bit-identical to thread-per-member kParallel
/// and (b) model a makespan at least 2x shorter than the thread-per-member
/// baseline packed onto the same 4 lanes. A breach fails the bench binary
/// (non-zero exit), which fails CI.
bool multiplexed_gate(std::vector<benchutil::BenchRecord>& records) {
  constexpr std::size_t kFleet = 64;
  constexpr std::size_t kPool = 4;
  core::SessionOptions session;
  session.channel = net::ChannelParams::lab();

  Fleet parallel_fleet(kFleet);
  const auto parallel = core::attest_swarm(
      parallel_fleet.members, core::SwarmSchedule::kParallel, session);

  const auto matches_parallel = [&parallel](const core::SwarmReport& mux,
                                            const char* label) {
    bool identical = parallel.members.size() == mux.members.size();
    for (std::size_t i = 0; identical && i < parallel.members.size(); ++i) {
      const auto& a = parallel.members[i];
      const auto& b = mux.members[i];
      identical = a.id == b.id && a.verdict.ok() == b.verdict.ok() &&
                  a.verdict.kind == b.verdict.kind && a.failure == b.failure &&
                  a.attempts == b.attempts && a.duration == b.duration &&
                  a.mac == b.mac && a.messages_lost == b.messages_lost &&
                  a.retransmissions == b.retransmissions &&
                  a.backoff_wait == b.backoff_wait;
      if (!identical) {
        std::printf("[gate] member %zu (%s) diverges between kParallel and "
                    "kMultiplexed (%s)\n", i, a.id.c_str(), label);
      }
    }
    return identical;
  };

  // Verify-batch-width sweep: the engine must return the same reports at
  // every interleave width, while host wall-clock and absorb occupancy land
  // in the JSON for the perf trajectory.
  core::SwarmOptions mux_options;
  mux_options.session = session;
  mux_options.schedule = core::SwarmSchedule::kMultiplexed;
  mux_options.engine.pool_size = kPool;
  mux_options.retry_budget = 0;
  bool identical = true;
  core::SwarmReport mux;
  std::printf("\n[gate] verify-batch width sweep (64 members, pool %zu):\n",
              kPool);
  for (const std::size_t width : {1u, 4u, 8u}) {
    Fleet mux_fleet(kFleet);
    mux_options.engine.verify_batch_width = width;
    auto report = core::attest_swarm(mux_fleet.members, mux_options);
    const std::string label = "width " + std::to_string(width);
    const bool match = matches_parallel(report, label.c_str());
    identical = identical && match;
    const double occupancy =
        report.engine.multi_absorb_calls > 0
            ? static_cast<double>(report.engine.multi_absorb_streams) /
                  static_cast<double>(report.engine.multi_absorb_calls)
            : 0.0;
    std::printf("[gate]   width %zu: host %.3f s, absorb occupancy %.2f, "
                "steals %llu, reports %s\n",
                width, static_cast<double>(report.engine.host_ns) / 1e9,
                occupancy,
                static_cast<unsigned long long>(report.engine.verify_steals),
                match ? "bit-identical" : "DIVERGED");
    const std::string prefix = "mux_width" + std::to_string(width);
    records.push_back({"bench_swarm", prefix + "_host_s",
                       static_cast<double>(report.engine.host_ns) / 1e9, "s"});
    records.push_back(
        {"bench_swarm", prefix + "_absorb_occupancy", occupancy, "streams"});
    records.push_back({"bench_swarm", prefix + "_verify_steals",
                       static_cast<double>(report.engine.verify_steals),
                       "steals"});
    if (width == 4) mux = std::move(report);
  }
  const double speedup =
      mux.engine.makespan > 0
          ? static_cast<double>(mux.engine.thread_per_member_makespan) /
                static_cast<double>(mux.engine.makespan)
          : 0.0;
  const bool fast_enough = speedup >= 2.0;
  std::printf("\n[gate] 64-member multiplexed fleet on %zu verify lanes: "
              "makespan %.3f s vs thread-per-member %.3f s (%.2fx), "
              "overlap %.2fx, reports %s\n",
              kPool, sim::to_seconds(mux.engine.makespan),
              sim::to_seconds(mux.engine.thread_per_member_makespan), speedup,
              mux.engine.overlap_efficiency,
              identical ? "bit-identical" : "DIVERGED");
  if (!fast_enough) {
    std::printf("[gate] FAIL: expected >= 2x makespan reduction\n");
  }
  records.push_back({"bench_swarm", "mux_makespan_64",
                     sim::to_seconds(mux.engine.makespan), "s"});
  records.push_back({"bench_swarm", "mux_thread_per_member_makespan_64",
                     sim::to_seconds(mux.engine.thread_per_member_makespan),
                     "s"});
  records.push_back({"bench_swarm", "mux_speedup_64", speedup, "x"});
  records.push_back({"bench_swarm", "mux_overlap_efficiency_64",
                     mux.engine.overlap_efficiency, "x"});
  records.push_back({"bench_swarm", "mux_pool_size",
                     static_cast<double>(mux.engine.pool_size), "threads"});
  records.push_back({"bench_swarm", "mux_bit_identical_64",
                     identical ? 1.0 : 0.0, "bool"});
  return identical && fast_enough;
}

/// Host wall-clock of a 16-member fleet under both schedules — the number
/// the attest_swarm worker pool moves. Emits BENCH_swarm.json, with the
/// gate's records appended.
void wallclock_sweep_and_emit(std::vector<benchutil::BenchRecord> records) {
  using clock = std::chrono::steady_clock;
  constexpr std::size_t kFleetSize = 16;

  Fleet serial_fleet(kFleetSize);
  const auto t0 = clock::now();
  const auto serial = core::attest_swarm(serial_fleet.members,
                                         core::SwarmSchedule::kSerial);
  const double serial_s = std::chrono::duration<double>(clock::now() - t0).count();

  Fleet parallel_fleet(kFleetSize);
  const auto t1 = clock::now();
  const auto parallel = core::attest_swarm(parallel_fleet.members,
                                           core::SwarmSchedule::kParallel);
  const double parallel_s =
      std::chrono::duration<double>(clock::now() - t1).count();

  const double speedup = parallel_s > 0 ? serial_s / parallel_s : 0.0;
  std::printf("\n16-member fleet host wall-clock: serial %.3f s, parallel "
              "%.3f s (%.2fx, %u hardware threads)\n",
              serial_s, parallel_s, speedup,
              std::thread::hardware_concurrency());

  // Transport health under loss: an 8-member fleet on a 10%-loss reliable
  // channel, supervised. The report's loss/retransmission/backoff totals
  // land in the JSON so the lossy trajectory is diffable across PRs.
  Fleet lossy_fleet(8);
  core::SwarmOptions lossy;
  lossy.session.channel = net::ChannelParams::lab();
  lossy.session.channel.loss_probability = 0.10;
  lossy.session.reliable = true;
  const auto lossy_report = core::attest_swarm(lossy_fleet.members, lossy);
  std::printf("lossy fleet (8 @ 10%% loss, reliable): %zu attested, %zu "
              "healed, %llu lost, %llu retransmitted, %.3f s backoff\n",
              lossy_report.attested, lossy_report.healed,
              static_cast<unsigned long long>(lossy_report.messages_lost),
              static_cast<unsigned long long>(lossy_report.retransmissions),
              sim::to_seconds(lossy_report.backoff_wait));

  const std::vector<benchutil::BenchRecord> wallclock_records = {
          {"bench_swarm", "serial_wallclock_16", serial_s, "s"},
          {"bench_swarm", "parallel_wallclock_16", parallel_s, "s"},
          {"bench_swarm", "parallel_speedup_16", speedup, "x"},
          {"bench_swarm", "hardware_threads",
           static_cast<double>(std::thread::hardware_concurrency()), "threads"},
          {"bench_swarm", "attested_16",
           static_cast<double>(serial.attested + parallel.attested), "sessions"},
          {"bench_swarm", "distinct_golden_models_16",
           static_cast<double>(serial.distinct_golden_models), "models"},
          {"bench_swarm", "golden_model_bytes_16",
           static_cast<double>(serial.golden_model_bytes), "B"},
          {"bench_swarm", "unshared_golden_model_bytes_16",
           static_cast<double>(serial.unshared_golden_model_bytes), "B"},
          {"bench_swarm", "retained_readback_bytes_16",
           static_cast<double>(serial.retained_readback_bytes), "B"},
          {"bench_swarm", "lossy_attested_8",
           static_cast<double>(lossy_report.attested), "sessions"},
          {"bench_swarm", "lossy_healed_8",
           static_cast<double>(lossy_report.healed), "sessions"},
          {"bench_swarm", "lossy_quarantined_8",
           static_cast<double>(lossy_report.quarantined), "sessions"},
          {"bench_swarm", "lossy_messages_lost_8",
           static_cast<double>(lossy_report.messages_lost), "messages"},
          {"bench_swarm", "lossy_retransmissions_8",
           static_cast<double>(lossy_report.retransmissions), "messages"},
          {"bench_swarm", "lossy_backoff_wait_8",
           sim::to_seconds(lossy_report.backoff_wait), "s"},
      };
  records.insert(records.end(), wallclock_records.begin(),
                 wallclock_records.end());
  benchutil::write_bench_json("BENCH_swarm.json", records);
}

void BM_SwarmParallel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Fleet fleet(n);
    benchmark::DoNotOptimize(
        core::attest_swarm(fleet.members, core::SwarmSchedule::kParallel)
            .attested);
  }
}
BENCHMARK(BM_SwarmParallel)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  std::vector<benchutil::BenchRecord> records;
  const bool gate_ok = multiplexed_gate(records);
  wallclock_sweep_and_emit(std::move(records));
  // With telemetry on (SACHA_OBS=1), export the merged fleet timeline of
  // everything above — per-member session spans on their worker-thread
  // lanes — as a Chrome trace_event file (chrome://tracing / Perfetto).
  if (obs::enabled()) {
    const char* out = std::getenv("SACHA_TRACE_OUT");
    const std::string path = out != nullptr ? out : "TRACE_swarm.json";
    if (obs::write_chrome_trace(path)) {
      std::printf("[trace] wrote %s\n", path.c_str());
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return gate_ok ? 0 : 1;
}
