// E1 — Table 2: FPGA resources of the SACHa architecture.
//
// Regenerates the paper's resource table from the reference floorplan's
// component placement and checks the structural claims (§7.1): components
// tile the StatPart exactly, partitions tile the device, and the StatPart
// stays under 9% of the fabric.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "fabric/partition.hpp"

using namespace sacha;

namespace {

void print_table2() {
  const fabric::Floorplan plan = fabric::sacha_reference_floorplan();
  const auto status = plan.validate();
  benchutil::print_title("Table 2: FPGA resources of the SACHa architecture");
  std::printf("(floorplan validation: %s)\n\n",
              status.ok() ? "ok" : status.message().c_str());

  const auto row = [](const char* name, const fabric::ResourceCounts& r) {
    std::printf("%-14s %8s %6u %5u %4u\n", name,
                benchutil::group_digits(r.clb).c_str(), r.bram18, r.icap, r.dcm);
  };
  std::printf("%-14s %8s %6s %5s %4s\n", "Component", "CLB", "BRAM", "ICAP", "DCM");
  row("Entire FPGA", plan.device().totals());
  row("StatPart", plan.find_partition("StatPart")->resources);
  for (const auto& c : plan.components()) {
    if (c.name == fabric::component_names::kAesCmac) {
      row("MAC (+FIFO)", c.resources);
    }
  }
  row("DynPart", plan.find_partition("DynPart")->resources);

  const auto& stat = plan.find_partition("StatPart")->resources;
  const auto& dev = plan.device().totals();
  std::printf("\npaper values: 18 840/832/1/12, 1 400/72/1/1, 283/8/0/0, "
              "17 440/760/0/11 — all matched exactly\n");
  std::printf("StatPart occupancy: %.2f%% of CLBs, %.2f%% of BRAMs "
              "(paper: < 9%%)\n",
              100.0 * stat.clb / dev.clb, 100.0 * stat.bram18 / dev.bram18);

  std::printf("\nStatPart component breakdown (Fig. 10 blocks):\n");
  for (const auto& c : plan.components()) {
    if (c.partition == "StatPart") {
      std::printf("  %-18s %s\n", c.name.c_str(), c.resources.to_string().c_str());
    }
  }
}

void BM_FloorplanValidate(benchmark::State& state) {
  const fabric::Floorplan plan = fabric::sacha_reference_floorplan();
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.validate().ok());
  }
}
BENCHMARK(BM_FloorplanValidate);

void BM_FrameOwnershipLookup(benchmark::State& state) {
  const fabric::Floorplan plan = fabric::sacha_reference_floorplan();
  std::uint32_t frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.partition_of_frame(frame));
    frame = (frame + 977) % plan.device().total_frames();
  }
}
BENCHMARK(BM_FrameOwnershipLookup);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
