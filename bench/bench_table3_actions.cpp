// E2 — Table 3: timing of the low-level protocol actions A1-A10.
//
// Runs one full attestation at proof-of-concept scale over the ideal
// channel and reports the per-action average durations from the session
// ledger, next to the paper's measured values. A2/A4-A7 are derived from
// the ICAP and MAC cycle models; A1/A3/A8 from the wire model with the
// PoC's packet sizes; A9/A10 are min-size Ethernet frames in our model
// (the paper's sub-minimum values were measured at a different layer —
// both actions run once per session, so Table 4 is unaffected).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "bitstream/bitgen.hpp"
#include "config/icap.hpp"

using namespace sacha;

namespace {

struct PaperRow {
  const char* key;
  double paper_ns;
};

const PaperRow kPaper[] = {
    {core::actions::kA1, 8'856},  {core::actions::kA2, 1'834},
    {core::actions::kA3, 13'616}, {core::actions::kA4, 24'044},
    {core::actions::kA5, 120},    {core::actions::kA6, 128},
    {core::actions::kA7, 136},    {core::actions::kA8, 2'928},
    {core::actions::kA9, 344},    {core::actions::kA10, 472},
};

void print_table3() {
  const core::AttestationReport report = benchutil::run_virtex6_session();
  benchutil::print_title(
      "Table 3: timing of the low-level steps in the SACHa protocol");
  std::printf("(one full XC6VLX240T session, ideal channel; verdict: %s)\n\n",
              report.verdict.ok() ? "attested" : report.verdict.detail.c_str());
  std::printf("%-36s %12s %12s %9s\n", "Action", "model (ns)", "paper (ns)",
              "dev (%)");
  for (const PaperRow& row : kPaper) {
    const double modeled = static_cast<double>(report.ledger.average(row.key));
    std::printf("%-36s %12s %12s %+8.2f\n", row.key,
                benchutil::group_digits(static_cast<std::uint64_t>(modeled)).c_str(),
                benchutil::group_digits(static_cast<std::uint64_t>(row.paper_ns)).c_str(),
                benchutil::deviation_pct(modeled, row.paper_ns));
  }
  std::printf("\nA9/A10 deviate because our wire model enforces the Ethernet\n"
              "minimum frame (84 B => 672 ns); both run once per session.\n");
}

// Micro-benchmarks of the device-side actions the table models.

void BM_IcapConfigOneFrame(benchmark::State& state) {
  const auto device = fabric::DeviceModel::xc6vlx240t();
  const bitstream::BitGen gen(device);
  config::ConfigMemory memory(device);
  config::Icap icap(memory, config::device_idcode(device));
  const bitstream::Frame frame(device.geometry().words_per_frame(), 0x5a5a5a5a);
  const auto stream =
      gen.assemble_single_frame(frame, 100, config::device_idcode(device));
  for (auto _ : state) {
    benchmark::DoNotOptimize(icap.execute(stream).ok());
  }
}
BENCHMARK(BM_IcapConfigOneFrame);

void BM_IcapReadbackOneFrame(benchmark::State& state) {
  const auto device = fabric::DeviceModel::xc6vlx240t();
  config::ConfigMemory memory(device);
  config::Icap icap(memory, config::device_idcode(device));
  bitstream::PacketWriter w;
  w.sync();
  w.cmd(bitstream::CmdOp::kRcfg);
  w.write_far(device.geometry().address_of(100));
  w.read_request(device.geometry().words_per_frame());
  w.cmd(bitstream::CmdOp::kDesync);
  for (auto _ : state) {
    // Reset FAR each round by re-running the same stream (FAR write included).
    benchmark::DoNotOptimize(icap.execute(w.words()).ok());
  }
}
BENCHMARK(BM_IcapReadbackOneFrame);

void BM_ProverHandleConfigCommand(benchmark::State& state) {
  attacks::AttackEnv env = attacks::AttackEnv::virtex6();
  core::SachaVerifier verifier = env.make_verifier();
  core::SachaProver prover = env.make_prover();
  verifier.begin();
  const Bytes packet = verifier.command(0).encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(prover.handle_packet(packet).icap_time);
  }
}
BENCHMARK(BM_ProverHandleConfigCommand);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
