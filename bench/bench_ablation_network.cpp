// E7 — §7.1 ablation: the network-latency wall.
//
// The paper's measured 28.5 s vs theoretical 1.44 s gap is pure per-command
// latency (83,378 messages). This bench sweeps the per-command latency
// from 0 to 1 ms and reports the total protocol duration, locating the
// crossover with the paper's JTAG reference (~28 s for a direct full
// configuration over a bench cable).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

using namespace sacha;

namespace {

constexpr double kJtagReferenceSeconds = 28.0;

void print_sweep() {
  benchutil::print_title("Ablation: per-command network latency sweep");
  std::printf("%14s %14s %16s %10s\n", "latency (us)", "total (s)",
              "latency share", "vs JTAG");
  for (const std::uint64_t latency_us :
       {0ull, 10ull, 50ull, 100ull, 250ull, 325ull, 1000ull}) {
    net::ChannelParams channel;
    channel.per_command_latency = latency_us * sim::kMicrosecond;
    const auto report = benchutil::run_virtex6_session(channel);
    const double total = sim::to_seconds(report.total_time);
    const double latency_share =
        sim::to_seconds(report.ledger.total(core::actions::kNetLatency)) / total;
    std::printf("%14llu %14.3f %15.1f%% %10s%s\n",
                static_cast<unsigned long long>(latency_us), total,
                latency_share * 100.0,
                total < kJtagReferenceSeconds ? "faster" : "slower",
                latency_us == 325 ? "   <- paper's lab (28.5 s)" : "");
  }
  std::printf("\nThe protocol is latency-bound beyond ~25 us per command; the\n"
              "paper's lab setup (~325 us/message) lands at the measured\n"
              "28.5 s, about the same as configuring the FPGA over JTAG.\n");
}

void BM_ChannelTransfer(benchmark::State& state) {
  net::Channel channel(net::ChannelParams::lab(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.transfer(1'068));
  }
}
BENCHMARK(BM_ChannelTransfer);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
