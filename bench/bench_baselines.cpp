// E11 — baseline comparison (§4 related work made executable).
//
// Pits SACHa against the two prior FPGA-attestation schemes (Chaves
// on-the-fly bitstream hashing; Drimer-Kuhn authenticated NVM updates) on
// the attack classes of the paper's adversary model, and runs the
// Perito-Tsudik MCU scheme plus SWATT for context. The point the matrix
// makes: only SACHa detects tampering of the *running configuration
// memory*, because only SACHa reads it back.
#include <benchmark/benchmark.h>

#include "attest/chaves.hpp"
#include "attest/drimer_kuhn.hpp"
#include "attest/perito_tsudik.hpp"
#include "attest/smart.hpp"
#include "attest/swatt.hpp"
#include "attacks/library.hpp"
#include "bench_util.hpp"
#include "bitstream/bitgen.hpp"
#include "crypto/prg.hpp"

using namespace sacha;

namespace {

crypto::AesKey key_of(std::uint8_t fill) {
  crypto::AesKey key{};
  key.fill(fill);
  return key;
}

// --- Attack class 1: tamper with the running configuration memory --------

bool sacha_detects_config_tamper() {
  attacks::AttackEnv env = attacks::AttackEnv::small(5);
  const attacks::DynPartTamperAttack attack;
  return attack.run(env).result != attacks::AttackResult::kUndetected;
}

bool chaves_detects_config_tamper() {
  const auto device = fabric::DeviceModel::small_test_device();
  config::ConfigMemory memory(device);
  attest::ChavesAttestor attestor(memory, fabric::FrameRange{4, 12});
  const bitstream::BitGen gen(device);
  const auto image = gen.generate(fabric::FrameRange{4, 12}, {"app", 1});
  (void)attestor.load(image.frames, 4);
  // Adversary writes the configuration memory directly (SACHa's model).
  bitstream::Frame tampered = memory.config_frame(6);
  tampered.flip_bit(9);
  memory.write_frame(6, tampered);
  return attestor.report() != attest::ChavesAttestor::expected(image.frames);
}

bool drimer_detects_config_tamper() {
  attest::ExternalNvm nvm;
  attest::DrimerKuhnDevice device(nvm, key_of(9));
  attest::DrimerKuhnVerifier verifier(key_of(9));
  const Bytes bitstream = crypto::Prg(1, "bs").bytes(512);
  (void)device.apply_update(verifier.make_update(1, bitstream));
  device.running_configuration()[7] ^= 0x80;  // live tamper, NVM untouched
  return !verifier.verify(3, 1, bitstream, device.attest(3));
}

// --- Attack class 2: malicious update in transit -------------------------

bool sacha_detects_update_injection() {
  const attacks::MaliciousUpdateInjection attack;
  return attack.run(attacks::AttackEnv::small(6)).result !=
         attacks::AttackResult::kUndetected;
}

bool chaves_detects_update_injection() {
  const auto device = fabric::DeviceModel::small_test_device();
  config::ConfigMemory memory(device);
  attest::ChavesAttestor attestor(memory, fabric::FrameRange{4, 12});
  const bitstream::BitGen gen(device);
  auto image = gen.generate(fabric::FrameRange{4, 12}, {"app", 1});
  const auto want = attest::ChavesAttestor::expected(image.frames);
  image.frames[2].flip_bit(3);  // injected in transit
  (void)attestor.load(image.frames, 4);
  return attestor.report() != want;
}

bool drimer_detects_update_injection() {
  attest::ExternalNvm nvm;
  attest::DrimerKuhnDevice device(nvm, key_of(9));
  attest::DrimerKuhnVerifier verifier(key_of(9));
  attest::NvmSlot update = verifier.make_update(1, crypto::Prg(2, "bs").bytes(512));
  update.bitstream[5] ^= 1;  // injected in transit, tag now stale
  return !device.apply_update(update).ok();
}

// --- Attack class 3: replay / rollback ------------------------------------

bool sacha_detects_replay() {
  const attacks::ReplayAttack attack;
  return attack.run(attacks::AttackEnv::small(7)).result !=
         attacks::AttackResult::kUndetected;
}

bool chaves_detects_replay() {
  // The on-the-fly hash has no session freshness: replaying an old load of
  // the *same* bitstream after tampering is the config-tamper case again,
  // and re-reporting a stale hash is trivially possible because the report
  // is unkeyed and nonce-free in the original scheme.
  return false;
}

bool drimer_detects_rollback() {
  attest::ExternalNvm nvm;
  attest::DrimerKuhnDevice device(nvm, key_of(9));
  attest::DrimerKuhnVerifier verifier(key_of(9));
  (void)device.apply_update(verifier.make_update(2, Bytes(64, 2)));
  return !device.apply_update(verifier.make_update(1, Bytes(64, 1))).ok();
}

void print_matrix() {
  benchutil::print_title("Baseline comparison: who detects what");
  std::printf("%-28s %-8s %-8s %-12s\n", "attack class", "SACHa", "Chaves",
              "Drimer-Kuhn");
  const auto cell = [](bool detected) { return detected ? "yes" : "NO"; };
  std::printf("%-28s %-8s %-8s %-12s\n", "running-config tamper",
              cell(sacha_detects_config_tamper()),
              cell(chaves_detects_config_tamper()),
              cell(drimer_detects_config_tamper()));
  std::printf("%-28s %-8s %-8s %-12s\n", "update injected in transit",
              cell(sacha_detects_update_injection()),
              cell(chaves_detects_update_injection()),
              cell(drimer_detects_update_injection()));
  std::printf("%-28s %-8s %-8s %-12s\n", "replay / rollback",
              cell(sacha_detects_replay()), cell(chaves_detects_replay()),
              cell(drimer_detects_rollback()));
  std::printf("\nassumptions each scheme needs:\n");
  std::printf("  SACHa        none beyond bounded fabric memory (self-attesting)\n");
  std::printf("  Chaves       tamper-proof attestation core + config memory\n");
  std::printf("  Drimer-Kuhn  tamper-proof config memory; attests NVM only\n");

  // Context rows: the processor-side schemes.
  std::printf("\nprocessor-side baselines (context):\n");
  {
    attest::BoundedMemoryMcu mcu(4'096, key_of(3));
    mcu.infect(100, bytes_of("malware"));
    attest::PoseVerifier pose(key_of(3), 4'096);
    const auto report = pose.attest(mcu, bytes_of("fw"), 1);
    std::printf("  Perito-Tsudik secure erasure: %s (%llu B shipped)\n",
                report.attested ? "clean after update" : "FAILED",
                static_cast<unsigned long long>(report.bytes_sent));
  }
  {
    attest::SmartMcu smart(1'024, key_of(5));
    const Bytes fw = crypto::Prg(6, "fw").bytes(1'024);
    smart.write_app(0, fw);
    attest::SmartVerifier sv(key_of(5), fw);
    const bool honest_ok = sv.verify(1, smart.rom_attest(1));
    smart.write_app(64, bytes_of("malware"));
    const bool caught = !sv.verify(2, smart.rom_attest(2));
    const bool key_safe = !smart.forge_from_application(3).ok();
    std::printf("  SMART hybrid: honest %s, malware %s, key exfiltration %s\n",
                honest_ok ? "attests" : "FAILS",
                caught ? "caught" : "MISSED",
                key_safe ? "blocked by MPU" : "POSSIBLE");
  }
  {
    Rng rng(4);
    const Bytes golden = rng.bytes(4'096);
    attest::SwattDevice compromised(golden);
    compromised.compromise(1'000, Bytes(256, 0xEE), /*redirect=*/true);
    attest::SwattVerifier verifier(golden);
    const auto local = verifier.attest(compromised, 9, 0.001, 0);
    const auto honest_remote = verifier.attest(attest::SwattDevice(golden), 9,
                                               0.001, sim::kMillisecond);
    std::printf("  SWATT local: redirect %s by timing; over network (+1 ms "
                "jitter): honest devices %s\n",
                local.time_ok ? "MISSED" : "caught",
                honest_remote.time_ok
                    ? "still pass (jitter below slack)"
                    : "rejected too (strict bound unusable remotely)");
  }
}

void BM_ChavesLoad(benchmark::State& state) {
  const auto device = fabric::DeviceModel::small_test_device();
  config::ConfigMemory memory(device);
  const bitstream::BitGen gen(device);
  const auto image = gen.generate(fabric::FrameRange{4, 12}, {"app", 1});
  for (auto _ : state) {
    attest::ChavesAttestor attestor(memory, fabric::FrameRange{4, 12});
    benchmark::DoNotOptimize(attestor.load(image.frames, 4).ok());
  }
}
BENCHMARK(BM_ChavesLoad);

void BM_PoseAttest4k(benchmark::State& state) {
  attest::BoundedMemoryMcu mcu(4'096, key_of(3));
  attest::PoseVerifier verifier(key_of(3), 4'096);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.attest(mcu, bytes_of("fw"), seed++).attested);
  }
}
BENCHMARK(BM_PoseAttest4k);

void BM_SwattWalk(benchmark::State& state) {
  Rng rng(4);
  const Bytes golden = rng.bytes(4'096);
  const attest::SwattDevice device(golden);
  std::uint64_t challenge = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.respond(challenge++).cycles);
  }
}
BENCHMARK(BM_SwattWalk);

}  // namespace

int main(int argc, char** argv) {
  print_matrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
