// E8 — §5.3/§6.1 ablation: readback-order strategies.
//
// "The order in which the frames are read back can be any permutation",
// and the chosen order changes the MAC on every run even without a nonce
// update. This bench runs the full protocol under the three order
// strategies (and a repeated-frames variant), confirming identical cost and
// verdicts, and demonstrates MAC freshness across repeated sessions.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "crypto/cmac.hpp"

using namespace sacha;

namespace {

void print_orders() {
  benchutil::print_title("Ablation: readback order strategies");
  struct Case {
    const char* name;
    core::ReadbackOrder order;
  };
  const Case cases[] = {
      {"sequential from 0", core::ReadbackOrder::kSequentialFromZero},
      {"sequential from offset i (PoC)", core::ReadbackOrder::kSequentialFromOffset},
      {"random permutation", core::ReadbackOrder::kRandomPermutation},
  };
  std::printf("%-32s %10s %14s %9s\n", "order", "readbacks", "theoretical",
              "verdict");
  for (const Case& c : cases) {
    core::VerifierOptions options;
    options.order = c.order;
    const auto report =
        benchutil::run_virtex6_session(net::ChannelParams::ideal(), options);
    std::printf("%-32s %10llu %12.3f s %9s\n", c.name,
                static_cast<unsigned long long>(
                    report.ledger.count(core::actions::kA3)),
                sim::to_seconds(report.theoretical_time),
                report.verdict.ok() ? "attested" : "FAILED");
  }

  // MAC freshness from order alone: same key, same frames, different order.
  crypto::AesKey key{};
  key.fill(0x42);
  const Bytes frame_a(324, 0xaa), frame_b(324, 0xbb);
  crypto::Cmac ab(key), ba(key);
  ab.update(frame_a); ab.update(frame_b);
  ba.update(frame_b); ba.update(frame_a);
  const bool differs = !(ab.finalize() == ba.finalize());
  std::printf("\nMAC over (frame A, frame B) != MAC over (frame B, frame A): %s\n",
              differs ? "yes" : "NO (BUG)");
  std::printf("=> even a frozen nonce cannot force a repeated MAC when the\n"
              "verifier varies the readback order (paper §7.2, last bullet).\n");
}

void BM_PermutationGeneration(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.permutation(28'488));
  }
}
BENCHMARK(BM_PermutationGeneration)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_orders();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
