// E5 — §7.2 security evaluation as a detection matrix.
//
// Runs the adversary suite against SACHa on the fast test device across
// several seeds and readback orders, and confirms the full-scale device on
// one representative attack. SACHa's claim is categorical: every threat in
// the model is detected or structurally prevented.
#include <benchmark/benchmark.h>

#include "attacks/library.hpp"
#include "bench_util.hpp"

using namespace sacha;

namespace {

void print_matrix() {
  benchutil::print_title("Security matrix: Section 7.2 threats vs SACHa");

  const core::ReadbackOrder orders[] = {
      core::ReadbackOrder::kSequentialFromZero,
      core::ReadbackOrder::kSequentialFromOffset,
      core::ReadbackOrder::kRandomPermutation};
  const char* order_names[] = {"seq0", "offset", "perm"};
  const std::uint64_t seeds[] = {11, 23, 47};

  std::printf("%-18s %-8s %-8s %-8s  (per readback order, 3 seeds each)\n",
              "attack", order_names[0], order_names[1], order_names[2]);
  int undetected_total = 0;
  for (const auto& attack : attacks::standard_suite()) {
    std::printf("%-18s", attack->name().c_str());
    for (std::size_t o = 0; o < 3; ++o) {
      int detected = 0, prevented = 0, undetected = 0;
      for (std::uint64_t seed : seeds) {
        attacks::AttackEnv env = attacks::AttackEnv::small(seed);
        env.verifier_options.order = orders[o];
        switch (attack->run(env).result) {
          case attacks::AttackResult::kDetected: ++detected; break;
          case attacks::AttackResult::kPrevented: ++prevented; break;
          case attacks::AttackResult::kUndetected: ++undetected; break;
        }
      }
      undetected_total += undetected;
      char cell[16];
      std::snprintf(cell, sizeof cell, "%s%d/3",
                    prevented == 3 ? "P " : (detected == 3 ? "D " : "? "),
                    detected + prevented);
      std::printf(" %-8s", cell);
    }
    std::printf("\n");
  }
  std::printf("\nD = detected by the verifier, P = structurally prevented.\n");
  std::printf("Undetected outcomes across the sweep: %d (must be 0)\n",
              undetected_total);

  // Full-scale confirmation: one tamper attack on the real floorplan.
  std::printf("\nfull-scale confirmation (XC6VLX240T, 28,488 frames): ");
  const attacks::DynPartTamperAttack tamper;
  const auto outcome = tamper.run(attacks::AttackEnv::virtex6(3));
  std::printf("%s — %s\n", attacks::to_string(outcome.result),
              outcome.evidence.c_str());
}

void BM_DynPartTamperAttackSmall(benchmark::State& state) {
  const attacks::DynPartTamperAttack attack;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto outcome = attack.run(attacks::AttackEnv::small(seed++));
    benchmark::DoNotOptimize(outcome.result);
  }
}
BENCHMARK(BM_DynPartTamperAttackSmall)->Unit(benchmark::kMillisecond);

void BM_ReplayAttackSmall(benchmark::State& state) {
  const attacks::ReplayAttack attack;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto outcome = attack.run(attacks::AttackEnv::small(seed++));
    benchmark::DoNotOptimize(outcome.result);
  }
}
BENCHMARK(BM_ReplayAttackSmall)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_matrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
