// Fleet provisioning registry for the socket transport.
//
// attestd holds no device database: a HELLO frame carries (scale,
// member_index, base_seed) and both sides derive the member's provisioned
// state — floorplan, design specs, device key, verifier seed — from those
// alone, exactly as the in-process test fleets do (AttackEnv::small(seed)
// per member). That is what makes the bit-identity gate meaningful: the
// server's verifier and the oracle's verifier are the *same construction*,
// so a loopback run can be compared MAC-for-MAC against
// SwarmSchedule::kMultiplexed.
//
// This header sits above sacha_core (it builds verifiers and provers), so
// it belongs to the sacha_attestd library, not sacha_net.
#pragma once

#include <cstddef>
#include <string>

#include "attacks/env.hpp"
#include "bitstream/golden_model.hpp"
#include "net/wire.hpp"

namespace sacha::net {

/// Parameters of a provisioned fleet, shared verbatim by the server
/// command line, the load generator, and the in-process oracle.
struct FleetSpec {
  /// Per-member provisioning seed offset: member i uses base_seed + i.
  std::uint64_t base_seed = 42;
  /// Fleet session seed; the per-member churn seed derives from it via
  /// derive_seed(session_seed, member_id(i), attempt) — the same
  /// derivation attest_swarm applies.
  std::uint64_t session_seed = 1;
  double flip_probability = 0.25;
  /// Device scale when `mixed` is false.
  DeviceScale scale = DeviceScale::kSmall;
  /// Alternate small/softcore by member parity (the "mixed-device fleet"
  /// of the smoke test).
  bool mixed = false;
};

/// Fleet member label, also the derive_seed label: "node-<i>".
std::string member_id(std::size_t index);

DeviceScale member_scale(const FleetSpec& spec, std::size_t index);

/// Per-member session seed (attempt 0 of the swarm derivation).
std::uint64_t member_session_seed(const FleetSpec& spec, std::size_t index);

/// The member's provisioned environment: AttackEnv::small / the softcore
/// floorplan / AttackEnv::virtex6, seeded base_seed + index.
attacks::AttackEnv member_env(DeviceScale scale, std::uint64_t env_seed);

/// The HELLO frame the client opens member `index`'s session with.
HelloMsg member_hello(const FleetSpec& spec, std::size_t index);

/// Server side: the verifier a HELLO provisions. Identical to
/// member_env(scale, base_seed + index).make_verifier().
core::SachaVerifier verifier_for(const HelloMsg& hello);

/// Golden-model cache policy for verifier provisioning.
struct ModelCacheConfig {
  /// Directory of the `.sgm` warm-start cache; empty disables the disk
  /// tier (every model is interned or built in-process).
  std::string cache_dir;
  /// Use GoldenModel::load_mapped for the disk tier so colocated shard
  /// processes share one page-cache copy of the flat tables.
  bool prefer_mapped = false;
};

/// verifier_for with the golden model provisioned through
/// GoldenModel::shared_cached (process intern -> disk cache -> build) —
/// same construction, same bit-identical verdicts, but the ~MB flat
/// tables come from the shared tiers instead of a per-verifier build.
/// `source` (optional) reports which tier hit.
core::SachaVerifier verifier_for(
    const HelloMsg& hello, const ModelCacheConfig& cache,
    bitstream::GoldenModel::CacheSource* source = nullptr);

/// Client side: the booted prover for the same HELLO.
core::SachaProver prover_for(const HelloMsg& hello);

}  // namespace sacha::net
