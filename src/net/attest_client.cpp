#include "net/attest_client.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "core/protocol.hpp"
#include "core/session.hpp"
#include "net/tcp.hpp"

namespace sacha::net {

namespace {
using Clock = std::chrono::steady_clock;

std::uint64_t ns_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           start)
          .count());
}
}  // namespace

ProverAgent::ProverAgent(const HelloMsg& hello,
                         std::function<void(core::SachaProver&)> after_config)
    : hello_(hello),
      after_config_(std::move(after_config)),
      prover_(prover_for(hello)) {}

Bytes ProverAgent::handle_command(ByteSpan payload) {
  // Phase boundary, in SessionMachine's order: tamper hook first, then the
  // register churn under the session seed. The command *type* decides the
  // boundary, so peek at the decode before the prover stages the packet.
  if (!config_phase_done_) {
    auto command = core::Command::decode(payload);
    if (command.ok() &&
        command.value().type != core::CommandType::kIcapConfig) {
      config_phase_done_ = true;
      if (after_config_) after_config_(prover_);
      core::apply_register_churn(prover_, hello_.session_seed,
                                 hello_.flip_probability);
    }
  }
  core::SachaProver::HandleResult result = prover_.handle_packet(payload);
  Bytes out;
  if (result.response.has_value()) {
    out.push_back(1);
    append(out, result.response->encode());
  } else {
    out.push_back(0);
  }
  return out;
}

std::function<void(core::SachaProver&)> standard_tamper() {
  return [](core::SachaProver& p) {
    bitstream::Frame f = p.memory().config_frame(5);
    f.flip_bit(7);
    p.memory().write_frame(5, f);
  };
}

namespace {

struct Member {
  std::size_t index = 0;
  TcpChannel channel;
  std::unique_ptr<ProverAgent> agent;
  HelloMsg hello;
  enum class State { kConnecting, kRunning } state = State::kConnecting;
  std::size_t responses_sent = 0;
  bool redirected = false;  // one coordinator hop allowed per session
  Clock::time_point start = Clock::now();
  Clock::time_point last_activity = Clock::now();
  /// Delay-shim queue: responses held until their due time.
  std::deque<std::pair<Clock::time_point, Bytes>> delayed;
  MemberOutcome outcome;
  /// Prover-side span assembly for head-sampled sessions. All members
  /// multiplex on one loop thread, so spans are recorded manually with the
  /// trace id as the lane key (the RAII Span's thread-local nesting would
  /// interleave members).
  bool traced = false;
  const char* phase = nullptr;
  std::uint64_t phase_start_ns = 0;
  std::uint64_t session_start_ns = 0;
};

/// Appends one prover-side span record under the member's trace id.
void emit_prover_span(const Member& m, const char* name, const char* category,
                      std::uint64_t start, std::uint64_t end,
                      std::uint32_t depth) {
  obs::SpanRecord r;
  r.name = name;
  r.category = category;
  r.trace = m.hello.trace;
  r.thread_id = m.hello.trace.lo;  // prover lane of this session's timeline
  r.start_ns = start;
  r.duration_ns = end > start ? end - start : 0;
  r.depth = depth;
  r.args.emplace_back("side", "prover");
  if (std::string_view(category) == "phase") {
    obs::observe_phase_duration(r.name, r.duration_ns);
  }
  obs::Tracer::global().record(std::move(r));
}

/// Closes the member's running phase (if different) and opens `name`;
/// nullptr closes without opening.
void note_phase(Member& m, const char* name) {
  if (!m.traced || m.phase == name) return;
  const std::uint64_t now = obs::Tracer::global().now_ns();
  if (m.phase != nullptr) {
    emit_prover_span(m, m.phase, "phase", m.phase_start_ns, now, 1);
  }
  m.phase = name;
  m.phase_start_ns = now;
}

class LoadRunner {
 public:
  explicit LoadRunner(const LoadOptions& options)
      : opts_(options), loop_(options.prefer_epoll), shim_rng_(options.shim_seed) {}

  LoadResult run() {
    const auto wall_start = Clock::now();
    if (opts_.trace_sample >= 0.0) {
      obs::Sampler::global().set_rate(opts_.trace_sample);
    }
    result_.members.resize(opts_.members);
    for (std::size_t i = 0; i < opts_.members; ++i) {
      result_.members[i].index = i;
      pending_.push_back(i);
    }
    raise_nofile_limit(opts_.members + 64);
    const std::size_t cap =
        opts_.concurrency == 0 ? opts_.members : opts_.concurrency;

    std::vector<PollEvent> events;
    while (done_ < opts_.members) {
      while (!pending_.empty() && active_.size() < cap) {
        start_member(pending_.front());
        pending_.pop_front();
      }
      if (active_.empty()) break;  // everything that could run has finished
      result_.peak_concurrent =
          std::max(result_.peak_concurrent, active_.size());
      const int timeout = next_timeout_ms();
      if (!loop_.wait(events, timeout).ok()) break;
      const auto now = Clock::now();
      for (const PollEvent& ev : events) {
        auto it = active_.find(ev.fd);
        if (it == active_.end()) continue;
        std::shared_ptr<Member> member = it->second;
        if (ev.writable || ev.error) on_writable(member);
        if ((ev.readable || ev.error) && active_.count(ev.fd)) {
          on_readable(member);
        }
      }
      flush_delayed(now);
      scan_idle();
    }
    // Whatever is still open never completed (watchdog-abandoned).
    for (auto& [fd, member] : active_) {
      if (member->outcome.error.empty()) member->outcome.error = "timeout";
      member->outcome.latency_ns = ns_since(member->start);
      result_.members[member->index] = member->outcome;
      loop_.remove(fd);
      member->channel.close();
      ++done_;
    }
    active_.clear();
    for (const MemberOutcome& outcome : result_.members) {
      if (outcome.completed) {
        ++result_.completed;
        if (outcome.report.attested()) ++result_.attested;
      }
      if (outcome.update_offered) {
        ++result_.updates_offered;
        if (outcome.update_status.accepted) ++result_.updates_accepted;
      }
    }
    result_.wall_ns = ns_since(wall_start);
    return std::move(result_);
  }

 private:
  void start_member(std::size_t index) {
    auto member = std::make_shared<Member>();
    member->index = index;
    member->outcome.index = index;
    member->hello = member_hello(opts_.fleet, opts_.member_offset + index);
    // Head-sampling decision, made once at the edge and propagated in the
    // HELLO so the server records the matching half of the timeline.
    member->hello.sampled = obs::should_trace(member->hello.trace);
    member->traced = member->hello.sampled;
    member->outcome.trace = member->hello.trace;
    member->outcome.sampled = member->hello.sampled;
    std::function<void(core::SachaProver&)> tamper;
    if (opts_.tampered.count(index) > 0) tamper = standard_tamper();
    member->agent =
        std::make_unique<ProverAgent>(member->hello, std::move(tamper));
    auto channel = TcpChannel::connect(opts_.host, opts_.port);
    if (!channel.ok()) {
      member->outcome.error = channel.message();
      result_.members[index] = member->outcome;
      ++done_;
      return;
    }
    member->channel = std::move(channel).take();
    member->start = Clock::now();
    member->last_activity = member->start;
    if (member->traced) {
      member->session_start_ns = obs::Tracer::global().now_ns();
    }
    active_.emplace(member->channel.fd(), member);
    // Wait for writability = connect completion.
    (void)loop_.add(member->channel.fd(), /*want_read=*/true,
                    /*want_write=*/true);
  }

  void finish_member(const std::shared_ptr<Member>& member,
                     std::string error) {
    if (!member->channel.open()) return;
    if (!error.empty() && member->outcome.error.empty() &&
        !member->outcome.completed) {
      member->outcome.error = std::move(error);
    }
    if (member->traced) {
      note_phase(*member, nullptr);  // close the running phase span
      emit_prover_span(*member, "session", "session",
                       member->session_start_ns,
                       obs::Tracer::global().now_ns(), 0);
      member->traced = false;
    }
    if (member->outcome.latency_ns == 0) {
      member->outcome.latency_ns = ns_since(member->start);
    }
    member->outcome.client_mac = member->agent->last_mac();
    result_.members[member->index] = member->outcome;
    loop_.remove(member->channel.fd());
    active_.erase(member->channel.fd());
    member->channel.close();
    ++done_;
  }

  void on_writable(const std::shared_ptr<Member>& member) {
    if (!member->channel.open()) return;
    if (member->state == Member::State::kConnecting) {
      Status st = member->channel.finish_connect();
      if (!st.ok()) {
        finish_member(member, st.message());
        return;
      }
      member->state = Member::State::kRunning;
      if (!member->channel.send(FrameKind::kHello, member->hello.encode())
               .ok()) {
        finish_member(member, "HELLO send failed");
        return;
      }
    }
    if (!member->channel.flush_some().ok()) {
      finish_member(member, "socket write failed");
      return;
    }
    update_interest(member);
  }

  void on_readable(const std::shared_ptr<Member>& member) {
    if (!member->channel.open()) return;
    member->last_activity = Clock::now();
    bool closed = false;
    if (!member->channel.read_some(&closed).ok()) {
      finish_member(member, "socket read failed");
      return;
    }
    for (;;) {
      auto frame = member->channel.next_frame();
      if (!frame.ok()) {
        finish_member(member, "frame decode: " + frame.message());
        return;
      }
      if (!frame.value().has_value()) break;
      if (!handle_frame(member, *std::move(frame).take())) return;
    }
    if (closed) {
      finish_member(member, member->outcome.completed ? "" : "server closed");
      return;
    }
    update_interest(member);
  }

  /// Follows a coordinator redirect: drops the coordinator connection and
  /// dials the owning shard with the same HELLO. One hop only — a shard
  /// redirecting again means the ring views disagree, which is an error.
  /// Returns false always (the old fd is gone either way).
  bool follow_redirect(const std::shared_ptr<Member>& member,
                       const HelloAckMsg& ack) {
    if (member->redirected) {
      finish_member(member, "second redirect from " + ack.redirect_host);
      return false;
    }
    member->redirected = true;
    member->outcome.redirected = true;
    ++result_.redirects;
    loop_.remove(member->channel.fd());
    active_.erase(member->channel.fd());
    member->channel.close();
    auto channel = TcpChannel::connect(ack.redirect_host, ack.redirect_port);
    if (!channel.ok()) {
      member->outcome.error = "redirect connect: " + channel.message();
      member->outcome.latency_ns = ns_since(member->start);
      result_.members[member->index] = member->outcome;
      ++done_;
      return false;
    }
    member->channel = std::move(channel).take();
    member->state = Member::State::kConnecting;
    member->last_activity = Clock::now();
    active_.emplace(member->channel.fd(), member);
    (void)loop_.add(member->channel.fd(), /*want_read=*/true,
                    /*want_write=*/true);
    return false;
  }

  /// Returns false when the member was torn down.
  bool handle_frame(const std::shared_ptr<Member>& member, Frame frame) {
    switch (frame.kind) {
      case FrameKind::kHelloAck: {
        auto ack = HelloAckMsg::decode(frame.payload);
        if (!ack.ok()) {
          finish_member(member, "bad HELLO_ACK: " + ack.message());
          return false;
        }
        if (ack.value().is_redirect()) {
          return follow_redirect(member, ack.value());
        }
        return true;  // plain accept: schedule length is informational
      }
      case FrameKind::kCommand:
        return handle_command(member, frame.payload);
      case FrameKind::kReport: {
        auto report = ReportMsg::decode(frame.payload);
        if (!report.ok()) {
          finish_member(member, "bad REPORT: " + report.message());
          return false;
        }
        member->outcome.completed = true;
        member->outcome.report = std::move(report).take();
        // Session latency ends at the verdict, not at teardown: a v3
        // server may keep the connection open for one UPDATE_OFFER /
        // UPDATE_STATUS exchange after the REPORT, and closes it either
        // way once done (the close is what finishes the member).
        member->outcome.latency_ns = ns_since(member->start);
        return true;
      }
      case FrameKind::kUpdateOffer: {
        auto offer = UpdateOfferMsg::decode(frame.payload);
        if (!offer.ok()) {
          finish_member(member, "bad UPDATE_OFFER: " + offer.message());
          return false;
        }
        UpdateStatusMsg status;
        status.version = offer.value().version;
        if (opts_.on_update_offer) {
          status = opts_.on_update_offer(offer.value());
        } else {
          status.accepted = false;
          status.state = "Idle";
          status.detail = "no update handler";
        }
        member->outcome.update_offered = true;
        member->outcome.update_status = status;
        if (!member->channel.send(FrameKind::kUpdateStatus, status.encode())
                 .ok()) {
          finish_member(member, "UPDATE_STATUS send failed");
          return false;
        }
        return true;
      }
      case FrameKind::kError: {
        auto msg = ErrorMsg::decode(frame.payload);
        finish_member(member, "server abort: " + (msg.ok() ? msg.value().detail
                                                           : msg.message()));
        return false;
      }
      default:
        finish_member(member, "unexpected frame kind");
        return false;
    }
  }

  bool handle_command(const std::shared_ptr<Member>& member,
                      const Bytes& payload) {
    // Prover-side phase tracking (sampled sessions only, so the decode is
    // off the unsampled hot path): command-type transitions mark the
    // Table-4 phase boundaries as the device sees them.
    if (member->traced) {
      auto command = core::Command::decode(payload);
      if (command.ok()) {
        switch (command.value().type) {
          case core::CommandType::kIcapConfig:
            note_phase(*member, "configure.stream_in");
            break;
          case core::CommandType::kIcapReadback:
            note_phase(*member, "readback.respond");
            break;
          case core::CommandType::kMacChecksum:
            note_phase(*member, "mac.sendback");
            break;
        }
      }
    }
    Bytes response = member->agent->handle_command(payload);
    ++member->responses_sent;
    // Injected abrupt disconnect: close without a goodbye, mid-window —
    // the server must quarantine, not crash.
    auto cut = opts_.disconnect_after.find(member->index);
    if (cut != opts_.disconnect_after.end() &&
        member->responses_sent > cut->second) {
      finish_member(member, "injected disconnect");
      return false;
    }
    // Drop shim: the response evaporates (server-side timeout path).
    if (opts_.drop_probability > 0.0 &&
        shim_rng_.chance(opts_.drop_probability)) {
      return true;
    }
    if (opts_.delay_us > 0) {
      member->delayed.emplace_back(
          Clock::now() + std::chrono::microseconds(opts_.delay_us),
          std::move(response));
      return true;
    }
    if (!member->channel.send(FrameKind::kResponse, std::move(response))
             .ok()) {
      finish_member(member, "response send failed");
      return false;
    }
    return true;
  }

  void flush_delayed(Clock::time_point now) {
    if (opts_.delay_us == 0) return;
    std::vector<std::shared_ptr<Member>> due;
    for (auto& [fd, member] : active_) {
      if (!member->delayed.empty() && member->delayed.front().first <= now) {
        due.push_back(member);
      }
    }
    for (const auto& member : due) {
      while (!member->delayed.empty() &&
             member->delayed.front().first <= now) {
        Bytes response = std::move(member->delayed.front().second);
        member->delayed.pop_front();
        if (!member->channel.send(FrameKind::kResponse, std::move(response))
                 .ok()) {
          finish_member(member, "response send failed");
          break;
        }
      }
      if (member->channel.open()) update_interest(member);
    }
  }

  int next_timeout_ms() {
    int timeout = 100;
    if (opts_.delay_us > 0) {
      timeout = std::min<int>(
          timeout,
          std::max<int>(
              1, static_cast<int>(opts_.delay_us / 1000 ? opts_.delay_us / 1000
                                                        : 1)));
    }
    return timeout;
  }

  void scan_idle() {
    if (opts_.timeout_ms == 0) return;
    const auto cutoff =
        Clock::now() - std::chrono::milliseconds(opts_.timeout_ms);
    std::vector<std::shared_ptr<Member>> stale;
    for (auto& [fd, member] : active_) {
      if (member->last_activity < cutoff) stale.push_back(member);
    }
    for (const auto& member : stale) finish_member(member, "timeout");
  }

  void update_interest(const std::shared_ptr<Member>& member) {
    if (!member->channel.open()) return;
    (void)loop_.modify(member->channel.fd(), /*want_read=*/true,
                       member->channel.want_write() ||
                           member->state == Member::State::kConnecting);
  }

  LoadOptions opts_;
  EventLoop loop_;
  Rng shim_rng_;
  LoadResult result_;
  std::deque<std::size_t> pending_;
  std::unordered_map<int, std::shared_ptr<Member>> active_;
  std::size_t done_ = 0;
};

}  // namespace

LoadResult run_load(const LoadOptions& options) {
  return LoadRunner(options).run();
}

}  // namespace sacha::net
