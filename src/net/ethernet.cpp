#include "net/ethernet.hpp"

#include <algorithm>

namespace sacha::net {

std::uint32_t crc32(ByteSpan data) {
  std::uint32_t crc = 0xffffffff;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

Bytes EthFrame::encode() const {
  Bytes wire;
  wire.reserve(kHeaderBytes + std::max(payload.size(), kMinPayload) + kFcsBytes);
  wire.insert(wire.end(), dst.begin(), dst.end());
  wire.insert(wire.end(), src.begin(), src.end());
  put_u16be(wire, ethertype);
  append(wire, payload);
  if (payload.size() < kMinPayload) {
    wire.insert(wire.end(), kMinPayload - payload.size(), 0);
  }
  put_u32be(wire, crc32(wire));
  return wire;
}

Result<EthFrame> EthFrame::decode(ByteSpan wire) {
  using R = Result<EthFrame>;
  if (wire.size() < kHeaderBytes + kMinPayload + kFcsBytes) {
    return R::error("frame below minimum size: " + std::to_string(wire.size()));
  }
  const std::size_t body = wire.size() - kFcsBytes;
  const std::uint32_t fcs = get_u32be(wire, body);
  if (crc32(wire.subspan(0, body)) != fcs) {
    return R::error("FCS mismatch");
  }
  EthFrame frame;
  std::copy_n(wire.begin(), 6, frame.dst.begin());
  std::copy_n(wire.begin() + 6, 6, frame.src.begin());
  frame.ethertype = get_u16be(wire, 12);
  frame.payload.assign(wire.begin() + kHeaderBytes, wire.begin() + static_cast<std::ptrdiff_t>(body));
  return frame;
}

std::size_t EthFrame::wire_bytes() const {
  return kPreambleAndGapBytes + kHeaderBytes +
         std::max(payload.size(), kMinPayload) + kFcsBytes;
}

sim::SimDuration WireModel::frame_time(std::size_t payload_bytes) const {
  return ns_per_byte_ * frame_bytes(payload_bytes);
}

std::size_t WireModel::frame_bytes(std::size_t payload_bytes) const {
  // Payloads above the MTU are fragmented into full frames plus a tail;
  // every fragment pays the per-frame overhead (and the tail the minimum-
  // size padding).
  constexpr std::size_t kOverhead =
      kPreambleAndGapBytes + kHeaderBytes + kFcsBytes;
  std::size_t total = 0;
  do {
    const std::size_t chunk = std::min(payload_bytes, mtu_payload_);
    total += kOverhead + std::max(chunk, kMinPayload);
    payload_bytes -= chunk;
  } while (payload_bytes > 0);
  return total;
}

}  // namespace sacha::net
