#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>

#include "obs/metrics.hpp"

namespace sacha::net {

namespace {

Status errno_status(const char* what) {
  return Status::error(std::string(what) + ": " + std::strerror(errno));
}

/// getaddrinfo with the flags shared by listen and connect.
Result<Socket> open_stream_socket(const std::string& host, std::uint16_t port,
                                  bool passive, struct sockaddr_storage* addr,
                                  socklen_t* addr_len) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Result<Socket>::error(std::string("getaddrinfo ") + host + ": " +
                                 ::gai_strerror(rc));
  }
  Status last = Status::error("no usable address");
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family,
                            ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) {
      last = errno_status("socket");
      continue;
    }
    if (addr != nullptr) {
      std::memcpy(addr, ai->ai_addr, ai->ai_addrlen);
      *addr_len = ai->ai_addrlen;
    }
    ::freeaddrinfo(res);
    return Socket(fd);
  }
  ::freeaddrinfo(res);
  return Result<Socket>::error(last.message());
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_status("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(F_SETFL)");
  }
  return Status();
}

Status set_nodelay(int fd) {
  const int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0) {
    return errno_status("setsockopt(TCP_NODELAY)");
  }
  return Status();
}

void raise_nofile_limit(std::uint64_t want) {
  struct rlimit lim;
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur >= want) return;
  lim.rlim_cur = want > lim.rlim_max ? lim.rlim_max : want;
  (void)::setrlimit(RLIMIT_NOFILE, &lim);  // best-effort
}

Result<HostPort> parse_host_port(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    return Result<HostPort>::error("expected HOST:PORT, got '" + spec + "'");
  }
  HostPort hp;
  hp.host = spec.substr(0, colon);
  if (hp.host.empty()) hp.host = "127.0.0.1";
  unsigned long port = 0;
  try {
    port = std::stoul(spec.substr(colon + 1));
  } catch (...) {
    return Result<HostPort>::error("bad port in '" + spec + "'");
  }
  if (port > 65535) {
    return Result<HostPort>::error("port out of range in '" + spec + "'");
  }
  hp.port = static_cast<std::uint16_t>(port);
  return hp;
}

// -- TcpChannel --------------------------------------------------------------

TcpChannel::TcpChannel(Socket socket) : socket_(std::move(socket)) {
  (void)set_nonblocking(socket_.fd());
  (void)set_nodelay(socket_.fd());
}

Result<TcpChannel> TcpChannel::connect(const std::string& host,
                                       std::uint16_t port) {
  struct sockaddr_storage addr;
  socklen_t addr_len = 0;
  auto sock = open_stream_socket(host, port, /*passive=*/false, &addr,
                                 &addr_len);
  if (!sock.ok()) return Result<TcpChannel>::error(sock.message());
  Socket s = std::move(sock).take();
  while (::connect(s.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                   addr_len) < 0) {
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) break;  // completes when the fd polls writable
    return Result<TcpChannel>::error(errno_status("connect").message());
  }
  return TcpChannel(std::move(s));
}

Status TcpChannel::finish_connect() {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(socket_.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return errno_status("getsockopt(SO_ERROR)");
  }
  if (err != 0) {
    return Status::error(std::string("connect: ") + std::strerror(err));
  }
  return Status();
}

Status TcpChannel::send_frame(const Frame& frame) {
  // Compact the consumed prefix before growing (mirrors FrameDecoder).
  if (out_consumed_ > 0 && out_consumed_ >= out_.size() / 2) {
    out_.erase(out_.begin(),
               out_.begin() + static_cast<std::ptrdiff_t>(out_consumed_));
    out_consumed_ = 0;
  }
  append(out_, encode_frame(frame));
  return flush_some();
}

Status TcpChannel::send(FrameKind kind, Bytes payload) {
  return send_frame(Frame{kind, std::move(payload)});
}

Status TcpChannel::send_raw(ByteSpan data) {
  if (out_consumed_ > 0 && out_consumed_ >= out_.size() / 2) {
    out_.erase(out_.begin(),
               out_.begin() + static_cast<std::ptrdiff_t>(out_consumed_));
    out_consumed_ = 0;
  }
  append(out_, data);
  return flush_some();
}

Status TcpChannel::flush_some() {
  while (out_consumed_ < out_.size()) {
    const ssize_t n =
        ::send(socket_.fd(), out_.data() + out_consumed_,
               out_.size() - out_consumed_, MSG_NOSIGNAL);
    if (n > 0) {
      static obs::Counter& bytes_tx =
          obs::MetricsRegistry::global().counter("sacha.net.bytes_tx");
      bytes_tx.add(static_cast<std::uint64_t>(n));
      out_consumed_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return Status();
    return errno_status("send");
  }
  if (out_consumed_ == out_.size()) {
    out_.clear();
    out_consumed_ = 0;
  }
  return Status();
}

Status TcpChannel::read_some(bool* closed) {
  if (closed != nullptr) *closed = false;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(socket_.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      static obs::Counter& bytes_rx =
          obs::MetricsRegistry::global().counter("sacha.net.bytes_rx");
      bytes_rx.add(static_cast<std::uint64_t>(n));
      decoder_.feed(ByteSpan(buf, static_cast<std::size_t>(n)));
      if (static_cast<std::size_t>(n) < sizeof(buf)) return Status();
      continue;  // buffer-filling read: more may be pending
    }
    if (n == 0) {
      if (closed != nullptr) *closed = true;
      return Status();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status();
    if (errno == ECONNRESET) {
      // An abrupt peer reset is a disconnect, not an I/O bug: the caller
      // quarantines the session the same way as an orderly EOF mid-run.
      if (closed != nullptr) *closed = true;
      return Status();
    }
    return errno_status("recv");
  }
}

Status TcpChannel::send_frame_blocking(const Frame& frame, int timeout_ms) {
  Status st = send_frame(frame);
  if (!st.ok()) return st;
  while (want_write()) {
    struct pollfd pfd{socket_.fd(), POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return errno_status("poll");
    }
    if (rc == 0) return Status::error("send timeout");
    st = flush_some();
    if (!st.ok()) return st;
  }
  return Status();
}

Result<Frame> TcpChannel::recv_frame_blocking(int timeout_ms) {
  for (;;) {
    auto frame = next_frame();
    if (!frame.ok()) return Result<Frame>::error(frame.message());
    if (frame.value().has_value()) return *std::move(frame).take();
    struct pollfd pfd{socket_.fd(), POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Result<Frame>::error(errno_status("poll").message());
    }
    if (rc == 0) return Result<Frame>::error("receive timeout");
    bool closed = false;
    Status st = read_some(&closed);
    if (!st.ok()) return Result<Frame>::error(st.message());
    if (closed && decoder_.buffered_bytes() < kFrameHeaderBytes) {
      return Result<Frame>::error("connection closed by peer");
    }
  }
}

// -- SocketListener ----------------------------------------------------------

Result<SocketListener> SocketListener::listen(const std::string& host,
                                              std::uint16_t port, int backlog,
                                              bool reuseport) {
  struct sockaddr_storage addr;
  socklen_t addr_len = 0;
  auto sock =
      open_stream_socket(host, port, /*passive=*/true, &addr, &addr_len);
  if (!sock.ok()) return Result<SocketListener>::error(sock.message());
  Socket s = std::move(sock).take();
  const int one = 1;
  (void)::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
#ifdef SO_REUSEPORT
  if (reuseport) {
    if (::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
        0) {
      return Result<SocketListener>::error(
          errno_status("setsockopt(SO_REUSEPORT)").message());
    }
  }
#else
  if (reuseport) {
    return Result<SocketListener>::error(
        "SO_REUSEPORT not supported on this platform");
  }
#endif
  if (::bind(s.fd(), reinterpret_cast<struct sockaddr*>(&addr), addr_len) <
      0) {
    return Result<SocketListener>::error(errno_status("bind").message());
  }
  if (::listen(s.fd(), backlog) < 0) {
    return Result<SocketListener>::error(errno_status("listen").message());
  }
  struct sockaddr_storage bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(s.fd(), reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) < 0) {
    return Result<SocketListener>::error(
        errno_status("getsockname").message());
  }
  SocketListener listener;
  listener.socket_ = std::move(s);
  if (bound.ss_family == AF_INET) {
    listener.port_ = ntohs(
        reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
  } else if (bound.ss_family == AF_INET6) {
    listener.port_ = ntohs(
        reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
  }
  return listener;
}

Result<std::optional<Socket>> SocketListener::accept_one() {
  using Out = Result<std::optional<Socket>>;
  for (;;) {
    const int fd =
        ::accept4(socket_.fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) return Out(std::optional<Socket>(Socket(fd)));
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Out(std::nullopt);
    return Out::error(errno_status("accept").message());
  }
}

// -- EventLoop ---------------------------------------------------------------

EventLoop::EventLoop(bool prefer_epoll) {
  if (prefer_epoll) {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);  // -1 on failure → poll path
  }
}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) ::close(epfd_);
}

namespace {
std::uint32_t epoll_mask(bool want_read, bool want_write) {
  std::uint32_t ev = 0;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}
}  // namespace

Status EventLoop::add(int fd, bool want_read, bool want_write) {
  interest_[fd] = Interest{want_read, want_write};
  if (epfd_ >= 0) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return errno_status("epoll_ctl(ADD)");
    }
  }
  return Status();
}

Status EventLoop::modify(int fd, bool want_read, bool want_write) {
  auto it = interest_.find(fd);
  if (it == interest_.end()) return add(fd, want_read, want_write);
  if (it->second.read == want_read && it->second.write == want_write) {
    return Status();
  }
  it->second = Interest{want_read, want_write};
  if (epfd_ >= 0) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
      return errno_status("epoll_ctl(MOD)");
    }
  }
  return Status();
}

void EventLoop::remove(int fd) {
  if (interest_.erase(fd) == 0) return;
  if (epfd_ >= 0) {
    struct epoll_event ev;  // non-null for pre-2.6.9 kernels' sake
    std::memset(&ev, 0, sizeof(ev));
    (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
  }
}

Status EventLoop::wait(std::vector<PollEvent>& events, int timeout_ms) {
  events.clear();
  if (epfd_ >= 0) {
    std::vector<struct epoll_event> ready(
        interest_.empty() ? 1 : interest_.size());
    int n;
    do {
      n = ::epoll_wait(epfd_, ready.data(), static_cast<int>(ready.size()),
                       timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return errno_status("epoll_wait");
    events.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.fd = ready[i].data.fd;
      ev.readable = (ready[i].events & EPOLLIN) != 0;
      ev.writable = (ready[i].events & EPOLLOUT) != 0;
      ev.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events.push_back(ev);
    }
    return Status();
  }
  std::vector<struct pollfd> pfds;
  pfds.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    short mask = 0;
    if (want.read) mask |= POLLIN;
    if (want.write) mask |= POLLOUT;
    pfds.push_back(pollfd{fd, mask, 0});
  }
  int n;
  do {
    n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return errno_status("poll");
  for (const struct pollfd& pfd : pfds) {
    if (pfd.revents == 0) continue;
    PollEvent ev;
    ev.fd = pfd.fd;
    ev.readable = (pfd.revents & POLLIN) != 0;
    ev.writable = (pfd.revents & POLLOUT) != 0;
    ev.error = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events.push_back(ev);
  }
  return Status();
}

}  // namespace sacha::net
