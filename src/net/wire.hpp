// Length-prefixed wire framing for the real-socket attestation transport.
//
// The simulated channel (channel.hpp) carries *time*; this layer carries
// *bytes*. A TCP stream between `attestd` and a remote prover is a sequence
// of frames, each one command, response, or control message:
//
//   offset  size  field
//   0       2     magic 0x5341 ("SA")
//   2       1     protocol version (kWireVersion)
//   3       1     frame kind (FrameKind)
//   4       4     payload length in bytes (<= kMaxFramePayload)
//   8       n     payload
//
// The decoder is incremental and transport-agnostic: feed() takes whatever
// byte run the socket produced (a 1-byte read, a coalesced burst of ten
// frames, a frame cut mid-header) and next() yields complete frames in
// order. Malformed input — bad magic, unknown version or kind, a length
// above the bound — is a typed, unrecoverable decode error: a byte stream
// is unframeable once desynchronised, so the connection must be dropped
// (the session maps it to FailureKind::kDecodeError). A *truncated* stream
// is not an error at this layer; the caller sees the missing-frame timeout
// or the peer's close.
//
// Payload contents reuse the existing protocol codecs (Command::encode /
// Response::encode); HELLO and REPORT add small codecs of their own here.
// See PROTOCOL.md "Wire format (socket transport)".
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "core/failure.hpp"
#include "core/protocol.hpp"
#include "crypto/cmac.hpp"
#include "obs/trace.hpp"

namespace sacha::net {

inline constexpr std::uint16_t kWireMagic = 0x5341;  // "SA"
/// Version 2 added the optional trace-context tail (TraceId + sampling
/// flag) to HELLO and REPORT. Version 3 added the OTA frames
/// (UPDATE_OFFER / UPDATE_STATUS). Version 4 added the optional shard
/// redirect tail to HELLO_ACK (the coordinator answers a v4 HELLO with the
/// owning shard's address instead of running the session itself). Decoders
/// accept every version in [kWireVersionMin, kWireVersion]: a v1 peer
/// simply runs without cross-process trace propagation, a v2 peer is never
/// sent an update offer (attestd checks the HELLO's proto before
/// offering), a v1-v3 peer is never redirected — the coordinator proxies
/// its bytes to the owning shard instead — so the added fields/frames are
/// side channels and never feed the MAC path.
inline constexpr std::uint8_t kWireVersion = 4;
inline constexpr std::uint8_t kWireVersionMin = 1;
inline constexpr std::size_t kFrameHeaderBytes = 8;
/// Upper bound on a frame payload. The largest legitimate frame is a
/// batched-readback FrameData response (frames_per_readback * words_per
/// frame * 4 bytes); 16 MiB leaves room for any device in the fabric
/// library while rejecting hostile lengths before any allocation.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

enum class FrameKind : std::uint8_t {
  kHello = 1,     // prover -> verifier: identify device, open a session
  kHelloAck = 2,  // verifier -> prover: session accepted, schedule length
  kCommand = 3,   // verifier -> prover: one Command::encode() packet
  kResponse = 4,  // prover -> verifier: optional Response::encode() packet
  kReport = 5,    // verifier -> prover: end-of-session verdict
  kError = 6,     // either direction: typed abort, connection closes
  // v3 OTA frames. The verifier offers a staged signed manifest only after
  // a PASSING session's REPORT; the prover answers with its gate decision.
  kUpdateOffer = 7,   // verifier -> prover: signed manifest, opaque bytes
  kUpdateStatus = 8,  // prover -> verifier: accept/reject + gate state
};

/// True when `kind` is a value this protocol version defines.
constexpr bool frame_kind_valid(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(FrameKind::kHello) &&
         kind <= static_cast<std::uint8_t>(FrameKind::kUpdateStatus);
}

struct Frame {
  FrameKind kind = FrameKind::kError;
  Bytes payload;
  /// Header version this frame was (or will be) framed with. The decoder
  /// fills it from the stream; encoders default to the current version.
  std::uint8_t version = kWireVersion;

  bool operator==(const Frame&) const = default;
};

/// Serialises header + payload.
Bytes encode_frame(const Frame& frame);

/// Incremental frame reassembly over an arbitrary byte-chunk sequence.
class FrameDecoder {
 public:
  /// Appends raw socket bytes (any split: single bytes, half headers,
  /// multiple coalesced frames).
  void feed(ByteSpan data);

  /// Returns the next complete frame, nullopt when more bytes are needed,
  /// or a decode error (bad magic/version/kind/length). After an error the
  /// decoder is poisoned: every further next() fails — the stream cannot be
  /// re-synchronised and the connection must be torn down.
  Result<std::optional<Frame>> next();

  /// Bytes buffered but not yet consumed by a complete frame.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }
  bool poisoned() const { return poisoned_; }

 private:
  Bytes buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool poisoned_ = false;
};

// -- HELLO ------------------------------------------------------------------

/// Device scale registry shared by attestd and the load generator: both
/// sides must provision bit-identical devices from (scale, seed) alone.
enum class DeviceScale : std::uint8_t {
  kSmall = 0,     // 16-frame test device (sub-millisecond sessions)
  kSoftcore = 1,  // 30-frame softcore floorplan (heterogeneous fleets)
  kVirtex6 = 2,   // full XC6VLX240T proof-of-concept floorplan
};

constexpr const char* to_string(DeviceScale scale) {
  switch (scale) {
    case DeviceScale::kSmall:
      return "small";
    case DeviceScale::kSoftcore:
      return "softcore";
    case DeviceScale::kVirtex6:
      return "virtex6";
  }
  return "unknown";
}

/// Opening frame of every session: identifies the device and pins the
/// deterministic inputs both sides need for a bit-identical protocol run
/// (provisioning seed, session seed for the register-churn RNG, churn
/// probability). The verifier rejects scales its registry does not serve.
struct HelloMsg {
  std::uint16_t proto = kWireVersion;
  DeviceScale scale = DeviceScale::kSmall;
  std::uint32_t member_index = 0;  // registry slot: provisioning seed offset
  std::uint64_t base_seed = 0;     // fleet provisioning seed
  std::uint64_t session_seed = 0;  // per-session seed (churn RNG derivation)
  double flip_probability = 0.25;  // register churn at the phase boundary
  std::string device_id;
  /// Trace context (proto >= 2): the client-minted 128-bit timeline key and
  /// its deterministic head-sampling decision, propagated so both processes
  /// record spans under one id. {0,0} / false when absent or from a v1 peer.
  obs::TraceId trace{};
  bool sampled = false;

  Bytes encode() const;
  static Result<HelloMsg> decode(ByteSpan payload);
  bool operator==(const HelloMsg&) const = default;
};

struct HelloAckMsg {
  std::uint16_t proto = kWireVersion;
  std::uint32_t command_count = 0;  // schedule length, for client progress
  /// Shard redirect tail (v4): non-empty `redirect_host` tells the client
  /// this endpoint is a coordinator and its session is owned by the shard
  /// at host:port — reconnect there and resend the HELLO. Absent on the
  /// wire (and ignored by v1-v3 decoders, which are never sent it) when
  /// the host is empty: the ACK then means "session accepted here".
  std::string redirect_host;
  std::uint16_t redirect_port = 0;

  bool is_redirect() const { return !redirect_host.empty(); }

  Bytes encode() const;
  static Result<HelloAckMsg> decode(ByteSpan payload);
  bool operator==(const HelloAckMsg&) const = default;
};

// -- REPORT -----------------------------------------------------------------

/// End-of-session verdict streamed back to the prover-side client (the load
/// generator aggregates these into fleet results). `mac` is H_Vrf — equal
/// to the device's H_Prv whenever mac_ok.
struct ReportMsg {
  bool protocol_ok = false;
  bool mac_ok = false;
  bool config_ok = false;
  core::FailureKind failure = core::FailureKind::kNone;
  bool mac_present = false;
  crypto::Mac mac{};
  std::uint64_t commands = 0;
  std::uint64_t wall_ns = 0;  // server-side session wall-clock
  std::string detail;
  /// Trace context echoed back from the HELLO (v2 tail; absent from v1
  /// peers). Lets the client assert both sides agreed on the timeline key.
  obs::TraceId trace{};
  bool sampled = false;

  bool attested() const { return protocol_ok && mac_ok && config_ok; }

  Bytes encode() const;
  static Result<ReportMsg> decode(ByteSpan payload);
  bool operator==(const ReportMsg&) const = default;
};

// -- UPDATE (v3) ------------------------------------------------------------

/// A staged signed update, offered after a passing session. The manifest
/// bytes are an update::SignedManifest::encode() blob — opaque at this
/// layer (sacha_net sits below sacha_update), verified by the receiver
/// against its provisioned trusted root before any gate transition.
struct UpdateOfferMsg {
  std::uint64_t version = 0;  // manifest version, for logging/refusal
  Bytes manifest;             // update::SignedManifest::encode()

  Bytes encode() const;
  static Result<UpdateOfferMsg> decode(ByteSpan payload);
  bool operator==(const UpdateOfferMsg&) const = default;
};

/// The prover's answer to an UPDATE_OFFER: whether its manifest check and
/// update gate accepted the offer, and the gate state it landed in
/// ("Staged", "RolledBack", ...). The server counts these per fleet; a
/// refusal never affects the attestation verdict already reported.
struct UpdateStatusMsg {
  std::uint64_t version = 0;
  bool accepted = false;
  std::string state;   // update::to_string(UpdateState) at the device
  std::string detail;  // refusal reason / manifest-check detail

  Bytes encode() const;
  static Result<UpdateStatusMsg> decode(ByteSpan payload);
  bool operator==(const UpdateStatusMsg&) const = default;
};

// -- ERROR ------------------------------------------------------------------

/// Typed abort: the sender closes the connection after this frame. The
/// failure kind maps 1:1 onto the session taxonomy so a remote failure is
/// indistinguishable, for reporting purposes, from a local one.
struct ErrorMsg {
  core::FailureKind failure = core::FailureKind::kDecodeError;
  std::string detail;

  Bytes encode() const;
  static Result<ErrorMsg> decode(ByteSpan payload);
  bool operator==(const ErrorMsg&) const = default;
};

}  // namespace sacha::net
