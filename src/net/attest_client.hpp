// Prover-side socket client: per-member agent + fleet load generator.
//
// ProverAgent is the remote half of a session: it answers COMMAND frames
// exactly as the in-process prover would — including the phase-boundary
// register churn SessionMachine applies (core::apply_register_churn under
// the HELLO's session seed), so a loopback run is bit-identical to the
// in-process engine driving the same device.
//
// run_load replays an N-member fleet against one attestd: a single
// event-loop thread multiplexes every connection (nonblocking connect,
// pipelined command handling), which is what lets the bench hold 500+
// concurrent provers from one process. Socket-level fault shims mirror
// the FaultPlan vocabulary on a real transport: drop responses with a
// seeded probability (the server's timeout path), delay responses, or
// disconnect abruptly after K responses (the quarantine path).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "net/provision.hpp"

namespace sacha::net {

/// Client-side session state for one fleet member.
class ProverAgent {
 public:
  /// Provisions and boots the member's device from the HELLO parameters
  /// (prover_for — the same construction the oracle fleet uses).
  explicit ProverAgent(const HelloMsg& hello,
                       std::function<void(core::SachaProver&)> after_config =
                           nullptr);

  /// Handles one COMMAND frame payload and returns the RESPONSE frame
  /// payload (u8 has_response + optional Response::encode()). Applies the
  /// tamper hook and the register churn at the configuration/readback
  /// phase boundary, in SessionMachine's order.
  Bytes handle_command(ByteSpan payload);

  const core::SachaProver& prover() const { return prover_; }
  const std::optional<crypto::Mac>& last_mac() const {
    return prover_.last_mac();
  }

 private:
  HelloMsg hello_;
  std::function<void(core::SachaProver&)> after_config_;
  core::SachaProver prover_;
  bool config_phase_done_ = false;
};

/// The canonical post-configuration tamper (flip bit 7 of frame 5) used by
/// the bit-identity tests on both the oracle fleet and the remote agents.
std::function<void(core::SachaProver&)> standard_tamper();

struct LoadOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  FleetSpec fleet{};
  std::size_t members = 16;
  /// Fleet-registry offset: member i connects as registry slot
  /// `member_offset + i`, so several client processes (or bench threads)
  /// can split one fleet's device-id space without colliding.
  std::size_t member_offset = 0;
  /// Connections in flight at once (0 = all members at once — the bench's
  /// concurrent-connection sweep).
  std::size_t concurrency = 0;
  /// Members tampered post-configuration (standard_tamper).
  std::set<std::size_t> tampered;
  /// Socket-level fault shims.
  double drop_probability = 0.0;  // silently drop outgoing responses
  std::uint64_t delay_us = 0;     // hold each response this long
  /// member index -> abrupt close after sending this many responses.
  std::map<std::size_t, std::size_t> disconnect_after;
  std::uint64_t shim_seed = 7;
  /// Force the poll(2) fallback in the client's event loop.
  bool prefer_epoll = true;
  /// Abort members idle longer than this (ms; also the overall watchdog
  /// granularity).
  std::uint64_t timeout_ms = 30000;
  /// Head-sampling rate override: >= 0 sets obs::Sampler::global() before
  /// the run (0 = trace nothing, 1 = everything); negative leaves the
  /// process-wide rate (SACHA_OBS_SAMPLE / --trace-sample) untouched.
  double trace_sample = -1.0;
  /// OTA offer handler (wire v3): invoked when the server follows a
  /// passing session's REPORT with an UPDATE_OFFER; returns the
  /// UPDATE_STATUS reply (accepted + gate state + refusal detail). Null =
  /// refuse every offer ("no update handler"). The verification logic
  /// lives with the caller on purpose: sacha_net sits below sacha_update,
  /// so attest_load and the service tests link the update library and
  /// pass a closure that checks the manifest signature against their own
  /// provisioned trusted root before accepting.
  std::function<UpdateStatusMsg(const UpdateOfferMsg&)> on_update_offer;
};

struct MemberOutcome {
  std::size_t index = 0;
  /// A REPORT frame arrived (the session reached a server verdict).
  bool completed = false;
  ReportMsg report{};
  /// H_Prv on the device after the run (equals report.mac iff mac_ok).
  std::optional<crypto::Mac> client_mac;
  /// Wall-clock from connect() start to REPORT (or teardown).
  std::uint64_t latency_ns = 0;
  /// Transport-level note when the session did not complete ("injected
  /// disconnect", "server closed", "timeout", socket errors).
  std::string error;
  /// Timeline key this member's HELLO carried, and whether the session was
  /// head-sampled (client-minted decision, propagated to the server).
  obs::TraceId trace{};
  bool sampled = false;
  /// OTA: the server offered a staged manifest after the verdict, and
  /// this is the UPDATE_STATUS this member answered with.
  bool update_offered = false;
  UpdateStatusMsg update_status{};
  /// Shard routing (wire v4): the first endpoint answered with a redirect
  /// HELLO_ACK and the session ran on the shard it named.
  bool redirected = false;
};

struct LoadResult {
  std::vector<MemberOutcome> members;
  std::size_t completed = 0;
  std::size_t attested = 0;
  /// Largest number of connections simultaneously open.
  std::size_t peak_concurrent = 0;
  /// OTA offers received / accepted across the fleet.
  std::size_t updates_offered = 0;
  std::size_t updates_accepted = 0;
  /// Members that followed a coordinator redirect to a shard (wire v4).
  std::size_t redirects = 0;
  std::uint64_t wall_ns = 0;

  bool all_completed() const { return completed == members.size(); }
};

/// Replays the fleet against a running attestd, one event loop, all
/// members multiplexed. Blocks until every member completed or failed.
LoadResult run_load(const LoadOptions& options);

}  // namespace sacha::net
