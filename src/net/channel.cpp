#include "net/channel.hpp"

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sacha::net {

double BurstLossParams::mean_loss() const {
  if (!enabled()) return loss_good;
  // Stationary distribution of the two-state chain: P(bad) =
  // p_enter / (p_enter + p_exit).
  const double p_bad = p_good_to_bad / (p_good_to_bad + p_bad_to_good);
  return (1.0 - p_bad) * loss_good + p_bad * loss_bad;
}

SharedBurstState::SharedBurstState(BurstLossParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

bool SharedBurstState::drop_message() {
  std::lock_guard<std::mutex> lock(mu_);
  ++messages_;
  if (!params_.enabled()) return false;
  if (in_burst_) {
    if (rng_.chance(params_.p_bad_to_good)) in_burst_ = false;
  } else if (rng_.chance(params_.p_good_to_bad)) {
    in_burst_ = true;
  }
  const double p = in_burst_ ? params_.loss_bad : params_.loss_good;
  if (p > 0.0 && rng_.chance(p)) {
    ++losses_;
    return true;
  }
  return false;
}

std::uint64_t SharedBurstState::messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return messages_;
}

std::uint64_t SharedBurstState::losses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return losses_;
}

bool SharedBurstState::in_burst() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_burst_;
}

ChannelParams ChannelParams::ideal() { return ChannelParams{}; }

ChannelParams ChannelParams::lab() {
  ChannelParams params;
  // Calibration: the PoC exchanges 83,378 messages (26,400 ICAP_config
  // commands, 28,488 ICAP_readback commands each answered by a frame, and
  // the MAC_checksum round trip). The measured 28.5 s minus the ~1.44 s
  // theoretical duration leaves ~27.06 s of stack/switch latency, i.e.
  // ~324.5 us per message (~650 us per command round trip).
  params.per_command_latency = 324'500;  // ns
  return params;
}

Channel::Channel(ChannelParams params, std::uint64_t seed)
    : params_(params), rng_(seed) {}

std::optional<sim::SimDuration> Channel::transfer(std::size_t payload_bytes) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& messages = registry.counter("sacha.net.messages");
  static obs::Counter& bytes = registry.counter("sacha.net.payload_bytes");
  static obs::Counter& lost = registry.counter("sacha.net.messages_lost");
  static obs::Histogram& latency =
      registry.histogram("sacha.net.transfer_sim_ns");

  ++messages_sent_;
  messages.add(1);
  bytes.add(payload_bytes);
  if (params_.loss_probability > 0.0 && rng_.chance(params_.loss_probability)) {
    ++messages_lost_;
    lost.add(1);
    if (log_enabled(LogLevel::kDebug)) {
      (log_debug() << "channel dropped message")
          .kv("payload_bytes", payload_bytes)
          .kv("lost_total", messages_lost_);
    }
    return std::nullopt;
  }
  // Correlated uplink loss: members sharing this chain advance it together,
  // so one uplink burst takes all of them out at once. The chain owns its
  // randomness — the per-channel stream is untouched (bit-identity when no
  // uplink is attached).
  if (params_.shared_burst && params_.shared_burst->drop_message()) {
    static obs::Counter& uplink_lost =
        registry.counter("sacha.net.uplink_losses");
    ++messages_lost_;
    ++burst_losses_;
    lost.add(1);
    uplink_lost.add(1);
    return std::nullopt;
  }
  // Gilbert–Elliott burst loss: advance the state chain per message, then
  // apply the state's loss probability. Everything stays behind enabled()
  // so a burst-free channel draws no extra randomness (seed-for-seed
  // bit-identity with the pre-fault-harness behaviour).
  if (params_.burst.enabled()) {
    static obs::Counter& burst_lost =
        registry.counter("sacha.net.burst_losses");
    if (in_burst_) {
      if (rng_.chance(params_.burst.p_bad_to_good)) in_burst_ = false;
    } else if (rng_.chance(params_.burst.p_good_to_bad)) {
      in_burst_ = true;
    }
    const double p = in_burst_ ? params_.burst.loss_bad
                               : params_.burst.loss_good;
    if (p > 0.0 && rng_.chance(p)) {
      ++messages_lost_;
      ++burst_losses_;
      lost.add(1);
      burst_lost.add(1);
      return std::nullopt;
    }
  }
  sim::SimDuration t = nominal_time(payload_bytes);
  if (params_.jitter_max > 0) {
    t += rng_.below(params_.jitter_max + 1);
  }
  if (params_.spike_probability > 0.0 &&
      rng_.chance(params_.spike_probability)) {
    static obs::Counter& spikes = registry.counter("sacha.net.jitter_spikes");
    ++jitter_spikes_;
    spikes.add(1);
    if (params_.spike_max > 0) t += rng_.below(params_.spike_max + 1);
  }
  latency.observe(t);
  transfer_time_ += t;
  return t;
}

sim::SimDuration Channel::nominal_time(std::size_t payload_bytes) const {
  return params_.wire.frame_time(payload_bytes) + params_.per_command_latency;
}

}  // namespace sacha::net
