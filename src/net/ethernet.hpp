// Ethernet-II framing and the Gigabit wire model.
//
// The proof of concept talks to the verifier over raw Gigabit Ethernet.
// EthFrame is the codec (MACs, EtherType, payload padded to the 46-byte
// minimum, FCS); WireModel converts frame sizes to wire occupancy at one
// byte per 8 ns, including the 20 bytes of preamble/SFD/inter-frame gap
// and the 18 bytes of header+FCS that surround the payload.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "sim/time.hpp"

namespace sacha::net {

using MacAddress = std::array<std::uint8_t, 6>;

inline constexpr std::uint16_t kSachaEtherType = 0x88B5;  // local experimental
inline constexpr std::size_t kMinPayload = 46;
inline constexpr std::size_t kMaxPayload = 1500;
inline constexpr std::size_t kHeaderBytes = 14;  // dst + src + ethertype
inline constexpr std::size_t kFcsBytes = 4;
inline constexpr std::size_t kPreambleAndGapBytes = 20;  // 7+1 preamble, 12 IFG

struct EthFrame {
  MacAddress dst{};
  MacAddress src{};
  std::uint16_t ethertype = kSachaEtherType;
  Bytes payload;  // unpadded logical payload

  /// Serialises header + payload (padded to kMinPayload) + FCS.
  Bytes encode() const;

  /// Parses and validates (length, FCS). The decoded payload includes any
  /// padding; the caller's protocol header carries the true length.
  static Result<EthFrame> decode(ByteSpan wire);

  /// Bytes the frame occupies on the wire, including preamble and IFG.
  std::size_t wire_bytes() const;
};

/// CRC-32 (IEEE 802.3, reflected) used as the FCS.
std::uint32_t crc32(ByteSpan data);

class WireModel {
 public:
  /// Gigabit Ethernet: 8 ns per byte. The default MTU is 2,000 payload
  /// bytes rather than the standard 1,500: the proof of concept's measured
  /// ICAP_readback command occupies 1,702 wire bytes in one frame (Table 3,
  /// A3 = 13,616 ns), so the authors' point-to-point link carried slightly
  /// oversized raw frames. Payloads above the MTU are fragmented.
  explicit WireModel(std::uint64_t ns_per_byte = 8,
                     std::size_t mtu_payload = 2'000)
      : ns_per_byte_(ns_per_byte), mtu_payload_(mtu_payload) {}

  /// Wire time of a frame carrying `payload_bytes` of logical payload.
  sim::SimDuration frame_time(std::size_t payload_bytes) const;

  /// Total wire bytes for a payload (padding + overhead included).
  std::size_t frame_bytes(std::size_t payload_bytes) const;

  std::size_t mtu_payload() const { return mtu_payload_; }

 private:
  std::uint64_t ns_per_byte_;
  std::size_t mtu_payload_;
};

}  // namespace sacha::net
