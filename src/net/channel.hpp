// Simulated network channel.
//
// The paper's headline timing result is that the protocol's measured
// duration (28.5 s) is dominated by per-command network latency, not by the
// 1.44 s of wire+device work. ChannelParams separates those effects: wire
// occupancy comes from WireModel; `per_command_latency` models the
// stack/switch/driver round-trip cost each command pays in a real lab
// (~493 us in the authors' setup); jitter and loss let the robustness tests
// exercise retransmission.
#pragma once

#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "net/ethernet.hpp"
#include "sim/time.hpp"

namespace sacha::net {

struct ChannelParams {
  WireModel wire{};
  sim::SimDuration per_command_latency = 0;  // host stack + propagation, per message
  sim::SimDuration jitter_max = 0;           // uniform extra [0, jitter_max]
  double loss_probability = 0.0;             // per message

  /// Ideal channel: wire time only (the paper's "theoretical duration").
  static ChannelParams ideal();
  /// The authors' lab network: per-command latency calibrated so the full
  /// protocol lands at the measured 28.5 s.
  static ChannelParams lab();
};

/// Point-to-point half-duplex message pipe with simulated timing.
class Channel {
 public:
  Channel(ChannelParams params, std::uint64_t seed);

  /// Sends a payload; returns the simulated duration the transfer occupied,
  /// or nullopt if the message was lost.
  std::optional<sim::SimDuration> transfer(std::size_t payload_bytes);

  /// Duration a successful transfer of this size takes (no jitter/loss).
  sim::SimDuration nominal_time(std::size_t payload_bytes) const;

  const ChannelParams& params() const { return params_; }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_lost() const { return messages_lost_; }

 private:
  ChannelParams params_;
  Rng rng_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_lost_ = 0;
};

}  // namespace sacha::net
