// Simulated network channel.
//
// The paper's headline timing result is that the protocol's measured
// duration (28.5 s) is dominated by per-command network latency, not by the
// 1.44 s of wire+device work. ChannelParams separates those effects: wire
// occupancy comes from WireModel; `per_command_latency` models the
// stack/switch/driver round-trip cost each command pays in a real lab
// (~493 us in the authors' setup); jitter and loss let the robustness tests
// exercise retransmission.
#pragma once

#include <memory>
#include <mutex>
#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "net/ethernet.hpp"
#include "sim/time.hpp"

namespace sacha::net {

/// Gilbert–Elliott two-state burst-loss model. Real links do not lose
/// packets independently: a congested switch or a fading radio link drops
/// them in bursts. The channel sits in a good or a bad state, transitions
/// per message, and applies the state's loss probability — the fault
/// harness drives this to exercise retransmission under correlated loss.
struct BurstLossParams {
  double p_good_to_bad = 0.0;  // per-message transition into the burst
  double p_bad_to_good = 0.3;  // per-message recovery from the burst
  double loss_good = 0.0;      // loss probability outside bursts
  double loss_bad = 1.0;       // loss probability inside bursts
  bool enabled() const { return p_good_to_bad > 0.0; }
  /// Stationary mean loss rate of the two-state chain.
  double mean_loss() const;
};

/// One Gilbert–Elliott chain *shared* by several channels: co-located fleet
/// members behind one congested uplink do not fade independently — when the
/// uplink enters a burst, every member's traffic drops together. Channels
/// holding the same SharedBurstState advance one common chain (one state
/// transition per message crossing the uplink, any member), so their losses
/// correlate in time. Thread-safe; the chain's randomness is its own (seeded
/// at construction), so attaching it never perturbs a member's session
/// streams. Cross-member loss *placement* depends on message interleaving
/// and is therefore only reproducible under serialised schedules.
class SharedBurstState {
 public:
  SharedBurstState(BurstLossParams params, std::uint64_t seed);

  /// Advances the chain one message; true when the uplink dropped it.
  bool drop_message();

  const BurstLossParams& params() const { return params_; }
  std::uint64_t messages() const;
  std::uint64_t losses() const;
  bool in_burst() const;

 private:
  mutable std::mutex mu_;
  BurstLossParams params_;
  Rng rng_;
  bool in_burst_ = false;
  std::uint64_t messages_ = 0;
  std::uint64_t losses_ = 0;
};

struct ChannelParams {
  WireModel wire{};
  sim::SimDuration per_command_latency = 0;  // host stack + propagation, per message
  sim::SimDuration jitter_max = 0;           // uniform extra [0, jitter_max]
  double loss_probability = 0.0;             // per message, independent
  /// Correlated (bursty) loss on top of the independent loss model.
  BurstLossParams burst{};
  /// Fleet-correlated loss: when set, every transfer also crosses this
  /// shared uplink chain (fault harness `uplink=` clause). Members of one
  /// uplink group hold the same object, so they burst together.
  std::shared_ptr<SharedBurstState> shared_burst{};
  /// Slow-member jitter spikes: with this probability a message pays an
  /// extra uniform [0, spike_max] delay (GC pause, queue build-up) on top
  /// of the regular jitter.
  double spike_probability = 0.0;
  sim::SimDuration spike_max = 0;

  /// Ideal channel: wire time only (the paper's "theoretical duration").
  static ChannelParams ideal();
  /// The authors' lab network: per-command latency calibrated so the full
  /// protocol lands at the measured 28.5 s.
  static ChannelParams lab();
};

/// Point-to-point half-duplex message pipe with simulated timing.
class Channel {
 public:
  Channel(ChannelParams params, std::uint64_t seed);

  /// Sends a payload; returns the simulated duration the transfer occupied,
  /// or nullopt if the message was lost.
  std::optional<sim::SimDuration> transfer(std::size_t payload_bytes);

  /// Duration a successful transfer of this size takes (no jitter/loss).
  sim::SimDuration nominal_time(std::size_t payload_bytes) const;

  const ChannelParams& params() const { return params_; }

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_lost() const { return messages_lost_; }
  /// Cumulative simulated time delivered messages occupied the channel
  /// (wire + latency + jitter, both directions). This is the time a
  /// blocking session driver spends waiting on the wire — and the time the
  /// fleet engine parks a session instead of occupying a worker.
  sim::SimDuration transfer_time() const { return transfer_time_; }
  /// Subset of messages_lost() dropped by the burst model (vs independent
  /// loss), and spike count — the fault benches audit loss composition.
  std::uint64_t burst_losses() const { return burst_losses_; }
  std::uint64_t jitter_spikes() const { return jitter_spikes_; }
  bool in_burst() const { return in_burst_; }

 private:
  ChannelParams params_;
  Rng rng_;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_lost_ = 0;
  std::uint64_t burst_losses_ = 0;
  std::uint64_t jitter_spikes_ = 0;
  sim::SimDuration transfer_time_ = 0;
  bool in_burst_ = false;  // Gilbert–Elliott channel state
};

}  // namespace sacha::net
