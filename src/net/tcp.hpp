// Real-socket transport: nonblocking TCP framing + readiness event loop.
//
// channel.hpp models what a link *costs* in simulated time; this layer
// moves actual bytes between attestd and remote provers. Three pieces:
//
//  - TcpChannel: one nonblocking connection carrying wire.hpp frames, with
//    explicit partial-I/O state (an outgoing byte queue drained as the
//    socket allows, a FrameDecoder fed from whatever read() produced).
//    Blocking conveniences exist for simple clients (sacha_cli --connect);
//    the server and the load generator use the nonblocking surface.
//  - SocketListener: bound + listening socket, ephemeral-port aware
//    (bind to port 0, read the kernel's choice back for ctest).
//  - EventLoop: level-triggered readiness multiplexing — epoll(7) on
//    Linux, with a poll(2) fallback selectable at runtime so the fallback
//    path stays tested on the same host.
//
// All sockets are CLOEXEC and use MSG_NOSIGNAL (a peer reset must surface
// as an error return, never SIGPIPE, with thousands of connections).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "net/wire.hpp"

namespace sacha::net {

/// RAII file descriptor (move-only).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close_fd(); }

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Relinquishes ownership without closing.
  int release();
  void close_fd();

 private:
  int fd_ = -1;
};

Status set_nonblocking(int fd);
Status set_nodelay(int fd);

/// Raises the RLIMIT_NOFILE soft limit toward `want` (capped at the hard
/// limit; best-effort). A 1000-connection bench needs more than the
/// classic 1024 default.
void raise_nofile_limit(std::uint64_t want);

struct HostPort {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "HOST:PORT" (the CLI --listen/--connect syntax).
Result<HostPort> parse_host_port(const std::string& spec);

/// One framed, nonblocking TCP connection.
class TcpChannel {
 public:
  TcpChannel() = default;
  /// Takes ownership; sets nonblocking + TCP_NODELAY (command/response
  /// rounds are latency-bound small frames — Nagle would serialise the
  /// pipeline).
  explicit TcpChannel(Socket socket);

  /// Starts a nonblocking connect. The connection may still be in flight
  /// on return (EINPROGRESS) — wait for writability, then check
  /// finish_connect().
  static Result<TcpChannel> connect(const std::string& host,
                                    std::uint16_t port);

  /// After the socket polls writable post-connect: ok() when established,
  /// error when the connect failed (SO_ERROR).
  Status finish_connect();

  int fd() const { return socket_.fd(); }
  bool open() const { return socket_.valid(); }
  void close() { socket_.close_fd(); }

  /// Queues a frame and drains as much of the outgoing buffer as the
  /// socket accepts right now. Error = fatal socket error (peer gone).
  Status send_frame(const Frame& frame);
  Status send(FrameKind kind, Bytes payload);
  /// Queues unframed bytes (the HTTP answer of the /metrics endpoint rides
  /// the same partial-write machinery as the framed traffic).
  Status send_raw(ByteSpan data);

  /// Drains the outgoing buffer as far as EAGAIN allows.
  Status flush_some();
  /// Bytes queued but not yet written — poll for writability while > 0.
  std::size_t pending_out() const { return out_.size() - out_consumed_; }
  bool want_write() const { return pending_out() > 0; }

  /// Reads whatever is available into the frame decoder. Sets *closed on
  /// orderly EOF or peer reset; other socket errors return error().
  Status read_some(bool* closed);
  /// Next complete frame; nullopt = need more bytes; error = stream
  /// poisoned (undecodable — tear the connection down).
  Result<std::optional<Frame>> next_frame() { return decoder_.next(); }
  const FrameDecoder& decoder() const { return decoder_; }

  // Blocking conveniences for simple clients: poll + retry until the
  // frame is fully sent / a frame arrives (timeout_ms < 0 = forever).
  Status send_frame_blocking(const Frame& frame, int timeout_ms = -1);
  Result<Frame> recv_frame_blocking(int timeout_ms = -1);

 private:
  Socket socket_;
  Bytes out_;
  std::size_t out_consumed_ = 0;
  FrameDecoder decoder_;
};

/// Bound, listening, nonblocking server socket.
class SocketListener {
 public:
  SocketListener() = default;

  /// Binds and listens. port 0 = kernel-assigned ephemeral port (read it
  /// back via bound_port()). With `reuseport`, SO_REUSEPORT is set before
  /// the bind so several processes can accept on one port and the kernel
  /// load-balances connections across them (shards sharing a front door);
  /// every listener on the port must set it.
  static Result<SocketListener> listen(const std::string& host,
                                       std::uint16_t port, int backlog = 1024,
                                       bool reuseport = false);

  int fd() const { return socket_.fd(); }
  std::uint16_t bound_port() const { return port_; }
  void close() { socket_.close_fd(); }

  /// Accepts one pending connection (nonblocking, CLOEXEC): nullopt when
  /// none pending, error on fatal accept failure.
  Result<std::optional<Socket>> accept_one();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  // EPOLLERR/EPOLLHUP (read() will surface the cause)
};

/// Level-triggered readiness multiplexer: epoll on Linux, poll fallback.
/// `prefer_epoll = false` forces the fallback (exercised in ctest so the
/// portable path cannot rot).
class EventLoop {
 public:
  explicit EventLoop(bool prefer_epoll = true);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool using_epoll() const { return epfd_ >= 0; }

  Status add(int fd, bool want_read, bool want_write);
  Status modify(int fd, bool want_read, bool want_write);
  void remove(int fd);
  std::size_t watched() const { return interest_.size(); }

  /// Blocks up to timeout_ms (-1 = forever) and fills `events` with every
  /// ready descriptor.
  Status wait(std::vector<PollEvent>& events, int timeout_ms);

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };
  int epfd_ = -1;
  std::unordered_map<int, Interest> interest_;
};

}  // namespace sacha::net
