#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "obs/metrics.hpp"

namespace sacha::net {

namespace {

/// Trace-context tail shared by HELLO and REPORT (proto >= 2):
/// [trace.hi u64][trace.lo u64][flags u8], flags bit 0 = sampled.
constexpr std::size_t kTraceTailBytes = 8 + 8 + 1;

void put_trace_tail(Bytes& out, const obs::TraceId& trace, bool sampled) {
  put_u64be(out, trace.hi);
  put_u64be(out, trace.lo);
  out.push_back(sampled ? 1 : 0);
}

void get_trace_tail(ByteSpan in, std::size_t offset, obs::TraceId& trace,
                    bool& sampled) {
  trace.hi = get_u64be(in, offset);
  trace.lo = get_u64be(in, offset + 8);
  sampled = (in[offset + 16] & 1) != 0;
}

/// One central place for the decode-error counter so every malformed-input
/// path is counted, whether or not it also poisons a stream.
void count_decode_error() {
  static obs::Counter& errors =
      obs::MetricsRegistry::global().counter("sacha.net.decode_errors");
  errors.add(1);
}

/// Bounded defensive string read: [u16 length][bytes]. Advances `offset`.
Result<std::string> get_string(ByteSpan in, std::size_t& offset,
                               std::size_t max_len, const char* what) {
  if (offset + 2 > in.size()) {
    return Result<std::string>::error(std::string("truncated ") + what +
                                      " length");
  }
  const std::size_t len = get_u16be(in, offset);
  offset += 2;
  if (len > max_len) {
    return Result<std::string>::error(std::string(what) + " too long");
  }
  if (offset + len > in.size()) {
    return Result<std::string>::error(std::string("truncated ") + what);
  }
  std::string out(reinterpret_cast<const char*>(in.data() + offset), len);
  offset += len;
  return out;
}

void put_string(Bytes& out, const std::string& s) {
  put_u16be(out, static_cast<std::uint16_t>(s.size()));
  append(out, ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()),
                       s.size()));
}

}  // namespace

Bytes encode_frame(const Frame& frame) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  put_u16be(out, kWireMagic);
  out.push_back(frame.version);
  out.push_back(static_cast<std::uint8_t>(frame.kind));
  put_u32be(out, static_cast<std::uint32_t>(frame.payload.size()));
  append(out, frame.payload);
  return out;
}

void FrameDecoder::feed(ByteSpan data) {
  // Compact lazily: once the consumed prefix outgrows the live tail, slide
  // the tail down so the buffer does not grow without bound on long
  // sessions (thousands of frames through one connection).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  append(buffer_, data);
}

Result<std::optional<Frame>> FrameDecoder::next() {
  using Out = Result<std::optional<Frame>>;
  if (poisoned_) {
    return Out::error("frame stream poisoned by earlier decode error");
  }
  // Poisoning is terminal for the stream, so count the transition exactly
  // once per connection; individual malformed inputs count separately.
  const auto poison = [this](std::string message) {
    poisoned_ = true;
    count_decode_error();
    static obs::Counter& poisoned_conns =
        obs::MetricsRegistry::global().counter("sacha.net.poisoned_conns");
    poisoned_conns.add(1);
    return Out::error(std::move(message));
  };
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Out(std::nullopt);
  const ByteSpan in(buffer_.data() + consumed_, available);
  const std::uint16_t magic = get_u16be(in, 0);
  if (magic != kWireMagic) {
    return poison("bad frame magic");
  }
  const std::uint8_t version = in[2];
  if (version < kWireVersionMin || version > kWireVersion) {
    return poison("unsupported wire version " + std::to_string(version));
  }
  const std::uint8_t kind = in[3];
  if (!frame_kind_valid(kind)) {
    return poison("unknown frame kind " + std::to_string(kind));
  }
  const std::uint32_t length = get_u32be(in, 4);
  if (length > kMaxFramePayload) {
    return poison("frame payload length " + std::to_string(length) +
                  " exceeds bound");
  }
  if (available < kFrameHeaderBytes + length) return Out(std::nullopt);
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.version = version;
  frame.payload.assign(in.begin() + kFrameHeaderBytes,
                       in.begin() + kFrameHeaderBytes + length);
  consumed_ += kFrameHeaderBytes + length;
  return Out(std::optional<Frame>(std::move(frame)));
}

// -- HELLO ------------------------------------------------------------------

Bytes HelloMsg::encode() const {
  Bytes out;
  put_u16be(out, proto);
  out.push_back(static_cast<std::uint8_t>(scale));
  out.push_back(0);  // reserved
  put_u32be(out, member_index);
  put_u64be(out, base_seed);
  put_u64be(out, session_seed);
  put_u64be(out, std::bit_cast<std::uint64_t>(flip_probability));
  put_string(out, device_id);
  if (proto >= 2) put_trace_tail(out, trace, sampled);
  return out;
}

Result<HelloMsg> HelloMsg::decode(ByteSpan payload) {
  constexpr std::size_t kFixed = 2 + 1 + 1 + 4 + 8 + 8 + 8;
  if (payload.size() < kFixed + 2) {
    return Result<HelloMsg>::error("truncated HELLO");
  }
  HelloMsg msg;
  msg.proto = get_u16be(payload, 0);
  const std::uint8_t scale = payload[2];
  if (scale > static_cast<std::uint8_t>(DeviceScale::kVirtex6)) {
    return Result<HelloMsg>::error("unknown device scale " +
                                   std::to_string(scale));
  }
  msg.scale = static_cast<DeviceScale>(scale);
  msg.member_index = get_u32be(payload, 4);
  msg.base_seed = get_u64be(payload, 8);
  msg.session_seed = get_u64be(payload, 16);
  msg.flip_probability = std::bit_cast<double>(get_u64be(payload, 24));
  if (!(msg.flip_probability >= 0.0 && msg.flip_probability <= 1.0)) {
    return Result<HelloMsg>::error("flip probability out of range");
  }
  std::size_t offset = kFixed;
  auto id = get_string(payload, offset, 256, "device id");
  if (!id.ok()) return Result<HelloMsg>::error(id.message());
  msg.device_id = std::move(id).take();
  // Version handling keys on the message's own proto field: a v1 HELLO
  // ends at the device id; v2 requires the trace-context tail.
  if (msg.proto >= 2) {
    if (payload.size() - offset < kTraceTailBytes) {
      return Result<HelloMsg>::error("truncated HELLO trace context");
    }
    get_trace_tail(payload, offset, msg.trace, msg.sampled);
    offset += kTraceTailBytes;
  }
  if (offset != payload.size()) {
    return Result<HelloMsg>::error("trailing bytes after HELLO");
  }
  return msg;
}

Bytes HelloAckMsg::encode() const {
  Bytes out;
  put_u16be(out, proto);
  put_u32be(out, command_count);
  // Shard redirect tail (v4): only on the wire when present, so a v1-v3
  // peer that is never redirected sees the exact 6-byte ACK it always has.
  if (is_redirect()) {
    put_string(out, redirect_host);
    put_u16be(out, redirect_port);
  }
  return out;
}

Result<HelloAckMsg> HelloAckMsg::decode(ByteSpan payload) {
  if (payload.size() < 6) {
    return Result<HelloAckMsg>::error("bad HELLO_ACK size");
  }
  HelloAckMsg msg;
  msg.proto = get_u16be(payload, 0);
  msg.command_count = get_u32be(payload, 2);
  // Presence of the redirect tail is keyed on the remaining byte count —
  // 0 from a plain accept, a length-prefixed host + u16 port from a v4
  // coordinator, anything else malformed.
  if (payload.size() == 6) return msg;
  std::size_t offset = 6;
  auto host = get_string(payload, offset, 256, "redirect host");
  if (!host.ok()) return Result<HelloAckMsg>::error(host.message());
  msg.redirect_host = std::move(host).take();
  if (msg.redirect_host.empty()) {
    return Result<HelloAckMsg>::error("empty redirect host");
  }
  if (payload.size() - offset != 2) {
    return Result<HelloAckMsg>::error("trailing bytes after HELLO_ACK");
  }
  msg.redirect_port = get_u16be(payload, offset);
  return msg;
}

// -- REPORT -----------------------------------------------------------------

Bytes ReportMsg::encode() const {
  Bytes out;
  out.push_back(protocol_ok ? 1 : 0);
  out.push_back(mac_ok ? 1 : 0);
  out.push_back(config_ok ? 1 : 0);
  out.push_back(static_cast<std::uint8_t>(failure));
  out.push_back(mac_present ? 1 : 0);
  append(out, ByteSpan(mac.data(), mac.size()));
  put_u64be(out, commands);
  put_u64be(out, wall_ns);
  put_string(out, detail);
  put_trace_tail(out, trace, sampled);
  return out;
}

Result<ReportMsg> ReportMsg::decode(ByteSpan payload) {
  constexpr std::size_t kFixed = 5 + sizeof(crypto::Mac) + 8 + 8;
  if (payload.size() < kFixed + 2) {
    return Result<ReportMsg>::error("truncated REPORT");
  }
  ReportMsg msg;
  msg.protocol_ok = payload[0] != 0;
  msg.mac_ok = payload[1] != 0;
  msg.config_ok = payload[2] != 0;
  if (payload[3] > static_cast<std::uint8_t>(core::FailureKind::kPeerDisconnect)) {
    return Result<ReportMsg>::error("unknown failure kind " +
                                    std::to_string(payload[3]));
  }
  msg.failure = static_cast<core::FailureKind>(payload[3]);
  msg.mac_present = payload[4] != 0;
  std::memcpy(msg.mac.data(), payload.data() + 5, sizeof(crypto::Mac));
  msg.commands = get_u64be(payload, 5 + sizeof(crypto::Mac));
  msg.wall_ns = get_u64be(payload, 5 + sizeof(crypto::Mac) + 8);
  std::size_t offset = kFixed;
  auto detail = get_string(payload, offset, 1024, "report detail");
  if (!detail.ok()) return Result<ReportMsg>::error(detail.message());
  msg.detail = std::move(detail).take();
  // REPORT has no proto field of its own; presence of the trace-context
  // tail is keyed on the remaining byte count — 0 from a v1 sender, the
  // exact tail size from v2, anything else is malformed.
  const std::size_t remaining = payload.size() - offset;
  if (remaining == kTraceTailBytes) {
    get_trace_tail(payload, offset, msg.trace, msg.sampled);
    offset += kTraceTailBytes;
  } else if (remaining != 0) {
    return Result<ReportMsg>::error("trailing bytes after REPORT");
  }
  return msg;
}

// -- ERROR ------------------------------------------------------------------

// -- UPDATE (v3) ------------------------------------------------------------

Bytes UpdateOfferMsg::encode() const {
  Bytes out;
  put_u64be(out, version);
  put_u32be(out, static_cast<std::uint32_t>(manifest.size()));
  append(out, manifest);
  return out;
}

Result<UpdateOfferMsg> UpdateOfferMsg::decode(ByteSpan payload) {
  if (payload.size() < 12) {
    return Result<UpdateOfferMsg>::error("truncated UPDATE_OFFER");
  }
  UpdateOfferMsg msg;
  msg.version = get_u64be(payload, 0);
  const std::size_t len = get_u32be(payload, 8);
  if (len > kMaxFramePayload || 12 + len != payload.size()) {
    return Result<UpdateOfferMsg>::error("bad UPDATE_OFFER manifest length");
  }
  msg.manifest.assign(payload.begin() + 12, payload.begin() + 12 + len);
  return msg;
}

Bytes UpdateStatusMsg::encode() const {
  Bytes out;
  put_u64be(out, version);
  out.push_back(accepted ? 1 : 0);
  put_string(out, state);
  put_string(out, detail);
  return out;
}

Result<UpdateStatusMsg> UpdateStatusMsg::decode(ByteSpan payload) {
  if (payload.size() < 8 + 1 + 2 + 2) {
    return Result<UpdateStatusMsg>::error("truncated UPDATE_STATUS");
  }
  UpdateStatusMsg msg;
  msg.version = get_u64be(payload, 0);
  msg.accepted = (payload[8] & 1) != 0;
  std::size_t offset = 9;
  auto state = get_string(payload, offset, 64, "update status state");
  if (!state.ok()) return Result<UpdateStatusMsg>::error(state.message());
  msg.state = std::move(state).take();
  auto detail = get_string(payload, offset, 1024, "update status detail");
  if (!detail.ok()) return Result<UpdateStatusMsg>::error(detail.message());
  msg.detail = std::move(detail).take();
  if (offset != payload.size()) {
    return Result<UpdateStatusMsg>::error("trailing bytes after UPDATE_STATUS");
  }
  return msg;
}

Bytes ErrorMsg::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(failure));
  put_string(out, detail);
  return out;
}

Result<ErrorMsg> ErrorMsg::decode(ByteSpan payload) {
  if (payload.size() < 3) {
    return Result<ErrorMsg>::error("truncated ERROR");
  }
  if (payload[0] > static_cast<std::uint8_t>(core::FailureKind::kPeerDisconnect)) {
    return Result<ErrorMsg>::error("unknown failure kind " +
                                   std::to_string(payload[0]));
  }
  ErrorMsg msg;
  msg.failure = static_cast<core::FailureKind>(payload[0]);
  std::size_t offset = 1;
  auto detail = get_string(payload, offset, 1024, "error detail");
  if (!detail.ok()) return Result<ErrorMsg>::error(detail.message());
  msg.detail = std::move(detail).take();
  if (offset != payload.size()) {
    return Result<ErrorMsg>::error("trailing bytes after ERROR");
  }
  return msg;
}

}  // namespace sacha::net
