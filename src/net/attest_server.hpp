// attestd: the attestation service core.
//
// One event-loop thread owns every socket: it accepts provers off the
// listener (epoll, poll fallback), assembles wire frames from nonblocking
// reads, issues each session's pipelined command window, and writes
// whatever the verify workers produced. A fixed worker pool mirrors the
// fleet engine's verify lanes: each connection homes on `conn_id % lanes`,
// workers drain their own lane first and steal from the longest backlog
// otherwise, and every drain interleaves up to verify_batch_width
// members' streaming CMAC folds through one crypto::CmacBatch — the same
// multi-stream absorb, the same occupancy metrics
// (core::note_batch_occupancy), readiness now coming from the kernel
// instead of the virtual-time heap.
//
// The split follows SessionMachine's concurrency contract: the loop
// thread is every session's drive strand (command(i) reads the frozen
// schedule), the worker draining its lane is the verify strand
// (on_response writes the absorb state); finish() runs on the worker only
// after the last response was absorbed, when the loop has nothing left to
// issue.
//
// A connection whose first byte is 'G' or 'H' (GET/HEAD) is an HTTP
// request, served on the loop thread and closed: /metrics (Prometheus
// text), /healthz (event-loop liveness + lane queue depths), /statusz
// (per-connection state table, recent quarantines, uptime and tier info
// as JSON), /tracez (ring of the most recent sampled cross-process
// timelines). A prover that vanishes mid-session is quarantined —
// counted, logged, its slot reclaimed — never a crash or a leaked
// session. Every finished session writes one structured access-log line
// and feeds the SLO tracker (latency objective + error-budget gauges).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "crypto/sha256.hpp"
#include "net/provision.hpp"

namespace sacha::net {

struct AttestServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-assigned ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Verify workers (= lanes). 0 = core::default_fleet_pool().
  std::size_t pool_size = 0;
  /// Members interleaved per CmacBatch drain (clamped to [1, 8]).
  std::size_t verify_batch_width = 4;
  /// Commands in flight per session before waiting for responses. The
  /// schedule is frozen at HELLO, so pipelining is free; the window bounds
  /// per-connection kernel buffer occupancy at fleet scale.
  std::size_t command_window = 32;
  /// Idle cut-off per connection: no bytes in either direction for this
  /// long and the session is quarantined as kTimeoutExhausted (0 = never).
  std::uint64_t session_timeout_ms = 30000;
  int listen_backlog = 1024;
  /// Bind with SO_REUSEPORT so several attestd processes can accept on one
  /// port (kernel-level connection spreading; the shard layer's fallback
  /// when no coordinator fronts the fleet). Hard error where unsupported.
  bool reuseport = false;
  /// Golden-model disk cache (`.sgm` files). Empty = every verifier builds
  /// or interns its model in-process; set = provisioning goes through
  /// GoldenModel::shared_cached (intern -> disk -> build+save).
  std::string model_cache_dir;
  /// With model_cache_dir: map cached models MAP_SHARED instead of heap-
  /// loading them, so colocated shard processes share one page-cache copy
  /// of the flat tables. No-op off Linux / under SACHA_PORTABLE.
  bool model_map = false;
  /// Force the poll(2) fallback even where epoll exists (tested in ctest).
  bool prefer_epoll = true;
  /// Serve HTTP (GET/HEAD /metrics /healthz /statusz /tracez) on the same
  /// port.
  bool metrics_endpoint = true;
  /// Head-sampling rate override: >= 0 sets obs::Sampler::global() at
  /// start() (0 = trace nothing, 1 = everything); negative leaves the
  /// process-wide rate (SACHA_OBS_SAMPLE) untouched. The client's HELLO
  /// decision still wins per session; this knob covers server-initiated
  /// tooling and keeps the two processes' flags settable from one place.
  double trace_sample = -1.0;
  /// SLO: sessions slower than this (or failed) burn error budget.
  std::uint64_t slo_latency_ms = 250;
  /// SLO: target good fraction (error budget = 1 - target).
  double slo_target = 0.999;
  /// Sampled cross-process timelines retained for /tracez.
  std::size_t tracez_capacity = 32;
  /// Staged OTA offer: an update::SignedManifest::encode() blob, offered
  /// (UPDATE_OFFER) after every PASSING session to peers that spoke wire
  /// v3+. Empty = no update staged. Opaque here: sacha_net sits below
  /// sacha_update, so the server ships bytes and counts answers; the
  /// receiving client verifies the signature against its own trusted root.
  Bytes update_offer{};
  /// Manifest version advertised with the offer (for logs and refusals).
  std::uint64_t update_version = 0;
};

struct AttestServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_attested = 0;
  std::uint64_t sessions_failed = 0;
  /// Sessions quarantined because the peer vanished or the stream broke
  /// (disconnect, poisoned framing, idle timeout).
  std::uint64_t quarantined = 0;
  std::uint64_t http_requests = 0;
  /// Connections open right now.
  std::uint64_t active_connections = 0;
  /// Largest concurrent-connection count observed.
  std::uint64_t peak_connections = 0;
  std::uint64_t verify_steals = 0;
  std::uint64_t verify_batches = 0;
  /// OTA offer accounting (update_offer staged in the options).
  std::uint64_t updates_offered = 0;
  std::uint64_t updates_accepted = 0;
  std::uint64_t updates_rejected = 0;
  /// HELLOs refused because the server was draining.
  std::uint64_t drain_refusals = 0;
  /// Golden-model provisioning by cache tier (ModelCacheConfig path):
  /// process intern hit / disk load (heap) / disk load (mmap) / fresh build.
  std::uint64_t models_interned = 0;
  std::uint64_t models_loaded = 0;
  std::uint64_t models_mapped = 0;
  std::uint64_t models_built = 0;
  /// Hash-chained audit entries recorded (== completed sessions).
  std::uint64_t audit_entries = 0;
  bool draining = false;
};

class AttestServer {
 public:
  explicit AttestServer(const AttestServerOptions& options = {});
  ~AttestServer();
  AttestServer(const AttestServer&) = delete;
  AttestServer& operator=(const AttestServer&) = delete;

  /// Binds, listens, and starts the loop + worker threads.
  Status start();
  /// Stops the threads and closes every connection. Idempotent.
  void stop();

  /// Graceful shutdown, phase one: refuse new HELLOs (typed ERROR,
  /// kDeviceError "draining"), keep serving HTTP (healthz reports
  /// "draining"), and let in-flight sessions run to completion — bounded
  /// by `drain_ms` (0 = unbounded), after which stragglers are closed and
  /// quarantined. Non-blocking; poll drained() then call stop().
  void begin_drain(std::uint64_t drain_ms);
  bool draining() const;
  /// True once draining and no session connections remain.
  bool drained() const;

  /// Bound port (valid after start(); the ephemeral-port answer).
  std::uint16_t port() const { return port_; }
  bool using_epoll() const { return using_epoll_; }
  AttestServerStats stats() const;

  /// Head digest of the server's hash-chained audit log (all-zero before
  /// any session completed). The shard coordinator folds every shard's
  /// head into the fleet Merkle root; exposed in /statusz as hex too.
  crypto::Sha256Digest audit_head() const;
  /// Recomputes the audit chain; false if history was tampered with.
  bool audit_verify() const;

 private:
  struct Impl;
  Impl* impl_ = nullptr;
  AttestServerOptions options_;
  std::uint16_t port_ = 0;
  bool using_epoll_ = false;
};

}  // namespace sacha::net
