#include "net/provision.hpp"

#include "common/rng.hpp"

namespace sacha::net {

std::string member_id(std::size_t index) {
  return "node-" + std::to_string(index);
}

DeviceScale member_scale(const FleetSpec& spec, std::size_t index) {
  if (!spec.mixed) return spec.scale;
  return index % 2 == 0 ? DeviceScale::kSmall : DeviceScale::kSoftcore;
}

std::uint64_t member_session_seed(const FleetSpec& spec, std::size_t index) {
  return derive_seed(spec.session_seed, member_id(index), /*lane=*/0);
}

attacks::AttackEnv member_env(DeviceScale scale, std::uint64_t env_seed) {
  if (scale == DeviceScale::kVirtex6) {
    return attacks::AttackEnv::virtex6(env_seed);
  }
  attacks::AttackEnv env = attacks::AttackEnv::small(env_seed);
  if (scale == DeviceScale::kSoftcore) {
    // Softcore device with a matching 2-partition floorplan (the same
    // construction sacha_cli --device softcore uses).
    const auto device = fabric::DeviceModel::softcore_test_device();
    fabric::Floorplan plan(device);
    plan.add_partition({"StatPart",
                        fabric::PartitionKind::kStatic,
                        fabric::FrameRange{0, 6},
                        {.clb = 60, .bram18 = 4, .iob = 8, .dcm = 1, .icap = 1}});
    plan.add_partition({"DynPart",
                        fabric::PartitionKind::kDynamic,
                        fabric::FrameRange{6, 30},
                        {.clb = 340, .bram18 = 12, .iob = 24, .dcm = 1}});
    env.plan = std::move(plan);
  }
  return env;
}

HelloMsg member_hello(const FleetSpec& spec, std::size_t index) {
  HelloMsg hello;
  hello.scale = member_scale(spec, index);
  hello.member_index = static_cast<std::uint32_t>(index);
  hello.base_seed = spec.base_seed;
  hello.session_seed = member_session_seed(spec, index);
  hello.flip_probability = spec.flip_probability;
  hello.device_id = member_id(index);
  // Wire sessions key their timeline on (device id, session seed) — the
  // nonce lives server-side and is not known at HELLO time. Minted here so
  // every layer (client spans, server spans, audit entries) agrees on the
  // id; the sampling decision is stamped by the sender.
  hello.trace = obs::make_trace_id(hello.device_id, hello.session_seed);
  return hello;
}

core::SachaVerifier verifier_for(const HelloMsg& hello) {
  return member_env(hello.scale, hello.base_seed + hello.member_index)
      .make_verifier();
}

core::SachaVerifier verifier_for(const HelloMsg& hello,
                                 const ModelCacheConfig& cache,
                                 bitstream::GoldenModel::CacheSource* source) {
  const attacks::AttackEnv env =
      member_env(hello.scale, hello.base_seed + hello.member_index);
  if (cache.cache_dir.empty()) {
    // No disk tier requested: the plain construction (which itself interns
    // via GoldenModel::shared inside SachaVerifier's model path).
    if (source != nullptr) {
      *source = bitstream::GoldenModel::CacheSource::kBuilt;
    }
    return env.make_verifier();
  }
  auto model = bitstream::GoldenModel::shared_cached(
      env.plan, env.static_spec, env.app_spec, cache.cache_dir, source,
      cache.prefer_mapped);
  return core::SachaVerifier(env.plan, std::move(model), env.key, env.seed,
                             env.verifier_options);
}

core::SachaProver prover_for(const HelloMsg& hello) {
  return member_env(hello.scale, hello.base_seed + hello.member_index)
      .make_prover();
}

}  // namespace sacha::net
