#include "net/attest_server.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "core/audit.hpp"
#include "core/fleet_engine.hpp"
#include "core/session.hpp"
#include "crypto/aes.hpp"
#include "crypto/cmac.hpp"
#include "net/tcp.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace sacha::net {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ms_since(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

std::string json_str(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// RESPONSE frame payload: u8 has_response + optional Response::encode().
Result<std::optional<core::Response>> parse_response_payload(ByteSpan payload) {
  using Out = Result<std::optional<core::Response>>;
  if (payload.empty()) return Out::error("empty RESPONSE payload");
  if (payload[0] == 0) {
    if (payload.size() != 1) return Out::error("trailing bytes after empty RESPONSE");
    return Out(std::optional<core::Response>(std::nullopt));
  }
  auto decoded =
      core::Response::decode(ByteSpan(payload.data() + 1, payload.size() - 1));
  if (!decoded.ok()) return Out::error(decoded.message());
  return Out(std::optional<core::Response>(std::move(decoded).take()));
}

Bytes error_frame_payload(core::FailureKind kind, std::string detail) {
  ErrorMsg msg;
  msg.failure = kind;
  msg.detail = std::move(detail);
  return msg.encode();
}

}  // namespace

struct AttestServer::Impl {
  /// One prover connection (or one HTTP scrape). Shared between the loop
  /// thread (socket I/O, command issuance — the drive strand) and at most
  /// one verify worker at a time (response absorption — the verify
  /// strand); `mu` guards the fields both touch.
  struct Conn {
    std::uint64_t id = 0;
    TcpChannel channel;
    enum class State { kSniff, kRunning, kHttp } state = State::kSniff;
    HelloMsg hello;
    std::optional<core::SachaVerifier> verifier;
    std::optional<core::VerifierSession> session;
    std::size_t lane = 0;
    Clock::time_point last_activity = Clock::now();
    Clock::time_point session_start = Clock::now();
    /// RESPONSE frames seen by the loop; bounds the pipelined window
    /// (issued <= responses_seen + command_window).
    std::size_t responses_seen = 0;
    std::string http_request;  // bytes accumulated in HTTP mode

    std::mutex mu;
    std::deque<std::optional<core::Response>> inbox;
    bool queued = false;         // sitting in a lane's ready queue
    bool verify_active = false;  // a worker is draining this conn
    bool finished = false;       // report produced (or quarantined)
    bool want_close = false;     // close once the outgoing buffer drains
    /// UPDATE_OFFER followed the REPORT; the connection stays open for
    /// exactly one UPDATE_STATUS answer (or the idle timeout).
    bool offer_pending = false;
    std::vector<Frame> outbox;   // worker-produced frames, loop-sent
  };

  explicit Impl(const AttestServerOptions& opts)
      : opts(opts),
        loop(opts.prefer_epoll),
        slo({.latency_objective_ns = opts.slo_latency_ms * 1'000'000,
             .target = opts.slo_target}) {}

  AttestServerOptions opts;
  SocketListener listener;
  EventLoop loop;
  obs::SloTracker slo;
  Clock::time_point start_time = Clock::now();
  /// Loop-liveness heartbeat for /healthz: stamped every loop iteration.
  std::atomic<std::uint64_t> last_tick_ms{0};

  /// One /statusz quarantine-table entry. Written and read on the loop
  /// thread only (close_conn and serve_http both run there) — no lock.
  struct QuarantineEntry {
    std::uint64_t conn_id = 0;
    std::string device;
    std::string trace;
    std::uint64_t at_ms = 0;  // ms since server start
  };
  std::deque<QuarantineEntry> recent_quarantines;  // loop-thread-only

  /// /tracez ring: the most recent sampled cross-process timelines
  /// (verifier-side spans; the prover half lives in the client process).
  /// finish_session runs on verify workers, so this one takes a mutex.
  struct TracezEntry {
    std::string device;
    obs::TraceId trace{};
    std::uint64_t wall_ns = 0;
    bool attested = false;
    std::vector<obs::SpanRecord> spans;
  };
  std::mutex tracez_mu;
  std::deque<TracezEntry> tracez;
  int wake_rd = -1;
  int wake_wr = -1;
  std::thread loop_thread;
  std::vector<std::thread> workers;
  std::atomic<bool> stopping{false};
  /// Graceful-shutdown state: once draining, new HELLOs are refused and
  /// in-flight sessions run out; past the deadline (ms since start_time,
  /// 0 = none) stragglers are closed and quarantined.
  std::atomic<bool> draining{false};
  std::atomic<std::uint64_t> drain_deadline_ms{0};

  // Verify-lane scheduler (mirrors the fleet engine's lanes + stealing).
  std::mutex sched_mu;
  std::condition_variable sched_cv;
  std::vector<std::deque<std::shared_ptr<Conn>>> lanes;

  // Conns whose outbox a worker filled; serviced by the loop on wake.
  std::mutex wake_mu;
  std::vector<std::shared_ptr<Conn>> wake_list;

  // Loop-thread-only connection table.
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 0;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> attested{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> quarantined{0};
  std::atomic<std::uint64_t> http_requests{0};
  std::atomic<std::uint64_t> peak{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> active{0};  // conns.size(), readable off-loop
  std::atomic<std::uint64_t> updates_offered{0};
  std::atomic<std::uint64_t> updates_accepted{0};
  std::atomic<std::uint64_t> updates_rejected{0};
  std::atomic<std::uint64_t> drain_refusals{0};
  // Golden-model provisioning tier hits (model_cache_dir path; without a
  // cache dir every provision counts as built).
  std::atomic<std::uint64_t> models_interned{0};
  std::atomic<std::uint64_t> models_loaded{0};
  std::atomic<std::uint64_t> models_mapped{0};
  std::atomic<std::uint64_t> models_built{0};

  /// Hash-chained record of every finished session. finish_session runs on
  /// verify workers, so appends and head reads take the mutex.
  std::mutex audit_mu;
  core::AuditLog audit;

  void wake() {
    const char byte = 1;
    (void)!::write(wake_wr, &byte, 1);  // EAGAIN = already pending, fine
  }

  obs::Gauge& connections_gauge() {
    static obs::Gauge& g =
        obs::MetricsRegistry::global().gauge("sacha.attestd.connections");
    return g;
  }

  // ---- loop thread ---------------------------------------------------------

  void loop_main() {
    std::vector<PollEvent> events;
    while (!stopping.load(std::memory_order_relaxed)) {
      last_tick_ms.store(ms_since(start_time), std::memory_order_relaxed);
      (void)loop.wait(events, /*timeout_ms=*/100);
      if (stopping.load(std::memory_order_relaxed)) break;
      for (const PollEvent& ev : events) {
        if (ev.fd == listener.fd()) {
          accept_pending();
        } else if (ev.fd == wake_rd) {
          drain_wake_pipe();
        } else {
          auto it = conns.find(ev.fd);
          if (it == conns.end()) continue;
          std::shared_ptr<Conn> conn = it->second;
          if (ev.writable || ev.error) on_writable(conn);
          if ((ev.readable || ev.error) && conns.count(ev.fd)) {
            on_readable(conn);
          }
        }
      }
      service_wake_list();
      scan_timeouts();
      scan_drain();
    }
    // Shutdown: close everything so workers' shared_ptrs are the only
    // remaining owners.
    for (auto& [fd, conn] : conns) {
      loop.remove(fd);
      conn->channel.close();
    }
    conns.clear();
    connections_gauge().set(0);
  }

  void accept_pending() {
    for (;;) {
      auto accepted_sock = listener.accept_one();
      if (!accepted_sock.ok()) {
        log_warn() << "attestd accept failed: " << accepted_sock.message();
        return;
      }
      if (!accepted_sock.value().has_value()) return;  // drained
      auto conn = std::make_shared<Conn>();
      conn->id = next_conn_id++;
      conn->channel = TcpChannel(*std::move(accepted_sock).take());
      conn->lane = static_cast<std::size_t>(conn->id % lanes.size());
      const int fd = conn->channel.fd();
      conns.emplace(fd, conn);
      (void)loop.add(fd, /*want_read=*/true, /*want_write=*/false);
      accepted.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& accepted_ctr =
          obs::MetricsRegistry::global().counter("sacha.attestd.accepted");
      accepted_ctr.add(1);
      active.store(conns.size(), std::memory_order_relaxed);
      connections_gauge().set(static_cast<std::int64_t>(conns.size()));
      std::uint64_t prev = peak.load(std::memory_order_relaxed);
      while (conns.size() > prev &&
             !peak.compare_exchange_weak(prev, conns.size())) {
      }
    }
  }

  void drain_wake_pipe() {
    char buf[256];
    while (::read(wake_rd, buf, sizeof(buf)) > 0) {
    }
  }

  void service_wake_list() {
    std::vector<std::shared_ptr<Conn>> ready;
    {
      std::lock_guard<std::mutex> lock(wake_mu);
      ready.swap(wake_list);
    }
    for (const auto& conn : ready) {
      if (!conn->channel.open()) continue;
      std::vector<Frame> frames;
      bool close_after = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        frames.swap(conn->outbox);
        close_after = conn->want_close;
      }
      bool dead = false;
      for (const Frame& frame : frames) {
        if (!conn->channel.send_frame(frame).ok()) {
          dead = true;
          break;
        }
      }
      if (dead) {
        close_conn(conn, /*mid_session=*/false);
        continue;
      }
      if (close_after && !conn->channel.want_write()) {
        close_conn(conn, /*mid_session=*/false);
      } else {
        update_interest(conn);
      }
    }
  }

  void update_interest(const std::shared_ptr<Conn>& conn) {
    if (!conn->channel.open()) return;
    (void)loop.modify(conn->channel.fd(), /*want_read=*/true,
                      conn->channel.want_write());
  }

  void on_writable(const std::shared_ptr<Conn>& conn) {
    if (!conn->channel.open()) return;
    if (!conn->channel.flush_some().ok()) {
      close_conn(conn, mid_session(conn));
      return;
    }
    bool close_after;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      close_after = conn->want_close;
    }
    if (close_after && !conn->channel.want_write()) {
      close_conn(conn, /*mid_session=*/false);
      return;
    }
    update_interest(conn);
  }

  bool mid_session(const std::shared_ptr<Conn>& conn) {
    std::lock_guard<std::mutex> lock(conn->mu);
    return conn->session.has_value() && !conn->finished;
  }

  void on_readable(const std::shared_ptr<Conn>& conn) {
    conn->last_activity = Clock::now();
    if (conn->state == Conn::State::kSniff && !sniff(conn)) return;
    if (conn->state == Conn::State::kHttp) {
      serve_http(conn);
      return;
    }
    bool closed = false;
    if (!conn->channel.read_some(&closed).ok()) {
      close_conn(conn, mid_session(conn));
      return;
    }
    for (;;) {
      auto frame = conn->channel.next_frame();
      if (!frame.ok()) {
        // Undecodable stream: typed abort, then drop the connection.
        (void)conn->channel.send(
            FrameKind::kError,
            error_frame_payload(core::FailureKind::kDecodeError,
                                frame.message()));
        close_conn(conn, mid_session(conn));
        return;
      }
      if (!frame.value().has_value()) break;
      if (!handle_frame(conn, *std::move(frame).take())) return;
    }
    if (closed) {
      close_conn(conn, mid_session(conn));
      return;
    }
    update_interest(conn);
  }

  /// First-byte dispatch: frames start 0x53 ('S' of the magic); HTTP
  /// requests start 'G' (GET) or 'H' (HEAD). Returns false when the caller
  /// should stop (peer already gone).
  bool sniff(const std::shared_ptr<Conn>& conn) {
    char c = 0;
    const ssize_t n = ::recv(conn->channel.fd(), &c, 1, MSG_PEEK);
    if (n == 0) {
      close_conn(conn, /*mid_session=*/false);
      return false;
    }
    if (n < 0) return false;  // EAGAIN: try again on next readiness
    conn->state = (opts.metrics_endpoint && (c == 'G' || c == 'H'))
                      ? Conn::State::kHttp
                      : Conn::State::kRunning;
    return true;
  }

  void serve_http(const std::shared_ptr<Conn>& conn) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(conn->channel.fd(), buf, sizeof(buf), 0);
      if (n > 0) {
        conn->http_request.append(buf, static_cast<std::size_t>(n));
        if (conn->http_request.size() > 16384) {
          close_conn(conn, /*mid_session=*/false);
          return;
        }
        continue;
      }
      if (n == 0) {
        close_conn(conn, /*mid_session=*/false);
        return;
      }
      if (errno == EINTR) continue;
      break;  // EAGAIN: check whether the request is complete
    }
    if (conn->http_request.find("\r\n\r\n") == std::string::npos) {
      return;  // headers still in flight
    }
    http_requests.fetch_add(1, std::memory_order_relaxed);
    // Request line: METHOD SP PATH SP VERSION. Only GET and HEAD are
    // served; HEAD gets the same status and headers, no body.
    std::istringstream request_line(
        conn->http_request.substr(0, conn->http_request.find("\r\n")));
    std::string method, target;
    request_line >> method >> target;
    const std::string path = target.substr(0, target.find('?'));
    std::string status = "200 OK";
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    if (method != "GET" && method != "HEAD") {
      status = "405 Method Not Allowed";
      body = "only GET and HEAD are served\n";
    } else if (path == "/metrics") {
      content_type = "text/plain; version=0.0.4";
      body = obs::prometheus_text(obs::MetricsRegistry::global().snapshot());
    } else if (path == "/healthz") {
      body = healthz_json(&status);
      content_type = "application/json";
    } else if (path == "/statusz") {
      body = statusz_json();
      content_type = "application/json";
    } else if (path == "/tracez") {
      body = tracez_json();
      content_type = "application/json";
    } else {
      status = "404 Not Found";
      body = "not found: served paths are /metrics /healthz /statusz "
             "/tracez\n";
    }
    std::string response = "HTTP/1.1 " + status + "\r\nContent-Type: " +
                           content_type + "\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n";
    if (method != "HEAD") response += body;
    (void)conn->channel.send_raw(
        ByteSpan(reinterpret_cast<const std::uint8_t*>(response.data()),
                 response.size()));
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->want_close = true;
      conn->finished = true;
    }
    if (!conn->channel.want_write()) {
      close_conn(conn, /*mid_session=*/false);
    } else {
      update_interest(conn);
    }
  }

  // ---- operability endpoints (all built on the loop thread) ----------------

  /// /healthz: loop liveness plus per-lane verify queue depths. Serving it
  /// at all proves the loop is turning (serve_http runs on the loop thread);
  /// the tick-age field is for sidecar probes that read the body and alert
  /// on staleness rather than on connect failures.
  std::string healthz_json(std::string* status) {
    const std::uint64_t now_ms = ms_since(start_time);
    const std::uint64_t tick = last_tick_ms.load(std::memory_order_relaxed);
    const std::uint64_t age_ms = now_ms > tick ? now_ms - tick : 0;
    const bool live = age_ms <= 5000;
    if (!live) *status = "503 Service Unavailable";
    // Draining is healthy-but-leaving: 200 so sidecars don't page, status
    // "draining" so load balancers stop routing new provers here.
    const char* state = !live ? "\"stale\""
                              : (draining.load(std::memory_order_relaxed)
                                     ? "\"draining\""
                                     : "\"ok\"");
    std::ostringstream out;
    out << "{\"status\":" << state << ",\"loop_tick_age_ms\":" << age_ms
        << ",\"uptime_ms\":" << now_ms
        << ",\"active_sessions\":" << active.load(std::memory_order_relaxed)
        << ",\"lane_depths\":[";
    {
      std::lock_guard<std::mutex> lock(sched_mu);
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        if (l != 0) out << ',';
        out << lanes[l].size();
      }
    }
    out << "]}\n";
    return out.str();
  }

  /// /statusz: uptime + build info, session counters, SLO state, session
  /// latency quantiles, the live connection table, and recent quarantines.
  /// Runs on the loop thread, so `conns` and `recent_quarantines` are read
  /// lock-free; the per-conn fields shown are loop-owned (issued comes from
  /// the drive strand, never the verify strand's absorb state).
  std::string statusz_json() {
    std::ostringstream out;
    out << "{\"uptime_ms\":" << ms_since(start_time)
        << ",\"build\":{\"aes_tier\":"
        << json_str(crypto::to_string(
               crypto::Aes128::resolve(crypto::AesImpl::kAuto)))
        << ",\"wire_version\":" << static_cast<unsigned>(kWireVersion)
        << ",\"epoll\":" << (loop.using_epoll() ? "true" : "false")
        << ",\"pool\":" << lanes.size() << "}"
        << ",\"sessions\":{\"accepted\":"
        << accepted.load(std::memory_order_relaxed)
        << ",\"completed\":" << completed.load(std::memory_order_relaxed)
        << ",\"attested\":" << attested.load(std::memory_order_relaxed)
        << ",\"failed\":" << failed.load(std::memory_order_relaxed)
        << ",\"quarantined\":" << quarantined.load(std::memory_order_relaxed)
        << ",\"http_requests\":"
        << http_requests.load(std::memory_order_relaxed) << "}";
    // Golden-model provisioning tiers and the audit chain head — the shard
    // coordinator scrapes both (cache efficacy per shard; Merkle leaf).
    out << ",\"golden_models\":{\"interned\":"
        << models_interned.load(std::memory_order_relaxed)
        << ",\"loaded\":" << models_loaded.load(std::memory_order_relaxed)
        << ",\"mapped\":" << models_mapped.load(std::memory_order_relaxed)
        << ",\"built\":" << models_built.load(std::memory_order_relaxed)
        << "}";
    {
      std::lock_guard<std::mutex> lock(audit_mu);
      out << ",\"audit\":{\"entries\":" << audit.size() << ",\"head\":"
          << json_str(to_hex(ByteSpan(audit.head().data(),
                                      audit.head().size())))
          << "}";
    }
    out << ",\"slo\":{\"latency_objective_ms\":" << opts.slo_latency_ms
        << ",\"target\":" << opts.slo_target << ",\"total\":" << slo.total()
        << ",\"good\":" << slo.good()
        << ",\"budget_remaining_ppm\":" << slo.budget_remaining_ppm()
        << ",\"burn_rate_milli\":" << slo.burn_rate_milli() << "}";
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    for (const auto& hist : snap.histograms) {
      if (hist.name != "sacha.attestd.session_ns") continue;
      out << ",\"session_latency_ns\":{\"count\":" << hist.count << ",\"p50\":"
          << static_cast<std::uint64_t>(obs::quantile_from_sample(hist, 0.50))
          << ",\"p90\":"
          << static_cast<std::uint64_t>(obs::quantile_from_sample(hist, 0.90))
          << ",\"p99\":"
          << static_cast<std::uint64_t>(obs::quantile_from_sample(hist, 0.99))
          << ",\"p999\":"
          << static_cast<std::uint64_t>(obs::quantile_from_sample(hist, 0.999))
          << "}";
    }
    out << ",\"connections\":[";
    bool first = true;
    for (const auto& [fd, conn] : conns) {
      if (!first) out << ',';
      first = false;
      const char* state = conn->state == Conn::State::kSniff    ? "sniff"
                          : conn->state == Conn::State::kHttp   ? "http"
                                                                : "running";
      out << "{\"id\":" << conn->id << ",\"state\":" << json_str(state)
          << ",\"device\":" << json_str(conn->hello.device_id)
          << ",\"trace\":" << json_str(obs::to_string(conn->hello.trace))
          << ",\"sampled\":" << (conn->hello.sampled ? "true" : "false")
          << ",\"issued\":"
          << (conn->session.has_value() ? conn->session->issued() : 0)
          << ",\"responses_seen\":" << conn->responses_seen << ",\"idle_ms\":"
          << std::chrono::duration_cast<std::chrono::milliseconds>(
                 Clock::now() - conn->last_activity)
                 .count()
          << "}";
    }
    out << "],\"recent_quarantines\":[";
    first = true;
    for (const auto& q : recent_quarantines) {
      if (!first) out << ',';
      first = false;
      out << "{\"conn\":" << q.conn_id << ",\"device\":" << json_str(q.device)
          << ",\"trace\":" << json_str(q.trace) << ",\"at_ms\":" << q.at_ms
          << "}";
    }
    out << "]}\n";
    return out.str();
  }

  /// /tracez: the most recent sampled verifier-side timelines, newest last.
  /// Span times are tracer-epoch-relative ns — the same time base the Chrome
  /// trace export uses, so an entry here can be matched against the client's
  /// exported half by trace id.
  std::string tracez_json() {
    std::ostringstream out;
    out << "{\"capacity\":" << opts.tracez_capacity << ",\"timelines\":[";
    std::lock_guard<std::mutex> lock(tracez_mu);
    bool first_entry = true;
    for (const auto& entry : tracez) {
      if (!first_entry) out << ',';
      first_entry = false;
      out << "{\"device\":" << json_str(entry.device)
          << ",\"trace\":" << json_str(obs::to_string(entry.trace))
          << ",\"wall_ns\":" << entry.wall_ns
          << ",\"attested\":" << (entry.attested ? "true" : "false")
          << ",\"spans\":[";
      bool first_span = true;
      for (const auto& span : entry.spans) {
        if (!first_span) out << ',';
        first_span = false;
        out << "{\"name\":" << json_str(span.name)
            << ",\"category\":" << json_str(span.category)
            << ",\"start_ns\":" << span.start_ns
            << ",\"duration_ns\":" << span.duration_ns
            << ",\"depth\":" << span.depth << "}";
      }
      out << "]}";
    }
    out << "]}\n";
    return out.str();
  }

  /// Returns false when the connection was torn down.
  bool handle_frame(const std::shared_ptr<Conn>& conn, Frame frame) {
    switch (frame.kind) {
      case FrameKind::kHello:
        return handle_hello(conn, frame.payload);
      case FrameKind::kResponse:
        return handle_response(conn, frame.payload);
      case FrameKind::kUpdateStatus:
        return handle_update_status(conn, frame.payload);
      case FrameKind::kError: {
        auto msg = ErrorMsg::decode(frame.payload);
        log_warn() << "attestd: peer aborted conn " << conn->id << ": "
                   << (msg.ok() ? msg.value().detail : msg.message());
        close_conn(conn, mid_session(conn));
        return false;
      }
      default:
        (void)conn->channel.send(
            FrameKind::kError,
            error_frame_payload(core::FailureKind::kDecodeError,
                                "unexpected frame kind"));
        close_conn(conn, mid_session(conn));
        return false;
    }
  }

  bool handle_hello(const std::shared_ptr<Conn>& conn, const Bytes& payload) {
    if (conn->session.has_value()) {
      (void)conn->channel.send(
          FrameKind::kError,
          error_frame_payload(core::FailureKind::kDecodeError,
                              "duplicate HELLO"));
      close_conn(conn, /*mid_session=*/true);
      return false;
    }
    static obs::Counter& hello_accepted =
        obs::MetricsRegistry::global().counter("sacha.attestd.hello_accepted");
    static obs::Counter& hello_rejected =
        obs::MetricsRegistry::global().counter("sacha.attestd.hello_rejected");
    auto hello = HelloMsg::decode(payload);
    if (!hello.ok() || hello.value().proto < kWireVersionMin ||
        hello.value().proto > kWireVersion) {
      hello_rejected.add(1);
      (void)conn->channel.send(
          FrameKind::kError,
          error_frame_payload(core::FailureKind::kDecodeError,
                              hello.ok() ? "unsupported protocol version"
                                         : hello.message()));
      close_conn(conn, /*mid_session=*/false);
      return false;
    }
    if (draining.load(std::memory_order_relaxed)) {
      // Phase one of graceful shutdown: no new sessions. The typed refusal
      // lets a load balancer (or the fleet client) fail over immediately
      // instead of burning its retry budget here.
      hello_rejected.add(1);
      drain_refusals.fetch_add(1, std::memory_order_relaxed);
      (void)conn->channel.send(
          FrameKind::kError,
          error_frame_payload(core::FailureKind::kDeviceError,
                              "server draining, not accepting sessions"));
      close_conn(conn, /*mid_session=*/false);
      return false;
    }
    hello_accepted.add(1);
    conn->hello = std::move(hello).take();
    // Provision the member's verifier from the HELLO parameters alone —
    // the same construction the in-process oracle uses (provision.hpp).
    // With a model cache dir the golden model comes from the shared tiers
    // (intern -> .sgm disk cache, optionally mmap'd) instead of a rebuild.
    if (!opts.model_cache_dir.empty()) {
      bitstream::GoldenModel::CacheSource source =
          bitstream::GoldenModel::CacheSource::kBuilt;
      conn->verifier.emplace(verifier_for(
          conn->hello,
          ModelCacheConfig{opts.model_cache_dir, opts.model_map}, &source));
      switch (source) {
        case bitstream::GoldenModel::CacheSource::kInterned:
          models_interned.fetch_add(1, std::memory_order_relaxed);
          break;
        case bitstream::GoldenModel::CacheSource::kLoaded:
          models_loaded.fetch_add(1, std::memory_order_relaxed);
          break;
        case bitstream::GoldenModel::CacheSource::kMapped:
          models_mapped.fetch_add(1, std::memory_order_relaxed);
          break;
        case bitstream::GoldenModel::CacheSource::kBuilt:
          models_built.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    } else {
      conn->verifier.emplace(verifier_for(conn->hello));
      models_built.fetch_add(1, std::memory_order_relaxed);
    }
    conn->session.emplace(*conn->verifier);
    // The client's head-sampling decision arrived in the HELLO; honouring
    // it (rather than re-deciding) is what makes the two processes' span
    // sets land under one trace id.
    conn->session->set_trace(conn->hello.trace, conn->hello.sampled);
    conn->session_start = Clock::now();
    HelloAckMsg ack;
    ack.command_count =
        static_cast<std::uint32_t>(conn->session->command_count());
    if (!conn->channel.send(FrameKind::kHelloAck, ack.encode()).ok()) {
      close_conn(conn, /*mid_session=*/true);
      return false;
    }
    issue_commands(conn);
    update_interest(conn);
    return true;
  }

  bool handle_response(const std::shared_ptr<Conn>& conn,
                       const Bytes& payload) {
    if (!conn->session.has_value()) {
      (void)conn->channel.send(
          FrameKind::kError,
          error_frame_payload(core::FailureKind::kDecodeError,
                              "RESPONSE before HELLO"));
      close_conn(conn, /*mid_session=*/false);
      return false;
    }
    auto response = parse_response_payload(payload);
    if (!response.ok()) {
      (void)conn->channel.send(
          FrameKind::kError,
          error_frame_payload(core::FailureKind::kDecodeError,
                              response.message()));
      close_conn(conn, /*mid_session=*/true);
      return false;
    }
    ++conn->responses_seen;
    issue_commands(conn);  // slide the window before handing off to verify
    bool enqueue = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->inbox.push_back(std::move(response).take());
      if (!conn->queued && !conn->verify_active) {
        conn->queued = true;
        enqueue = true;
      }
    }
    if (enqueue) {
      {
        std::lock_guard<std::mutex> lock(sched_mu);
        lanes[conn->lane].push_back(conn);
      }
      sched_cv.notify_one();
    }
    update_interest(conn);
    return true;
  }

  /// The prover's answer to the UPDATE_OFFER that followed its REPORT.
  /// Pure accounting: the attestation verdict is already sealed, and the
  /// device's gate decision (verified signature, staged or refused) is the
  /// fleet-rollout signal the operator watches.
  bool handle_update_status(const std::shared_ptr<Conn>& conn,
                            const Bytes& payload) {
    if (!conn->offer_pending) {
      (void)conn->channel.send(
          FrameKind::kError,
          error_frame_payload(core::FailureKind::kDecodeError,
                              "UPDATE_STATUS without a pending offer"));
      close_conn(conn, mid_session(conn));
      return false;
    }
    auto status = UpdateStatusMsg::decode(payload);
    if (!status.ok()) {
      (void)conn->channel.send(
          FrameKind::kError,
          error_frame_payload(core::FailureKind::kDecodeError,
                              status.message()));
      close_conn(conn, /*mid_session=*/false);
      return false;
    }
    conn->offer_pending = false;
    const UpdateStatusMsg& msg = status.value();
    (msg.accepted ? updates_accepted : updates_rejected)
        .fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& accepted_ctr = obs::MetricsRegistry::global().counter(
        "sacha.attestd.updates_accepted");
    static obs::Counter& rejected_ctr = obs::MetricsRegistry::global().counter(
        "sacha.attestd.updates_rejected");
    (msg.accepted ? accepted_ctr : rejected_ctr).add(1);
    (log_info() << "attestd update status")
        .kv("conn", conn->id)
        .kv("device", conn->hello.device_id)
        .kv("version", msg.version)
        .kv("accepted", msg.accepted)
        .kv("state", msg.state)
        .kv("detail", msg.detail);
    close_conn(conn, /*mid_session=*/false);
    return false;
  }

  /// Drive strand: keeps up to command_window commands in flight. Only the
  /// loop thread calls this (next_command_wire reads the frozen schedule —
  /// disjoint from the verify strand's absorb state).
  void issue_commands(const std::shared_ptr<Conn>& conn) {
    while (conn->session->issued() <
           conn->responses_seen + opts.command_window) {
      auto wire = conn->session->next_command_wire();
      if (!wire.has_value()) return;
      if (!conn->channel.send(FrameKind::kCommand, *std::move(wire)).ok()) {
        close_conn(conn, /*mid_session=*/true);
        return;
      }
    }
  }

  void scan_timeouts() {
    if (opts.session_timeout_ms == 0) return;
    const auto cutoff =
        Clock::now() - std::chrono::milliseconds(opts.session_timeout_ms);
    std::vector<std::shared_ptr<Conn>> stale;
    for (const auto& [fd, conn] : conns) {
      if (conn->last_activity < cutoff) stale.push_back(conn);
    }
    for (const auto& conn : stale) {
      (void)conn->channel.send(
          FrameKind::kError,
          error_frame_payload(core::FailureKind::kTimeoutExhausted,
                              "session idle timeout"));
      close_conn(conn, mid_session(conn));
    }
  }

  /// Drain phase two: past the deadline, in-flight sessions have had their
  /// chance — close and quarantine the stragglers so stop() finds an empty
  /// table. (HELLO refusal — phase one — lives in handle_hello.)
  void scan_drain() {
    if (!draining.load(std::memory_order_relaxed)) return;
    const std::uint64_t deadline =
        drain_deadline_ms.load(std::memory_order_relaxed);
    if (deadline == 0 || ms_since(start_time) < deadline) return;
    std::vector<std::shared_ptr<Conn>> laggards;
    laggards.reserve(conns.size());
    for (const auto& [fd, conn] : conns) laggards.push_back(conn);
    for (const auto& conn : laggards) {
      (void)conn->channel.send(
          FrameKind::kError,
          error_frame_payload(core::FailureKind::kTimeoutExhausted,
                              "server drained before session completed"));
      close_conn(conn, mid_session(conn));
    }
  }

  /// Tears a connection down. `quarantine` marks a session the peer
  /// abandoned mid-run: counted, typed, the slot reclaimed — the server
  /// keeps serving every other connection.
  void close_conn(const std::shared_ptr<Conn>& conn, bool quarantine) {
    if (!conn->channel.open()) return;
    const int fd = conn->channel.fd();
    loop.remove(fd);
    conns.erase(fd);
    conn->channel.close();
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->want_close = true;
      if (quarantine && !conn->finished) {
        conn->finished = true;
        if (conn->session.has_value()) {
          conn->session->note_failure(core::FailureKind::kPeerDisconnect);
        }
      } else {
        quarantine = false;
      }
    }
    if (quarantine) {
      quarantined.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& quarantine_ctr =
          obs::MetricsRegistry::global().counter("sacha.attestd.quarantined");
      quarantine_ctr.add(1);
      // A vanished prover is an SLO miss: the operator's contract counts
      // every accepted session, not just the ones that reached a verdict.
      slo.record(static_cast<std::uint64_t>(
                     std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now() - conn->session_start)
                         .count()),
                 /*ok=*/false);
      recent_quarantines.push_back({conn->id, conn->hello.device_id,
                                    obs::to_string(conn->hello.trace),
                                    ms_since(start_time)});
      while (recent_quarantines.size() > 32) recent_quarantines.pop_front();
      (log_warn() << "attestd: peer disconnect mid-session, quarantined")
          .kv("conn", conn->id)
          .kv("member", conn->hello.device_id)
          .kv("trace", obs::to_string(conn->hello.trace));
    }
    active.store(conns.size(), std::memory_order_relaxed);
    connections_gauge().set(static_cast<std::int64_t>(conns.size()));
  }

  // ---- verify workers ------------------------------------------------------

  void worker_main(std::size_t worker_index) {
    const std::size_t width =
        std::clamp<std::size_t>(opts.verify_batch_width, 1, 8);
    std::vector<std::shared_ptr<Conn>> picks;
    for (;;) {
      picks.clear();
      {
        std::unique_lock<std::mutex> lock(sched_mu);
        sched_cv.wait(lock, [&] {
          if (stopping.load(std::memory_order_relaxed)) return true;
          for (const auto& lane : lanes) {
            if (!lane.empty()) return true;
          }
          return false;
        });
        if (stopping.load(std::memory_order_relaxed)) return;
        // Home lane first, then steal from the longest backlog — the
        // fleet engine's policy, driven by sockets instead of sim time.
        auto& home = lanes[worker_index % lanes.size()];
        while (!home.empty() && picks.size() < width) {
          picks.push_back(std::move(home.front()));
          home.pop_front();
        }
        while (picks.size() < width) {
          std::size_t best = lanes.size();
          std::size_t best_depth = 0;
          for (std::size_t l = 0; l < lanes.size(); ++l) {
            if (lanes[l].size() > best_depth) {
              best = l;
              best_depth = lanes[l].size();
            }
          }
          if (best == lanes.size()) break;
          picks.push_back(std::move(lanes[best].front()));
          lanes[best].pop_front();
          steals.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (picks.empty()) continue;
      drain_batch(picks, width);
    }
  }

  void drain_batch(const std::vector<std::shared_ptr<Conn>>& picks,
                   std::size_t width) {
    crypto::CmacBatch batch(width);
    struct Work {
      std::shared_ptr<Conn> conn;
      std::deque<std::optional<core::Response>> rounds;
    };
    std::vector<Work> work;
    work.reserve(picks.size());
    for (const auto& conn : picks) {
      Work w{conn, {}};
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->queued = false;
        conn->verify_active = true;
        w.rounds.swap(conn->inbox);
      }
      work.push_back(std::move(w));
    }
    for (Work& w : work) {
      if (!w.conn->session.has_value()) continue;
      w.conn->session->set_absorb_sink(&batch);
      for (auto& response : w.rounds) {
        w.conn->session->on_response(std::move(response));
      }
    }
    // One interleaved flush across every drained member's stream; sinks
    // detach before any finish() closes a MAC.
    batch.flush();
    for (Work& w : work) {
      if (w.conn->session.has_value()) {
        w.conn->session->set_absorb_sink(nullptr);
      }
    }
    core::note_batch_occupancy(batch);
    batches.fetch_add(work.size(), std::memory_order_relaxed);

    bool woke = false;
    for (Work& w : work) {
      const auto& conn = w.conn;
      bool run_finish = false;
      bool requeue = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->verify_active = false;
        if (conn->session.has_value() && conn->session->done() &&
            !conn->finished) {
          conn->finished = true;
          run_finish = true;
        } else if (!conn->inbox.empty() && !conn->queued) {
          conn->queued = true;
          requeue = true;
        }
      }
      if (run_finish) {
        finish_session(conn);
        {
          std::lock_guard<std::mutex> lock(wake_mu);
          wake_list.push_back(conn);
        }
        woke = true;
      }
      if (requeue) {
        {
          std::lock_guard<std::mutex> lock(sched_mu);
          lanes[conn->lane].push_back(conn);
        }
        sched_cv.notify_one();
      }
    }
    if (woke) wake();
  }

  /// Verify strand epilogue: both strands are quiesced (all responses
  /// absorbed ⇒ nothing left to issue), so finish() is safe here.
  void finish_session(const std::shared_ptr<Conn>& conn) {
    core::VerifierSession::Report report = conn->session->finish();
    ReportMsg msg;
    msg.protocol_ok = report.verdict.protocol_ok;
    msg.mac_ok = report.verdict.mac_ok;
    msg.config_ok = report.verdict.config_ok;
    msg.failure = report.failure;
    if (report.expected_mac.has_value()) {
      msg.mac_present = true;
      msg.mac = *report.expected_mac;
    }
    msg.commands = report.commands;
    msg.wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - conn->session_start)
            .count());
    msg.detail = report.verdict.detail;
    // Echo the timeline key so the client can stitch its spans to ours even
    // when its own HELLO record was lost (e.g. a replayed capture).
    msg.trace = conn->hello.trace;
    msg.sampled = conn->hello.sampled;
    // A staged OTA rides on attestation health: only a device that just
    // proved its configuration gets the offer (an unattested device first
    // needs escalation, not new firmware), and only over wire v3+.
    const bool offer = !opts.update_offer.empty() && msg.attested() &&
                       conn->hello.proto >= 3;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->outbox.push_back(Frame{FrameKind::kReport, msg.encode()});
      if (offer) {
        UpdateOfferMsg offer_msg;
        offer_msg.version = opts.update_version;
        offer_msg.manifest = opts.update_offer;
        conn->outbox.push_back(
            Frame{FrameKind::kUpdateOffer, offer_msg.encode()});
        conn->offer_pending = true;
        conn->want_close = false;
      } else {
        conn->want_close = true;
      }
    }
    if (offer) {
      updates_offered.fetch_add(1, std::memory_order_relaxed);
      static obs::Counter& offered_ctr =
          obs::MetricsRegistry::global().counter(
              "sacha.attestd.updates_offered");
      offered_ctr.add(1);
    }
    completed.fetch_add(1, std::memory_order_relaxed);
    (msg.attested() ? attested : failed).fetch_add(1,
                                                   std::memory_order_relaxed);
    static obs::Histogram& session_hist =
        obs::MetricsRegistry::global().quantile_histogram(
            "sacha.attestd.session_ns");
    session_hist.observe(msg.wall_ns);
    slo.record(msg.wall_ns, msg.attested());
    // Audit-chain the verdict. The wire report carries no TimeLedger, so
    // the entry records exactly what a remote auditor could check: the
    // verdict, the wall clock, and the timeline key.
    {
      core::AttestationReport audit_report;
      audit_report.verdict = report.verdict;
      audit_report.failure = report.failure;
      audit_report.total_time = msg.wall_ns;
      audit_report.trace_id = conn->hello.trace;
      std::lock_guard<std::mutex> lock(audit_mu);
      audit.append(conn->hello.device_id, conn->verifier->nonce(),
                   audit_report);
    }
    // One structured line per finished session — the access log.
    (log_info() << "attestd session")
        .kv("conn", conn->id)
        .kv("device", conn->hello.device_id)
        .kv("outcome", msg.attested() ? "attested" : "failed")
        .kv("failure", core::to_string(msg.failure))
        .kv("latency_ms", msg.wall_ns / 1'000'000)
        .kv("trace", obs::to_string(conn->hello.trace))
        .kv("sampled", conn->hello.sampled);
    if (!conn->session->timeline().empty()) {
      TracezEntry entry;
      entry.device = conn->hello.device_id;
      entry.trace = conn->hello.trace;
      entry.wall_ns = msg.wall_ns;
      entry.attested = msg.attested();
      entry.spans = conn->session->timeline();
      std::lock_guard<std::mutex> lock(tracez_mu);
      tracez.push_back(std::move(entry));
      while (tracez.size() > std::max<std::size_t>(opts.tracez_capacity, 1)) {
        tracez.pop_front();
      }
    }
  }
};

AttestServer::AttestServer(const AttestServerOptions& options)
    : options_(options) {}

AttestServer::~AttestServer() { stop(); }

Status AttestServer::start() {
  if (impl_ != nullptr) return Status::error("server already started");
  if (options_.trace_sample >= 0.0) {
    obs::Sampler::global().set_rate(options_.trace_sample);
  }
  auto impl = std::make_unique<Impl>(options_);
  auto listener =
      SocketListener::listen(options_.host, options_.port,
                             options_.listen_backlog, options_.reuseport);
  if (!listener.ok()) return Status::error(listener.message());
  impl->listener = std::move(listener).take();
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    return Status::error("pipe2 failed");
  }
  impl->wake_rd = pipe_fds[0];
  impl->wake_wr = pipe_fds[1];
  const std::size_t pool = options_.pool_size == 0 ? core::default_fleet_pool()
                                                   : options_.pool_size;
  impl->lanes.resize(pool);
  Status st = impl->loop.add(impl->listener.fd(), true, false);
  if (!st.ok()) return st;
  st = impl->loop.add(impl->wake_rd, true, false);
  if (!st.ok()) return st;

  port_ = impl->listener.bound_port();
  using_epoll_ = impl->loop.using_epoll();
  impl_ = impl.release();
  impl_->loop_thread = std::thread([this] { impl_->loop_main(); });
  impl_->workers.reserve(pool);
  for (std::size_t w = 0; w < pool; ++w) {
    impl_->workers.emplace_back([this, w] { impl_->worker_main(w); });
  }
  (log_info() << "attestd listening")
      .kv("host", options_.host)
      .kv("port", port_)
      .kv("pool", pool)
      .kv("epoll", using_epoll_);
  return Status();
}

void AttestServer::stop() {
  if (impl_ == nullptr) return;
  impl_->stopping.store(true, std::memory_order_relaxed);
  impl_->wake();
  impl_->sched_cv.notify_all();
  if (impl_->loop_thread.joinable()) impl_->loop_thread.join();
  for (std::thread& worker : impl_->workers) {
    if (worker.joinable()) worker.join();
  }
  impl_->listener.close();
  if (impl_->wake_rd >= 0) ::close(impl_->wake_rd);
  if (impl_->wake_wr >= 0) ::close(impl_->wake_wr);
  delete impl_;
  impl_ = nullptr;
}

AttestServerStats AttestServer::stats() const {
  AttestServerStats out;
  if (impl_ == nullptr) return out;
  out.accepted = impl_->accepted.load(std::memory_order_relaxed);
  out.sessions_completed = impl_->completed.load(std::memory_order_relaxed);
  out.sessions_attested = impl_->attested.load(std::memory_order_relaxed);
  out.sessions_failed = impl_->failed.load(std::memory_order_relaxed);
  out.quarantined = impl_->quarantined.load(std::memory_order_relaxed);
  out.http_requests = impl_->http_requests.load(std::memory_order_relaxed);
  out.active_connections = impl_->active.load(std::memory_order_relaxed);
  out.peak_connections = impl_->peak.load(std::memory_order_relaxed);
  out.verify_steals = impl_->steals.load(std::memory_order_relaxed);
  out.verify_batches = impl_->batches.load(std::memory_order_relaxed);
  out.updates_offered = impl_->updates_offered.load(std::memory_order_relaxed);
  out.updates_accepted =
      impl_->updates_accepted.load(std::memory_order_relaxed);
  out.updates_rejected =
      impl_->updates_rejected.load(std::memory_order_relaxed);
  out.drain_refusals = impl_->drain_refusals.load(std::memory_order_relaxed);
  out.models_interned = impl_->models_interned.load(std::memory_order_relaxed);
  out.models_loaded = impl_->models_loaded.load(std::memory_order_relaxed);
  out.models_mapped = impl_->models_mapped.load(std::memory_order_relaxed);
  out.models_built = impl_->models_built.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(impl_->audit_mu);
    out.audit_entries = impl_->audit.size();
  }
  out.draining = impl_->draining.load(std::memory_order_relaxed);
  return out;
}

crypto::Sha256Digest AttestServer::audit_head() const {
  if (impl_ == nullptr) return crypto::Sha256Digest{};
  std::lock_guard<std::mutex> lock(impl_->audit_mu);
  return impl_->audit.head();
}

bool AttestServer::audit_verify() const {
  if (impl_ == nullptr) return true;
  std::lock_guard<std::mutex> lock(impl_->audit_mu);
  return impl_->audit.verify_chain();
}

void AttestServer::begin_drain(std::uint64_t drain_ms) {
  if (impl_ == nullptr) return;
  if (drain_ms != 0) {
    impl_->drain_deadline_ms.store(ms_since(impl_->start_time) + drain_ms,
                                   std::memory_order_relaxed);
  }
  impl_->draining.store(true, std::memory_order_relaxed);
  impl_->wake();
  (log_info() << "attestd draining")
      .kv("drain_ms", drain_ms)
      .kv("active", impl_->active.load(std::memory_order_relaxed));
}

bool AttestServer::draining() const {
  return impl_ != nullptr && impl_->draining.load(std::memory_order_relaxed);
}

bool AttestServer::drained() const {
  return impl_ != nullptr &&
         impl_->draining.load(std::memory_order_relaxed) &&
         impl_->active.load(std::memory_order_relaxed) == 0;
}

}  // namespace sacha::net
