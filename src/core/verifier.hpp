// SACHa verifier.
//
// Owns everything the device does not: the golden configuration (static
// design + intended application + session nonce), the register-bit mask
// Msk, the shared MAC key, and the protocol schedule (which frames to
// configure, and the order — any permutation, §6.1 — in which to read the
// configuration memory back). After the run it checks two things (Fig. 9):
//   1. MAC_K(received frames, in readback order) equals the device's MAC —
//      the data came from the keyed device and was not modified in flight;
//   2. Msk(received frames) equals Msk(golden frames) for every step, with
//      every configuration frame covered — the device is configured exactly
//      as intended, nonce included.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/bitgen.hpp"
#include "core/protocol.hpp"
#include "crypto/prg.hpp"
#include "fabric/partition.hpp"

namespace sacha::core {

enum class ReadbackOrder : std::uint8_t {
  kSequentialFromZero,    // 0, 1, ..., N-1
  kSequentialFromOffset,  // i, i+1, ..., (i+N-1) % N  (the PoC's choice)
  kRandomPermutation,     // any permutation (§6.1 allows this)
};

struct VerifierOptions {
  ReadbackOrder order = ReadbackOrder::kSequentialFromOffset;
  /// NOOP-pad command streams to these sizes, matching the proof of
  /// concept's measured packet sizes (A1 and A3 of Table 3). Streams larger
  /// than the pad target are sent unpadded.
  std::uint32_t config_pad_words = 266;
  std::uint32_t readback_pad_words = 414;
  /// Frames per ICAP_config command (1 in the PoC; the §6.1 buffer-size
  /// trade-off sweeps this).
  std::uint32_t frames_per_config = 1;
  /// Frames per ICAP_readback command (1 in the PoC). Values > 1 force
  /// sequential order.
  std::uint32_t frames_per_readback = 1;
  /// Refresh session (§5.2.2): reconfigure *only* the nonce partition and
  /// read the whole memory back — "the Vrf can request a fresh checksum of
  /// the Prv's configuration without changing the intended application".
  /// Requires that a full session previously installed the application;
  /// the full-memory readback still proves the entire configuration.
  bool refresh_only = false;
};

class SachaVerifier {
 public:
  SachaVerifier(fabric::Floorplan plan, bitstream::DesignSpec static_spec,
                bitstream::DesignSpec app_spec, crypto::AesKey key,
                std::uint64_t session_seed, VerifierOptions options = {});

  /// Golden image of the base static partition (the one starting at frame
  /// 0) — what the BootMem is provisioned with. Additional static islands
  /// are provisioned separately and covered by golden_frame().
  const bitstream::ConfigImage& static_image() const;

  /// The frame that holds the session nonce (its own tiny reconfigurable
  /// partition at the top of the dynamic region, §5.2.2).
  std::uint32_t nonce_frame_index() const { return nonce_frame_; }
  std::uint64_t nonce() const { return nonce_; }

  /// (Re)starts a session: draws a fresh nonce and a fresh readback order.
  void begin();

  std::size_t command_count() const;
  Command command(std::size_t index) const;

  /// Feeds the response (or its absence, for fire-and-forget configuration
  /// commands) of command `index` back to the verifier.
  Status on_response(std::size_t index, const std::optional<Response>& response);

  struct Verdict {
    bool protocol_ok = false;  // every step answered, no prover errors
    bool mac_ok = false;       // H_Prv == H_Vrf
    bool config_ok = false;    // Msk(B_Prv) == Msk(B_Vrf), full coverage
    std::string detail;        // first failure, for logs
    bool ok() const { return protocol_ok && mac_ok && config_ok; }
  };
  Verdict finish() const;

  /// The planned readback schedule: (first frame, frame count) per step.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& readback_steps()
      const {
    return steps_;
  }

  const fabric::Floorplan& floorplan() const { return plan_; }
  const VerifierOptions& options() const { return options_; }

  /// Switches between full sessions and §5.2.2 nonce-refresh sessions for
  /// subsequent begin() calls (typical lifecycle: one full install, then
  /// periodic cheap refreshes).
  void set_refresh_only(bool refresh) { options_.refresh_only = refresh; }
  const bitstream::DesignSpec& app_spec() const { return app_spec_; }

  /// Replaces the intended application (secure code update: the next
  /// session ships and attests the new design).
  void set_app_spec(bitstream::DesignSpec spec);

  /// The golden configuration of a frame (static design, application, or
  /// the current session's nonce frame). Used by the state-attestation
  /// extension to build expected-state references.
  const bitstream::Frame& golden_frame(std::uint32_t index) const;

  /// Checks a device MAC over arbitrary data under the shared session key
  /// (constant-time). Used by protocol extensions that add readback phases.
  bool verify_mac(ByteSpan data, const crypto::Mac& mac) const;

  /// H_Vrf: the MAC recomputed over the received readback transcript, or
  /// nullopt while steps are missing. finish() compares this against the
  /// device's H_Prv; the signature extension signs/verifies it instead.
  std::optional<crypto::Mac> expected_mac() const;

 private:
  std::size_t config_command_count() const;
  void regenerate_app_images();
  Command make_config_command(std::size_t slot) const;
  Command make_readback_command(std::size_t step) const;
  std::vector<std::uint32_t> pad(std::vector<std::uint32_t> stream,
                                 std::uint32_t target_words) const;

  fabric::Floorplan plan_;
  bitstream::BitGen bitgen_;
  std::uint32_t idcode_;
  bitstream::DesignSpec static_spec_;
  bitstream::DesignSpec app_spec_;
  crypto::AesKey key_;
  std::uint64_t session_seed_;
  VerifierOptions options_;

  // Application regions: every dynamic partition's frames, in ascending
  // order, with the nonce frame (last frame of the last dynamic partition)
  // carved out. §2.1.2 allows "one or more" dynamic partitions; the
  // intended application spans all of them.
  std::vector<fabric::FrameRange> app_ranges_;
  std::uint32_t app_frame_total_ = 0;
  std::uint32_t nonce_frame_ = 0;

  // Golden static images, one per static partition (ascending by range).
  std::vector<std::pair<fabric::FrameRange, bitstream::ConfigImage>> static_images_;
  bitstream::Frame zero_frame_;  // golden for frames outside every partition
  std::vector<bitstream::ConfigImage> app_images_;  // one per app range
  bitstream::ConfigImage nonce_image_;
  std::uint64_t nonce_ = 0;
  std::uint64_t session_counter_ = 0;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> steps_;
  // Per-step received readback words (repeated frames may legitimately
  // return different register bits, so data is kept per step, not per frame).
  std::vector<std::optional<std::vector<std::uint32_t>>> received_;
  std::optional<crypto::Mac> received_mac_;
  std::optional<std::string> protocol_error_;
};

}  // namespace sacha::core
