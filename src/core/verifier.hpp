// SACHa verifier.
//
// Owns everything the device does not: the golden configuration (static
// design + intended application + session nonce), the register-bit mask
// Msk, the shared MAC key, and the protocol schedule (which frames to
// configure, and the order — any permutation, §6.1 — in which to read the
// configuration memory back). After the run it checks two things (Fig. 9):
//   1. MAC_K(received frames, in readback order) equals the device's MAC —
//      the data came from the keyed device and was not modified in flight;
//   2. Msk(received frames) equals Msk(golden frames) for every step, with
//      every configuration frame covered — the device is configured exactly
//      as intended, nonce included.
//
// Two execution modes produce bit-identical verdicts:
//   - kStreaming (default): responses are folded into a running CMAC and
//     masked-compared against the shared GoldenModel the moment they
//     arrive; nothing is retained per step, so finish() is O(1) checks and
//     a fleet of verifiers holds one golden image between them.
//   - kRetained: the seed behaviour — buffer every response and do all the
//     work in finish() (byte re-serialisation for the MAC, per-frame
//     architectural_mask regeneration for the compare). Kept as the
//     differential-testing oracle and the bench baseline.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bitstream/bitgen.hpp"
#include "bitstream/golden_model.hpp"
#include "core/failure.hpp"
#include "core/protocol.hpp"
#include "crypto/prg.hpp"
#include "fabric/partition.hpp"

namespace sacha::core {

enum class ReadbackOrder : std::uint8_t {
  kSequentialFromZero,    // 0, 1, ..., N-1
  kSequentialFromOffset,  // i, i+1, ..., (i+N-1) % N  (the PoC's choice)
  kRandomPermutation,     // any permutation (§6.1 allows this)
};

enum class VerifyMode : std::uint8_t {
  kStreaming,  // verify responses as they arrive, retain nothing
  kRetained,   // buffer the transcript, verify in finish() (seed behaviour)
};

struct VerifierOptions {
  ReadbackOrder order = ReadbackOrder::kSequentialFromOffset;
  /// NOOP-pad command streams to these sizes, matching the proof of
  /// concept's measured packet sizes (A1 and A3 of Table 3). Streams larger
  /// than the pad target are sent unpadded.
  std::uint32_t config_pad_words = 266;
  std::uint32_t readback_pad_words = 414;
  /// Frames per ICAP_config command (1 in the PoC; the §6.1 buffer-size
  /// trade-off sweeps this).
  std::uint32_t frames_per_config = 1;
  /// Frames per ICAP_readback command (1 in the PoC). Values > 1 force
  /// sequential order.
  std::uint32_t frames_per_readback = 1;
  /// Refresh session (§5.2.2): reconfigure *only* the nonce partition and
  /// read the whole memory back — "the Vrf can request a fresh checksum of
  /// the Prv's configuration without changing the intended application".
  /// Requires that a full session previously installed the application;
  /// the full-memory readback still proves the entire configuration.
  bool refresh_only = false;
  /// Probe sessions (epoch scheduler): with refresh_only set and a coverage
  /// in (0,1), begin() samples only that fraction of the memory for
  /// readback (nonce frame always included), in a fresh random order per
  /// session. The verdict then proves only the *probed* frames — a tamper
  /// outside the sample is invisible to the probe — so a probe pass must
  /// never substitute for a full attestation (the epoch scheduler treats a
  /// probe pass as "no new evidence of staleness", nothing more). 1.0 keeps
  /// the full-memory refresh readback.
  double probe_coverage = 1.0;
  VerifyMode mode = VerifyMode::kStreaming;
};

class SachaVerifier {
 public:
  SachaVerifier(fabric::Floorplan plan, bitstream::DesignSpec static_spec,
                bitstream::DesignSpec app_spec, crypto::AesKey key,
                std::uint64_t session_seed, VerifierOptions options = {});

  /// Shares a pre-built golden model instead of interning one (a fleet
  /// coordinator that already holds the model for this device type skips
  /// the cache lookup). The model must have been built for this floorplan
  /// and these specs.
  SachaVerifier(fabric::Floorplan plan,
                std::shared_ptr<const bitstream::GoldenModel> model,
                crypto::AesKey key, std::uint64_t session_seed,
                VerifierOptions options = {});

  /// Golden image of the base static partition (the one starting at frame
  /// 0) — what the BootMem is provisioned with. Additional static islands
  /// are provisioned separately and covered by golden_frame().
  const bitstream::ConfigImage& static_image() const;

  /// The frame that holds the session nonce (its own tiny reconfigurable
  /// partition at the top of the dynamic region, §5.2.2).
  std::uint32_t nonce_frame_index() const { return model_->nonce_frame(); }
  std::uint64_t nonce() const { return nonce_; }

  /// (Re)starts a session: draws a fresh nonce and a fresh readback order.
  void begin();

  std::size_t command_count() const;
  Command command(std::size_t index) const;

  /// Feeds the response (or its absence, for fire-and-forget configuration
  /// commands) of command `index` back to the verifier. Takes the response
  /// by value: frame payloads are moved, never copied, into whatever
  /// buffering the mode requires (none in streaming mode).
  Status on_response(std::size_t index, std::optional<Response> response);

  struct Verdict {
    bool protocol_ok = false;  // every step answered, no prover errors
    bool mac_ok = false;       // H_Prv == H_Vrf
    bool config_ok = false;    // Msk(B_Prv) == Msk(B_Vrf), full coverage
    std::string detail;        // first failure, for logs
    /// Typed cause as far as the verifier can tell (kNone on success):
    /// missing data maps to kTimeoutExhausted, error responses to
    /// kDeviceError, malformed/duplicate responses to kDecodeError, then
    /// the crypto checks to kMacMismatch / kMaskedCompareMismatch. The
    /// session driver overrides this with transport causes it saw first.
    FailureKind kind = FailureKind::kNone;
    bool ok() const { return protocol_ok && mac_ok && config_ok; }
  };
  Verdict finish() const;

  /// The planned readback schedule: (first frame, frame count) per step.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>>& readback_steps()
      const {
    return steps_;
  }

  const fabric::Floorplan& floorplan() const { return plan_; }
  const VerifierOptions& options() const { return options_; }

  /// Switches between full sessions and §5.2.2 nonce-refresh sessions for
  /// subsequent begin() calls (typical lifecycle: one full install, then
  /// periodic cheap refreshes).
  void set_refresh_only(bool refresh) { options_.refresh_only = refresh; }
  /// Sets the probe sample fraction for subsequent refresh-only begin()
  /// calls (see VerifierOptions::probe_coverage). Clamped to (0, 1].
  void set_probe_coverage(double coverage) {
    options_.probe_coverage =
        coverage < 1.0 ? (coverage > 0.0 ? coverage : 1.0) : 1.0;
  }
  /// True when the current schedule (frozen at begin()) is a sampled probe:
  /// its verdict covers only the probed subset of frames.
  bool probe_session() const {
    return options_.refresh_only && options_.probe_coverage < 1.0;
  }
  const bitstream::DesignSpec& app_spec() const { return model_->app_spec(); }

  /// Replaces the intended application (secure code update: the next
  /// session ships and attests the new design). Re-interns the golden
  /// model for the new spec.
  void set_app_spec(bitstream::DesignSpec spec);

  /// The golden configuration of a frame (static design, application, or
  /// the current session's nonce frame). Used by the state-attestation
  /// extension to build expected-state references.
  const bitstream::Frame& golden_frame(std::uint32_t index) const;

  /// The shared golden reference. Fleet members provisioned identically
  /// return the same object (use_count exposes the sharing).
  const std::shared_ptr<const bitstream::GoldenModel>& golden_model() const {
    return model_;
  }

  /// Checks a device MAC over arbitrary data under the shared session key
  /// (constant-time). Used by protocol extensions that add readback phases.
  bool verify_mac(ByteSpan data, const crypto::Mac& mac) const;

  /// H_Vrf: the MAC recomputed over the received readback transcript, or
  /// nullopt while steps are missing. finish() compares this against the
  /// device's H_Prv; the signature extension signs/verifies it instead.
  /// In streaming mode this is the incrementally folded MAC — no transcript
  /// is retained or re-serialised.
  std::optional<crypto::Mac> expected_mac() const;

  /// Readback bytes currently buffered for verification: the full ~9.2 MB
  /// (Virtex-6) transcript in retained mode, 0 in streaming mode once the
  /// in-order absorb has drained (out-of-order arrivals buffer only the
  /// gap). The fleet benches report this per member.
  std::size_t retained_readback_bytes() const;

  /// Batched-verify hook: while a sink is attached, streaming-mode absorbs
  /// queue their CMAC word-fold on the sink (masked compare and coverage
  /// still run inline) so the fleet engine can interleave several members'
  /// folds through one multi-stream absorb; the final MAC is then computed
  /// lazily at the first expected_mac()/finish() after the queued folds
  /// land. The caller owns ordering: flush the sink before finish() and
  /// before detaching. nullptr restores immediate folding; retained mode
  /// ignores the sink entirely.
  void set_absorb_sink(crypto::CmacBatch* sink) { absorb_sink_ = sink; }

 private:
  std::size_t config_command_count() const;
  Command make_config_command(std::size_t slot) const;
  Command make_readback_command(std::size_t step) const;
  std::vector<std::uint32_t> pad(std::vector<std::uint32_t> stream,
                                 std::uint32_t target_words) const;
  /// Streaming path: folds step `step`'s words into the running CMAC and
  /// masked-compares them against the golden model in place. Out-of-order
  /// arrivals are buffered (moved, not copied) until their turn so the MAC
  /// sees readback order.
  void absorb_response(std::size_t step, std::vector<std::uint32_t>&& words);
  void absorb_in_order(std::size_t step, std::vector<std::uint32_t>&& words);

  fabric::Floorplan plan_;
  bitstream::BitGen bitgen_;
  std::uint32_t idcode_;
  crypto::AesKey key_;
  std::uint64_t session_seed_;
  VerifierOptions options_;

  /// Immutable golden reference (regions, images, flat mask / masked-golden
  /// tables), interned so identical fleet members share one copy.
  std::shared_ptr<const bitstream::GoldenModel> model_;

  bitstream::ConfigImage nonce_image_;
  /// Current nonce frame content under its architectural mask (the nonce
  /// frame's row in the golden model is zero because its content is
  /// per-session; this is the session overlay).
  std::vector<std::uint32_t> nonce_masked_;
  std::uint64_t nonce_ = 0;
  std::uint64_t session_counter_ = 0;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> steps_;
  /// Frames the frozen schedule reads back (all of them outside probe
  /// sessions). finish()'s coverage check requires exactly these — a probe
  /// verdict is scoped to its sample by construction.
  std::vector<char> scheduled_;
  /// config_command_count() and words-per-frame, frozen at begin():
  /// on_response runs once per response (28k+ times on a Virtex-6 session),
  /// so the region walk and geometry chasing move out of the hot path.
  std::size_t config_commands_ = 0;
  std::uint32_t words_per_frame_ = 0;

  // -- Streaming state (kStreaming) ----------------------------------------
  // Both mutable for the sink path's lazy finalize: expected_mac() is const
  // but must be able to close the stream after the sink has flushed.
  mutable crypto::Cmac stream_cmac_;
  mutable std::optional<crypto::Mac> streamed_mac_;  // set once all absorbed
  crypto::CmacBatch* absorb_sink_ = nullptr;
  std::size_t next_stream_step_ = 0;
  /// Out-of-order arrivals parked (moved) until the in-order absorb reaches
  /// them. Empty for the session driver, which delivers in step order.
  std::map<std::size_t, std::vector<std::uint32_t>> pending_;
  std::vector<char> step_done_;
  std::vector<char> covered_;
  /// First masked mismatch in step order (the compare stops there, matching
  /// the retained verdict's first-failure detail).
  std::optional<std::uint32_t> mismatch_frame_;

  // -- Retained state (kRetained, the seed behaviour) ----------------------
  // Per-step received readback words (repeated frames may legitimately
  // return different register bits, so data is kept per step, not per frame).
  std::vector<std::optional<std::vector<std::uint32_t>>> received_;

  std::optional<crypto::Mac> received_mac_;
  std::optional<std::string> protocol_error_;
  /// Typed classification of protocol_error_ (what kind of violation the
  /// first bad response was).
  FailureKind protocol_failure_ = FailureKind::kNone;
};

}  // namespace sacha::core
