// Event-driven fleet attestation engine.
//
// attest_swarm(kParallel) burns one OS thread per member and lets each
// thread idle through its member's simulated channel latency — fine for a
// lab fleet, hopeless for N ≫ cores. This engine multiplexes N member
// sessions on a fixed pool of workers: each session is a non-blocking
// SessionMachine whose pending rounds park on a virtual-time heap (the
// simulated channel transfer costs no host time, so "waiting on the wire"
// is just a priority-queue reinsertion), while completed responses are
// dispatched to the same pool as verify batches that fold the streaming
// CMAC absorbs + masked compares. Member A's simulated configure/readback
// latency therefore overlaps member B's verify compute, on both clocks:
//
//  - Host clock: a drive strand and a verify strand per member run
//    concurrently on the pool (safe because SessionMachine::step() and
//    deliver() touch disjoint verifier state — see session.hpp), so the
//    host wall-clock of a fleet divides by the pool size without ever
//    holding N threads.
//  - Simulated clock: the engine replays the completed rounds through a
//    deterministic K-lane schedule (verify cost modelled per absorbed
//    word) to report the fleet makespan a K-worker verifier would achieve,
//    next to the thread-per-member baseline (whole sessions packed FIFO
//    onto K ports) that today's kParallel models.
//
// Reports are bit-identical to kSerial/kParallel: per-member results
// derive only from the member's own seed-keyed state, never from
// scheduling (host_ns excluded, as ever).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/session.hpp"
#include "obs/trace.hpp"

namespace sacha::core {

struct FleetEngineOptions {
  /// Worker threads shared by drive and verify strands. 0 = default pool
  /// (min(hardware_concurrency, 8)). The engine never spawns more threads
  /// than this, whatever the fleet size.
  std::size_t pool_size = 0;
  /// Virtual verify-lane cost per absorbed readback word, for the
  /// simulated-makespan model (the streaming absorb is ~1 cycle/byte on
  /// AES-NI; 2 ns/word keeps the model honest without dominating).
  std::uint64_t verify_ns_per_word = 2;
  /// Command rounds a drive slice executes before re-parking the session
  /// on the virtual-time heap. Larger slices amortise scheduling; smaller
  /// slices interleave fleets more fairly.
  std::uint32_t rounds_per_slice = 8;
  /// Verify backpressure: once a member's undelivered-round inbox reaches
  /// this many rounds, workers prefer draining it over driving further —
  /// keeps the streaming verifier's O(1)-memory property at fleet scale.
  std::size_t inbox_high_water = 64;
  /// Members a verify worker drains per batch, with their CMAC folds
  /// interleaved through one multi-stream absorb (crypto::CmacBatch) so
  /// each member's AESENC chain hides in the others' latency shadow.
  /// 1 restores the one-member-per-batch behaviour; clamped to [1, 8]
  /// (the kernel's lane budget). Batch width never changes a report.
  std::size_t verify_batch_width = 4;
  /// Adapt rounds_per_slice at runtime from the observed host-cost ratio
  /// of verify to drive rounds (verify-bound fleets take longer slices,
  /// drive-bound fleets shorter ones); rounds_per_slice seeds the initial
  /// value. Scheduling-only — reports stay bit-identical either way.
  bool adaptive_slice = false;
};

/// One member session to multiplex. The engine constructs the
/// SessionMachine itself (calling verifier->begin()) when the session is
/// first scheduled.
struct FleetSessionJob {
  SachaVerifier* verifier = nullptr;
  SachaProver* prover = nullptr;
  SessionOptions options{};
  SessionHooks hooks{};
  /// Display/trace label (member id).
  std::string label;
};

struct FleetEngineStats {
  std::size_t pool_size = 0;
  /// Simulated fleet makespan of the multiplexed schedule: sessions park
  /// through their channel latency while verify batches occupy pool_size
  /// virtual verify lanes.
  sim::SimDuration makespan = 0;
  /// Baseline: the same sessions packed whole (drive + verify serialised
  /// per member) FIFO onto pool_size lanes — what thread-per-member with
  /// pool_size ports models.
  sim::SimDuration thread_per_member_makespan = 0;
  /// Sum of member session times (total simulated compute + wire).
  sim::SimDuration total_work = 0;
  /// Sum of modelled verify-lane occupancy across all members.
  sim::SimDuration verify_busy = 0;
  /// Sum of per-member channel transfer time — the latency the engine
  /// parks instead of blocking a worker.
  sim::SimDuration channel_busy = 0;
  /// total_work / makespan: effective parallelism of the multiplexed
  /// schedule (→ pool_size when the pool is saturated, > 1 whenever
  /// latency hiding works).
  double overlap_efficiency = 0.0;
  std::uint64_t drive_slices = 0;
  std::uint64_t verify_batches = 0;
  /// Largest undelivered-round backlog any member accumulated (bounded by
  /// inbox_high_water + rounds_per_slice under backpressure).
  std::size_t peak_inbox_rounds = 0;
  /// Members drained by a worker whose home lane was another worker's
  /// (work stealing, over-water inboxes first).
  std::uint64_t verify_steals = 0;
  /// Interleaved multi-stream absorb calls and the total lanes they
  /// carried: streams ÷ calls is the average batch occupancy, the measure
  /// of how full the interleave actually ran.
  std::uint64_t multi_absorb_calls = 0;
  std::uint64_t multi_absorb_streams = 0;
  /// rounds_per_slice when the run ended (== the option unless
  /// adaptive_slice moved it).
  std::uint32_t rounds_per_slice_last = 0;
  std::uint64_t host_ns = 0;
};

struct FleetRunResult {
  /// Per-job reports, in job order — bit-identical to running
  /// run_attestation on each job alone.
  std::vector<AttestationReport> reports;
  FleetEngineStats stats;
};

/// Default worker-pool size: min(hardware_concurrency, 8).
std::size_t default_fleet_pool();

/// Records one drained CmacBatch into the shared verify-lane occupancy
/// metrics (sacha.engine.batch_absorbs / batch_streams / batch_occupancy).
/// Used by the in-process engine and by attestd's socket verify lanes, so
/// both transports report interleave fullness on the same dashboards.
/// No-op for a batch that absorbed nothing.
void note_batch_occupancy(const crypto::CmacBatch& batch);

/// Multiplexes all jobs on a pool of at most options.pool_size workers and
/// returns their reports in job order. With telemetry enabled, emits
/// "engine.drive" / "engine.verify" spans on the worker lanes under each
/// session's trace id (and `fleet_trace` on the run-level span).
FleetRunResult run_fleet(std::vector<FleetSessionJob>& jobs,
                         const FleetEngineOptions& options = {},
                         const obs::TraceId& fleet_trace = {});

}  // namespace sacha::core
