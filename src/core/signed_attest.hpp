// Signed attestation — the paper's second future-work item (§8).
//
// When prover and verifier cannot share a secret before deployment, the
// MAC alone cannot authenticate the device (anyone could compute it).
// In signature mode the device additionally holds a hash-based signing
// identity (a Merkle tree of Lamport one-time keys, crypto/merkle.hpp);
// the verifier is provisioned only with the *public* root, e.g. through a
// manufacturer certificate. After the normal protocol, the device signs
//
//     digest = SHA-256("sacha-evidence" || H_Prv)
//
// with its next one-time leaf. H_Prv already covers the fresh nonce and
// the verifier-chosen readback order, so the signature inherits freshness;
// the verifier additionally enforces the one-time property by rejecting
// leaf reuse (LeafPolicy). Hash-based signatures are the natural choice
// here: the static partition already contains a hash core, and security
// reduces to the same primitive the rest of the scheme uses.
#pragma once

#include <set>

#include "core/session.hpp"
#include "crypto/merkle.hpp"

namespace sacha::core {

/// Evidence digest bound by the signature.
crypto::Sha256Digest attestation_digest(const crypto::Mac& h_prv);

/// Verifier-side one-time-leaf bookkeeping: a leaf index may verify once.
class LeafPolicy {
 public:
  /// True iff the leaf was fresh (and marks it used).
  bool accept(std::uint32_t leaf_index);
  std::size_t used() const { return used_.size(); }

 private:
  std::set<std::uint32_t> used_;
};

struct SignedAttestReport {
  AttestationReport base;
  bool signature_ok = false;  // OTS + Merkle path verify against the root
  bool leaf_fresh = false;    // one-time property respected
  bool binds_transcript = false;  // signed digest matches H_Vrf
  std::uint32_t leaf_index = 0;
  std::string detail;

  bool ok() const {
    return base.verdict.protocol_ok && base.verdict.config_ok && signature_ok &&
           leaf_fresh && binds_transcript;
  }
};

/// Runs the protocol and the signature exchange. `trusted_root` and
/// `tree_height` are what the verifier learned at provisioning; `policy`
/// persists across sessions to enforce one-time leaves.
SignedAttestReport run_signed_attestation(SachaVerifier& verifier,
                                          SachaProver& prover,
                                          crypto::HashSigner& signer,
                                          const crypto::Sha256Digest& trusted_root,
                                          std::uint32_t tree_height,
                                          LeafPolicy& policy,
                                          const SessionOptions& session = {},
                                          const SessionHooks& hooks = {});

}  // namespace sacha::core
