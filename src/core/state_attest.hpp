// State attestation — the paper's first future-work item (§8), implemented.
//
// Baseline SACHa masks out flip-flop bits, so it proves *what hardware is
// configured* but says nothing about *what state that hardware is in*; a
// compromised application state (e.g. a hijacked softcore program counter)
// passes unnoticed. This extension closes that gap:
//
//   1. the standard SACHa session runs (configuration attested);
//   2. the application — a softcore processor — executes for an agreed
//      number of steps; the verifier steps its own golden copy in lockstep;
//   3. a capture is taken and the frames holding the processor's
//      flip-flops are read back again, MACed, and compared against the
//      golden configuration *imprinted with the expected architectural
//      state*, under a mask widened to include exactly those state bits.
//
// The RegisterStateAttack in the adversary library demonstrates the gap
// this closes: undetected by baseline SACHa, detected here.
#pragma once

#include "core/session.hpp"
#include "softcore/state_map.hpp"

namespace sacha::core {

struct StateAttestOptions {
  /// Instructions the application executes between the base attestation
  /// and the capture. Verifier and device agree on this in the challenge.
  std::uint64_t cpu_steps = 64;
  /// Skip the base configuration attestation (for experiments isolating
  /// the state phase).
  bool skip_base = false;
};

struct StateAttestReport {
  AttestationReport base;  // the standard SACHa run (empty if skipped)
  bool state_ok = false;   // captured state matches the golden execution
  bool state_mac_ok = false;  // capture readback correctly MACed
  std::string detail;
  std::size_t frames_checked = 0;
  softcore::CpuState expected_state;

  bool ok() const { return base.verdict.ok() && state_ok && state_mac_ok; }
};

/// Runs base attestation plus the state phase. `device_cpu` is the
/// processor actually running on the device (pass a tampered one to model
/// a compromised application); the verifier independently executes
/// `golden_program` for `options.cpu_steps` to derive the expected state.
StateAttestReport run_state_attestation(SachaVerifier& verifier,
                                        SachaProver& prover,
                                        softcore::SoftCore& device_cpu,
                                        const softcore::Program& golden_program,
                                        const softcore::StateMap& map,
                                        const StateAttestOptions& options = {},
                                        const SessionOptions& session = {},
                                        const SessionHooks& hooks = {});

}  // namespace sacha::core
