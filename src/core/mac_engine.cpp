#include "core/mac_engine.hpp"

#include <algorithm>
#include <array>
#include <cassert>

namespace sacha::core {

MacEngine::MacEngine(const crypto::AesKey& key, MacTiming timing)
    : cmac_(key), timing_(timing), tx_clock_(sim::tx_domain()) {}

void MacEngine::rekey(const crypto::AesKey& key) {
  assert(!started_);
  cmac_ = crypto::Cmac(key);
}

sim::SimDuration MacEngine::init() {
  cmac_.reset();
  started_ = true;
  return tx_clock_.cycles_to_time(timing_.init_cycles);
}

sim::SimDuration MacEngine::update(ByteSpan frame_bytes) {
  assert(started_);
  cmac_.update(frame_bytes);
  return tx_clock_.cycles_to_time(timing_.update_cycles);
}

sim::SimDuration MacEngine::update(std::span<const std::uint32_t> frame_words) {
  assert(started_);
  // Serialise big-endian through a stack block; 64 words per round keeps the
  // staging area cache-hot and feeds Cmac 16-byte-aligned bulk chunks.
  std::array<std::uint8_t, 256> staging;
  std::size_t done = 0;
  while (done < frame_words.size()) {
    const std::size_t n =
        std::min<std::size_t>(staging.size() / 4, frame_words.size() - done);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t w = frame_words[done + i];
      staging[4 * i + 0] = static_cast<std::uint8_t>(w >> 24);
      staging[4 * i + 1] = static_cast<std::uint8_t>(w >> 16);
      staging[4 * i + 2] = static_cast<std::uint8_t>(w >> 8);
      staging[4 * i + 3] = static_cast<std::uint8_t>(w);
    }
    cmac_.update(ByteSpan(staging.data(), n * 4));
    done += n;
  }
  return tx_clock_.cycles_to_time(timing_.update_cycles);
}

void MacEngine::abort() {
  cmac_.reset();
  started_ = false;
}

crypto::Mac MacEngine::finalize(sim::SimDuration& duration) {
  assert(started_);
  started_ = false;
  duration = tx_clock_.cycles_to_time(timing_.finalize_cycles);
  return cmac_.finalize();
}

}  // namespace sacha::core
