#include "core/mac_engine.hpp"

#include <cassert>

namespace sacha::core {

MacEngine::MacEngine(const crypto::AesKey& key, MacTiming timing)
    : cmac_(key), timing_(timing), tx_clock_(sim::tx_domain()) {}

void MacEngine::rekey(const crypto::AesKey& key) {
  assert(!started_);
  cmac_ = crypto::Cmac(key);
}

sim::SimDuration MacEngine::init() {
  cmac_.reset();
  started_ = true;
  return tx_clock_.cycles_to_time(timing_.init_cycles);
}

sim::SimDuration MacEngine::update(ByteSpan frame_bytes) {
  assert(started_);
  cmac_.update(frame_bytes);
  return tx_clock_.cycles_to_time(timing_.update_cycles);
}

sim::SimDuration MacEngine::update(std::span<const std::uint32_t> frame_words) {
  assert(started_);
  cmac_.update(frame_words);
  return tx_clock_.cycles_to_time(timing_.update_cycles);
}

void MacEngine::abort() {
  cmac_.reset();
  started_ = false;
}

crypto::Mac MacEngine::finalize(sim::SimDuration& duration) {
  assert(started_);
  started_ = false;
  duration = tx_clock_.cycles_to_time(timing_.finalize_cycles);
  return cmac_.finalize();
}

}  // namespace sacha::core
