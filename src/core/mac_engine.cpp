#include "core/mac_engine.hpp"

#include <cassert>

#include "obs/metrics.hpp"

namespace sacha::core {

namespace {
// Cached instrument handles: update() runs once per readback frame (28k+
// per Virtex-6 session), so the hot path is one enable branch + relaxed add.
obs::Counter& mac_updates() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("sacha.prover.mac_updates");
  return c;
}
obs::Counter& mac_update_bytes() {
  static obs::Counter& c =
      obs::MetricsRegistry::global().counter("sacha.prover.mac_update_bytes");
  return c;
}
}  // namespace

MacEngine::MacEngine(const crypto::AesKey& key, MacTiming timing)
    : cmac_(key), timing_(timing), tx_clock_(sim::tx_domain()) {}

void MacEngine::rekey(const crypto::AesKey& key) {
  assert(!started_);
  cmac_ = crypto::Cmac(key);
}

sim::SimDuration MacEngine::init() {
  static obs::Counter& inits =
      obs::MetricsRegistry::global().counter("sacha.prover.mac_inits");
  inits.add(1);
  cmac_.reset();
  started_ = true;
  return tx_clock_.cycles_to_time(timing_.init_cycles);
}

sim::SimDuration MacEngine::update(ByteSpan frame_bytes) {
  assert(started_);
  mac_updates().add(1);
  mac_update_bytes().add(frame_bytes.size());
  cmac_.update(frame_bytes);
  return tx_clock_.cycles_to_time(timing_.update_cycles);
}

sim::SimDuration MacEngine::update(std::span<const std::uint32_t> frame_words) {
  assert(started_);
  mac_updates().add(1);
  mac_update_bytes().add(frame_words.size() * 4);
  cmac_.update(frame_words);
  return tx_clock_.cycles_to_time(timing_.update_cycles);
}

void MacEngine::abort() {
  cmac_.reset();
  started_ = false;
}

crypto::Mac MacEngine::finalize(sim::SimDuration& duration) {
  assert(started_);
  static obs::Counter& finalizes =
      obs::MetricsRegistry::global().counter("sacha.prover.mac_finalizes");
  finalizes.add(1);
  started_ = false;
  duration = tx_clock_.cycles_to_time(timing_.finalize_cycles);
  return cmac_.finalize();
}

}  // namespace sacha::core
