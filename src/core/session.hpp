// Attestation session driver.
//
// Connects a SachaVerifier to a SachaProver over a simulated channel and
// executes the full protocol of Fig. 9, accounting simulated time per
// low-level action (A1-A10 of Table 3) in a ledger. The report separates
// the paper's two headline numbers: `theoretical_time` (wire occupancy +
// device work, 1.44 s on the PoC) and `total_time` (adding per-command
// network latency, 28.5 s in the authors' lab).
//
// Adversaries plug in through SessionHooks: a tamper window between the
// configuration and readback phases, and command/response interceptors on
// the public channel (the "local adversary controlling the communication"
// of the threat model).
#pragma once

#include <functional>

#include "core/failure.hpp"
#include "core/prover.hpp"
#include "core/verifier.hpp"
#include "net/channel.hpp"
#include "obs/trace.hpp"
#include "sim/ledger.hpp"

namespace sacha::core {

struct SessionOptions {
  net::ChannelParams channel = net::ChannelParams::ideal();
  std::uint64_t seed = 1;
  /// Acknowledge every command and retransmit on loss (extension beyond the
  /// PoC, used by the lossy-network robustness tests).
  bool reliable = false;
  std::uint32_t max_retries = 5;
  /// Initial retransmission timeout. Successive retries of the same command
  /// back off exponentially: wait_n = min(backoff_cap, timeout *
  /// backoff_multiplier^(n-1)), plus uniform jitter of up to
  /// backoff_jitter * wait_n so a fleet's retries do not synchronise.
  /// Sessions with no retries draw no backoff randomness (bit-identity).
  sim::SimDuration retransmit_timeout = 2 * sim::kMillisecond;
  double backoff_multiplier = 2.0;
  sim::SimDuration backoff_cap = 64 * sim::kMillisecond;
  double backoff_jitter = 0.1;
  /// Simulated-time budget for the whole session (0 = unbounded). A session
  /// that exceeds it is aborted and reported as kDeadlineExceeded — a fleet
  /// verifier must bound every member's port occupancy.
  sim::SimDuration deadline = 0;
  /// Register churn applied once between the configuration and readback
  /// phases (the application "runs"); makes raw readback differ from the
  /// golden bitstream so only the masked compare can succeed.
  double register_flip_probability = 0.25;
};

struct SessionHooks {
  /// Runs after the last configuration command, before readback — the
  /// natural tamper window for a remote adversary.
  std::function<void(SachaProver&)> after_config;
  /// Intercepts the encoded command on the wire; return false to drop it.
  std::function<bool(Bytes&)> on_command;
  /// Intercepts the encoded response; return false to drop it.
  std::function<bool(Bytes&)> on_response;
  /// Runs before each command round with the command index — the fault
  /// harness's trigger point for protocol-progress-keyed device faults
  /// (crash at command k, ICAP stall at command k).
  std::function<void(std::size_t, SachaProver&)> before_command;
};

/// Ledger action keys (Table 3 rows).
namespace actions {
inline constexpr const char* kA1 = "A1 Vrf sends ICAP_config";
inline constexpr const char* kA2 = "A2 Prv performs ICAP_config";
inline constexpr const char* kA3 = "A3 Vrf sends ICAP_readback";
inline constexpr const char* kA4 = "A4 Prv performs ICAP_readback";
inline constexpr const char* kA5 = "A5 Prv performs MAC init";
inline constexpr const char* kA6 = "A6 Prv performs MAC update";
inline constexpr const char* kA7 = "A7 Prv performs MAC finalize";
inline constexpr const char* kA8 = "A8 Prv performs frame sendback";
inline constexpr const char* kA9 = "A9 Vrf sends MAC checksum";
inline constexpr const char* kA10 = "A10 Prv performs MAC sendback";
inline constexpr const char* kNetLatency = "network per-command latency";
inline constexpr const char* kRetransmit = "retransmission timeouts";
inline constexpr const char* kAck = "acknowledgements (reliable mode)";
}  // namespace actions

struct AttestationReport {
  SachaVerifier::Verdict verdict;
  /// Typed cause when the session did not attest (kNone on success). The
  /// first transport failure observed wins over the crypto verdict: a
  /// session that timed out cannot judge tampering.
  FailureKind failure = FailureKind::kNone;
  sim::TimeLedger ledger;
  /// Sum of the A1-A10 buckets (Table 4's "theoretical duration").
  sim::SimDuration theoretical_time = 0;
  /// Everything, including channel latency (Table 4's "measured duration").
  sim::SimDuration total_time = 0;
  std::uint64_t commands_sent = 0;
  std::uint64_t retransmissions = 0;
  /// Messages the channel dropped (both directions, independent + burst).
  std::uint64_t messages_lost = 0;
  /// Total simulated time spent waiting in retransmission backoff.
  sim::SimDuration backoff_wait = 0;
  /// True when the session was cut short by SessionOptions::deadline.
  bool deadline_hit = false;
  std::uint64_t bytes_to_prover = 0;
  std::uint64_t bytes_to_verifier = 0;
  /// Readback bytes the verifier still buffers after finish(): the full
  /// transcript in VerifyMode::kRetained, 0 in the streaming mode. The
  /// fleet benches aggregate this per member.
  std::uint64_t verifier_retained_bytes = 0;
  /// Timeline key of this session ((device id, nonce)-derived), valid even
  /// with telemetry disabled so audit entries always link to a would-be
  /// trace. With telemetry enabled, the global obs::Tracer holds the spans.
  obs::TraceId trace_id{};
  /// Host wall-clock of the whole session (not simulated time).
  std::uint64_t host_ns = 0;
};

/// Runs one full attestation. The verifier's begin() is called internally.
AttestationReport run_attestation(SachaVerifier& verifier, SachaProver& prover,
                                  const SessionOptions& options = {},
                                  const SessionHooks& hooks = {});

}  // namespace sacha::core
