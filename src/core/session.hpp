// Attestation session driver.
//
// Connects a SachaVerifier to a SachaProver over a simulated channel and
// executes the full protocol of Fig. 9, accounting simulated time per
// low-level action (A1-A10 of Table 3) in a ledger. The report separates
// the paper's two headline numbers: `theoretical_time` (wire occupancy +
// device work, 1.44 s on the PoC) and `total_time` (adding per-command
// network latency, 28.5 s in the authors' lab).
//
// Adversaries plug in through SessionHooks: a tamper window between the
// configuration and readback phases, and command/response interceptors on
// the public channel (the "local adversary controlling the communication"
// of the threat model).
#pragma once

#include <chrono>
#include <functional>
#include <optional>

#include "core/failure.hpp"
#include "core/prover.hpp"
#include "core/verifier.hpp"
#include "net/channel.hpp"
#include "obs/trace.hpp"
#include "sim/ledger.hpp"

namespace sacha::core {

/// Seed salt for the phase-boundary register-churn RNG. Shared with the
/// socket transport: the remote prover agent must replay the exact churn
/// SessionMachine would apply locally (same salt, same session seed) for
/// loopback runs to be bit-identical to the in-process engine.
inline constexpr std::uint64_t kChurnSeedSalt = 0xfeedface12345678ULL;

struct SessionOptions {
  net::ChannelParams channel = net::ChannelParams::ideal();
  std::uint64_t seed = 1;
  /// Acknowledge every command and retransmit on loss (extension beyond the
  /// PoC, used by the lossy-network robustness tests).
  bool reliable = false;
  std::uint32_t max_retries = 5;
  /// Initial retransmission timeout. Successive retries of the same command
  /// back off exponentially: wait_n = min(backoff_cap, timeout *
  /// backoff_multiplier^(n-1)), plus uniform jitter of up to
  /// backoff_jitter * wait_n so a fleet's retries do not synchronise.
  /// Sessions with no retries draw no backoff randomness (bit-identity).
  sim::SimDuration retransmit_timeout = 2 * sim::kMillisecond;
  double backoff_multiplier = 2.0;
  sim::SimDuration backoff_cap = 64 * sim::kMillisecond;
  double backoff_jitter = 0.1;
  /// Simulated-time budget for the whole session (0 = unbounded). A session
  /// that exceeds it is aborted and reported as kDeadlineExceeded — a fleet
  /// verifier must bound every member's port occupancy.
  sim::SimDuration deadline = 0;
  /// Register churn applied once between the configuration and readback
  /// phases (the application "runs"); makes raw readback differ from the
  /// golden bitstream so only the masked compare can succeed.
  double register_flip_probability = 0.25;
};

struct SessionHooks {
  /// Runs after the last configuration command, before readback — the
  /// natural tamper window for a remote adversary.
  std::function<void(SachaProver&)> after_config;
  /// Intercepts the encoded command on the wire; return false to drop it.
  std::function<bool(Bytes&)> on_command;
  /// Intercepts the encoded response; return false to drop it.
  std::function<bool(Bytes&)> on_response;
  /// Runs before each command round with the command index — the fault
  /// harness's trigger point for protocol-progress-keyed device faults
  /// (crash at command k, ICAP stall at command k).
  std::function<void(std::size_t, SachaProver&)> before_command;
};

/// Ledger action keys (Table 3 rows).
namespace actions {
inline constexpr const char* kA1 = "A1 Vrf sends ICAP_config";
inline constexpr const char* kA2 = "A2 Prv performs ICAP_config";
inline constexpr const char* kA3 = "A3 Vrf sends ICAP_readback";
inline constexpr const char* kA4 = "A4 Prv performs ICAP_readback";
inline constexpr const char* kA5 = "A5 Prv performs MAC init";
inline constexpr const char* kA6 = "A6 Prv performs MAC update";
inline constexpr const char* kA7 = "A7 Prv performs MAC finalize";
inline constexpr const char* kA8 = "A8 Prv performs frame sendback";
inline constexpr const char* kA9 = "A9 Vrf sends MAC checksum";
inline constexpr const char* kA10 = "A10 Prv performs MAC sendback";
inline constexpr const char* kNetLatency = "network per-command latency";
inline constexpr const char* kRetransmit = "retransmission timeouts";
inline constexpr const char* kAck = "acknowledgements (reliable mode)";
}  // namespace actions

struct AttestationReport {
  SachaVerifier::Verdict verdict;
  /// Typed cause when the session did not attest (kNone on success). The
  /// first transport failure observed wins over the crypto verdict: a
  /// session that timed out cannot judge tampering.
  FailureKind failure = FailureKind::kNone;
  sim::TimeLedger ledger;
  /// Sum of the A1-A10 buckets (Table 4's "theoretical duration").
  sim::SimDuration theoretical_time = 0;
  /// Everything, including channel latency (Table 4's "measured duration").
  sim::SimDuration total_time = 0;
  std::uint64_t commands_sent = 0;
  std::uint64_t retransmissions = 0;
  /// Messages the channel dropped (both directions, independent + burst).
  std::uint64_t messages_lost = 0;
  /// Total simulated time spent waiting in retransmission backoff.
  sim::SimDuration backoff_wait = 0;
  /// True when the session was cut short by SessionOptions::deadline.
  bool deadline_hit = false;
  std::uint64_t bytes_to_prover = 0;
  std::uint64_t bytes_to_verifier = 0;
  /// Readback bytes the verifier still buffers after finish(): the full
  /// transcript in VerifyMode::kRetained, 0 in the streaming mode. The
  /// fleet benches aggregate this per member.
  std::uint64_t verifier_retained_bytes = 0;
  /// Simulated time delivered messages occupied the channel (both
  /// directions) — the share of total_time a blocking driver spends
  /// waiting on the wire, i.e. what the fleet engine overlaps.
  sim::SimDuration channel_time = 0;
  /// Timeline key of this session ((device id, nonce)-derived), valid even
  /// with telemetry disabled so audit entries always link to a would-be
  /// trace. With telemetry enabled, the global obs::Tracer holds the spans.
  obs::TraceId trace_id{};
  /// Host wall-clock of the whole session (not simulated time).
  std::uint64_t host_ns = 0;
};

/// Resumable form of the attestation session driver.
///
/// One SessionMachine runs exactly the protocol loop of run_attestation,
/// but split at the channel boundary so a fleet engine can multiplex many
/// sessions on a few workers: step() executes one full command round
/// (encode, transfer, device, retries — everything except the verifier
/// absorb) and returns the round's outcome; deliver() folds that outcome
/// into the verifier (the streaming CMAC absorb + masked compare);
/// finish() assembles the report. Driving `while (!done()) deliver(step())`
/// then finish() is bit-identical to run_attestation — same RNG draw
/// order, same ledger, same failure precedence — because the split only
/// moves the on_response call, which the command schedule never depends
/// on (it is frozen at begin()).
///
/// Concurrency contract (what the fleet engine relies on): step() and
/// deliver() touch disjoint verifier state — command(i) reads the frozen
/// schedule and the shared read-only GoldenModel, on_response writes the
/// streaming absorb state — so ONE thread may run step() while ANOTHER
/// runs deliver() for rounds already produced, provided each side is
/// serialised (a drive strand and a verify strand). finish() requires both
/// strands quiesced. With emit_spans = false the machine opens no obs
/// spans, so strands may hop between pool threads (obs::Span is
/// thread-affine); the engine emits its own per-slice worker-lane spans.
class SessionMachine {
 public:
  /// Outcome of one command round, produced by step() and consumed by
  /// deliver(). `response` is what the verifier absorbs (nullopt for
  /// fire-and-forget config commands in unreliable mode); `verify_words`
  /// is the frame-data payload size, the verify-side cost driver.
  struct Round {
    std::size_t index = 0;
    /// False only when the round aborted on the session deadline — there
    /// is nothing to absorb and the session is over.
    bool deliver = false;
    std::optional<Response> response;
    /// Simulated time this round added to the session (wire + latency +
    /// device + backoff).
    sim::SimDuration elapsed = 0;
    std::size_t verify_words = 0;
    /// No further rounds follow (schedule exhausted or deadline abort).
    bool last = false;
  };

  /// Calls verifier.begin() (fresh nonce, frozen schedule). With
  /// emit_spans = false no obs spans are opened (see the concurrency
  /// contract); counters still fire.
  SessionMachine(SachaVerifier& verifier, SachaProver& prover,
                 const SessionOptions& options = {},
                 const SessionHooks& hooks = {}, bool emit_spans = true);

  bool done() const { return aborted_ || next_ >= commands_; }
  /// Executes the next command round. Precondition: !done().
  Round step();
  /// Absorbs a round produced by step(), in production order.
  void deliver(Round round);
  /// Finalises the verdict and returns the report. Call exactly once,
  /// after done() and after every produced round was delivered.
  AttestationReport finish();

  const obs::TraceId& trace_id() const { return report_.trace_id; }

  /// Routes the verifier's streaming CMAC folds to `sink` so the engine's
  /// verify lanes can interleave several members' folds in one multi-stream
  /// absorb (see SachaVerifier::set_absorb_sink for the ordering contract:
  /// flush before finish(), detach when the batch closes). Belongs to the
  /// verify strand of the concurrency contract above.
  void set_absorb_sink(crypto::CmacBatch* sink) {
    verifier_.set_absorb_sink(sink);
  }

 private:
  void note_failure(FailureKind kind);
  bool past_deadline() const;

  SachaVerifier& verifier_;
  SachaProver& prover_;
  const SessionOptions options_;
  const SessionHooks hooks_;
  const bool emit_spans_;
  AttestationReport report_;
  net::Channel channel_;
  Rng churn_rng_;
  Rng backoff_rng_;
  FailureKind transport_failure_ = FailureKind::kNone;
  std::chrono::steady_clock::time_point host_start_;
  std::size_t commands_ = 0;
  std::size_t configs_ = 0;
  std::size_t next_ = 0;
  bool config_phase_done_ = false;
  bool aborted_ = false;  // session deadline tripped; no further rounds
  std::optional<obs::Span> session_span_;
  std::optional<obs::Span> phase_span_;
  std::optional<obs::Span> round_span_;
};

/// Runs one full attestation. The verifier's begin() is called internally.
AttestationReport run_attestation(SachaVerifier& verifier, SachaProver& prover,
                                  const SessionOptions& options = {},
                                  const SessionHooks& hooks = {});

/// Applies the phase-boundary register churn exactly as SessionMachine
/// does at the first non-config command: a fresh Rng seeded
/// `session_seed ^ kChurnSeedSalt`, one tick_registers pass. The remote
/// prover agent calls this so a device driven over a socket holds the same
/// DynMem contents as one driven in-process with the same seed.
void apply_register_churn(SachaProver& prover, std::uint64_t session_seed,
                          double flip_probability);

/// Verifier half of a *remote* attestation session (socket transport).
///
/// SessionMachine drives verifier and prover in one process over the
/// simulated channel; on a real socket the prover lives in another process
/// and the transport carries bytes, not simulated time. VerifierSession
/// keeps only the verifier-side bookkeeping: the frozen command schedule
/// feeds the wire (pipelined — a window of commands may be in flight),
/// responses absorb in strict index order, and finish() applies the same
/// response mapping and failure precedence as SessionMachine — kAck
/// responses are transport-level only (absorbed as nullopt), a kError
/// response notes kDeviceError but is still absorbed, and the first
/// transport failure wins over the crypto verdict. Combined with the
/// client replaying apply_register_churn under the same session seed, a
/// loss-free loopback run is bit-identical (verdict + MAC) to the
/// in-process engine.
class VerifierSession {
 public:
  struct Report {
    SachaVerifier::Verdict verdict;
    FailureKind failure = FailureKind::kNone;
    std::optional<crypto::Mac> expected_mac;
    std::uint64_t commands = 0;
    /// Host wall-clock from construction to finish() (nanoseconds).
    std::uint64_t host_ns = 0;
  };

  /// Calls verifier.begin() (fresh nonce, frozen schedule).
  explicit VerifierSession(SachaVerifier& verifier);

  /// Adopts the trace context propagated in the HELLO frame. When
  /// `sampled` is set (the client's deterministic head-sampling decision)
  /// and telemetry is enabled, the session emits verifier-side phase spans
  /// (Table-4 names, category "phase", arg side=verifier) under the
  /// client's TraceId — the other half of the cross-process timeline. The
  /// spans are assembled manually (Tracer::record) rather than via the
  /// RAII Span because verify strands hop between worker threads; their
  /// lane key derives from the trace id, not the OS thread, so one
  /// session's two halves sit adjacent in the merged Chrome trace.
  void set_trace(const obs::TraceId& trace, bool sampled);

  const obs::TraceId& trace() const { return trace_; }
  bool sampled() const { return sampled_; }
  /// Copy of the verifier-side span records this session emitted (session
  /// + phases), for endpoints that show recent timelines (/tracez).
  const std::vector<obs::SpanRecord>& timeline() const { return timeline_; }

  std::size_t command_count() const { return commands_; }
  std::size_t issued() const { return issued_; }
  std::size_t delivered() const { return delivered_; }
  bool all_issued() const { return issued_ >= commands_; }
  bool done() const { return delivered_ >= commands_; }

  /// Encoded wire payload of the next command; nullopt once the schedule
  /// is exhausted.
  std::optional<Bytes> next_command_wire();

  /// Absorbs the response to the next undelivered command. The transport
  /// is an ordered byte stream, so responses arrive in command order;
  /// nullopt means the command produced no response (fire-and-forget
  /// configuration).
  void on_response(std::optional<Response> response);

  /// Records a transport-layer failure (peer disconnect, decode poison,
  /// timeout); the first one observed wins.
  void note_failure(FailureKind kind);

  /// Finalises the verdict. Call once, after every response was delivered
  /// or the session was abandoned to a transport failure.
  Report finish();

  /// Routes streaming CMAC folds into a verify-lane batch (same contract
  /// as SessionMachine::set_absorb_sink).
  void set_absorb_sink(crypto::CmacBatch* sink) {
    verifier_.set_absorb_sink(sink);
  }

 private:
  /// Closes the running phase (if any) and opens `name`; nullptr closes
  /// without opening. No-op unless this session is traced.
  void begin_phase(const char* name);
  void emit_span(const char* name, const char* category, std::uint64_t start,
                 std::uint64_t end, std::uint32_t depth);

  SachaVerifier& verifier_;
  FailureKind transport_failure_ = FailureKind::kNone;
  std::chrono::steady_clock::time_point host_start_;
  std::size_t commands_ = 0;
  std::size_t configs_ = 0;
  std::size_t issued_ = 0;
  std::size_t delivered_ = 0;
  obs::TraceId trace_{};
  bool sampled_ = false;
  bool tracing_ = false;
  const char* phase_name_ = nullptr;
  std::uint64_t phase_start_ns_ = 0;
  std::uint64_t session_start_ns_ = 0;
  std::vector<obs::SpanRecord> timeline_;
};

}  // namespace sacha::core
