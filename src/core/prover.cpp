#include "core/prover.hpp"

#include <algorithm>

#include "bitstream/packet.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sacha::core {

namespace bs = sacha::bitstream;

SachaProver::SachaProver(const fabric::DeviceModel& device,
                         std::string device_id, const crypto::AesKey& key,
                         ProverOptions options)
    : device_id_(std::move(device_id)),
      options_(options),
      memory_(device),
      icap_(memory_, config::device_idcode(device)),
      command_buffer_(options.command_buffer_bytes),
      mac_(key),
      icap_clock_(sim::icap_domain()) {}

SachaProver::SachaProver(SachaProver&& other) noexcept
    : device_id_(std::move(other.device_id_)),
      options_(other.options_),
      memory_(std::move(other.memory_)),
      icap_(std::move(other.icap_)),
      command_buffer_(std::move(other.command_buffer_)),
      mac_(std::move(other.mac_)),
      icap_clock_(std::move(other.icap_clock_)),
      last_mac_(other.last_mac_),
      fault_(other.fault_),
      boot_image_(std::move(other.boot_image_)) {
  icap_.rebind(memory_);
}

void SachaProver::boot(const bitstream::ConfigImage& static_image) {
  for (std::uint32_t i = 0; i < static_image.frames.size(); ++i) {
    memory_.write_frame(i, static_image.frames[i]);
  }
  boot_image_ = static_image;
}

void SachaProver::inject_crash(std::uint32_t reboot_after_packets) {
  static obs::Counter& crashes =
      obs::MetricsRegistry::global().counter("sacha.prover.faults.crashes");
  crashes.add(1);
  fault_.crashed = true;
  fault_.reboot_after = reboot_after_packets;
  (log_debug() << "prover crash injected")
      .kv("device", device_id_)
      .kv("reboot_after", reboot_after_packets);
}

void SachaProver::inject_stall(std::uint32_t packets) {
  static obs::Counter& stalls =
      obs::MetricsRegistry::global().counter("sacha.prover.faults.stalls");
  stalls.add(1);
  fault_.stall_remaining += packets;
  (log_debug() << "prover ICAP stall injected")
      .kv("device", device_id_)
      .kv("packets", packets);
}

void SachaProver::reboot() {
  static obs::Counter& reboots =
      obs::MetricsRegistry::global().counter("sacha.prover.faults.reboots");
  reboots.add(1);
  // Volatile configuration memory is gone; only BootMem survives the power
  // cycle. Zero everything, then reload the static partition.
  const bitstream::Frame zero(
      std::vector<std::uint32_t>(memory_.words_per_frame(), 0));
  for (std::uint32_t i = 0; i < memory_.total_frames(); ++i) {
    memory_.write_frame(i, zero);
  }
  for (std::uint32_t i = 0; i < boot_image_.frames.size(); ++i) {
    memory_.write_frame(i, boot_image_.frames[i]);
  }
  if (mac_.busy()) mac_.abort();
  last_mac_.reset();
  fault_.crashed = false;
  fault_.reboot_after = 0;
  fault_.stall_remaining = 0;
  ++fault_.reboots;
  (log_debug() << "prover rebooted from BootMem").kv("device", device_id_);
}

void SachaProver::set_key(const crypto::AesKey& key) { mac_.rekey(key); }

SachaProver::HandleResult SachaProver::error_result(ProverStatus status) {
  static obs::Counter& errors =
      obs::MetricsRegistry::global().counter("sacha.prover.errors");
  errors.add(1);
  (log_debug() << "prover rejected command")
      .kv("device", device_id_)
      .kv("status", static_cast<int>(status));
  HandleResult result;
  result.response = Response{.type = ResponseType::kError, .status = status};
  return result;
}

SachaProver::HandleResult SachaProver::handle_packet(ByteSpan packet) {
  // Fault gate: a crashed or stalled device never sees the packet — from
  // the verifier's side this is indistinguishable from wire loss, which is
  // exactly the point (only retry behaviour and typed failure reporting
  // distinguish them at the fleet layer).
  if (fault_.stall_remaining > 0) {
    --fault_.stall_remaining;
    ++fault_.packets_dropped;
    static obs::Counter& dropped = obs::MetricsRegistry::global().counter(
        "sacha.prover.faults.packets_dropped");
    dropped.add(1);
    HandleResult result;
    result.dropped = true;
    return result;
  }
  if (fault_.crashed) {
    ++fault_.packets_dropped;
    static obs::Counter& dropped = obs::MetricsRegistry::global().counter(
        "sacha.prover.faults.packets_dropped");
    dropped.add(1);
    if (fault_.reboot_after > 0 && --fault_.reboot_after == 0) {
      // The device powers back up after this packet is lost; the *next*
      // packet reaches a freshly booted (application-less) device.
      reboot();
    }
    HandleResult result;
    result.dropped = true;
    return result;
  }
  auto decoded = Command::decode(packet);
  if (!decoded.ok()) return error_result(ProverStatus::kBadCommand);
  const Command& command = decoded.value();
  // The RX FSM stages the effective command in the BRAM buffer before the
  // ICAP domain picks it up. The buffer is sized for one frame's program;
  // oversized commands cannot be staged and are rejected — this is the
  // bounded-memory property at the implementation level.
  Bytes staged;
  staged.reserve(command.stream.size() * 4);
  for (std::uint32_t w : command.stream) {
    if (w == bs::kNoopWord) continue;  // padding never reaches the buffer
    put_u32be(staged, w);
  }
  if (!command_buffer_.store("command", std::move(staged))) {
    return error_result(ProverStatus::kBadCommand);
  }
  return handle(command);
}

SachaProver::HandleResult SachaProver::handle(const Command& command) {
  HandleResult result;

  // Strip NOOP padding (the RX FSM stores only effective words).
  std::vector<std::uint32_t> program;
  program.reserve(command.stream.size());
  std::copy_if(command.stream.begin(), command.stream.end(),
               std::back_inserter(program),
               [](std::uint32_t w) { return w != bs::kNoopWord; });

  switch (command.type) {
    case CommandType::kIcapConfig: {
      // A configuration command opens a new attestation round: any MAC
      // computation left over from an aborted readback phase is discarded,
      // so stale state can never leak into the next session's checksum.
      if (mac_.busy()) mac_.abort();
      const std::uint64_t cycles_before = icap_.stats().cycles;
      auto outcome = icap_.execute(program);
      result.icap_time =
          icap_clock_.cycles_to_time(icap_.stats().cycles - cycles_before);
      if (!outcome.ok()) {
        result.response =
            Response{.type = ResponseType::kError, .status = ProverStatus::kIcapError};
        return result;
      }
      // Fire and forget: the PoC does not acknowledge configuration writes.
      result.response = std::nullopt;
      return result;
    }

    case CommandType::kIcapReadback: {
      const std::uint64_t cycles_before = icap_.stats().cycles;
      auto outcome = icap_.execute(program);
      result.icap_time =
          icap_clock_.cycles_to_time(icap_.stats().cycles - cycles_before);
      if (!outcome.ok()) {
        result.response =
            Response{.type = ResponseType::kError, .status = ProverStatus::kIcapError};
        return result;
      }
      const std::vector<std::uint32_t>& words = outcome.value();
      if (words.empty()) {
        // A readback command whose program reads nothing is malformed.
        result.response = Response{.type = ResponseType::kError,
                                   .status = ProverStatus::kBadCommand};
        return result;
      }
      if (!mac_.busy()) result.mac_init_time = mac_.init();
      // Frame fast path: MAC the readback words in place — no per-frame
      // byte-vector copy between the ICAP output and the AES-CMAC engine.
      result.mac_update_time =
          mac_.update(std::span<const std::uint32_t>(words));
      result.response = Response{.type = ResponseType::kFrameData,
                                 .status = ProverStatus::kOk,
                                 .frame_words = words};
      return result;
    }

    case CommandType::kMacChecksum: {
      if (!mac_.busy()) {
        result.response = Response{.type = ResponseType::kError,
                                   .status = ProverStatus::kNoMacPending};
        return result;
      }
      Response response{.type = ResponseType::kMacValue, .status = ProverStatus::kOk};
      response.mac = mac_.finalize(result.mac_finalize_time);
      last_mac_ = response.mac;
      result.response = std::move(response);
      return result;
    }
  }
  return error_result(ProverStatus::kBadCommand);
}

Result<crypto::AesKey> key_from_puf(const puf::SramPuf& puf,
                                    const puf::HelperData& helper,
                                    Rng& noise_rng) {
  const BitVec response = puf.read(noise_rng);
  auto key = puf::reproduce(response, helper);
  if (!key.has_value()) {
    return Result<crypto::AesKey>::error("fuzzy extractor failed to decode");
  }
  return *key;
}

}  // namespace sacha::core
