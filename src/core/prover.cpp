#include "core/prover.hpp"

#include <algorithm>

#include "bitstream/packet.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sacha::core {

namespace bs = sacha::bitstream;

SachaProver::SachaProver(const fabric::DeviceModel& device,
                         std::string device_id, const crypto::AesKey& key,
                         ProverOptions options)
    : device_id_(std::move(device_id)),
      options_(options),
      memory_(device),
      icap_(memory_, config::device_idcode(device)),
      command_buffer_(options.command_buffer_bytes),
      mac_(key),
      icap_clock_(sim::icap_domain()) {}

SachaProver::SachaProver(SachaProver&& other) noexcept
    : device_id_(std::move(other.device_id_)),
      options_(other.options_),
      memory_(std::move(other.memory_)),
      icap_(std::move(other.icap_)),
      command_buffer_(std::move(other.command_buffer_)),
      mac_(std::move(other.mac_)),
      icap_clock_(std::move(other.icap_clock_)),
      last_mac_(other.last_mac_) {
  icap_.rebind(memory_);
}

void SachaProver::boot(const bitstream::ConfigImage& static_image) {
  for (std::uint32_t i = 0; i < static_image.frames.size(); ++i) {
    memory_.write_frame(i, static_image.frames[i]);
  }
}

void SachaProver::set_key(const crypto::AesKey& key) { mac_.rekey(key); }

SachaProver::HandleResult SachaProver::error_result(ProverStatus status) {
  static obs::Counter& errors =
      obs::MetricsRegistry::global().counter("sacha.prover.errors");
  errors.add(1);
  (log_debug() << "prover rejected command")
      .kv("device", device_id_)
      .kv("status", static_cast<int>(status));
  HandleResult result;
  result.response = Response{.type = ResponseType::kError, .status = status};
  return result;
}

SachaProver::HandleResult SachaProver::handle_packet(ByteSpan packet) {
  auto decoded = Command::decode(packet);
  if (!decoded.ok()) return error_result(ProverStatus::kBadCommand);
  const Command& command = decoded.value();
  // The RX FSM stages the effective command in the BRAM buffer before the
  // ICAP domain picks it up. The buffer is sized for one frame's program;
  // oversized commands cannot be staged and are rejected — this is the
  // bounded-memory property at the implementation level.
  Bytes staged;
  staged.reserve(command.stream.size() * 4);
  for (std::uint32_t w : command.stream) {
    if (w == bs::kNoopWord) continue;  // padding never reaches the buffer
    put_u32be(staged, w);
  }
  if (!command_buffer_.store("command", std::move(staged))) {
    return error_result(ProverStatus::kBadCommand);
  }
  return handle(command);
}

SachaProver::HandleResult SachaProver::handle(const Command& command) {
  HandleResult result;

  // Strip NOOP padding (the RX FSM stores only effective words).
  std::vector<std::uint32_t> program;
  program.reserve(command.stream.size());
  std::copy_if(command.stream.begin(), command.stream.end(),
               std::back_inserter(program),
               [](std::uint32_t w) { return w != bs::kNoopWord; });

  switch (command.type) {
    case CommandType::kIcapConfig: {
      // A configuration command opens a new attestation round: any MAC
      // computation left over from an aborted readback phase is discarded,
      // so stale state can never leak into the next session's checksum.
      if (mac_.busy()) mac_.abort();
      const std::uint64_t cycles_before = icap_.stats().cycles;
      auto outcome = icap_.execute(program);
      result.icap_time =
          icap_clock_.cycles_to_time(icap_.stats().cycles - cycles_before);
      if (!outcome.ok()) {
        result.response =
            Response{.type = ResponseType::kError, .status = ProverStatus::kIcapError};
        return result;
      }
      // Fire and forget: the PoC does not acknowledge configuration writes.
      result.response = std::nullopt;
      return result;
    }

    case CommandType::kIcapReadback: {
      const std::uint64_t cycles_before = icap_.stats().cycles;
      auto outcome = icap_.execute(program);
      result.icap_time =
          icap_clock_.cycles_to_time(icap_.stats().cycles - cycles_before);
      if (!outcome.ok()) {
        result.response =
            Response{.type = ResponseType::kError, .status = ProverStatus::kIcapError};
        return result;
      }
      const std::vector<std::uint32_t>& words = outcome.value();
      if (words.empty()) {
        // A readback command whose program reads nothing is malformed.
        result.response = Response{.type = ResponseType::kError,
                                   .status = ProverStatus::kBadCommand};
        return result;
      }
      if (!mac_.busy()) result.mac_init_time = mac_.init();
      // Frame fast path: MAC the readback words in place — no per-frame
      // byte-vector copy between the ICAP output and the AES-CMAC engine.
      result.mac_update_time =
          mac_.update(std::span<const std::uint32_t>(words));
      result.response = Response{.type = ResponseType::kFrameData,
                                 .status = ProverStatus::kOk,
                                 .frame_words = words};
      return result;
    }

    case CommandType::kMacChecksum: {
      if (!mac_.busy()) {
        result.response = Response{.type = ResponseType::kError,
                                   .status = ProverStatus::kNoMacPending};
        return result;
      }
      Response response{.type = ResponseType::kMacValue, .status = ProverStatus::kOk};
      response.mac = mac_.finalize(result.mac_finalize_time);
      last_mac_ = response.mac;
      result.response = std::move(response);
      return result;
    }
  }
  return error_result(ProverStatus::kBadCommand);
}

Result<crypto::AesKey> key_from_puf(const puf::SramPuf& puf,
                                    const puf::HelperData& helper,
                                    Rng& noise_rng) {
  const BitVec response = puf.read(noise_rng);
  auto key = puf::reproduce(response, helper);
  if (!key.has_value()) {
    return Result<crypto::AesKey>::error("fuzzy extractor failed to decode");
  }
  return *key;
}

}  // namespace sacha::core
