// Typed attestation-failure taxonomy.
//
// The paper's protocol has exactly one failure semantics: the verifier
// rejects. A fleet verifier needs more — a stalled ICAP, a lossy uplink and
// a tampered bitstream demand different operator responses (retry, reroute,
// page security). FailureKind is the closed set of causes the session
// driver and verifier can distinguish; AttestationReport and SwarmReport
// carry it so the swarm supervisor can decide what is safe to retry and
// the telemetry layer can count failures by cause.
//
// Ordering of blame when several things went wrong in one session: the
// first *transport* failure observed wins (a session that timed out cannot
// judge tampering), and only a transport-clean session reports a crypto
// verdict (kMacMismatch / kMaskedCompareMismatch).
#pragma once

#include <cstdint>

namespace sacha::core {

enum class FailureKind : std::uint8_t {
  kNone = 0,
  /// H_Prv != H_Vrf: the device does not hold the key, or readback data was
  /// modified in flight. Never retried into success — a fresh-nonce retry
  /// re-runs the full protocol and an actual adversary fails it again.
  kMacMismatch,
  /// Msk(B_Prv) != Msk(B_Vrf) or a frame was never covered: the device is
  /// not configured as intended (tamper, or an SEU a reconfiguration heals).
  kMaskedCompareMismatch,
  /// A command exhausted its retransmission budget (reliable mode), or a
  /// response never arrived (fire-and-forget mode).
  kTimeoutExhausted,
  /// The device answered with an error response (ICAP error, rejected or
  /// oversized command).
  kDeviceError,
  /// A delivered response failed to parse (corruption the transport did not
  /// catch) or violated the protocol state machine.
  kDecodeError,
  /// The session blew through its simulated-time deadline and was aborted.
  kDeadlineExceeded,
  /// The remote peer vanished mid-session (TCP reset, abrupt close, or a
  /// poisoned frame stream on the socket transport). Like a timeout, the
  /// verifier never got a clean look at the device.
  kPeerDisconnect,
};

constexpr const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kNone:
      return "none";
    case FailureKind::kMacMismatch:
      return "mac_mismatch";
    case FailureKind::kMaskedCompareMismatch:
      return "masked_compare_mismatch";
    case FailureKind::kTimeoutExhausted:
      return "timeout_exhausted";
    case FailureKind::kDeviceError:
      return "device_error";
    case FailureKind::kDecodeError:
      return "decode_error";
    case FailureKind::kDeadlineExceeded:
      return "deadline_exceeded";
    case FailureKind::kPeerDisconnect:
      return "peer_disconnect";
  }
  return "unknown";
}

/// Transport-layer causes: the session never got a clean look at the
/// device, so nothing can be said about its configuration. The swarm
/// supervisor retries these without raising suspicion; crypto failures are
/// also retried (a fresh nonce makes that safe) but keep their typed cause.
constexpr bool is_transport_failure(FailureKind kind) {
  return kind == FailureKind::kTimeoutExhausted ||
         kind == FailureKind::kDeviceError ||
         kind == FailureKind::kDecodeError ||
         kind == FailureKind::kDeadlineExceeded ||
         kind == FailureKind::kPeerDisconnect;
}

}  // namespace sacha::core
