// Tamper-evident attestation audit log.
//
// Operational deployments attest fleets repeatedly; the verifier-side
// record of who attested when (and who failed) becomes evidence worth
// protecting in its own right. AuditLog hash-chains every entry — entry N's
// digest covers entry N's content and entry N-1's digest — so truncation
// or in-place modification of history is detectable from the head digest
// alone, which can be countersigned or published.
#pragma once

#include <string>
#include <vector>

#include "core/session.hpp"
#include "crypto/sha256.hpp"

namespace sacha::core {

struct AuditEntry {
  std::uint64_t sequence = 0;
  std::string device_id;
  std::uint64_t nonce = 0;
  bool attested = false;
  std::string detail;
  sim::SimDuration session_time = 0;
  /// Timeline key of the audited session — links the verdict to its trace
  /// spans and metrics. Covered by the chain digest, so the *claimed*
  /// evidence timeline cannot be swapped after the fact.
  obs::TraceId trace_id{};
  crypto::Sha256Digest chained_digest{};  // covers this entry + predecessor

  /// Canonical byte encoding fed into the chain digest.
  Bytes canonical_bytes() const;
};

class AuditLog {
 public:
  /// Appends a session outcome; returns the new head digest.
  const crypto::Sha256Digest& append(const std::string& device_id,
                                     std::uint64_t nonce,
                                     const AttestationReport& report);

  const std::vector<AuditEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Digest of the newest entry (all-zero when empty).
  const crypto::Sha256Digest& head() const { return head_; }

  /// Recomputes the whole chain; false if any entry was modified, removed
  /// from the middle, or reordered.
  bool verify_chain() const;

  /// Number of failed sessions recorded.
  std::size_t failures() const;

 private:
  static crypto::Sha256Digest chain(const AuditEntry& entry,
                                    const crypto::Sha256Digest& previous);

  std::vector<AuditEntry> entries_;
  crypto::Sha256Digest head_{};
};

}  // namespace sacha::core
