#include "core/audit.hpp"

namespace sacha::core {

Bytes AuditEntry::canonical_bytes() const {
  Bytes out;
  put_u64be(out, sequence);
  put_u16be(out, static_cast<std::uint16_t>(device_id.size()));
  append(out, bytes_of(device_id));
  put_u64be(out, nonce);
  out.push_back(attested ? 1 : 0);
  put_u16be(out, static_cast<std::uint16_t>(detail.size()));
  append(out, bytes_of(detail));
  put_u64be(out, session_time);
  put_u64be(out, trace_id.hi);
  put_u64be(out, trace_id.lo);
  return out;
}

crypto::Sha256Digest AuditLog::chain(const AuditEntry& entry,
                                     const crypto::Sha256Digest& previous) {
  crypto::Sha256 hash;
  hash.update(bytes_of("sacha-audit-v1"));
  hash.update(previous);
  hash.update(entry.canonical_bytes());
  return hash.finalize();
}

const crypto::Sha256Digest& AuditLog::append(const std::string& device_id,
                                             std::uint64_t nonce,
                                             const AttestationReport& report) {
  AuditEntry entry;
  entry.sequence = entries_.size();
  entry.device_id = device_id;
  entry.nonce = nonce;
  entry.attested = report.verdict.ok();
  entry.detail = report.verdict.detail;
  entry.session_time = report.total_time;
  entry.trace_id = report.trace_id;
  entry.chained_digest = chain(entry, head_);
  head_ = entry.chained_digest;
  entries_.push_back(std::move(entry));
  return head_;
}

bool AuditLog::verify_chain() const {
  crypto::Sha256Digest previous{};
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const AuditEntry& entry = entries_[i];
    if (entry.sequence != i) return false;
    if (chain(entry, previous) != entry.chained_digest) return false;
    previous = entry.chained_digest;
  }
  return previous == head_;
}

std::size_t AuditLog::failures() const {
  std::size_t n = 0;
  for (const AuditEntry& entry : entries_) n += entry.attested ? 0 : 1;
  return n;
}

}  // namespace sacha::core
