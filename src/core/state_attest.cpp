#include "core/state_attest.hpp"

#include "bitstream/bitgen.hpp"
#include "bitstream/packet.hpp"
#include "config/icap.hpp"
#include "crypto/ct.hpp"

namespace sacha::core {

namespace bs = sacha::bitstream;

StateAttestReport run_state_attestation(SachaVerifier& verifier,
                                        SachaProver& prover,
                                        softcore::SoftCore& device_cpu,
                                        const softcore::Program& golden_program,
                                        const softcore::StateMap& map,
                                        const StateAttestOptions& options,
                                        const SessionOptions& session,
                                        const SessionHooks& hooks) {
  StateAttestReport report;

  // Phase 1: standard configuration attestation.
  if (!options.skip_base) {
    report.base = run_attestation(verifier, prover, session, hooks);
    if (!report.base.verdict.ok()) {
      report.detail = "base attestation failed: " + report.base.verdict.detail;
      return report;
    }
  } else {
    verifier.begin();  // still need a session (nonce frame in golden refs)
    report.base.verdict.protocol_ok = true;
    report.base.verdict.mac_ok = true;
    report.base.verdict.config_ok = true;
  }

  // Phase 2: the application runs. Device side executes its (possibly
  // compromised) processor and the live flip-flops follow; verifier side
  // executes the golden program in lockstep.
  device_cpu.run(options.cpu_steps);
  map.sync_to_memory(device_cpu.state(), prover.memory());

  softcore::SoftCore golden_cpu(golden_program);
  golden_cpu.run(options.cpu_steps);
  report.expected_state = golden_cpu.state();

  // Phase 3: capture — targeted readback of the frames backing the
  // processor state, MACed like any readback, compared under the widened
  // mask against golden-with-expected-state.
  const fabric::DeviceModel& device = verifier.floorplan().device();
  const std::uint32_t wpf = device.geometry().words_per_frame();
  const std::uint32_t idcode = config::device_idcode(device);
  Bytes captured_bytes;  // capture transcript, in readback order, for the MAC
  bool all_match = true;
  std::string mismatch;

  for (const std::uint32_t frame_index : map.frames_touched()) {
    bs::PacketWriter w;
    w.sync();
    w.write_idcode(idcode);
    w.cmd(bs::CmdOp::kRcfg);
    w.write_far(device.geometry().address_of(frame_index));
    w.read_request(wpf);
    w.cmd(bs::CmdOp::kDesync);
    const Command command{CommandType::kIcapReadback, frame_index, w.words()};
    const auto result = prover.handle(command);
    if (!result.response.has_value() ||
        result.response->type != ResponseType::kFrameData) {
      report.detail = "capture readback failed at frame " +
                      std::to_string(frame_index);
      return report;
    }
    for (std::uint32_t w : result.response->frame_words) {
      put_u32be(captured_bytes, w);
    }
    ++report.frames_checked;

    const bs::Frame received(
        std::vector<std::uint32_t>(result.response->frame_words));
    const bs::FrameMask base_mask = bs::architectural_mask(device, frame_index);
    const bs::FrameMask mask = map.widened_mask(frame_index, base_mask);
    const bs::Frame expected = map.imprint(
        frame_index, verifier.golden_frame(frame_index), report.expected_state);
    if (!bs::masked_equal(received, expected, mask)) {
      all_match = false;
      if (mismatch.empty()) {
        mismatch = "state mismatch at frame " + std::to_string(frame_index);
      }
    }
  }

  // Capture MAC: the prover finalizes its MAC over the captured frames; the
  // verifier recomputes MAC_K over the transcript it received. A mismatch
  // means the capture was modified in flight or answered by a keyless
  // device.
  const Command checksum{CommandType::kMacChecksum, 0, {}};
  const auto mac_result = prover.handle(checksum);
  report.state_mac_ok =
      mac_result.response.has_value() &&
      mac_result.response->type == ResponseType::kMacValue &&
      verifier.verify_mac(captured_bytes, mac_result.response->mac);

  report.state_ok = all_match;
  report.detail = all_match
                      ? "application state matches the golden execution"
                      : mismatch;
  return report;
}

}  // namespace sacha::core
