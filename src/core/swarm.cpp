#include "core/swarm.hpp"

#include <algorithm>

namespace sacha::core {

std::vector<std::string> SwarmReport::failed_ids() const {
  std::vector<std::string> ids;
  for (const SwarmMemberResult& m : members) {
    if (!m.verdict.ok()) ids.push_back(m.id);
  }
  return ids;
}

SwarmReport attest_swarm(std::vector<SwarmMember>& fleet,
                         SwarmSchedule schedule,
                         const SessionOptions& options) {
  SwarmReport report;
  report.members.reserve(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    SwarmMember& member = fleet[i];
    SessionOptions member_options = options;
    member_options.seed = options.seed + i;  // independent channel randomness
    const AttestationReport session =
        run_attestation(*member.verifier, *member.prover, member_options,
                        member.hooks);
    SwarmMemberResult result;
    result.id = member.id;
    result.verdict = session.verdict;
    result.duration = session.total_time;
    if (session.verdict.ok()) ++report.attested;
    report.total_work += session.total_time;
    if (schedule == SwarmSchedule::kParallel) {
      report.makespan = std::max(report.makespan, session.total_time);
    } else {
      report.makespan += session.total_time;
    }
    report.members.push_back(std::move(result));
  }
  return report;
}

}  // namespace sacha::core
