#include "core/swarm.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

namespace sacha::core {

namespace {

/// Runs member `i`'s session. Seeds derive from the member index, never
/// from scheduling, so serial and parallel runs are bit-identical.
SwarmMemberResult run_member(SwarmMember& member, std::size_t index,
                             const SessionOptions& options) {
  SessionOptions member_options = options;
  member_options.seed = options.seed + index;  // independent channel randomness
  const AttestationReport session = run_attestation(
      *member.verifier, *member.prover, member_options, member.hooks);
  SwarmMemberResult result;
  result.id = member.id;
  result.verdict = session.verdict;
  result.duration = session.total_time;
  result.mac = member.prover->last_mac();
  return result;
}

}  // namespace

std::vector<std::string> SwarmReport::failed_ids() const {
  std::vector<std::string> ids;
  for (const SwarmMemberResult& m : members) {
    if (!m.verdict.ok()) ids.push_back(m.id);
  }
  return ids;
}

SwarmReport attest_swarm(std::vector<SwarmMember>& fleet,
                         SwarmSchedule schedule,
                         const SessionOptions& options) {
  SwarmReport report;
  report.members.resize(fleet.size());

  if (schedule == SwarmSchedule::kParallel && fleet.size() > 1) {
    // Worker pool: members are independent devices with independent
    // verifiers, so N sessions genuinely run on N threads. Work is claimed
    // by index from a shared counter; results land in member order.
    const std::size_t workers = std::min<std::size_t>(
        fleet.size(), std::max(1u, std::thread::hardware_concurrency()));
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < fleet.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        report.members[i] = run_member(fleet[i], i, options);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  } else {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      report.members[i] = run_member(fleet[i], i, options);
    }
  }

  // Merge in member order (identical for both schedules).
  for (const SwarmMemberResult& m : report.members) {
    if (m.verdict.ok()) ++report.attested;
    report.total_work += m.duration;
    if (schedule == SwarmSchedule::kParallel) {
      report.makespan = std::max(report.makespan, m.duration);
    } else {
      report.makespan += m.duration;
    }
  }

  // Verifier-side memory accounting: interned GoldenModels dedupe by
  // pointer identity, so a homogeneous fleet counts one model.
  std::set<const bitstream::GoldenModel*> distinct;
  for (const SwarmMember& member : fleet) {
    const auto& model = member.verifier->golden_model();
    report.unshared_golden_model_bytes += model->footprint_bytes();
    if (distinct.insert(model.get()).second) {
      report.golden_model_bytes += model->footprint_bytes();
    }
    report.retained_readback_bytes +=
        member.verifier->retained_readback_bytes();
  }
  report.distinct_golden_models = distinct.size();
  return report;
}

}  // namespace sacha::core
