#include "core/swarm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/log.hpp"

namespace sacha::core {

namespace {

/// Runs member `i`'s session. Seeds derive from the member index, never
/// from scheduling, so serial and parallel runs are bit-identical (the
/// host_ns wall-clock is the one scheduling-dependent field).
SwarmMemberResult run_member(SwarmMember& member, std::size_t index,
                             const SessionOptions& options,
                             const obs::TraceId& fleet_trace) {
  SessionOptions member_options = options;
  member_options.seed = options.seed + index;  // independent channel randomness
  obs::Span member_span("swarm.member", fleet_trace, "swarm");
  member_span.arg("member", member.id);
  const AttestationReport session = run_attestation(
      *member.verifier, *member.prover, member_options, member.hooks);
  member_span.end();
  SwarmMemberResult result;
  result.id = member.id;
  result.verdict = session.verdict;
  result.duration = session.total_time;
  result.mac = member.prover->last_mac();
  result.host_ns = session.host_ns;
  result.trace_id = session.trace_id;
  return result;
}

}  // namespace

std::vector<std::string> SwarmReport::failed_ids() const {
  std::vector<std::string> ids;
  for (const SwarmMemberResult& m : members) {
    if (!m.verdict.ok()) ids.push_back(m.id);
  }
  return ids;
}

SwarmReport attest_swarm(std::vector<SwarmMember>& fleet,
                         SwarmSchedule schedule,
                         const SessionOptions& options) {
  SwarmReport report;
  report.members.resize(fleet.size());
  report.fleet_trace = obs::make_trace_id(
      "swarm/" + std::to_string(fleet.size()), options.seed);
  const auto host_start = std::chrono::steady_clock::now();
  obs::Span fleet_span("swarm", report.fleet_trace, "swarm");
  fleet_span.arg("members", std::to_string(fleet.size()));
  fleet_span.arg("schedule",
                 schedule == SwarmSchedule::kParallel ? "parallel" : "serial");

  if (schedule == SwarmSchedule::kParallel && fleet.size() > 1) {
    // Worker pool: members are independent devices with independent
    // verifiers, so N sessions genuinely run on N threads. Work is claimed
    // by index from a shared counter; results land in member order.
    const std::size_t workers = std::min<std::size_t>(
        fleet.size(), std::max(1u, std::thread::hardware_concurrency()));
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < fleet.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        report.members[i] = run_member(fleet[i], i, options,
                                       report.fleet_trace);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  } else {
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      report.members[i] = run_member(fleet[i], i, options,
                                     report.fleet_trace);
    }
  }

  // Merge in member order (identical for both schedules).
  for (const SwarmMemberResult& m : report.members) {
    if (m.verdict.ok()) ++report.attested;
    report.total_work += m.duration;
    if (schedule == SwarmSchedule::kParallel) {
      report.makespan = std::max(report.makespan, m.duration);
    } else {
      report.makespan += m.duration;
    }
  }

  // Verifier-side memory accounting: interned GoldenModels dedupe by
  // pointer identity, so a homogeneous fleet counts one model.
  std::set<const bitstream::GoldenModel*> distinct;
  for (const SwarmMember& member : fleet) {
    const auto& model = member.verifier->golden_model();
    report.unshared_golden_model_bytes += model->footprint_bytes();
    if (distinct.insert(model.get()).second) {
      report.golden_model_bytes += model->footprint_bytes();
    }
    report.retained_readback_bytes +=
        member.verifier->retained_readback_bytes();
  }
  report.distinct_golden_models = distinct.size();

  fleet_span.end();
  report.host_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_start)
          .count());
  if (obs::enabled()) {
    report.metrics = obs::MetricsRegistry::global().snapshot();
  }
  (log_debug() << "swarm attestation finished")
      .kv("members", fleet.size())
      .kv("attested", report.attested)
      .kv("schedule",
          schedule == SwarmSchedule::kParallel ? "parallel" : "serial")
      .kv("trace", obs::to_string(report.fleet_trace))
      .kv("host_ms", static_cast<double>(report.host_ns) / 1e6);
  return report;
}

}  // namespace sacha::core
