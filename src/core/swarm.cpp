#include "core/swarm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace sacha::core {

namespace {

const char* schedule_name(SwarmSchedule schedule) {
  switch (schedule) {
    case SwarmSchedule::kSerial:
      return "serial";
    case SwarmSchedule::kParallel:
      return "parallel";
    case SwarmSchedule::kMultiplexed:
      return "multiplexed";
  }
  return "unknown";
}

/// Runs member `i`'s session (attempt `attempt`). Seeds derive from the
/// fleet seed, the member id and the attempt via splitmix64 — never from
/// the member index or scheduling — so serial and parallel runs are
/// bit-identical, adjacent fleet seeds do not collide across members, and
/// every retry sees fresh channel randomness (the host_ns wall-clock is
/// the one scheduling-dependent field).
AttestationReport run_attempt(SwarmMember& member,
                              const SessionOptions& options,
                              std::uint32_t attempt,
                              const obs::TraceId& fleet_trace) {
  SessionOptions attempt_options = options;
  attempt_options.seed = derive_seed(options.seed, member.id, attempt);
  SessionHooks attempt_hooks = member.hooks;
  if (member.configure) {
    member.configure(attempt_options, attempt_hooks, attempt);
  }
  obs::Span member_span(attempt == 0 ? "swarm.member" : "swarm.reattest",
                        fleet_trace, "swarm");
  member_span.arg("member", member.id);
  if (attempt > 0) member_span.arg("attempt", std::to_string(attempt));
  return run_attestation(*member.verifier, *member.prover, attempt_options,
                         attempt_hooks);
}

/// Folds one attempt's report into the member's running result. The final
/// attempt's verdict/MAC/duration win; transport totals accumulate.
void merge_attempt(SwarmMemberResult& result, const SwarmMember& member,
                   const AttestationReport& session, std::uint32_t attempt) {
  result.id = member.id;
  result.verdict = session.verdict;
  result.failure = session.failure;
  result.attempts = attempt + 1;
  result.duration = session.total_time;
  result.mac = member.prover->last_mac();
  result.messages_lost += session.messages_lost;
  result.retransmissions += session.retransmissions;
  result.backoff_wait += session.backoff_wait;
  result.host_ns = session.host_ns;
  result.trace_id = session.trace_id;
  result.healed = attempt > 0 && session.verdict.ok();
}

/// Runs `indices` of the fleet under the chosen schedule, one attempt
/// each, merging into `report.members`. Returns the round's simulated
/// makespan contribution (max under parallel, sum under serial).
sim::SimDuration run_round(std::vector<SwarmMember>& fleet,
                           const std::vector<std::size_t>& indices,
                           SwarmReport& report, const SwarmOptions& options,
                           std::uint32_t attempt,
                           const obs::TraceId& fleet_trace,
                           sim::SimDuration& total_work) {
  std::vector<sim::SimDuration> durations(indices.size(), 0);
  const auto run_one = [&](std::size_t k) {
    const std::size_t i = indices[k];
    const AttestationReport session =
        run_attempt(fleet[i], options.session, attempt, fleet_trace);
    merge_attempt(report.members[i], fleet[i], session, attempt);
    durations[k] = session.total_time;
  };

  if (options.schedule == SwarmSchedule::kMultiplexed) {
    // Event-driven engine round: build one job per pending member with the
    // same derived seed and configure hook as run_attempt would use, then
    // multiplex them on the engine's worker pool. Reports come back in job
    // order, bit-identical to run_attestation per member.
    std::vector<FleetSessionJob> jobs(indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const std::size_t i = indices[k];
      SwarmMember& member = fleet[i];
      SessionOptions attempt_options = options.session;
      attempt_options.seed =
          derive_seed(options.session.seed, member.id, attempt);
      SessionHooks attempt_hooks = member.hooks;
      if (member.configure) {
        member.configure(attempt_options, attempt_hooks, attempt);
      }
      jobs[k] = FleetSessionJob{member.verifier, member.prover,
                                std::move(attempt_options),
                                std::move(attempt_hooks), member.id};
    }
    FleetRunResult run = run_fleet(jobs, options.engine, fleet_trace);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const std::size_t i = indices[k];
      merge_attempt(report.members[i], fleet[i], run.reports[k], attempt);
      durations[k] = run.reports[k].total_time;
      total_work += run.reports[k].total_time;
    }
    // Accumulate engine accounting across supervisor rounds; the overlap
    // ratio is recomputed from the accumulated totals.
    report.engine.pool_size = run.stats.pool_size;
    report.engine.makespan += run.stats.makespan;
    report.engine.thread_per_member_makespan +=
        run.stats.thread_per_member_makespan;
    report.engine.total_work += run.stats.total_work;
    report.engine.verify_busy += run.stats.verify_busy;
    report.engine.channel_busy += run.stats.channel_busy;
    report.engine.drive_slices += run.stats.drive_slices;
    report.engine.verify_batches += run.stats.verify_batches;
    report.engine.peak_inbox_rounds = std::max(
        report.engine.peak_inbox_rounds, run.stats.peak_inbox_rounds);
    report.engine.verify_steals += run.stats.verify_steals;
    report.engine.multi_absorb_calls += run.stats.multi_absorb_calls;
    report.engine.multi_absorb_streams += run.stats.multi_absorb_streams;
    report.engine.rounds_per_slice_last = run.stats.rounds_per_slice_last;
    report.engine.host_ns += run.stats.host_ns;
    report.engine.overlap_efficiency =
        report.engine.makespan > 0
            ? static_cast<double>(report.engine.total_work) /
                  static_cast<double>(report.engine.makespan)
            : 0.0;
    return run.stats.makespan;
  }

  if (options.schedule == SwarmSchedule::kParallel && indices.size() > 1) {
    // Worker pool: members are independent devices with independent
    // verifiers, so N sessions genuinely run on N threads. Work is claimed
    // by index from a shared counter; results land in member order.
    const std::size_t workers = std::min<std::size_t>(
        indices.size(), std::max(1u, std::thread::hardware_concurrency()));
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
           k < indices.size();
           k = next.fetch_add(1, std::memory_order_relaxed)) {
        run_one(k);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  } else {
    for (std::size_t k = 0; k < indices.size(); ++k) run_one(k);
  }

  sim::SimDuration round_makespan = 0;
  for (const sim::SimDuration d : durations) {
    total_work += d;
    if (options.schedule == SwarmSchedule::kParallel) {
      round_makespan = std::max(round_makespan, d);
    } else {
      round_makespan += d;
    }
  }
  return round_makespan;
}

}  // namespace

std::vector<std::string> SwarmReport::failed_ids() const {
  std::vector<std::string> ids;
  for (const SwarmMemberResult& m : members) {
    if (!m.verdict.ok()) ids.push_back(m.id);
  }
  return ids;
}

std::vector<std::string> SwarmReport::quarantined_ids() const {
  std::vector<std::string> ids;
  for (const SwarmMemberResult& m : members) {
    if (m.quarantined) ids.push_back(m.id);
  }
  return ids;
}

SwarmReport attest_swarm(std::vector<SwarmMember>& fleet,
                         SwarmSchedule schedule,
                         const SessionOptions& options) {
  SwarmOptions swarm_options;
  swarm_options.session = options;
  swarm_options.schedule = schedule;
  swarm_options.retry_budget = 0;  // historical one-shot semantics
  return attest_swarm(fleet, swarm_options);
}

SwarmReport attest_swarm(std::vector<SwarmMember>& fleet,
                         const SwarmOptions& options) {
  SwarmReport report;
  report.members.resize(fleet.size());
  report.fleet_trace = obs::make_trace_id(
      "swarm/" + std::to_string(fleet.size()), options.session.seed);
  const auto host_start = std::chrono::steady_clock::now();
  const auto host_elapsed_ns = [&host_start]() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - host_start)
            .count());
  };
  obs::Span fleet_span("swarm", report.fleet_trace, "swarm");
  fleet_span.arg("members", std::to_string(fleet.size()));
  fleet_span.arg("schedule", schedule_name(options.schedule));

  // Round 0: every member, then supervisor rounds over the failed subset.
  // Each retry is a fresh full session — run_attestation re-runs begin()
  // (fresh nonce) and the verifier is forced out of refresh-only mode so
  // the whole configuration is re-installed, never resumed mid-stream.
  std::vector<std::size_t> pending(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) pending[i] = i;

  for (std::uint32_t attempt = 0; attempt <= options.retry_budget;
       ++attempt) {
    if (pending.empty()) break;
    if (attempt > 0) {
      if (options.fleet_deadline_ns > 0 &&
          host_elapsed_ns() >= options.fleet_deadline_ns) {
        report.fleet_deadline_exceeded = true;
        break;
      }
      static obs::Counter& reattests =
          obs::MetricsRegistry::global().counter("sacha.swarm.reattests");
      reattests.add(pending.size());
      report.reattempts += pending.size();
      for (const std::size_t i : pending) {
        // Security-preserving retry: whatever mode the member was in, the
        // re-attestation installs the full configuration from scratch.
        fleet[i].verifier->set_refresh_only(false);
      }
      (log_debug() << "swarm supervisor retry round")
          .kv("attempt", attempt)
          .kv("members", pending.size());
    }
    report.makespan +=
        run_round(fleet, pending, report, options, attempt,
                  report.fleet_trace, report.total_work);
    std::vector<std::size_t> still_failed;
    for (const std::size_t i : pending) {
      if (!report.members[i].verdict.ok()) still_failed.push_back(i);
    }
    pending = std::move(still_failed);
  }

  // Terminal states: whoever is still failing is quarantined with the
  // typed cause of their last attempt.
  for (SwarmMemberResult& m : report.members) {
    if (m.verdict.ok()) {
      ++report.attested;
      if (m.healed) ++report.healed;
    } else {
      m.quarantined = true;
      ++report.quarantined;
    }
  }
  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& quarantined =
        registry.counter("sacha.swarm.quarantined");
    static obs::Counter& healed = registry.counter("sacha.swarm.healed");
    quarantined.add(report.quarantined);
    healed.add(report.healed);
  }

  // Merge in member order (identical for both schedules). total_work has
  // already accumulated every attempt; here only transport totals merge.
  for (const SwarmMemberResult& m : report.members) {
    report.messages_lost += m.messages_lost;
    report.retransmissions += m.retransmissions;
    report.backoff_wait += m.backoff_wait;
  }

  // Verifier-side memory accounting: interned GoldenModels dedupe by
  // pointer identity, so a homogeneous fleet counts one model.
  std::set<const bitstream::GoldenModel*> distinct;
  for (const SwarmMember& member : fleet) {
    const auto& model = member.verifier->golden_model();
    report.unshared_golden_model_bytes += model->footprint_bytes();
    if (distinct.insert(model.get()).second) {
      report.golden_model_bytes += model->footprint_bytes();
    }
    report.retained_readback_bytes +=
        member.verifier->retained_readback_bytes();
  }
  report.distinct_golden_models = distinct.size();

  for (const SwarmMemberResult& m : report.members) {
    if (m.quarantined) {
      fleet_span.arg("quarantine." + m.id, to_string(m.failure));
    }
  }
  fleet_span.end();
  report.host_ns = host_elapsed_ns();
  if (obs::enabled()) {
    report.metrics = obs::MetricsRegistry::global().snapshot();
  }
  (log_debug() << "swarm attestation finished")
      .kv("members", fleet.size())
      .kv("attested", report.attested)
      .kv("healed", report.healed)
      .kv("quarantined", report.quarantined)
      .kv("reattempts", report.reattempts)
      .kv("schedule", schedule_name(options.schedule))
      .kv("trace", obs::to_string(report.fleet_trace))
      .kv("host_ms", static_cast<double>(report.host_ns) / 1e6);
  return report;
}

}  // namespace sacha::core
