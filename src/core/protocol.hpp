// SACHa wire protocol.
//
// The attestation runs as a repetition of three commands (paper §6.1):
//   1. ICAP_config(frame)      — update configuration memory,
//   2. ICAP_readback(frame_nb) — read a frame back, step the MAC,
//   3. MAC_checksum            — finalize the MAC and return it.
// Commands carry the actual ICAP program words; responses carry frame data
// or the final MAC. Serialisation is defensive on parse — the prover faces
// the open network.
//
// Wire layout (all big-endian):
//   command:  [type u8][flags u8][length u16][frame_nb u32 ?][stream words]
//   response: [type u8][status u8][payload bytes]
// `length` counts the bytes after the 4-byte header. frame_nb is present
// only for ICAP_readback. Streams may include trailing NOOP padding: the
// proof-of-concept's per-frame packets carry ISE-style padding, which the
// RX FSM strips before the words reach the ICAP.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/cmac.hpp"

namespace sacha::core {

enum class CommandType : std::uint8_t {
  kIcapConfig = 1,
  kIcapReadback = 2,
  kMacChecksum = 3,
};

struct Command {
  CommandType type = CommandType::kIcapConfig;
  std::uint32_t frame_nb = 0;         // readback only: first frame to read
  std::vector<std::uint32_t> stream;  // ICAP program (possibly NOOP-padded)

  Bytes encode() const;
  static Result<Command> decode(ByteSpan wire);

  /// Bytes of the encoded command (what the network carries).
  std::size_t wire_payload_bytes() const;

  bool operator==(const Command&) const = default;
};

enum class ResponseType : std::uint8_t {
  kAck = 1,        // config accepted (only sent in reliable mode)
  kFrameData = 2,  // readback result
  kMacValue = 3,   // final checksum
  kError = 4,
};

/// Error codes carried in the response status byte.
enum class ProverStatus : std::uint8_t {
  kOk = 0,
  kBadCommand = 1,
  kIcapError = 2,
  kNoMacPending = 3,
};

struct Response {
  ResponseType type = ResponseType::kAck;
  ProverStatus status = ProverStatus::kOk;
  std::vector<std::uint32_t> frame_words;  // kFrameData
  crypto::Mac mac{};                       // kMacValue

  Bytes encode() const;
  static Result<Response> decode(ByteSpan wire);

  std::size_t wire_payload_bytes() const;

  bool operator==(const Response&) const = default;
};

}  // namespace sacha::core
