#include "core/signed_attest.hpp"

namespace sacha::core {

crypto::Sha256Digest attestation_digest(const crypto::Mac& h_prv) {
  crypto::Sha256 hash;
  hash.update(bytes_of("sacha-evidence"));
  hash.update(h_prv);
  return hash.finalize();
}

bool LeafPolicy::accept(std::uint32_t leaf_index) {
  return used_.insert(leaf_index).second;
}

SignedAttestReport run_signed_attestation(
    SachaVerifier& verifier, SachaProver& prover, crypto::HashSigner& signer,
    const crypto::Sha256Digest& trusted_root, std::uint32_t tree_height,
    LeafPolicy& policy, const SessionOptions& session,
    const SessionHooks& hooks) {
  SignedAttestReport report;
  report.base = run_attestation(verifier, prover, session, hooks);
  // In signature mode the session key may be public, so mac_ok alone proves
  // nothing; the protocol/config checks must still hold.
  if (!report.base.verdict.protocol_ok || !report.base.verdict.config_ok) {
    report.detail = "base protocol failed: " + report.base.verdict.detail;
    return report;
  }

  // Device: sign H_Prv with the next one-time leaf.
  if (!prover.last_mac().has_value()) {
    report.detail = "device holds no attestation evidence";
    return report;
  }
  const crypto::Sha256Digest device_digest =
      attestation_digest(*prover.last_mac());
  const auto signature = signer.sign(device_digest);
  if (!signature.has_value()) {
    report.detail = "signing identity exhausted (all one-time leaves used)";
    return report;
  }
  report.leaf_index = signature->leaf_index;

  // Verifier: the signed digest must match the digest of H_Vrf — binding
  // the signature to the transcript the verifier actually received — and
  // the signature must chain to the trusted root via a fresh leaf.
  const auto h_vrf = verifier.expected_mac();
  if (!h_vrf.has_value()) {
    report.detail = "verifier transcript incomplete";
    return report;
  }
  const crypto::Sha256Digest expected_digest = attestation_digest(*h_vrf);
  report.binds_transcript = expected_digest == device_digest;
  report.signature_ok =
      crypto::merkle_verify(trusted_root, tree_height, expected_digest,
                            *signature);
  report.leaf_fresh = policy.accept(signature->leaf_index);

  if (report.ok()) {
    report.detail = "attested (signature chained to trusted root, leaf " +
                    std::to_string(report.leaf_index) + ")";
  } else if (!report.signature_ok) {
    report.detail = "signature does not verify against the trusted root";
  } else if (!report.leaf_fresh) {
    report.detail = "one-time leaf reused";
  } else if (!report.binds_transcript) {
    report.detail = "signature does not bind the received transcript";
  }
  return report;
}

}  // namespace sacha::core
