// Swarm attestation.
//
// The related-work section (§4.2) motivates attesting fleets of devices
// ("a number of low-end, tiny embedded devices ... employed as a group").
// SACHa composes naturally: each device runs its own session under its own
// key; the coordinator schedules them serially (one verifier port) or in
// parallel (simulated makespan = slowest member) and aggregates verdicts.
// bench_swarm measures how fleet size scales on both schedules and that a
// single compromised member is isolated, not hidden by the aggregate.
#pragma once

#include <string>
#include <vector>

#include "core/session.hpp"

namespace sacha::core {

struct SwarmMember {
  std::string id;
  SachaVerifier* verifier = nullptr;
  SachaProver* prover = nullptr;
  /// Per-member adversary, if any.
  SessionHooks hooks;
};

enum class SwarmSchedule : std::uint8_t {
  kSerial,    // one session at a time (single verifier port)
  kParallel,  // all sessions concurrently; makespan = slowest member
};

struct SwarmMemberResult {
  std::string id;
  SachaVerifier::Verdict verdict;
  sim::SimDuration duration = 0;
};

struct SwarmReport {
  std::vector<SwarmMemberResult> members;
  std::size_t attested = 0;
  /// Wall-clock of the whole sweep under the chosen schedule.
  sim::SimDuration makespan = 0;
  /// Sum of per-member durations (bandwidth/energy budget).
  sim::SimDuration total_work = 0;

  bool all_attested() const { return attested == members.size(); }
  std::vector<std::string> failed_ids() const;
};

SwarmReport attest_swarm(std::vector<SwarmMember>& fleet,
                         SwarmSchedule schedule = SwarmSchedule::kParallel,
                         const SessionOptions& options = {});

}  // namespace sacha::core
