// Swarm attestation.
//
// The related-work section (§4.2) motivates attesting fleets of devices
// ("a number of low-end, tiny embedded devices ... employed as a group").
// SACHa composes naturally: each device runs its own session under its own
// key; the coordinator schedules them serially (one verifier port) or in
// parallel (simulated makespan = slowest member) and aggregates verdicts.
// kParallel really runs the member sessions on a worker pool (one thread
// per member up to the host's core count): sessions share no state, every
// member derives its channel randomness from a splitmix64 hash of
// (fleet seed, member id, attempt) — never from its index or schedule —
// and the report is merged in member order, so the result is bit-identical
// to the serial schedule while the host wall-clock divides by the core
// count. kMultiplexed hands the round to the event-driven fleet engine
// (fleet_engine.hpp): N member sessions multiplex on a fixed worker pool,
// parking through their simulated channel latency instead of blocking a
// thread — same bit-identical reports, N ≫ cores without N threads.
// bench_swarm measures how fleet size scales on all schedules and that a
// single compromised member is isolated, not hidden by the aggregate.
//
// The coordinator is also a self-healing supervisor: members whose session
// fails are re-attested — a complete fresh session with a fresh nonce and
// full reconfiguration, never a mid-stream resume — up to a retry budget,
// and persistent failures are quarantined with their typed FailureKind.
#pragma once

#include <string>
#include <vector>

#include "core/fleet_engine.hpp"
#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sacha::core {

struct SwarmMember {
  std::string id;
  SachaVerifier* verifier = nullptr;
  SachaProver* prover = nullptr;
  /// Per-member adversary, if any.
  SessionHooks hooks;
  /// Per-member session customisation, run once per attempt after `hooks`
  /// are copied in: the fault harness chains member-specific channel faults
  /// and device-fault triggers here (fault::FaultInjector::arm). `attempt`
  /// is 0 for the first session, 1.. for supervisor re-attestations.
  std::function<void(SessionOptions&, SessionHooks&, std::uint32_t attempt)>
      configure;
};

enum class SwarmSchedule : std::uint8_t {
  kSerial,       // one session at a time (single verifier port)
  kParallel,     // all sessions concurrently; makespan = slowest member
  kMultiplexed,  // event-driven engine: N sessions on a fixed worker pool
                 // (see fleet_engine.hpp); makespan from the engine's
                 // K-lane virtual-time schedule
};

/// Supervisor policy for attest_swarm. Defaults preserve the pre-supervisor
/// semantics for healthy fleets exactly: with zero faults no retries fire,
/// so the report is bit-identical to retry_budget = 0.
struct SwarmOptions {
  SessionOptions session{};
  SwarmSchedule schedule = SwarmSchedule::kParallel;
  /// Re-attestations granted per failed member. Every retry is a full
  /// fresh session — run_attestation re-runs begin(), so the nonce is
  /// fresh and the whole configuration is re-installed (security-
  /// preserving retry: a retried attestation never resumes mid-stream).
  std::uint32_t retry_budget = 2;
  /// Host wall-clock bound on the whole sweep, retries included (0 =
  /// unbounded). Once exceeded, no further retries are scheduled and the
  /// still-failing members are quarantined with their typed cause.
  std::uint64_t fleet_deadline_ns = 0;
  /// Engine tuning for SwarmSchedule::kMultiplexed (ignored otherwise).
  FleetEngineOptions engine{};
};

struct SwarmMemberResult {
  std::string id;
  SachaVerifier::Verdict verdict;
  /// Typed cause of the *final* attempt (kNone when attested).
  FailureKind failure = FailureKind::kNone;
  /// Sessions run for this member (1 = attested or quarantined first try).
  std::uint32_t attempts = 1;
  /// Failed every attempt; the supervisor stopped retrying (budget or
  /// fleet deadline) and the member needs operator attention.
  bool quarantined = false;
  /// Attested after at least one failed attempt (a fresh-nonce retry
  /// recovered the member — transient fault, not tamper).
  bool healed = false;
  sim::SimDuration duration = 0;
  /// H_Prv of the member's session (the device's attestation evidence),
  /// recorded so fleet runs can be compared MAC-for-MAC across schedules.
  std::optional<crypto::Mac> mac;
  /// Transport health across all attempts (lossy-sweep auditing).
  std::uint64_t messages_lost = 0;
  std::uint64_t retransmissions = 0;
  sim::SimDuration backoff_wait = 0;
  /// Host wall-clock of this member's session (steady clock, not simulated
  /// time) — what the new fleet timeline reports, recorded here so the
  /// timeline and the report agree. Scheduling-dependent, so excluded from
  /// the serial/parallel bit-identity guarantee.
  std::uint64_t host_ns = 0;
  /// Timeline key of the member's session; with telemetry enabled the
  /// session's spans in obs::Tracer carry this id.
  obs::TraceId trace_id{};
};

struct SwarmReport {
  std::vector<SwarmMemberResult> members;
  std::size_t attested = 0;
  /// Wall-clock of the whole sweep under the chosen schedule.
  sim::SimDuration makespan = 0;
  /// Sum of per-member durations (bandwidth/energy budget).
  sim::SimDuration total_work = 0;

  // Verifier-side memory accounting. Members provisioned with the same
  // device type + designs share one interned GoldenModel, so
  // `golden_model_bytes` stays flat as the fleet grows while
  // `unshared_golden_model_bytes` (what per-member copies would cost)
  // grows linearly.
  std::size_t distinct_golden_models = 0;
  std::size_t golden_model_bytes = 0;           // sum over distinct models
  std::size_t unshared_golden_model_bytes = 0;  // sum over members
  /// Readback bytes still buffered across all member verifiers after their
  /// sessions (0 for streaming-mode fleets).
  std::size_t retained_readback_bytes = 0;

  // Supervisor outcome. A healthy fleet has attested == members.size() and
  // zeros everywhere here; a converged faulty fleet has every member either
  // attested (possibly healed) or quarantined with a typed cause.
  std::size_t quarantined = 0;
  std::size_t healed = 0;
  /// Extra sessions the supervisor ran beyond the first per member.
  std::uint64_t reattempts = 0;
  /// The fleet deadline cut retries short.
  bool fleet_deadline_exceeded = false;

  // Transport health totals across all members and attempts, so lossy
  // sweeps are auditable from the report (and the bench JSON) alone.
  std::uint64_t messages_lost = 0;
  std::uint64_t retransmissions = 0;
  sim::SimDuration backoff_wait = 0;

  /// Engine accounting under SwarmSchedule::kMultiplexed (zeroed
  /// otherwise): makespan model, thread-per-member baseline, overlap
  /// efficiency, slice/batch counts. Accumulated across supervisor rounds.
  FleetEngineStats engine{};

  /// Host wall-clock of the whole attest_swarm call.
  std::uint64_t host_ns = 0;
  /// Fleet timeline key (seed + fleet size derived). The per-member session
  /// spans nest under "swarm.member" spans carrying this id, one tracer
  /// thread lane per worker, so one Chrome-trace export shows the merged
  /// fleet timeline.
  obs::TraceId fleet_trace{};
  /// Registry snapshot taken when the sweep finished (empty with telemetry
  /// disabled). Audited verdicts can embed or countersign it.
  obs::MetricsSnapshot metrics;

  bool all_attested() const { return attested == members.size(); }
  /// Every member reached a terminal state: attested or quarantined with a
  /// typed cause (the supervisor's convergence property).
  bool converged() const { return attested + quarantined == members.size(); }
  std::vector<std::string> failed_ids() const;
  std::vector<std::string> quarantined_ids() const;
};

/// Self-healing swarm attestation: runs every member, then re-attests
/// failed members (fresh nonce, full reconfiguration) up to the retry
/// budget, quarantining persistent failures with their typed cause.
SwarmReport attest_swarm(std::vector<SwarmMember>& fleet,
                         const SwarmOptions& options);

/// Pre-supervisor form: one attempt per member, no retries (exactly the
/// historical behaviour; equivalent to SwarmOptions{.retry_budget = 0}).
SwarmReport attest_swarm(std::vector<SwarmMember>& fleet,
                         SwarmSchedule schedule = SwarmSchedule::kParallel,
                         const SessionOptions& options = {});

}  // namespace sacha::core
