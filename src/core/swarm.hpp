// Swarm attestation.
//
// The related-work section (§4.2) motivates attesting fleets of devices
// ("a number of low-end, tiny embedded devices ... employed as a group").
// SACHa composes naturally: each device runs its own session under its own
// key; the coordinator schedules them serially (one verifier port) or in
// parallel (simulated makespan = slowest member) and aggregates verdicts.
// kParallel really runs the member sessions on a worker pool (one thread
// per member up to the host's core count): sessions share no state, every
// member derives its channel randomness from `options.seed + index`, and
// the report is merged in member order, so the result is bit-identical to
// the serial schedule while the host wall-clock divides by the core count.
// bench_swarm measures how fleet size scales on both schedules and that a
// single compromised member is isolated, not hidden by the aggregate.
#pragma once

#include <string>
#include <vector>

#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sacha::core {

struct SwarmMember {
  std::string id;
  SachaVerifier* verifier = nullptr;
  SachaProver* prover = nullptr;
  /// Per-member adversary, if any.
  SessionHooks hooks;
};

enum class SwarmSchedule : std::uint8_t {
  kSerial,    // one session at a time (single verifier port)
  kParallel,  // all sessions concurrently; makespan = slowest member
};

struct SwarmMemberResult {
  std::string id;
  SachaVerifier::Verdict verdict;
  sim::SimDuration duration = 0;
  /// H_Prv of the member's session (the device's attestation evidence),
  /// recorded so fleet runs can be compared MAC-for-MAC across schedules.
  std::optional<crypto::Mac> mac;
  /// Host wall-clock of this member's session (steady clock, not simulated
  /// time) — what the new fleet timeline reports, recorded here so the
  /// timeline and the report agree. Scheduling-dependent, so excluded from
  /// the serial/parallel bit-identity guarantee.
  std::uint64_t host_ns = 0;
  /// Timeline key of the member's session; with telemetry enabled the
  /// session's spans in obs::Tracer carry this id.
  obs::TraceId trace_id{};
};

struct SwarmReport {
  std::vector<SwarmMemberResult> members;
  std::size_t attested = 0;
  /// Wall-clock of the whole sweep under the chosen schedule.
  sim::SimDuration makespan = 0;
  /// Sum of per-member durations (bandwidth/energy budget).
  sim::SimDuration total_work = 0;

  // Verifier-side memory accounting. Members provisioned with the same
  // device type + designs share one interned GoldenModel, so
  // `golden_model_bytes` stays flat as the fleet grows while
  // `unshared_golden_model_bytes` (what per-member copies would cost)
  // grows linearly.
  std::size_t distinct_golden_models = 0;
  std::size_t golden_model_bytes = 0;           // sum over distinct models
  std::size_t unshared_golden_model_bytes = 0;  // sum over members
  /// Readback bytes still buffered across all member verifiers after their
  /// sessions (0 for streaming-mode fleets).
  std::size_t retained_readback_bytes = 0;

  /// Host wall-clock of the whole attest_swarm call.
  std::uint64_t host_ns = 0;
  /// Fleet timeline key (seed + fleet size derived). The per-member session
  /// spans nest under "swarm.member" spans carrying this id, one tracer
  /// thread lane per worker, so one Chrome-trace export shows the merged
  /// fleet timeline.
  obs::TraceId fleet_trace{};
  /// Registry snapshot taken when the sweep finished (empty with telemetry
  /// disabled). Audited verdicts can embed or countersign it.
  obs::MetricsSnapshot metrics;

  bool all_attested() const { return attested == members.size(); }
  std::vector<std::string> failed_ids() const;
};

SwarmReport attest_swarm(std::vector<SwarmMember>& fleet,
                         SwarmSchedule schedule = SwarmSchedule::kParallel,
                         const SessionOptions& options = {});

}  // namespace sacha::core
