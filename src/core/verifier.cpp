#include "core/verifier.hpp"

#include <algorithm>
#include <cassert>

#include "bitstream/packet.hpp"
#include "config/icap.hpp"
#include "crypto/ct.hpp"

namespace sacha::core {

namespace bs = sacha::bitstream;

SachaVerifier::SachaVerifier(fabric::Floorplan plan,
                             bitstream::DesignSpec static_spec,
                             bitstream::DesignSpec app_spec, crypto::AesKey key,
                             std::uint64_t session_seed, VerifierOptions options)
    : plan_(std::move(plan)),
      bitgen_(plan_.device()),
      idcode_(config::device_idcode(plan_.device())),
      static_spec_(std::move(static_spec)),
      app_spec_(std::move(app_spec)),
      key_(key),
      session_seed_(session_seed),
      options_(options) {
  assert(plan_.validate().ok());
  std::vector<fabric::FrameRange> stat_ranges;
  std::vector<fabric::FrameRange> dyn_ranges;
  for (const fabric::Partition& p : plan_.partitions()) {
    if (p.kind == fabric::PartitionKind::kStatic) stat_ranges.push_back(p.frames);
    if (p.kind == fabric::PartitionKind::kDynamic) dyn_ranges.push_back(p.frames);
  }
  assert(!stat_ranges.empty() && !dyn_ranges.empty());
  std::sort(stat_ranges.begin(), stat_ranges.end(),
            [](const fabric::FrameRange& a, const fabric::FrameRange& b) {
              return a.first < b.first;
            });
  std::sort(dyn_ranges.begin(), dyn_ranges.end(),
            [](const fabric::FrameRange& a, const fabric::FrameRange& b) {
              return a.first < b.first;
            });
  // The nonce occupies its own single-frame partition at the top of the
  // last dynamic region so it can be refreshed without touching the
  // application; the application spans every dynamic region (§2.1.2
  // allows one or more).
  assert(dyn_ranges.back().count >= 2 &&
         "need room for application + nonce frame");
  nonce_frame_ = dyn_ranges.back().end() - 1;
  app_ranges_ = dyn_ranges;
  app_ranges_.back().count -= 1;  // carve the nonce frame out
  if (app_ranges_.back().count == 0) app_ranges_.pop_back();
  for (const fabric::FrameRange& r : app_ranges_) app_frame_total_ += r.count;

  for (const fabric::FrameRange& r : stat_ranges) {
    static_images_.emplace_back(r, bitgen_.generate(r, static_spec_));
  }
  zero_frame_ = bs::Frame(plan_.device().geometry().words_per_frame());
  regenerate_app_images();
}

const bitstream::ConfigImage& SachaVerifier::static_image() const {
  assert(!static_images_.empty() && static_images_.front().first.first == 0 &&
         "BootMem image must start at frame 0");
  return static_images_.front().second;
}

void SachaVerifier::regenerate_app_images() {
  app_images_.clear();
  app_images_.reserve(app_ranges_.size());
  for (const fabric::FrameRange& range : app_ranges_) {
    app_images_.push_back(bitgen_.generate(range, app_spec_));
  }
}

void SachaVerifier::set_app_spec(bitstream::DesignSpec spec) {
  app_spec_ = std::move(spec);
  regenerate_app_images();
}

void SachaVerifier::begin() {
  crypto::Prg prg(session_seed_ + session_counter_++, "sacha-session");
  nonce_ = prg.next_u64();
  nonce_image_ = bitgen_.nonce_frame(nonce_);

  const std::uint32_t total = plan_.device().total_frames();
  steps_.clear();
  const std::uint32_t per_step = std::max(1u, options_.frames_per_readback);
  if (per_step > 1 || options_.order == ReadbackOrder::kSequentialFromZero) {
    for (std::uint32_t f = 0; f < total; f += per_step) {
      steps_.emplace_back(f, std::min(per_step, total - f));
    }
  } else if (options_.order == ReadbackOrder::kSequentialFromOffset) {
    // The PoC's schedule: start at a verifier-chosen offset i, wrap mod N.
    const auto offset = static_cast<std::uint32_t>(prg.next_u64() % total);
    for (std::uint32_t k = 0; k < total; ++k) {
      steps_.emplace_back((offset + k) % total, 1);
    }
  } else {
    Rng rng(prg.next_u64());
    for (std::uint32_t f : rng.permutation(total)) steps_.emplace_back(f, 1);
  }

  received_.assign(steps_.size(), std::nullopt);
  received_mac_.reset();
  protocol_error_.reset();
}

std::size_t SachaVerifier::config_command_count() const {
  if (options_.refresh_only) return 1;  // nonce frame only (§5.2.2)
  const std::uint32_t per = std::max(1u, options_.frames_per_config);
  std::size_t slots = 0;
  for (const fabric::FrameRange& r : app_ranges_) {
    slots += (r.count + per - 1) / per;  // chunks never straddle regions
  }
  return slots + 1;  // +1: nonce frame
}

std::size_t SachaVerifier::command_count() const {
  return config_command_count() + steps_.size() + 1;  // +1: MAC_checksum
}

std::vector<std::uint32_t> SachaVerifier::pad(std::vector<std::uint32_t> stream,
                                              std::uint32_t target_words) const {
  while (stream.size() < target_words) stream.push_back(bs::kNoopWord);
  return stream;
}

Command SachaVerifier::make_config_command(std::size_t slot) const {
  const std::uint32_t per = std::max(1u, options_.frames_per_config);
  if (!options_.refresh_only) {
    for (std::size_t region = 0; region < app_ranges_.size(); ++region) {
      const fabric::FrameRange& range = app_ranges_[region];
      const std::size_t region_slots = (range.count + per - 1) / per;
      if (slot >= region_slots) {
        slot -= region_slots;
        continue;
      }
      const bs::ConfigImage& image = app_images_[region];
      const std::uint32_t first =
          range.first + static_cast<std::uint32_t>(slot) * per;
      const std::uint32_t count = std::min(per, range.end() - first);
      if (count == 1) {
        return Command{CommandType::kIcapConfig, 0,
                       pad(bitgen_.assemble_single_frame(
                               image.frames[first - range.first], first,
                               idcode_),
                           options_.config_pad_words)};
      }
      bs::ConfigImage chunk;
      for (std::uint32_t f = 0; f < count; ++f) {
        chunk.frames.push_back(image.frames[first - range.first + f]);
        chunk.masks.push_back(image.masks[first - range.first + f]);
      }
      return Command{CommandType::kIcapConfig, 0,
                     bitgen_.assemble(chunk, first, idcode_)};
    }
  }
  // Final configuration step: the nonce frame (Fig. 8's second phase).
  return Command{CommandType::kIcapConfig, 0,
                 pad(bitgen_.assemble_single_frame(nonce_image_.frames[0],
                                                   nonce_frame_, idcode_),
                     options_.config_pad_words)};
}

Command SachaVerifier::make_readback_command(std::size_t step) const {
  const auto [first, count] = steps_[step];
  bs::PacketWriter w;
  w.sync();
  w.write_idcode(idcode_);
  w.cmd(bs::CmdOp::kRcfg);
  w.write_far(plan_.device().geometry().address_of(first));
  w.read_request(count * plan_.device().geometry().words_per_frame());
  w.cmd(bs::CmdOp::kDesync);
  return Command{CommandType::kIcapReadback, first,
                 pad(w.words(), options_.readback_pad_words)};
}

Command SachaVerifier::command(std::size_t index) const {
  const std::size_t configs = config_command_count();
  if (index < configs) return make_config_command(index);
  if (index < configs + steps_.size()) {
    return make_readback_command(index - configs);
  }
  assert(index == configs + steps_.size());
  return Command{CommandType::kMacChecksum, 0, {}};
}

Status SachaVerifier::on_response(std::size_t index,
                                  const std::optional<Response>& response) {
  const std::size_t configs = config_command_count();
  if (index < configs) {
    // Fire-and-forget; an error response means the device rejected a write.
    if (response.has_value() && response->type == ResponseType::kError) {
      protocol_error_ = "device rejected configuration command " +
                        std::to_string(index);
      return Status::error(*protocol_error_);
    }
    return Status();
  }
  if (index < configs + steps_.size()) {
    const std::size_t step = index - configs;
    if (!response.has_value() || response->type != ResponseType::kFrameData) {
      protocol_error_ = "missing or bad readback response at step " +
                        std::to_string(step);
      return Status::error(*protocol_error_);
    }
    const std::uint32_t expected_words =
        steps_[step].second * plan_.device().geometry().words_per_frame();
    if (response->frame_words.size() != expected_words) {
      protocol_error_ = "readback step " + std::to_string(step) +
                        " returned wrong word count";
      return Status::error(*protocol_error_);
    }
    received_[step] = response->frame_words;
    return Status();
  }
  if (!response.has_value() || response->type != ResponseType::kMacValue) {
    protocol_error_ = "missing or bad MAC response";
    return Status::error(*protocol_error_);
  }
  received_mac_ = response->mac;
  return Status();
}

const bitstream::Frame& SachaVerifier::golden_frame(std::uint32_t index) const {
  if (index == nonce_frame_) return nonce_image_.frames[0];
  for (std::size_t region = 0; region < app_ranges_.size(); ++region) {
    if (app_ranges_[region].contains(index)) {
      return app_images_[region].frames[index - app_ranges_[region].first];
    }
  }
  for (const auto& [range, image] : static_images_) {
    if (range.contains(index)) return image.frames[index - range.first];
  }
  // Frames outside every partition are never configured: golden is zero.
  return zero_frame_;
}

bool SachaVerifier::verify_mac(ByteSpan data, const crypto::Mac& mac) const {
  const crypto::Mac expected = crypto::Cmac::compute(key_, data);
  return crypto::ct_equal(expected, mac);
}

std::optional<crypto::Mac> SachaVerifier::expected_mac() const {
  for (const auto& step_words : received_) {
    if (!step_words.has_value()) return std::nullopt;
  }
  crypto::Cmac cmac(key_);
  for (const auto& step_words : received_) {
    Bytes bytes;
    bytes.reserve(step_words->size() * 4);
    for (std::uint32_t w : *step_words) put_u32be(bytes, w);
    cmac.update(bytes);
  }
  return cmac.finalize();
}

SachaVerifier::Verdict SachaVerifier::finish() const {
  Verdict verdict;
  if (protocol_error_.has_value()) {
    verdict.detail = *protocol_error_;
    return verdict;
  }
  if (!received_mac_.has_value()) {
    verdict.detail = "no MAC received";
    return verdict;
  }
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    if (!received_[s].has_value()) {
      verdict.detail = "no data for readback step " + std::to_string(s);
      return verdict;
    }
  }
  verdict.protocol_ok = true;

  // H_Vrf = MAC_K(received configuration), in readback order.
  const std::optional<crypto::Mac> expected = expected_mac();
  verdict.mac_ok =
      expected.has_value() && crypto::ct_equal(*expected, *received_mac_);
  if (!verdict.mac_ok) {
    verdict.detail = "MAC mismatch: device does not hold the key or data was modified";
  }

  // B_Prv == B_Vrf under Msk, every frame covered.
  const std::uint32_t wpf = plan_.device().geometry().words_per_frame();
  std::vector<bool> covered(plan_.device().total_frames(), false);
  bool config_ok = true;
  std::string config_detail;
  for (std::size_t s = 0; s < steps_.size() && config_ok; ++s) {
    const auto [first, count] = steps_[s];
    for (std::uint32_t f = 0; f < count; ++f) {
      const std::uint32_t frame_index = first + f;
      bs::Frame received_frame(std::vector<std::uint32_t>(
          received_[s]->begin() + static_cast<std::ptrdiff_t>(f) * wpf,
          received_[s]->begin() + static_cast<std::ptrdiff_t>(f + 1) * wpf));
      const bs::FrameMask msk =
          bs::architectural_mask(plan_.device(), frame_index);
      if (!bs::masked_equal(received_frame, golden_frame(frame_index), msk)) {
        config_ok = false;
        config_detail = "configuration mismatch at frame " +
                        std::to_string(frame_index);
        break;
      }
      covered[frame_index] = true;
    }
  }
  if (config_ok) {
    for (std::uint32_t f = 0; f < covered.size(); ++f) {
      if (!covered[f]) {
        config_ok = false;
        config_detail = "frame " + std::to_string(f) + " never read back";
        break;
      }
    }
  }
  verdict.config_ok = config_ok;
  if (!config_ok && verdict.detail.empty()) verdict.detail = config_detail;
  if (verdict.ok()) verdict.detail = "attested";
  return verdict;
}

}  // namespace sacha::core
