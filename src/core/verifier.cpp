#include "core/verifier.hpp"

#include <algorithm>
#include <cassert>

#include "bitstream/packet.hpp"
#include "common/log.hpp"
#include "config/icap.hpp"
#include "crypto/ct.hpp"
#include "obs/metrics.hpp"

namespace sacha::core {

namespace bs = sacha::bitstream;

SachaVerifier::SachaVerifier(fabric::Floorplan plan,
                             bitstream::DesignSpec static_spec,
                             bitstream::DesignSpec app_spec, crypto::AesKey key,
                             std::uint64_t session_seed, VerifierOptions options)
    // `plan` is deliberately copied into the delegated constructor (not
    // moved): GoldenModel::shared reads it in the same argument list.
    : SachaVerifier(plan, bs::GoldenModel::shared(plan, static_spec, app_spec),
                    key, session_seed, options) {}

SachaVerifier::SachaVerifier(fabric::Floorplan plan,
                             std::shared_ptr<const bitstream::GoldenModel> model,
                             crypto::AesKey key, std::uint64_t session_seed,
                             VerifierOptions options)
    : plan_(std::move(plan)),
      bitgen_(plan_.device()),
      idcode_(config::device_idcode(plan_.device())),
      key_(key),
      session_seed_(session_seed),
      options_(options),
      model_(std::move(model)),
      stream_cmac_(key) {
  assert(plan_.validate().ok());
  assert(model_ != nullptr);
  assert(model_->total_frames() == plan_.device().total_frames() &&
         model_->words_per_frame() ==
             plan_.device().geometry().words_per_frame() &&
         "golden model built for a different device");
}

const bitstream::ConfigImage& SachaVerifier::static_image() const {
  return model_->static_image();
}

void SachaVerifier::set_app_spec(bitstream::DesignSpec spec) {
  model_ = bs::GoldenModel::shared(plan_, model_->static_spec(), spec);
}

void SachaVerifier::begin() {
  static obs::Counter& sessions =
      obs::MetricsRegistry::global().counter("sacha.verifier.sessions_begun");
  sessions.add(1);
  crypto::Prg prg(session_seed_ + session_counter_++, "sacha-session");
  nonce_ = prg.next_u64();
  nonce_image_ = bitgen_.nonce_frame(nonce_);
  // Session overlay for the streaming compare: nonce words under the nonce
  // frame's architectural mask (its row in the shared model is zero).
  const std::span<const std::uint32_t> nonce_mask =
      model_->mask_words(model_->nonce_frame());
  const std::vector<std::uint32_t>& nonce_words =
      nonce_image_.frames[0].words();
  nonce_masked_.resize(nonce_words.size());
  for (std::size_t w = 0; w < nonce_words.size(); ++w) {
    nonce_masked_[w] = nonce_words[w] & nonce_mask[w];
  }

  const std::uint32_t total = plan_.device().total_frames();
  steps_.clear();
  const std::uint32_t per_step = std::max(1u, options_.frames_per_readback);
  if (options_.refresh_only && options_.probe_coverage < 1.0 &&
      options_.probe_coverage > 0.0) {
    // Probe schedule: the nonce frame plus a fresh random sample of the
    // memory, in random order. The sample is drawn from the session PRG, so
    // an adversary cannot predict which frames the next probe inspects.
    const auto target = static_cast<std::uint32_t>(std::max(
        1.0, options_.probe_coverage * static_cast<double>(total) + 0.5));
    Rng probe_rng(prg.next_u64());
    std::vector<std::uint32_t> perm = probe_rng.permutation(total);
    perm.resize(std::min<std::size_t>(target, perm.size()));
    const std::uint32_t nonce_frame = model_->nonce_frame();
    if (std::find(perm.begin(), perm.end(), nonce_frame) == perm.end()) {
      perm.back() = nonce_frame;  // freshness: the nonce is always probed
    }
    for (std::uint32_t f : perm) steps_.emplace_back(f, 1);
  } else if (per_step > 1 ||
             options_.order == ReadbackOrder::kSequentialFromZero) {
    for (std::uint32_t f = 0; f < total; f += per_step) {
      steps_.emplace_back(f, std::min(per_step, total - f));
    }
  } else if (options_.order == ReadbackOrder::kSequentialFromOffset) {
    // The PoC's schedule: start at a verifier-chosen offset i, wrap mod N.
    const auto offset = static_cast<std::uint32_t>(prg.next_u64() % total);
    for (std::uint32_t k = 0; k < total; ++k) {
      steps_.emplace_back((offset + k) % total, 1);
    }
  } else {
    Rng rng(prg.next_u64());
    for (std::uint32_t f : rng.permutation(total)) steps_.emplace_back(f, 1);
  }
  scheduled_.assign(total, 0);
  for (const auto& [first, count] : steps_) {
    for (std::uint32_t f = 0; f < count; ++f) scheduled_[first + f] = 1;
  }

  config_commands_ = config_command_count();
  words_per_frame_ = plan_.device().geometry().words_per_frame();
  stream_cmac_.reset();
  streamed_mac_.reset();
  next_stream_step_ = 0;
  pending_.clear();
  step_done_.assign(steps_.size(), 0);
  covered_.assign(total, 0);
  mismatch_frame_.reset();
  if (options_.mode == VerifyMode::kRetained) {
    received_.assign(steps_.size(), std::nullopt);
  } else {
    received_.clear();
    received_.shrink_to_fit();
  }
  received_mac_.reset();
  protocol_error_.reset();
  protocol_failure_ = FailureKind::kNone;
}

std::size_t SachaVerifier::config_command_count() const {
  if (options_.refresh_only) return 1;  // nonce frame only (§5.2.2)
  const std::uint32_t per = std::max(1u, options_.frames_per_config);
  std::size_t slots = 0;
  for (const fabric::FrameRange& r : model_->app_ranges()) {
    slots += (r.count + per - 1) / per;  // chunks never straddle regions
  }
  return slots + 1;  // +1: nonce frame
}

std::size_t SachaVerifier::command_count() const {
  return config_command_count() + steps_.size() + 1;  // +1: MAC_checksum
}

std::vector<std::uint32_t> SachaVerifier::pad(std::vector<std::uint32_t> stream,
                                              std::uint32_t target_words) const {
  while (stream.size() < target_words) stream.push_back(bs::kNoopWord);
  return stream;
}

Command SachaVerifier::make_config_command(std::size_t slot) const {
  const std::uint32_t per = std::max(1u, options_.frames_per_config);
  if (!options_.refresh_only) {
    const std::vector<fabric::FrameRange>& app_ranges = model_->app_ranges();
    for (std::size_t region = 0; region < app_ranges.size(); ++region) {
      const fabric::FrameRange& range = app_ranges[region];
      const std::size_t region_slots = (range.count + per - 1) / per;
      if (slot >= region_slots) {
        slot -= region_slots;
        continue;
      }
      const bs::ConfigImage& image = model_->app_image(region);
      const std::uint32_t first =
          range.first + static_cast<std::uint32_t>(slot) * per;
      const std::uint32_t count = std::min(per, range.end() - first);
      if (count == 1) {
        return Command{CommandType::kIcapConfig, 0,
                       pad(bitgen_.assemble_single_frame(
                               image.frames[first - range.first], first,
                               idcode_),
                           options_.config_pad_words)};
      }
      bs::ConfigImage chunk;
      for (std::uint32_t f = 0; f < count; ++f) {
        chunk.frames.push_back(image.frames[first - range.first + f]);
        chunk.masks.push_back(image.masks[first - range.first + f]);
      }
      return Command{CommandType::kIcapConfig, 0,
                     bitgen_.assemble(chunk, first, idcode_)};
    }
  }
  // Final configuration step: the nonce frame (Fig. 8's second phase).
  return Command{CommandType::kIcapConfig, 0,
                 pad(bitgen_.assemble_single_frame(nonce_image_.frames[0],
                                                   model_->nonce_frame(),
                                                   idcode_),
                     options_.config_pad_words)};
}

Command SachaVerifier::make_readback_command(std::size_t step) const {
  const auto [first, count] = steps_[step];
  bs::PacketWriter w;
  w.sync();
  w.write_idcode(idcode_);
  w.cmd(bs::CmdOp::kRcfg);
  w.write_far(plan_.device().geometry().address_of(first));
  w.read_request(count * plan_.device().geometry().words_per_frame());
  w.cmd(bs::CmdOp::kDesync);
  return Command{CommandType::kIcapReadback, first,
                 pad(w.words(), options_.readback_pad_words)};
}

Command SachaVerifier::command(std::size_t index) const {
  const std::size_t configs = config_command_count();
  if (index < configs) return make_config_command(index);
  if (index < configs + steps_.size()) {
    return make_readback_command(index - configs);
  }
  assert(index == configs + steps_.size());
  return Command{CommandType::kMacChecksum, 0, {}};
}

void SachaVerifier::absorb_in_order(std::size_t step,
                                    std::vector<std::uint32_t>&& words) {
  // Counters only on this path: it runs once per readback round (28k+ per
  // Virtex-6 session), so the per-event telemetry cost must stay at a
  // relaxed add behind the enable branch. Span-level timing lives one layer
  // up, in the session driver's readback.round spans.
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& frames_absorbed =
      registry.counter("sacha.verifier.frames_absorbed");
  static obs::Counter& words_absorbed =
      registry.counter("sacha.verifier.words_absorbed");
  step_done_[step] = 1;
  const auto [first, count] = steps_[step];
  frames_absorbed.add(count);
  words_absorbed.add(words.size());
  const std::uint32_t wpf = model_->words_per_frame();
  const std::uint32_t nonce_frame = model_->nonce_frame();
  const std::span<const std::uint32_t> wspan(words);
  for (std::uint32_t f = 0; f < count; ++f) {
    const std::uint32_t frame_index = first + f;
    // The compare stops at the first mismatch in step order, matching the
    // retained verdict's first-failure detail (the MAC still absorbs every
    // step — it is defined over the whole transcript).
    if (mismatch_frame_.has_value()) break;
    const std::span<const std::uint32_t> frame_words =
        wspan.subspan(static_cast<std::size_t>(f) * wpf, wpf);
    bool match;
    if (frame_index == nonce_frame) {
      // Same masked compare as the model rows, with the session overlay as
      // the pre-masked golden.
      match = bitstream::masked_words_match(
          frame_words.data(), model_->mask_words(nonce_frame).data(),
          nonce_masked_.data(), wpf);
    } else {
      match = model_->frame_matches(frame_index, frame_words);
    }
    if (!match) {
      static obs::Counter& mismatches =
          obs::MetricsRegistry::global().counter(
              "sacha.verifier.mask_mismatches");
      mismatches.add(1);
      mismatch_frame_ = frame_index;
      break;
    }
    covered_[frame_index] = 1;
  }
  // MAC fold last (it is independent of the compare — disjoint state): with
  // a sink attached the words queue for an interleaved multi-stream absorb,
  // otherwise they fold immediately.
  if (absorb_sink_ != nullptr) {
    absorb_sink_->add(stream_cmac_, std::move(words));
  } else {
    stream_cmac_.update(wspan);
  }
}

void SachaVerifier::absorb_response(std::size_t step,
                                    std::vector<std::uint32_t>&& words) {
  if (step != next_stream_step_) {
    static obs::Counter& parked = obs::MetricsRegistry::global().counter(
        "sacha.verifier.out_of_order_parked");
    parked.add(1);
    pending_.emplace(step, std::move(words));
    return;
  }
  absorb_in_order(step, std::move(words));
  ++next_stream_step_;
  while (!pending_.empty() && pending_.begin()->first == next_stream_step_) {
    auto node = pending_.extract(pending_.begin());
    absorb_in_order(next_stream_step_, std::move(node.mapped()));
    ++next_stream_step_;
  }
  // With a sink attached the fold is still queued, so the finalize waits
  // for the flush and happens lazily in expected_mac().
  if (next_stream_step_ == steps_.size() && absorb_sink_ == nullptr) {
    streamed_mac_ = stream_cmac_.finalize();
  }
}

Status SachaVerifier::on_response(std::size_t index,
                                  std::optional<Response> response) {
  const std::size_t configs = config_commands_;
  const auto note = [this](FailureKind kind) {
    if (protocol_failure_ == FailureKind::kNone) protocol_failure_ = kind;
  };
  if (index < configs) {
    // Fire-and-forget; an error response means the device rejected a write.
    if (response.has_value() && response->type == ResponseType::kError) {
      protocol_error_ = "device rejected configuration command " +
                        std::to_string(index);
      note(FailureKind::kDeviceError);
      return Status::error(*protocol_error_);
    }
    return Status();
  }
  if (index < configs + steps_.size()) {
    const std::size_t step = index - configs;
    if (!response.has_value() || response->type != ResponseType::kFrameData) {
      protocol_error_ = "missing or bad readback response at step " +
                        std::to_string(step);
      note(!response.has_value() ? FailureKind::kTimeoutExhausted
           : response->type == ResponseType::kError
               ? FailureKind::kDeviceError
               : FailureKind::kDecodeError);
      return Status::error(*protocol_error_);
    }
    const std::uint32_t expected_words = steps_[step].second * words_per_frame_;
    if (response->frame_words.size() != expected_words) {
      protocol_error_ = "readback step " + std::to_string(step) +
                        " returned wrong word count";
      note(FailureKind::kDecodeError);
      return Status::error(*protocol_error_);
    }
    if (options_.mode == VerifyMode::kRetained) {
      received_[step] = std::move(response->frame_words);
      return Status();
    }
    // Streaming: a step can be absorbed into the running MAC exactly once.
    if (step_done_[step] || (!pending_.empty() && pending_.count(step) != 0)) {
      protocol_error_ =
          "duplicate readback response at step " + std::to_string(step);
      note(FailureKind::kDecodeError);
      return Status::error(*protocol_error_);
    }
    absorb_response(step, std::move(response->frame_words));
    return Status();
  }
  if (!response.has_value() || response->type != ResponseType::kMacValue) {
    protocol_error_ = "missing or bad MAC response";
    note(!response.has_value() ? FailureKind::kTimeoutExhausted
         : response->type == ResponseType::kError
             ? FailureKind::kDeviceError
             : FailureKind::kDecodeError);
    return Status::error(*protocol_error_);
  }
  received_mac_ = response->mac;
  return Status();
}

const bitstream::Frame& SachaVerifier::golden_frame(std::uint32_t index) const {
  if (index == model_->nonce_frame() && !nonce_image_.frames.empty()) {
    return nonce_image_.frames[0];
  }
  return model_->golden_frame(index);
}

bool SachaVerifier::verify_mac(ByteSpan data, const crypto::Mac& mac) const {
  const crypto::Mac expected = crypto::Cmac::compute(key_, data);
  return crypto::ct_equal(expected, mac);
}

std::optional<crypto::Mac> SachaVerifier::expected_mac() const {
  if (options_.mode == VerifyMode::kStreaming) {
    // Sink path: every step has been absorbed but the folds were queued on
    // the batch; once the engine has flushed it the stream can close here.
    if (!streamed_mac_.has_value() && !steps_.empty() &&
        next_stream_step_ == steps_.size()) {
      streamed_mac_ = stream_cmac_.finalize();
    }
    return streamed_mac_;
  }
  for (const auto& step_words : received_) {
    if (!step_words.has_value()) return std::nullopt;
  }
  crypto::Cmac cmac(key_);
  for (const auto& step_words : received_) {
    Bytes bytes;
    bytes.reserve(step_words->size() * 4);
    for (std::uint32_t w : *step_words) put_u32be(bytes, w);
    cmac.update(bytes);
  }
  return cmac.finalize();
}

std::size_t SachaVerifier::retained_readback_bytes() const {
  std::size_t bytes = 0;
  for (const auto& step_words : received_) {
    if (step_words.has_value()) bytes += step_words->size() * 4;
  }
  for (const auto& [step, words] : pending_) bytes += words.size() * 4;
  return bytes;
}

SachaVerifier::Verdict SachaVerifier::finish() const {
  Verdict verdict;
  if (protocol_error_.has_value()) {
    verdict.detail = *protocol_error_;
    verdict.kind = protocol_failure_ != FailureKind::kNone
                       ? protocol_failure_
                       : FailureKind::kTimeoutExhausted;
    (log_debug() << "verifier verdict: protocol error")
        .kv("detail", *protocol_error_);
    return verdict;
  }
  if (!received_mac_.has_value()) {
    verdict.detail = "no MAC received";
    verdict.kind = FailureKind::kTimeoutExhausted;
    return verdict;
  }
  const bool streaming = options_.mode == VerifyMode::kStreaming;
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    const bool have = streaming ? step_done_[s] != 0 : received_[s].has_value();
    if (!have) {
      verdict.detail = "no data for readback step " + std::to_string(s);
      verdict.kind = FailureKind::kTimeoutExhausted;
      return verdict;
    }
  }
  verdict.protocol_ok = true;

  // H_Vrf = MAC_K(received configuration), in readback order.
  const std::optional<crypto::Mac> expected = expected_mac();
  verdict.mac_ok =
      expected.has_value() && crypto::ct_equal(*expected, *received_mac_);
  if (!verdict.mac_ok) {
    verdict.detail = "MAC mismatch: device does not hold the key or data was modified";
    verdict.kind = FailureKind::kMacMismatch;
  }

  // B_Prv == B_Vrf under Msk, every frame covered. Streaming mode already
  // did the masked compares and coverage marking on arrival; only the O(1)
  // verdict assembly is left here.
  bool config_ok = true;
  std::string config_detail;
  if (streaming) {
    if (mismatch_frame_.has_value()) {
      config_ok = false;
      config_detail = "configuration mismatch at frame " +
                      std::to_string(*mismatch_frame_);
    } else {
      // Coverage is required for every *scheduled* frame: the whole memory
      // in a full or refresh session, only the sample in a probe session.
      for (std::uint32_t f = 0; f < covered_.size(); ++f) {
        if (scheduled_[f] && !covered_[f]) {
          config_ok = false;
          config_detail = "frame " + std::to_string(f) + " never read back";
          break;
        }
      }
    }
  } else {
    const std::uint32_t wpf = plan_.device().geometry().words_per_frame();
    std::vector<bool> covered(plan_.device().total_frames(), false);
    for (std::size_t s = 0; s < steps_.size() && config_ok; ++s) {
      const auto [first, count] = steps_[s];
      for (std::uint32_t f = 0; f < count; ++f) {
        const std::uint32_t frame_index = first + f;
        bs::Frame received_frame(std::vector<std::uint32_t>(
            received_[s]->begin() + static_cast<std::ptrdiff_t>(f) * wpf,
            received_[s]->begin() + static_cast<std::ptrdiff_t>(f + 1) * wpf));
        const bs::FrameMask msk =
            bs::architectural_mask(plan_.device(), frame_index);
        if (!bs::masked_equal(received_frame, golden_frame(frame_index), msk)) {
          config_ok = false;
          config_detail = "configuration mismatch at frame " +
                          std::to_string(frame_index);
          break;
        }
        covered[frame_index] = true;
      }
    }
    if (config_ok) {
      for (std::uint32_t f = 0; f < covered.size(); ++f) {
        if (scheduled_[f] && !covered[f]) {
          config_ok = false;
          config_detail = "frame " + std::to_string(f) + " never read back";
          break;
        }
      }
    }
  }
  verdict.config_ok = config_ok;
  if (!config_ok && verdict.detail.empty()) verdict.detail = config_detail;
  if (!config_ok && verdict.kind == FailureKind::kNone) {
    verdict.kind = FailureKind::kMaskedCompareMismatch;
  }
  if (verdict.ok()) verdict.detail = "attested";
  return verdict;
}

}  // namespace sacha::core
