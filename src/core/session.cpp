#include "core/session.hpp"

#include <chrono>
#include <optional>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sacha::core {

namespace {

/// Ledger keys for one command round, by command type.
struct ActionKeys {
  const char* send;
  const char* device;
  const char* reply;
};

ActionKeys keys_for(CommandType type) {
  switch (type) {
    case CommandType::kIcapConfig:
      return {actions::kA1, actions::kA2, nullptr};
    case CommandType::kIcapReadback:
      return {actions::kA3, actions::kA4, actions::kA8};
    case CommandType::kMacChecksum:
      return {actions::kA9, nullptr, actions::kA10};
  }
  return {nullptr, nullptr, nullptr};
}

}  // namespace

AttestationReport run_attestation(SachaVerifier& verifier, SachaProver& prover,
                                  const SessionOptions& options,
                                  const SessionHooks& hooks) {
  AttestationReport report;
  net::Channel channel(options.channel, options.seed);
  Rng churn_rng(options.seed ^ 0xfeedface12345678ULL);
  const net::WireModel& wire = options.channel.wire;

  const auto host_start = std::chrono::steady_clock::now();
  verifier.begin();
  const std::size_t n = verifier.command_count();
  // Command schedule: [0, configs-1) app configuration, configs-1 the nonce
  // frame, [configs, n-1) readback rounds, n-1 the MAC checksum.
  const std::size_t configs = n - verifier.readback_steps().size() - 1;
  bool config_phase_done = false;

  report.trace_id = obs::make_trace_id(prover.device_id(), verifier.nonce());
  static obs::Counter& sessions_started =
      obs::MetricsRegistry::global().counter("sacha.session.started");
  sessions_started.add(1);

  // Session timeline: one top-level span, one child span per protocol phase
  // (the Table 4 steps), one grandchild per readback round. The phase spans
  // are contiguous, so the timeline covers the session wall-clock.
  obs::Span session_span("session", report.trace_id);
  session_span.arg("device", prover.device_id());
  std::optional<obs::Span> phase_span;

  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 && configs > 1) {
      phase_span.emplace("configure.stream_in", report.trace_id, "phase");
    }
    if (i + 1 == configs) {
      phase_span.emplace("nonce.inject", report.trace_id, "phase");
    } else if (i == configs) {
      phase_span.emplace("readback.absorb", report.trace_id, "phase");
    } else if (i + 1 == n) {
      phase_span.emplace("cmac.finish", report.trace_id, "phase");
    }
    std::optional<obs::Span> round_span;
    if (obs::enabled() && i >= configs && i + 1 < n) {
      round_span.emplace("readback.round", report.trace_id, "readback");
    }
    const Command command = verifier.command(i);
    if (round_span.has_value()) {
      round_span->arg("frame", std::to_string(command.frame_nb));
    }

    // Phase boundary: the whole DynMem is (over)written; the application
    // starts running (register churn) and the adversary gets its window.
    if (!config_phase_done && command.type != CommandType::kIcapConfig) {
      config_phase_done = true;
      if (hooks.after_config) hooks.after_config(prover);
      prover.memory().tick_registers(churn_rng, options.register_flip_probability);
    }

    const ActionKeys keys = keys_for(command.type);
    std::optional<Response> final_response;
    bool delivered_and_answered = false;
    std::optional<Response> cached_device_response;  // dedup across retries
    bool device_handled = false;

    const std::uint32_t attempts = options.reliable ? options.max_retries + 1 : 1;
    for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        ++report.retransmissions;
        report.ledger.add(actions::kRetransmit, options.retransmit_timeout);
        report.total_time += options.retransmit_timeout;
      }
      Bytes packet = command.encode();
      if (hooks.on_command && !hooks.on_command(packet)) {
        continue;  // dropped by the adversary-in-the-middle
      }
      ++report.commands_sent;
      const auto uplink = channel.transfer(packet.size());
      // Wire occupancy is charged even for lost packets (the sender still
      // transmits); latency/jitter above the nominal wire time goes to the
      // latency bucket.
      const sim::SimDuration wire_up = wire.frame_time(packet.size());
      report.ledger.add(keys.send, wire_up);
      report.bytes_to_prover += wire.frame_bytes(packet.size());
      report.total_time += wire_up;
      if (!uplink.has_value()) continue;  // lost in transit
      report.ledger.add(actions::kNetLatency, *uplink - wire_up);
      report.total_time += *uplink - wire_up;

      // Device side. Retransmitted commands the device already executed are
      // answered from the response cache (sequence-number dedup in the RX
      // FSM) so a lost *response* cannot double-step the MAC.
      SachaProver::HandleResult result;
      if (device_handled) {
        // The cache must survive further retries, but the last permitted
        // attempt can consume it instead of copying the frame payload.
        if (attempt + 1 == attempts) {
          result.response = std::move(cached_device_response);
        } else {
          result.response = cached_device_response;
        }
      } else {
        result = prover.handle_packet(packet);
        device_handled = true;
        cached_device_response = result.response;
        if (result.icap_time > 0 && keys.device != nullptr) {
          report.ledger.add(keys.device, result.icap_time);
          report.total_time += result.icap_time;
        }
        if (result.mac_init_time > 0) {
          report.ledger.add(actions::kA5, result.mac_init_time);
          report.total_time += result.mac_init_time;
        }
        if (result.mac_update_time > 0) {
          report.ledger.add(actions::kA6, result.mac_update_time);
          report.total_time += result.mac_update_time;
        }
        if (result.mac_finalize_time > 0) {
          report.ledger.add(actions::kA7, result.mac_finalize_time);
          report.total_time += result.mac_finalize_time;
        }
      }

      // Response path (or a synthetic ack in reliable mode so the verifier
      // can detect loss of fire-and-forget configuration commands).
      std::optional<Response> response = std::move(result.response);
      if (!response.has_value() && options.reliable) {
        response = Response{.type = ResponseType::kAck, .status = ProverStatus::kOk};
      }
      if (!response.has_value()) {
        final_response = std::nullopt;
        delivered_and_answered = true;
        break;
      }
      Bytes reply = response->encode();
      if (hooks.on_response && !hooks.on_response(reply)) {
        continue;  // response suppressed
      }
      const auto downlink = channel.transfer(reply.size());
      const sim::SimDuration wire_down = wire.frame_time(reply.size());
      const char* reply_key = keys.reply;
      if (response->type == ResponseType::kAck) reply_key = actions::kAck;
      if (response->type == ResponseType::kError) reply_key = actions::kAck;
      if (reply_key != nullptr) {
        report.ledger.add(reply_key, wire_down);
        report.total_time += wire_down;
        report.bytes_to_verifier += wire.frame_bytes(reply.size());
      }
      if (!downlink.has_value()) continue;  // response lost
      report.ledger.add(actions::kNetLatency, *downlink - wire_down);
      report.total_time += *downlink - wire_down;

      auto decoded = Response::decode(reply);
      if (decoded.ok()) {
        final_response = std::move(decoded).take();
        if (final_response->type == ResponseType::kAck) {
          final_response = std::nullopt;  // acks are transport-level only
        }
      } else {
        final_response = std::nullopt;
      }
      delivered_and_answered = true;
      break;
    }

    if (delivered_and_answered || !options.reliable) {
      (void)verifier.on_response(i, std::move(final_response));
    } else {
      // Retries exhausted: record the absence so finish() reports it.
      (void)verifier.on_response(
          i, Response{.type = ResponseType::kError,
                      .status = ProverStatus::kBadCommand});
    }
  }

  for (const char* key : {actions::kA1, actions::kA2, actions::kA3, actions::kA4,
                          actions::kA5, actions::kA6, actions::kA7, actions::kA8,
                          actions::kA9, actions::kA10}) {
    report.theoretical_time += report.ledger.total(key);
  }
  phase_span.reset();
  {
    // Streaming mode did its masked compares during readback.absorb; this
    // span is where the retained oracle does all of its comparing.
    obs::Span verdict_span("compare.verdict", report.trace_id, "phase");
    report.verdict = verifier.finish();
  }
  report.verifier_retained_bytes = verifier.retained_readback_bytes();
  session_span.end();
  report.host_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_start)
          .count());

  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& attested = registry.counter("sacha.session.attested");
    static obs::Counter& failed = registry.counter("sacha.session.failed");
    static obs::Counter& commands = registry.counter("sacha.session.commands");
    static obs::Counter& retransmissions =
        registry.counter("sacha.session.retransmissions");
    static obs::Histogram& host_hist =
        registry.histogram("sacha.session.host_ns");
    (report.verdict.ok() ? attested : failed).add(1);
    commands.add(report.commands_sent);
    retransmissions.add(report.retransmissions);
    host_hist.observe(report.host_ns);
  }
  (log_debug() << "attestation session finished")
      .kv("device", prover.device_id())
      .kv("nonce", verifier.nonce())
      .kv("trace", obs::to_string(report.trace_id))
      .kv("verdict", report.verdict.ok() ? "attested" : "failed")
      .kv("commands", report.commands_sent)
      .kv("retransmissions", report.retransmissions)
      .kv("host_ms", static_cast<double>(report.host_ns) / 1e6);
  return report;
}

}  // namespace sacha::core
