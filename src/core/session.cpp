#include "core/session.hpp"

#include <chrono>
#include <optional>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sacha::core {

namespace {

/// Ledger keys for one command round, by command type.
struct ActionKeys {
  const char* send;
  const char* device;
  const char* reply;
};

ActionKeys keys_for(CommandType type) {
  switch (type) {
    case CommandType::kIcapConfig:
      return {actions::kA1, actions::kA2, nullptr};
    case CommandType::kIcapReadback:
      return {actions::kA3, actions::kA4, actions::kA8};
    case CommandType::kMacChecksum:
      return {actions::kA9, nullptr, actions::kA10};
  }
  return {nullptr, nullptr, nullptr};
}

/// Backoff wait before retry `attempt` (1-based): exponential in the
/// multiplier, capped, plus uniform jitter so fleet retries desynchronise.
/// Only called when a retry actually happens, so fault-free sessions never
/// draw from `rng` (seed-for-seed bit-identity with the pre-backoff code).
sim::SimDuration backoff_wait(const SessionOptions& options,
                              std::uint32_t attempt, Rng& rng) {
  double wait = static_cast<double>(options.retransmit_timeout);
  for (std::uint32_t i = 1; i < attempt; ++i) {
    wait *= options.backoff_multiplier;
    if (wait >= static_cast<double>(options.backoff_cap)) break;
  }
  auto capped = static_cast<sim::SimDuration>(wait);
  if (options.backoff_cap > 0 && capped > options.backoff_cap) {
    capped = options.backoff_cap;
  }
  if (options.backoff_jitter > 0.0 && capped > 0) {
    const auto span = static_cast<sim::SimDuration>(
        static_cast<double>(capped) * options.backoff_jitter);
    if (span > 0) capped += rng.below(span + 1);
  }
  return capped;
}

}  // namespace

void SessionMachine::note_failure(FailureKind kind) {
  // First transport failure observed wins (see FailureKind's contract);
  // crypto verdicts only apply to transport-clean sessions.
  if (transport_failure_ == FailureKind::kNone) transport_failure_ = kind;
}

bool SessionMachine::past_deadline() const {
  return options_.deadline > 0 && report_.total_time >= options_.deadline;
}

SessionMachine::SessionMachine(SachaVerifier& verifier, SachaProver& prover,
                               const SessionOptions& options,
                               const SessionHooks& hooks, bool emit_spans)
    : verifier_(verifier),
      prover_(prover),
      options_(options),
      hooks_(hooks),
      emit_spans_(emit_spans),
      channel_(options.channel, options.seed),
      churn_rng_(options.seed ^ kChurnSeedSalt),
      // Drawn only when a retransmission happens, so fault-free sessions
      // are bit-identical whatever the backoff settings.
      backoff_rng_(options.seed ^ 0x5acab0ff5ac4a11eULL),
      host_start_(std::chrono::steady_clock::now()) {
  verifier_.begin();
  commands_ = verifier_.command_count();
  // Command schedule: [0, configs-1) app configuration, configs-1 the nonce
  // frame, [configs, n-1) readback rounds, n-1 the MAC checksum.
  configs_ = commands_ - verifier_.readback_steps().size() - 1;

  report_.trace_id = obs::make_trace_id(prover_.device_id(), verifier_.nonce());
  static obs::Counter& sessions_started =
      obs::MetricsRegistry::global().counter("sacha.session.started");
  sessions_started.add(1);

  // Session timeline: one top-level span, one child span per protocol phase
  // (the Table 4 steps), one grandchild per readback round. The phase spans
  // are contiguous, so the timeline covers the session wall-clock.
  if (emit_spans_) {
    session_span_.emplace("session", report_.trace_id);
    session_span_->arg("device", prover_.device_id());
  }
}

SessionMachine::Round SessionMachine::step() {
  const std::size_t i = next_;
  Round out;
  out.index = i;
  const sim::SimDuration elapsed_before = report_.total_time;

  if (emit_spans_) {
    if (i == 0 && configs_ > 1) {
      phase_span_.emplace("configure.stream_in", report_.trace_id, "phase");
    }
    if (i + 1 == configs_) {
      phase_span_.emplace("nonce.inject", report_.trace_id, "phase");
    } else if (i == configs_) {
      phase_span_.emplace("readback.absorb", report_.trace_id, "phase");
    } else if (i + 1 == commands_) {
      phase_span_.emplace("cmac.finish", report_.trace_id, "phase");
    }
    if (obs::enabled() && i >= configs_ && i + 1 < commands_) {
      round_span_.emplace("readback.round", report_.trace_id, "readback");
    }
  }
  const Command command = verifier_.command(i);
  if (round_span_.has_value()) {
    round_span_->arg("frame", std::to_string(command.frame_nb));
  }
  if (hooks_.before_command) hooks_.before_command(i, prover_);

  // Session deadline: the fleet verifier's port-occupancy bound. Abort
  // before starting another round once simulated time is exhausted.
  if (past_deadline()) {
    report_.deadline_hit = true;
    note_failure(FailureKind::kDeadlineExceeded);
    aborted_ = true;
    out.last = true;
    out.elapsed = report_.total_time - elapsed_before;
    return out;
  }

  // Phase boundary: the whole DynMem is (over)written; the application
  // starts running (register churn) and the adversary gets its window.
  if (!config_phase_done_ && command.type != CommandType::kIcapConfig) {
    config_phase_done_ = true;
    if (hooks_.after_config) hooks_.after_config(prover_);
    prover_.memory().tick_registers(churn_rng_,
                                    options_.register_flip_probability);
  }

  const ActionKeys keys = keys_for(command.type);
  std::optional<Response> final_response;
  bool delivered_and_answered = false;
  std::optional<Response> cached_device_response;  // dedup across retries
  bool device_handled = false;
  const net::WireModel& wire = options_.channel.wire;

  const std::uint32_t attempts =
      options_.reliable ? options_.max_retries + 1 : 1;
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++report_.retransmissions;
      const sim::SimDuration wait =
          backoff_wait(options_, attempt, backoff_rng_);
      report_.ledger.add(actions::kRetransmit, wait);
      report_.total_time += wait;
      report_.backoff_wait += wait;
      if (past_deadline()) {
        report_.deadline_hit = true;
        note_failure(FailureKind::kDeadlineExceeded);
        break;
      }
    }
    Bytes packet = command.encode();
    if (hooks_.on_command && !hooks_.on_command(packet)) {
      continue;  // dropped by the adversary-in-the-middle
    }
    ++report_.commands_sent;
    const auto uplink = channel_.transfer(packet.size());
    // Wire occupancy is charged even for lost packets (the sender still
    // transmits); latency/jitter above the nominal wire time goes to the
    // latency bucket.
    const sim::SimDuration wire_up = wire.frame_time(packet.size());
    report_.ledger.add(keys.send, wire_up);
    report_.bytes_to_prover += wire.frame_bytes(packet.size());
    report_.total_time += wire_up;
    if (!uplink.has_value()) continue;  // lost in transit
    report_.ledger.add(actions::kNetLatency, *uplink - wire_up);
    report_.total_time += *uplink - wire_up;

    // Device side. Retransmitted commands the device already executed are
    // answered from the response cache (sequence-number dedup in the RX
    // FSM) so a lost *response* cannot double-step the MAC.
    SachaProver::HandleResult result;
    if (device_handled) {
      // The cache must survive further retries, but the last permitted
      // attempt can consume it instead of copying the frame payload.
      if (attempt + 1 == attempts) {
        result.response = std::move(cached_device_response);
      } else {
        result.response = cached_device_response;
      }
    } else {
      result = prover_.handle_packet(packet);
      if (result.dropped) {
        // Crashed or stalled device: the packet never reached the ICAP.
        // No dedup-cache entry — a later retransmission must actually
        // execute the command once the device recovers.
        continue;
      }
      device_handled = true;
      cached_device_response = result.response;
      if (result.icap_time > 0 && keys.device != nullptr) {
        report_.ledger.add(keys.device, result.icap_time);
        report_.total_time += result.icap_time;
      }
      if (result.mac_init_time > 0) {
        report_.ledger.add(actions::kA5, result.mac_init_time);
        report_.total_time += result.mac_init_time;
      }
      if (result.mac_update_time > 0) {
        report_.ledger.add(actions::kA6, result.mac_update_time);
        report_.total_time += result.mac_update_time;
      }
      if (result.mac_finalize_time > 0) {
        report_.ledger.add(actions::kA7, result.mac_finalize_time);
        report_.total_time += result.mac_finalize_time;
      }
    }

    // Response path (or a synthetic ack in reliable mode so the verifier
    // can detect loss of fire-and-forget configuration commands).
    std::optional<Response> response = std::move(result.response);
    if (!response.has_value() && options_.reliable) {
      response =
          Response{.type = ResponseType::kAck, .status = ProverStatus::kOk};
    }
    if (!response.has_value()) {
      final_response = std::nullopt;
      delivered_and_answered = true;
      break;
    }
    Bytes reply = response->encode();
    if (hooks_.on_response && !hooks_.on_response(reply)) {
      continue;  // response suppressed
    }
    const auto downlink = channel_.transfer(reply.size());
    const sim::SimDuration wire_down = wire.frame_time(reply.size());
    const char* reply_key = keys.reply;
    if (response->type == ResponseType::kAck) reply_key = actions::kAck;
    if (response->type == ResponseType::kError) reply_key = actions::kAck;
    if (reply_key != nullptr) {
      report_.ledger.add(reply_key, wire_down);
      report_.total_time += wire_down;
      report_.bytes_to_verifier += wire.frame_bytes(reply.size());
    }
    if (!downlink.has_value()) continue;  // response lost
    report_.ledger.add(actions::kNetLatency, *downlink - wire_down);
    report_.total_time += *downlink - wire_down;

    auto decoded = Response::decode(reply);
    if (decoded.ok()) {
      final_response = std::move(decoded).take();
      if (final_response->type == ResponseType::kAck) {
        final_response = std::nullopt;  // acks are transport-level only
      }
    } else if (options_.reliable) {
      // Undecodable response: corruption the transport checksum would
      // have caught on a real link. Treat it exactly like loss and
      // retransmit — the dedup cache answers, so the prover MAC cannot
      // double-step.
      continue;
    } else {
      note_failure(FailureKind::kDecodeError);
      final_response = std::nullopt;
    }
    if (final_response.has_value() &&
        final_response->type == ResponseType::kError) {
      note_failure(FailureKind::kDeviceError);
    }
    delivered_and_answered = true;
    break;
  }

  if (report_.deadline_hit) {  // deadline tripped mid-retry loop
    aborted_ = true;
    out.last = true;
    out.elapsed = report_.total_time - elapsed_before;
    return out;
  }
  if (delivered_and_answered || !options_.reliable) {
    out.deliver = true;
    out.response = std::move(final_response);
  } else {
    // Retries exhausted: record the absence so finish() reports it.
    note_failure(FailureKind::kTimeoutExhausted);
    static obs::Counter& exhausted = obs::MetricsRegistry::global().counter(
        "sacha.session.retries_exhausted");
    exhausted.add(1);
    out.deliver = true;
    out.response = Response{.type = ResponseType::kError,
                            .status = ProverStatus::kBadCommand};
  }
  if (out.response.has_value() &&
      out.response->type == ResponseType::kFrameData) {
    out.verify_words = out.response->frame_words.size();
  }
  ++next_;
  out.last = next_ >= commands_;
  out.elapsed = report_.total_time - elapsed_before;
  return out;
}

void SessionMachine::deliver(Round round) {
  if (round.deliver) {
    (void)verifier_.on_response(round.index, std::move(round.response));
  }
  // Close the round's readback span (a no-op for config rounds and in
  // engine mode, where no spans are opened).
  if (emit_spans_) round_span_.reset();
}

AttestationReport SessionMachine::finish() {
  for (const char* key :
       {actions::kA1, actions::kA2, actions::kA3, actions::kA4, actions::kA5,
        actions::kA6, actions::kA7, actions::kA8, actions::kA9,
        actions::kA10}) {
    report_.theoretical_time += report_.ledger.total(key);
  }
  round_span_.reset();
  phase_span_.reset();
  {
    // Streaming mode did its masked compares during readback.absorb; this
    // span is where the retained oracle does all of its comparing.
    std::optional<obs::Span> verdict_span;
    if (emit_spans_) {
      verdict_span.emplace("compare.verdict", report_.trace_id, "phase");
    }
    report_.verdict = verifier_.finish();
  }
  report_.verifier_retained_bytes = verifier_.retained_readback_bytes();
  report_.messages_lost = channel_.messages_lost();
  report_.channel_time = channel_.transfer_time();
  // Typed cause: the first transport failure wins; a transport-clean
  // session inherits the verifier's crypto classification.
  report_.failure = transport_failure_ != FailureKind::kNone
                        ? transport_failure_
                        : report_.verdict.kind;
  if (report_.failure != FailureKind::kNone && session_span_.has_value()) {
    session_span_->arg("failure", to_string(report_.failure));
  }
  session_span_.reset();
  report_.host_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_start_)
          .count());

  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& attested = registry.counter("sacha.session.attested");
    static obs::Counter& failed = registry.counter("sacha.session.failed");
    static obs::Counter& commands = registry.counter("sacha.session.commands");
    static obs::Counter& retransmissions =
        registry.counter("sacha.session.retransmissions");
    static obs::Histogram& host_hist =
        registry.histogram("sacha.session.host_ns");
    (report_.verdict.ok() ? attested : failed).add(1);
    commands.add(report_.commands_sent);
    retransmissions.add(report_.retransmissions);
    host_hist.observe(report_.host_ns);
    if (report_.failure != FailureKind::kNone) {
      // Per-cause counters so fleet dashboards can alert on tampering
      // (mac_mismatch) separately from infrastructure rot (timeouts).
      registry
          .counter(std::string("sacha.session.failure.") +
                   to_string(report_.failure))
          .add(1);
    }
    if (report_.backoff_wait > 0) {
      static obs::Histogram& backoff_hist =
          registry.histogram("sacha.session.backoff_sim_ns");
      backoff_hist.observe(report_.backoff_wait);
    }
  }
  (log_debug() << "attestation session finished")
      .kv("device", prover_.device_id())
      .kv("nonce", verifier_.nonce())
      .kv("trace", obs::to_string(report_.trace_id))
      .kv("verdict", report_.verdict.ok() ? "attested" : "failed")
      .kv("failure", to_string(report_.failure))
      .kv("commands", report_.commands_sent)
      .kv("retransmissions", report_.retransmissions)
      .kv("messages_lost", report_.messages_lost)
      .kv("host_ms", static_cast<double>(report_.host_ns) / 1e6);
  return std::move(report_);
}

AttestationReport run_attestation(SachaVerifier& verifier, SachaProver& prover,
                                  const SessionOptions& options,
                                  const SessionHooks& hooks) {
  SessionMachine machine(verifier, prover, options, hooks);
  while (!machine.done()) machine.deliver(machine.step());
  return machine.finish();
}

void apply_register_churn(SachaProver& prover, std::uint64_t session_seed,
                          double flip_probability) {
  Rng rng(session_seed ^ kChurnSeedSalt);
  prover.memory().tick_registers(rng, flip_probability);
}

namespace {
/// Lane-key salt for verifier-side span records: both halves of a
/// cross-process timeline key their Chrome lane off the trace id (not the
/// OS thread — verify strands hop threads), the verifier half offset so
/// prover and verifier render as two adjacent lanes per session.
constexpr std::uint64_t kVerifierLaneSalt = 0x5643;  // "VC"
}  // namespace

VerifierSession::VerifierSession(SachaVerifier& verifier)
    : verifier_(verifier), host_start_(std::chrono::steady_clock::now()) {
  verifier_.begin();
  commands_ = verifier_.command_count();
  configs_ = commands_ - verifier_.readback_steps().size() - 1;
  static obs::Counter& sessions_started =
      obs::MetricsRegistry::global().counter("sacha.session.started");
  sessions_started.add(1);
}

void VerifierSession::set_trace(const obs::TraceId& trace, bool sampled) {
  trace_ = trace;
  sampled_ = sampled;
  // The propagated flag is authoritative (it IS the client's deterministic
  // decision); telemetry still has to be on locally for spans to exist.
  tracing_ = sampled_ && trace_.valid() && obs::enabled();
  if (tracing_) session_start_ns_ = obs::Tracer::global().now_ns();
}

void VerifierSession::emit_span(const char* name, const char* category,
                                std::uint64_t start, std::uint64_t end,
                                std::uint32_t depth) {
  obs::SpanRecord r;
  r.name = name;
  r.category = category;
  r.trace = trace_;
  r.thread_id = trace_.lo ^ kVerifierLaneSalt;
  r.start_ns = start;
  r.duration_ns = end > start ? end - start : 0;
  r.depth = depth;
  r.args.emplace_back("side", "verifier");
  if (std::string_view(category) == "phase") {
    obs::observe_phase_duration(r.name, r.duration_ns);
  }
  timeline_.push_back(r);
  obs::Tracer::global().record(std::move(r));
}

void VerifierSession::begin_phase(const char* name) {
  if (!tracing_) return;
  const std::uint64_t now = obs::Tracer::global().now_ns();
  if (phase_name_ != nullptr) {
    emit_span(phase_name_, "phase", phase_start_ns_, now, 1);
  }
  phase_name_ = name;
  phase_start_ns_ = now;
}

std::optional<Bytes> VerifierSession::next_command_wire() {
  if (issued_ >= commands_) return std::nullopt;
  return verifier_.command(issued_++).encode();
}

void VerifierSession::on_response(std::optional<Response> response) {
  if (delivered_ >= commands_) return;
  // Phase boundaries mirror SessionMachine::step(): [0, configs-1) app
  // configuration, configs-1 the nonce frame, [configs, n-1) readback,
  // n-1 the MAC checksum. Measured between response deliveries — the
  // verifier-side view of where the session's wall-clock went.
  const std::size_t i = delivered_;
  if (i == 0 && configs_ > 1) begin_phase("configure.stream_in");
  if (i + 1 == configs_) {
    begin_phase("nonce.inject");
  } else if (i == configs_) {
    begin_phase("readback.absorb");
  } else if (i + 1 == commands_) {
    begin_phase("cmac.finish");
  }
  if (response.has_value()) {
    if (response->type == ResponseType::kAck) {
      response = std::nullopt;  // acks are transport-level only
    } else if (response->type == ResponseType::kError) {
      note_failure(FailureKind::kDeviceError);
    }
  }
  (void)verifier_.on_response(delivered_++, std::move(response));
}

void VerifierSession::note_failure(FailureKind kind) {
  if (transport_failure_ == FailureKind::kNone) transport_failure_ = kind;
}

VerifierSession::Report VerifierSession::finish() {
  Report report;
  begin_phase("compare.verdict");
  report.verdict = verifier_.finish();
  begin_phase(nullptr);  // close compare.verdict
  if (tracing_) {
    // Top-level verifier-side session span, parent of the phases above.
    emit_span("session", "session", session_start_ns_,
              obs::Tracer::global().now_ns(), 0);
    tracing_ = false;
  }
  report.failure = transport_failure_ != FailureKind::kNone
                       ? transport_failure_
                       : report.verdict.kind;
  report.expected_mac = verifier_.expected_mac();
  report.commands = delivered_;
  report.host_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_start_)
          .count());
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& attested = registry.counter("sacha.session.attested");
  static obs::Counter& failed = registry.counter("sacha.session.failed");
  (report.verdict.ok() ? attested : failed).add(1);
  if (report.failure != FailureKind::kNone) {
    registry
        .counter(std::string("sacha.session.failure.") +
                 to_string(report.failure))
        .add(1);
  }
  return report;
}

}  // namespace sacha::core
