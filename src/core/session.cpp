#include "core/session.hpp"

#include <chrono>
#include <optional>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sacha::core {

namespace {

/// Ledger keys for one command round, by command type.
struct ActionKeys {
  const char* send;
  const char* device;
  const char* reply;
};

ActionKeys keys_for(CommandType type) {
  switch (type) {
    case CommandType::kIcapConfig:
      return {actions::kA1, actions::kA2, nullptr};
    case CommandType::kIcapReadback:
      return {actions::kA3, actions::kA4, actions::kA8};
    case CommandType::kMacChecksum:
      return {actions::kA9, nullptr, actions::kA10};
  }
  return {nullptr, nullptr, nullptr};
}

/// Backoff wait before retry `attempt` (1-based): exponential in the
/// multiplier, capped, plus uniform jitter so fleet retries desynchronise.
/// Only called when a retry actually happens, so fault-free sessions never
/// draw from `rng` (seed-for-seed bit-identity with the pre-backoff code).
sim::SimDuration backoff_wait(const SessionOptions& options,
                              std::uint32_t attempt, Rng& rng) {
  double wait = static_cast<double>(options.retransmit_timeout);
  for (std::uint32_t i = 1; i < attempt; ++i) {
    wait *= options.backoff_multiplier;
    if (wait >= static_cast<double>(options.backoff_cap)) break;
  }
  auto capped = static_cast<sim::SimDuration>(wait);
  if (options.backoff_cap > 0 && capped > options.backoff_cap) {
    capped = options.backoff_cap;
  }
  if (options.backoff_jitter > 0.0 && capped > 0) {
    const auto span = static_cast<sim::SimDuration>(
        static_cast<double>(capped) * options.backoff_jitter);
    if (span > 0) capped += rng.below(span + 1);
  }
  return capped;
}

}  // namespace

AttestationReport run_attestation(SachaVerifier& verifier, SachaProver& prover,
                                  const SessionOptions& options,
                                  const SessionHooks& hooks) {
  AttestationReport report;
  net::Channel channel(options.channel, options.seed);
  Rng churn_rng(options.seed ^ 0xfeedface12345678ULL);
  // Drawn only when a retransmission happens, so fault-free sessions are
  // bit-identical whatever the backoff settings.
  Rng backoff_rng(options.seed ^ 0x5acab0ff5ac4a11eULL);
  const net::WireModel& wire = options.channel.wire;

  // First transport failure observed wins (see FailureKind's contract);
  // crypto verdicts only apply to transport-clean sessions.
  FailureKind transport_failure = FailureKind::kNone;
  const auto note_failure = [&transport_failure](FailureKind kind) {
    if (transport_failure == FailureKind::kNone) transport_failure = kind;
  };
  const auto past_deadline = [&]() {
    return options.deadline > 0 && report.total_time >= options.deadline;
  };

  const auto host_start = std::chrono::steady_clock::now();
  verifier.begin();
  const std::size_t n = verifier.command_count();
  // Command schedule: [0, configs-1) app configuration, configs-1 the nonce
  // frame, [configs, n-1) readback rounds, n-1 the MAC checksum.
  const std::size_t configs = n - verifier.readback_steps().size() - 1;
  bool config_phase_done = false;

  report.trace_id = obs::make_trace_id(prover.device_id(), verifier.nonce());
  static obs::Counter& sessions_started =
      obs::MetricsRegistry::global().counter("sacha.session.started");
  sessions_started.add(1);

  // Session timeline: one top-level span, one child span per protocol phase
  // (the Table 4 steps), one grandchild per readback round. The phase spans
  // are contiguous, so the timeline covers the session wall-clock.
  obs::Span session_span("session", report.trace_id);
  session_span.arg("device", prover.device_id());
  std::optional<obs::Span> phase_span;

  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 && configs > 1) {
      phase_span.emplace("configure.stream_in", report.trace_id, "phase");
    }
    if (i + 1 == configs) {
      phase_span.emplace("nonce.inject", report.trace_id, "phase");
    } else if (i == configs) {
      phase_span.emplace("readback.absorb", report.trace_id, "phase");
    } else if (i + 1 == n) {
      phase_span.emplace("cmac.finish", report.trace_id, "phase");
    }
    std::optional<obs::Span> round_span;
    if (obs::enabled() && i >= configs && i + 1 < n) {
      round_span.emplace("readback.round", report.trace_id, "readback");
    }
    const Command command = verifier.command(i);
    if (round_span.has_value()) {
      round_span->arg("frame", std::to_string(command.frame_nb));
    }
    if (hooks.before_command) hooks.before_command(i, prover);

    // Session deadline: the fleet verifier's port-occupancy bound. Abort
    // before starting another round once simulated time is exhausted.
    if (past_deadline()) {
      report.deadline_hit = true;
      note_failure(FailureKind::kDeadlineExceeded);
      break;
    }

    // Phase boundary: the whole DynMem is (over)written; the application
    // starts running (register churn) and the adversary gets its window.
    if (!config_phase_done && command.type != CommandType::kIcapConfig) {
      config_phase_done = true;
      if (hooks.after_config) hooks.after_config(prover);
      prover.memory().tick_registers(churn_rng, options.register_flip_probability);
    }

    const ActionKeys keys = keys_for(command.type);
    std::optional<Response> final_response;
    bool delivered_and_answered = false;
    std::optional<Response> cached_device_response;  // dedup across retries
    bool device_handled = false;

    const std::uint32_t attempts = options.reliable ? options.max_retries + 1 : 1;
    for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        ++report.retransmissions;
        const sim::SimDuration wait =
            backoff_wait(options, attempt, backoff_rng);
        report.ledger.add(actions::kRetransmit, wait);
        report.total_time += wait;
        report.backoff_wait += wait;
        if (past_deadline()) {
          report.deadline_hit = true;
          note_failure(FailureKind::kDeadlineExceeded);
          break;
        }
      }
      Bytes packet = command.encode();
      if (hooks.on_command && !hooks.on_command(packet)) {
        continue;  // dropped by the adversary-in-the-middle
      }
      ++report.commands_sent;
      const auto uplink = channel.transfer(packet.size());
      // Wire occupancy is charged even for lost packets (the sender still
      // transmits); latency/jitter above the nominal wire time goes to the
      // latency bucket.
      const sim::SimDuration wire_up = wire.frame_time(packet.size());
      report.ledger.add(keys.send, wire_up);
      report.bytes_to_prover += wire.frame_bytes(packet.size());
      report.total_time += wire_up;
      if (!uplink.has_value()) continue;  // lost in transit
      report.ledger.add(actions::kNetLatency, *uplink - wire_up);
      report.total_time += *uplink - wire_up;

      // Device side. Retransmitted commands the device already executed are
      // answered from the response cache (sequence-number dedup in the RX
      // FSM) so a lost *response* cannot double-step the MAC.
      SachaProver::HandleResult result;
      if (device_handled) {
        // The cache must survive further retries, but the last permitted
        // attempt can consume it instead of copying the frame payload.
        if (attempt + 1 == attempts) {
          result.response = std::move(cached_device_response);
        } else {
          result.response = cached_device_response;
        }
      } else {
        result = prover.handle_packet(packet);
        if (result.dropped) {
          // Crashed or stalled device: the packet never reached the ICAP.
          // No dedup-cache entry — a later retransmission must actually
          // execute the command once the device recovers.
          continue;
        }
        device_handled = true;
        cached_device_response = result.response;
        if (result.icap_time > 0 && keys.device != nullptr) {
          report.ledger.add(keys.device, result.icap_time);
          report.total_time += result.icap_time;
        }
        if (result.mac_init_time > 0) {
          report.ledger.add(actions::kA5, result.mac_init_time);
          report.total_time += result.mac_init_time;
        }
        if (result.mac_update_time > 0) {
          report.ledger.add(actions::kA6, result.mac_update_time);
          report.total_time += result.mac_update_time;
        }
        if (result.mac_finalize_time > 0) {
          report.ledger.add(actions::kA7, result.mac_finalize_time);
          report.total_time += result.mac_finalize_time;
        }
      }

      // Response path (or a synthetic ack in reliable mode so the verifier
      // can detect loss of fire-and-forget configuration commands).
      std::optional<Response> response = std::move(result.response);
      if (!response.has_value() && options.reliable) {
        response = Response{.type = ResponseType::kAck, .status = ProverStatus::kOk};
      }
      if (!response.has_value()) {
        final_response = std::nullopt;
        delivered_and_answered = true;
        break;
      }
      Bytes reply = response->encode();
      if (hooks.on_response && !hooks.on_response(reply)) {
        continue;  // response suppressed
      }
      const auto downlink = channel.transfer(reply.size());
      const sim::SimDuration wire_down = wire.frame_time(reply.size());
      const char* reply_key = keys.reply;
      if (response->type == ResponseType::kAck) reply_key = actions::kAck;
      if (response->type == ResponseType::kError) reply_key = actions::kAck;
      if (reply_key != nullptr) {
        report.ledger.add(reply_key, wire_down);
        report.total_time += wire_down;
        report.bytes_to_verifier += wire.frame_bytes(reply.size());
      }
      if (!downlink.has_value()) continue;  // response lost
      report.ledger.add(actions::kNetLatency, *downlink - wire_down);
      report.total_time += *downlink - wire_down;

      auto decoded = Response::decode(reply);
      if (decoded.ok()) {
        final_response = std::move(decoded).take();
        if (final_response->type == ResponseType::kAck) {
          final_response = std::nullopt;  // acks are transport-level only
        }
      } else if (options.reliable) {
        // Undecodable response: corruption the transport checksum would
        // have caught on a real link. Treat it exactly like loss and
        // retransmit — the dedup cache answers, so the prover MAC cannot
        // double-step.
        continue;
      } else {
        note_failure(FailureKind::kDecodeError);
        final_response = std::nullopt;
      }
      if (final_response.has_value() &&
          final_response->type == ResponseType::kError) {
        note_failure(FailureKind::kDeviceError);
      }
      delivered_and_answered = true;
      break;
    }

    if (report.deadline_hit) break;  // deadline tripped mid-retry loop
    if (delivered_and_answered || !options.reliable) {
      (void)verifier.on_response(i, std::move(final_response));
    } else {
      // Retries exhausted: record the absence so finish() reports it.
      note_failure(FailureKind::kTimeoutExhausted);
      static obs::Counter& exhausted = obs::MetricsRegistry::global().counter(
          "sacha.session.retries_exhausted");
      exhausted.add(1);
      (void)verifier.on_response(
          i, Response{.type = ResponseType::kError,
                      .status = ProverStatus::kBadCommand});
    }
  }

  for (const char* key : {actions::kA1, actions::kA2, actions::kA3, actions::kA4,
                          actions::kA5, actions::kA6, actions::kA7, actions::kA8,
                          actions::kA9, actions::kA10}) {
    report.theoretical_time += report.ledger.total(key);
  }
  phase_span.reset();
  {
    // Streaming mode did its masked compares during readback.absorb; this
    // span is where the retained oracle does all of its comparing.
    obs::Span verdict_span("compare.verdict", report.trace_id, "phase");
    report.verdict = verifier.finish();
  }
  report.verifier_retained_bytes = verifier.retained_readback_bytes();
  report.messages_lost = channel.messages_lost();
  // Typed cause: the first transport failure wins; a transport-clean
  // session inherits the verifier's crypto classification.
  report.failure = transport_failure != FailureKind::kNone
                       ? transport_failure
                       : report.verdict.kind;
  if (report.failure != FailureKind::kNone) {
    session_span.arg("failure", to_string(report.failure));
  }
  session_span.end();
  report.host_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_start)
          .count());

  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& attested = registry.counter("sacha.session.attested");
    static obs::Counter& failed = registry.counter("sacha.session.failed");
    static obs::Counter& commands = registry.counter("sacha.session.commands");
    static obs::Counter& retransmissions =
        registry.counter("sacha.session.retransmissions");
    static obs::Histogram& host_hist =
        registry.histogram("sacha.session.host_ns");
    (report.verdict.ok() ? attested : failed).add(1);
    commands.add(report.commands_sent);
    retransmissions.add(report.retransmissions);
    host_hist.observe(report.host_ns);
    if (report.failure != FailureKind::kNone) {
      // Per-cause counters so fleet dashboards can alert on tampering
      // (mac_mismatch) separately from infrastructure rot (timeouts).
      registry
          .counter(std::string("sacha.session.failure.") +
                   to_string(report.failure))
          .add(1);
    }
    if (report.backoff_wait > 0) {
      static obs::Histogram& backoff_hist =
          registry.histogram("sacha.session.backoff_sim_ns");
      backoff_hist.observe(report.backoff_wait);
    }
  }
  (log_debug() << "attestation session finished")
      .kv("device", prover.device_id())
      .kv("nonce", verifier.nonce())
      .kv("trace", obs::to_string(report.trace_id))
      .kv("verdict", report.verdict.ok() ? "attested" : "failed")
      .kv("failure", to_string(report.failure))
      .kv("commands", report.commands_sent)
      .kv("retransmissions", report.retransmissions)
      .kv("messages_lost", report.messages_lost)
      .kv("host_ms", static_cast<double>(report.host_ns) / 1e6);
  return report;
}

}  // namespace sacha::core
