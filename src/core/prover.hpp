// SACHa prover — the device side of the protocol.
//
// Models the static partition of Fig. 10 end to end: network packets are
// decoded (RX domain), the command is staged in the bounded BRAM buffer,
// NOOP padding is stripped, the ICAP executes the embedded program (ICAP
// domain), readback data flows through the AES-CMAC engine and back out
// (TX domain). Every handled command reports the simulated device time it
// consumed, split by component, so the session ledger can reproduce the
// A2/A4/A5/A6/A7 rows of Table 3.
//
// The prover is deliberately *thin*: it has no golden reference, no notion
// of "expected" configuration, and never refuses a well-formed write — a
// compromised configuration is detected by the verifier, not the device.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "config/bram_buffer.hpp"
#include "config/config_memory.hpp"
#include "config/icap.hpp"
#include "core/mac_engine.hpp"
#include "core/protocol.hpp"
#include "fabric/partition.hpp"
#include "puf/fuzzy_extractor.hpp"
#include "sim/clock.hpp"

namespace sacha::core {

/// Where the prover's MAC key comes from (§5.2.1).
enum class KeySource : std::uint8_t {
  kKeyRegister,  // provisioned register in the StatPart (PoC implementation)
  kStaticPuf,    // weak PUF in the StatPart
  kDynamicPuf,   // PUF circuit shipped by the Vrf in the DynPart
};

struct ProverOptions {
  KeySource key_source = KeySource::kKeyRegister;
  /// Command staging memory (the PoC sizes it for a single frame + header).
  std::uint64_t command_buffer_bytes = 2 * 2'304;  // two 18-kbit BRAMs
};

/// Injectable device fault state, driven by the fault harness (fault::
/// FaultInjector). Faults make the device unresponsive or lose volatile
/// state — they never make it forge responses, so the security argument is
/// untouched: a faulty device can only fail attestation, not pass wrongly.
struct ProverFaultState {
  /// Power loss: the device is unreachable and its volatile configuration
  /// memory is gone. `reboot_after` counts incoming packets until the
  /// device comes back up from BootMem (0 = stays down forever).
  bool crashed = false;
  std::uint32_t reboot_after = 0;
  /// Busy ICAP: the next `stall_remaining` incoming packets are dropped at
  /// the device (the RX FSM cannot stage them while the ICAP holds the
  /// buffer). Clears on its own — the transient the retransmit path heals.
  std::uint32_t stall_remaining = 0;
  /// Lifetime counters for reports and tests.
  std::uint64_t packets_dropped = 0;
  std::uint32_t reboots = 0;

  bool faulted() const { return crashed || stall_remaining > 0; }
};

class SachaProver {
 public:
  /// `device_id` names the device in the verifier's enrollment database.
  SachaProver(const fabric::DeviceModel& device, std::string device_id,
              const crypto::AesKey& key, ProverOptions options = {});

  // Movable (the ICAP is re-pointed at the moved configuration memory);
  // copying a device makes no physical sense.
  SachaProver(SachaProver&& other) noexcept;
  SachaProver& operator=(SachaProver&&) = delete;
  SachaProver(const SachaProver&) = delete;
  SachaProver& operator=(const SachaProver&) = delete;

  /// Power-on: BootMem loads the static partition's configuration into the
  /// (volatile) StatMem. `static_image` covers frames [0, image size).
  void boot(const bitstream::ConfigImage& static_image);

  struct HandleResult {
    std::optional<Response> response;  // nullopt: fire-and-forget config
    sim::SimDuration icap_time = 0;    // A2 or A4
    sim::SimDuration mac_init_time = 0;      // A5 (first readback only)
    sim::SimDuration mac_update_time = 0;    // A6
    sim::SimDuration mac_finalize_time = 0;  // A7
    /// The device never processed the packet (crashed or stalled ICAP).
    /// The session driver treats this exactly like wire loss: no response,
    /// no dedup-cache entry, retransmission may still succeed later.
    bool dropped = false;
  };

  /// Executes one decoded command.
  HandleResult handle(const Command& command);

  /// Raw-packet entry point: decode, stage in the bounded buffer, handle.
  /// Undecodable packets produce an error response.
  HandleResult handle_packet(ByteSpan packet);

  /// Rekeys the MAC engine (DynPart-PUF key rotation after the verifier
  /// ships a new PUF circuit; §5.2.1 option 2).
  void set_key(const crypto::AesKey& key);

  // -- Fault injection (test/fault-harness surface) ------------------------

  /// Crashes the device: unreachable, volatile state lost. It reboots from
  /// BootMem after `reboot_after_packets` further incoming packets (0 =
  /// stays down). A rebooted device has lost its DynMem configuration and
  /// MAC state, so only a full fresh-nonce reconfiguration can attest it.
  void inject_crash(std::uint32_t reboot_after_packets = 0);

  /// Stalls the ICAP for the next `packets` incoming packets (dropped at
  /// the device, as if lost on the wire).
  void inject_stall(std::uint32_t packets);

  const ProverFaultState& fault_state() const { return fault_; }

  /// H_Prv of the most recent MAC_checksum, kept in the attestation
  /// evidence register so the signature extension can sign it.
  const std::optional<crypto::Mac>& last_mac() const { return last_mac_; }

  const std::string& device_id() const { return device_id_; }
  config::ConfigMemory& memory() { return memory_; }
  const config::ConfigMemory& memory() const { return memory_; }
  config::Icap& icap() { return icap_; }
  config::BramBuffer& command_buffer() { return command_buffer_; }
  const ProverOptions& options() const { return options_; }

 private:
  HandleResult error_result(ProverStatus status);
  /// Power-cycle recovery: zero the volatile configuration memory, reload
  /// the BootMem image, reset the MAC engine.
  void reboot();

  std::string device_id_;
  ProverOptions options_;
  config::ConfigMemory memory_;
  config::Icap icap_;
  config::BramBuffer command_buffer_;
  MacEngine mac_;
  sim::ClockDomain icap_clock_;
  std::optional<crypto::Mac> last_mac_;
  ProverFaultState fault_;
  /// What boot() loaded — kept so a crash/reboot cycle can restore the
  /// non-volatile BootMem content (the static partition only).
  bitstream::ConfigImage boot_image_;
};

/// Derives the prover key from a PUF read using the enrollment helper data
/// (used at boot for kStaticPuf, or after circuit reconfiguration for
/// kDynamicPuf). Fails when the fuzzy extractor cannot decode.
Result<crypto::AesKey> key_from_puf(const puf::SramPuf& puf,
                                    const puf::HelperData& helper,
                                    Rng& noise_rng);

}  // namespace sacha::core
