#include "core/protocol.hpp"

namespace sacha::core {

Bytes Command::encode() const {
  Bytes out;
  const bool has_frame_nb = type == CommandType::kIcapReadback;
  const std::size_t body =
      (has_frame_nb ? 4 : 0) + stream.size() * 4;
  out.reserve(4 + body);
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(0);  // flags, reserved
  put_u16be(out, static_cast<std::uint16_t>(body));
  if (has_frame_nb) put_u32be(out, frame_nb);
  for (std::uint32_t w : stream) put_u32be(out, w);
  return out;
}

Result<Command> Command::decode(ByteSpan wire) {
  using R = Result<Command>;
  if (wire.size() < 4) return R::error("command shorter than header");
  Command cmd;
  const std::uint8_t type = wire[0];
  if (type < 1 || type > 3) {
    return R::error("unknown command type " + std::to_string(type));
  }
  cmd.type = static_cast<CommandType>(type);
  const std::uint16_t length = get_u16be(wire, 2);
  if (4 + static_cast<std::size_t>(length) > wire.size()) {
    return R::error("command length exceeds packet");
  }
  ByteSpan body = wire.subspan(4, length);
  if (cmd.type == CommandType::kIcapReadback) {
    if (body.size() < 4) return R::error("readback command missing frame_nb");
    cmd.frame_nb = get_u32be(body, 0);
    body = body.subspan(4);
  }
  if (body.size() % 4 != 0) return R::error("command stream not word aligned");
  cmd.stream.resize(body.size() / 4);
  for (std::size_t i = 0; i < cmd.stream.size(); ++i) {
    cmd.stream[i] = get_u32be(body, i * 4);
  }
  return cmd;
}

std::size_t Command::wire_payload_bytes() const {
  return 4 + (type == CommandType::kIcapReadback ? 4 : 0) + stream.size() * 4;
}

Bytes Response::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(type));
  out.push_back(static_cast<std::uint8_t>(status));
  put_u16be(out, static_cast<std::uint16_t>(wire_payload_bytes() - 4));
  if (type == ResponseType::kFrameData) {
    for (std::uint32_t w : frame_words) put_u32be(out, w);
  } else if (type == ResponseType::kMacValue) {
    out.insert(out.end(), mac.begin(), mac.end());
  }
  return out;
}

Result<Response> Response::decode(ByteSpan wire) {
  using R = Result<Response>;
  if (wire.size() < 4) return R::error("response shorter than header");
  Response resp;
  const std::uint8_t type = wire[0];
  if (type < 1 || type > 4) {
    return R::error("unknown response type " + std::to_string(type));
  }
  resp.type = static_cast<ResponseType>(type);
  resp.status = static_cast<ProverStatus>(wire[1]);
  const std::uint16_t length = get_u16be(wire, 2);
  if (4 + static_cast<std::size_t>(length) > wire.size()) {
    return R::error("response length exceeds packet");
  }
  const ByteSpan body = wire.subspan(4, length);
  if (resp.type == ResponseType::kFrameData) {
    if (body.size() % 4 != 0) return R::error("frame data not word aligned");
    resp.frame_words.resize(body.size() / 4);
    for (std::size_t i = 0; i < resp.frame_words.size(); ++i) {
      resp.frame_words[i] = get_u32be(body, i * 4);
    }
  } else if (resp.type == ResponseType::kMacValue) {
    if (body.size() != crypto::kAesBlockSize) {
      return R::error("MAC response wrong size");
    }
    std::copy(body.begin(), body.end(), resp.mac.begin());
  }
  return resp;
}

std::size_t Response::wire_payload_bytes() const {
  std::size_t body = 0;
  if (type == ResponseType::kFrameData) body = frame_words.size() * 4;
  if (type == ResponseType::kMacValue) body = crypto::kAesBlockSize;
  return 4 + body;
}

}  // namespace sacha::core
