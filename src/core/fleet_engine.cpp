#include "core/fleet_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "crypto/cmac.hpp"
#include "obs/metrics.hpp"

namespace sacha::core {

namespace {

/// A verify job in the simulated-makespan model: `ready` is the virtual
/// time the round's response finished arriving at the verifier, `cost` the
/// modelled verify-lane occupancy (words × verify_ns_per_word).
struct VerifyRec {
  sim::SimTime ready = 0;
  sim::SimDuration cost = 0;
};

/// Per-member runtime. The drive strand (step slices) and the verify
/// strand (deliver batches) never run concurrently *with themselves*; they
/// may run concurrently with each other (SessionMachine's contract). All
/// cross-strand hand-off goes through the engine mutex.
struct MemberRt {
  std::unique_ptr<SessionMachine> machine;
  /// Rounds produced by the drive strand, not yet delivered.
  std::deque<SessionMachine::Round> inbox;
  std::vector<VerifyRec> verify_recs;
  sim::SimTime vnow = 0;  // drive strand's virtual clock
  bool drive_done = false;
  bool verify_active = false;
  bool queued_for_verify = false;
  bool finished = false;
};

struct EngineState {
  std::vector<FleetSessionJob>* jobs = nullptr;
  const FleetEngineOptions* opts = nullptr;

  std::mutex mu;
  std::condition_variable cv;
  /// Virtual-time park heap: (wake time, member) for sessions waiting out
  /// their simulated channel transfers. Earliest virtual time drives next,
  /// so fleet members interleave the way a real event loop would.
  using Parked = std::pair<sim::SimTime, std::size_t>;
  std::priority_queue<Parked, std::vector<Parked>, std::greater<Parked>>
      parked;
  /// Per-worker verify lanes: members with undelivered rounds (or pending
  /// finalisation), FIFO within a lane; member m homes on lane m % lanes.
  /// A worker drains its own lane first and steals from the others when
  /// idle — over-water inboxes before anything else.
  std::vector<std::deque<std::size_t>> lanes;
  std::vector<MemberRt> members;
  std::vector<AttestationReport> reports;
  std::size_t unfinished = 0;
  std::uint64_t drive_slices = 0;
  std::uint64_t verify_batches = 0;
  std::size_t peak_inbox = 0;
  std::uint64_t steals = 0;
  std::uint64_t multi_absorb_calls = 0;
  std::uint64_t multi_absorb_streams = 0;

  /// Adaptive-slice state (engine mutex): EWMA host cost per round of each
  /// strand, and the slice length drive workers currently use.
  double drive_ns_per_round = 0.0;
  double verify_ns_per_round = 0.0;
  std::uint32_t slice_rounds = 0;
};

/// Folds an observed per-round host cost into the EWMA pair and, when
/// adaptive slicing is on, re-derives the slice length: verify-bound fleets
/// (folds cost more than drives) take longer slices — the verify lanes stay
/// fed anyway and fewer scheduling points help — while drive-bound fleets
/// shorten slices so the virtual-time interleave stays fair. sqrt keeps the
/// response gentle; the clamp keeps backpressure meaningful. Called with
/// the engine mutex held.
void note_round_cost(EngineState& st, double ns_per_round, bool verify) {
  constexpr double kAlpha = 0.2;
  double& ewma = verify ? st.verify_ns_per_round : st.drive_ns_per_round;
  ewma = ewma == 0.0 ? ns_per_round : ewma + kAlpha * (ns_per_round - ewma);
  if (!st.opts->adaptive_slice) return;
  if (st.drive_ns_per_round <= 0.0 || st.verify_ns_per_round <= 0.0) return;
  const double scaled =
      static_cast<double>(st.opts->rounds_per_slice) *
      std::sqrt(st.verify_ns_per_round / st.drive_ns_per_round);
  const auto cap = static_cast<std::uint32_t>(
      std::min<std::size_t>(64, st.opts->inbox_high_water));
  st.slice_rounds = std::clamp(static_cast<std::uint32_t>(std::lround(scaled)),
                               std::uint32_t{1}, std::max(cap, 1u));
  static obs::Gauge& slice_gauge =
      obs::MetricsRegistry::global().gauge("sacha.engine.rounds_per_slice");
  slice_gauge.set(st.slice_rounds);
}

/// Runs one drive slice for member `m`: up to rounds_per_slice command
/// rounds, advancing the member's virtual clock by each round's simulated
/// elapsed time, then re-parks the session (or marks its drive done).
/// Called with `lock` held; returns with it held.
void drive_slice(EngineState& st, std::size_t m,
                 std::unique_lock<std::mutex>& lock) {
  MemberRt& rt = st.members[m];
  FleetSessionJob& job = (*st.jobs)[m];
  const std::uint32_t slice = st.slice_rounds;
  lock.unlock();
  if (!rt.machine) {
    // First scheduling: construct the machine (runs verifier->begin()).
    // emit_spans = false — strands hop across pool threads and obs spans
    // are thread-affine; the engine's slice spans cover the timeline.
    rt.machine = std::make_unique<SessionMachine>(
        *job.verifier, *job.prover, job.options, job.hooks, false);
  }
  std::vector<SessionMachine::Round> produced;
  const auto host_t0 = std::chrono::steady_clock::now();
  {
    std::optional<obs::Span> span;
    if (obs::enabled()) {
      span.emplace("engine.drive", rt.machine->trace_id(), "engine");
      span->arg("member", job.label);
    }
    for (std::uint32_t k = 0; k < slice && !rt.machine->done(); ++k) {
      SessionMachine::Round round = rt.machine->step();
      rt.vnow += round.elapsed;
      const auto cost = static_cast<sim::SimDuration>(round.verify_words) *
                        st.opts->verify_ns_per_word;
      if (cost > 0) rt.verify_recs.push_back({rt.vnow, cost});
      produced.push_back(std::move(round));
    }
    if (span.has_value()) {
      span->arg("rounds", std::to_string(produced.size()));
    }
  }
  const auto host_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_t0)
          .count());
  lock.lock();
  ++st.drive_slices;
  if (!produced.empty()) {
    note_round_cost(st, host_ns / static_cast<double>(produced.size()),
                    /*verify=*/false);
  }
  for (SessionMachine::Round& round : produced) {
    rt.inbox.push_back(std::move(round));
  }
  st.peak_inbox = std::max(st.peak_inbox, rt.inbox.size());
  if (rt.machine->done()) {
    rt.drive_done = true;
  } else {
    st.parked.push({rt.vnow, m});
  }
  // Hand the backlog to a verify strand — also when the inbox is already
  // drained and the drive just ended, so the verify strand finalises.
  if (!rt.verify_active && !rt.queued_for_verify &&
      (!rt.inbox.empty() || rt.drive_done)) {
    rt.queued_for_verify = true;
    st.lanes[m % st.lanes.size()].push_back(m);
  }
  st.cv.notify_all();
}

/// Drains the inboxes of every member in `picks` through their verifiers
/// (masked compare per round inline, CMAC folds queued on one CmacBatch so
/// the members' AES chains interleave in a single multi-stream absorb) and
/// finalises sessions whose drive is done and backlog empty. Called with
/// `lock` held (members already off their lanes); returns with it held.
void verify_batch_multi(EngineState& st, const std::vector<std::size_t>& picks,
                        std::unique_lock<std::mutex>& lock) {
  struct Drain {
    std::size_t m = 0;
    std::deque<SessionMachine::Round> rounds;
  };
  std::vector<Drain> drains;
  drains.reserve(picks.size());
  for (const std::size_t m : picks) {
    MemberRt& rt = st.members[m];
    rt.verify_active = true;
    Drain d{m, {}};
    d.rounds.swap(rt.inbox);
    drains.push_back(std::move(d));
  }
  lock.unlock();

  const auto host_t0 = std::chrono::steady_clock::now();
  crypto::CmacBatch cmac_batch(st.opts->verify_batch_width);
  std::size_t delivered_rounds = 0;
  std::uint64_t drained_members = 0;
  for (Drain& d : drains) {
    if (d.rounds.empty()) continue;
    MemberRt& rt = st.members[d.m];
    std::optional<obs::Span> span;
    if (obs::enabled()) {
      span.emplace("engine.verify", rt.machine->trace_id(), "engine");
      span->arg("member", (*st.jobs)[d.m].label);
      span->arg("rounds", std::to_string(d.rounds.size()));
    }
    rt.machine->set_absorb_sink(&cmac_batch);
    for (SessionMachine::Round& round : d.rounds) {
      rt.machine->deliver(std::move(round));
    }
    delivered_rounds += d.rounds.size();
    ++drained_members;
  }
  // One interleaved flush across every drained member's stream; sinks must
  // detach before any finish() below closes a MAC.
  cmac_batch.flush();
  for (const Drain& d : drains) {
    MemberRt& rt = st.members[d.m];
    if (rt.machine) rt.machine->set_absorb_sink(nullptr);
  }
  const auto host_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_t0)
          .count());
  note_batch_occupancy(cmac_batch);

  lock.lock();
  st.verify_batches += drained_members;
  st.multi_absorb_calls += cmac_batch.absorb_calls();
  st.multi_absorb_streams += cmac_batch.absorbed_streams();
  if (delivered_rounds > 0) {
    note_round_cost(st, host_ns / static_cast<double>(delivered_rounds),
                    /*verify=*/true);
  }
  std::vector<std::size_t> finish_list;
  for (const Drain& d : drains) {
    MemberRt& rt = st.members[d.m];
    rt.verify_active = false;
    if (!rt.inbox.empty()) {
      // The drive strand appended more rounds while we were absorbing.
      if (!rt.queued_for_verify) {
        rt.queued_for_verify = true;
        st.lanes[d.m % st.lanes.size()].push_back(d.m);
      }
    } else if (rt.drive_done && !rt.finished) {
      rt.finished = true;
      finish_list.push_back(d.m);
    }
  }
  if (!finish_list.empty()) {
    lock.unlock();
    std::vector<std::pair<std::size_t, AttestationReport>> done;
    done.reserve(finish_list.size());
    for (const std::size_t m : finish_list) {
      MemberRt& rt = st.members[m];
      done.emplace_back(m, rt.machine->finish());
      rt.machine.reset();
    }
    lock.lock();
    for (auto& [m, report] : done) {
      st.reports[m] = std::move(report);
      --st.unfinished;
    }
  }
  st.cv.notify_all();
}

void worker_loop(EngineState& st, std::size_t w) {
  std::unique_lock<std::mutex> lock(st.mu);
  const std::size_t nlanes = st.lanes.size();
  const std::size_t width = st.opts->verify_batch_width;
  std::vector<std::size_t> picks;
  const auto take = [&](std::deque<std::size_t>& lane_q,
                        std::deque<std::size_t>::iterator it,
                        bool stolen) {
    if (stolen) ++st.steals;
    st.members[*it].queued_for_verify = false;
    picks.push_back(*it);
    return lane_q.erase(it);
  };
  while (st.unfinished > 0) {
    picks.clear();
    // Backpressure first: members whose backlog crossed the high-water mark
    // get drained before anyone drives further, bounding per-member
    // undelivered rounds (the streaming verifier stays O(1) memory). Idle
    // workers steal over-water members from any lane.
    for (std::size_t l = 0; l < nlanes && picks.size() < width; ++l) {
      const std::size_t lane = (w + l) % nlanes;
      auto& q = st.lanes[lane];
      for (auto it = q.begin(); it != q.end() && picks.size() < width;) {
        if (st.members[*it].inbox.size() >= st.opts->inbox_high_water) {
          it = take(q, it, lane != w);
        } else {
          ++it;
        }
      }
    }
    if (!picks.empty()) {
      // Top up the batch with ordinary ready members so the interleave runs
      // as full as the fleet allows.
      for (std::size_t l = 0; l < nlanes && picks.size() < width; ++l) {
        const std::size_t lane = (w + l) % nlanes;
        auto& q = st.lanes[lane];
        while (!q.empty() && picks.size() < width) {
          take(q, q.begin(), lane != w);
        }
      }
      verify_batch_multi(st, picks, lock);
      continue;
    }
    if (!st.parked.empty()) {
      const std::size_t m = st.parked.top().second;
      st.parked.pop();
      drive_slice(st, m, lock);
      continue;
    }
    // FIFO verify: own lane first, then steal from the other lanes.
    for (std::size_t l = 0; l < nlanes && picks.size() < width; ++l) {
      const std::size_t lane = (w + l) % nlanes;
      auto& q = st.lanes[lane];
      while (!q.empty() && picks.size() < width) {
        take(q, q.begin(), lane != w);
      }
    }
    if (!picks.empty()) {
      verify_batch_multi(st, picks, lock);
      continue;
    }
    // Nothing runnable: strands are in flight on other workers (or the
    // fleet just finished). Wake on any hand-off.
    st.cv.wait(lock);
  }
  st.cv.notify_all();
}

/// Simulated fleet makespan of the multiplexed schedule: every member's
/// drive occupies only its own virtual timeline (sessions park through
/// channel latency, so drives overlap freely), while verify jobs contend
/// for `lanes` virtual verify lanes, FIFO by arrival time and in order
/// within a member. Deterministic — it replays the recorded rounds, so
/// serial and threaded runs report the same number.
sim::SimDuration multiplexed_makespan(const std::vector<MemberRt>& members,
                                      std::size_t lanes) {
  struct Job {
    sim::SimTime ready = 0;
    std::size_t member = 0;
    sim::SimDuration cost = 0;
  };
  std::vector<Job> jobs;
  for (std::size_t m = 0; m < members.size(); ++m) {
    for (const VerifyRec& rec : members[m].verify_recs) {
      jobs.push_back({rec.ready, m, rec.cost});
    }
  }
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.ready != b.ready) return a.ready < b.ready;
    return a.member < b.member;
  });
  std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                      std::greater<sim::SimTime>>
      lane_free;
  for (std::size_t k = 0; k < lanes; ++k) lane_free.push(0);
  std::vector<sim::SimTime> member_prev_end(members.size(), 0);
  std::vector<sim::SimTime> member_done(members.size(), 0);
  for (const Job& job : jobs) {
    const sim::SimTime lane = lane_free.top();
    lane_free.pop();
    const sim::SimTime start =
        std::max({job.ready, lane, member_prev_end[job.member]});
    const sim::SimTime end = start + job.cost;
    lane_free.push(end);
    member_prev_end[job.member] = end;
    member_done[job.member] = std::max(member_done[job.member], end);
  }
  sim::SimDuration makespan = 0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    makespan = std::max<sim::SimDuration>(
        makespan, std::max<sim::SimTime>(members[m].vnow, member_done[m]));
  }
  return makespan;
}

/// Baseline the engine is gated against: thread-per-member with `lanes`
/// verifier ports. Each session occupies a port for its whole duration
/// (drive and verify serialised per member — a blocking driver cannot
/// overlap its own latency); sessions pack FIFO onto the ports.
sim::SimDuration thread_per_member_makespan(
    const std::vector<MemberRt>& members,
    const std::vector<AttestationReport>& reports, std::size_t lanes) {
  std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                      std::greater<sim::SimTime>>
      lane_free;
  for (std::size_t k = 0; k < lanes; ++k) lane_free.push(0);
  sim::SimDuration makespan = 0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    sim::SimDuration verify_cost = 0;
    for (const VerifyRec& rec : members[m].verify_recs) {
      verify_cost += rec.cost;
    }
    const sim::SimTime start = lane_free.top();
    lane_free.pop();
    const sim::SimTime end = start + reports[m].total_time + verify_cost;
    lane_free.push(end);
    makespan = std::max<sim::SimDuration>(makespan, end);
  }
  return makespan;
}

}  // namespace

std::size_t default_fleet_pool() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(hw == 0 ? 1 : hw, 8);
}

void note_batch_occupancy(const crypto::CmacBatch& batch) {
  if (batch.absorb_calls() == 0) return;
  auto& registry = obs::MetricsRegistry::global();
  static constexpr std::uint64_t kOccupancyBounds[] = {1, 2, 3, 4, 5, 6, 7, 8};
  static obs::Counter& absorbs =
      registry.counter("sacha.engine.batch_absorbs");
  static obs::Counter& streams =
      registry.counter("sacha.engine.batch_streams");
  static obs::Histogram& occupancy =
      registry.histogram("sacha.engine.batch_occupancy", kOccupancyBounds);
  absorbs.add(batch.absorb_calls());
  streams.add(batch.absorbed_streams());
  // Average streams in flight per absorb call of this drain — under-filled
  // batches show up as mass in the low buckets.
  occupancy.observe((batch.absorbed_streams() + batch.absorb_calls() / 2) /
                    batch.absorb_calls());
}

FleetRunResult run_fleet(std::vector<FleetSessionJob>& jobs,
                         const FleetEngineOptions& options,
                         const obs::TraceId& fleet_trace) {
  FleetEngineOptions opts = options;
  if (opts.pool_size == 0) opts.pool_size = default_fleet_pool();
  if (opts.rounds_per_slice == 0) opts.rounds_per_slice = 1;
  if (opts.inbox_high_water == 0) opts.inbox_high_water = 1;
  opts.verify_batch_width = std::clamp<std::size_t>(opts.verify_batch_width,
                                                    1, 8);

  FleetRunResult out;
  out.stats.pool_size = opts.pool_size;
  if (jobs.empty()) return out;

  const auto host_start = std::chrono::steady_clock::now();
  obs::Span engine_span("fleet.engine", fleet_trace, "engine");
  engine_span.arg("sessions", std::to_string(jobs.size()));
  engine_span.arg("pool", std::to_string(opts.pool_size));

  EngineState st;
  st.jobs = &jobs;
  st.opts = &opts;
  st.members.resize(jobs.size());
  st.reports.resize(jobs.size());
  st.unfinished = jobs.size();
  st.slice_rounds = opts.rounds_per_slice;
  for (std::size_t m = 0; m < jobs.size(); ++m) st.parked.push({0, m});

  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& sessions = registry.counter("sacha.engine.sessions");
    sessions.add(jobs.size());
  }

  // Each member holds at most two concurrent strands, so more workers than
  // 2N can never find work.
  const std::size_t workers =
      std::min<std::size_t>(opts.pool_size, jobs.size() * 2);
  st.lanes.resize(std::max<std::size_t>(workers, 1));
  if (workers <= 1) {
    worker_loop(st, 0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&st, w] { worker_loop(st, w); });
    }
    for (std::thread& t : pool) t.join();
  }

  out.reports = std::move(st.reports);
  FleetEngineStats& stats = out.stats;
  stats.makespan = multiplexed_makespan(st.members, opts.pool_size);
  stats.thread_per_member_makespan =
      thread_per_member_makespan(st.members, out.reports, opts.pool_size);
  for (std::size_t m = 0; m < out.reports.size(); ++m) {
    stats.total_work += out.reports[m].total_time;
    stats.channel_busy += out.reports[m].channel_time;
    for (const VerifyRec& rec : st.members[m].verify_recs) {
      stats.verify_busy += rec.cost;
    }
  }
  stats.overlap_efficiency =
      stats.makespan > 0 ? static_cast<double>(stats.total_work) /
                               static_cast<double>(stats.makespan)
                         : 0.0;
  stats.drive_slices = st.drive_slices;
  stats.verify_batches = st.verify_batches;
  stats.peak_inbox_rounds = st.peak_inbox;
  stats.verify_steals = st.steals;
  stats.multi_absorb_calls = st.multi_absorb_calls;
  stats.multi_absorb_streams = st.multi_absorb_streams;
  stats.rounds_per_slice_last = st.slice_rounds;
  stats.host_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_start)
          .count());

  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& slices = registry.counter("sacha.engine.slices");
    static obs::Counter& batches =
        registry.counter("sacha.engine.verify_batches");
    static obs::Counter& steals =
        registry.counter("sacha.engine.verify_steals");
    slices.add(stats.drive_slices);
    batches.add(stats.verify_batches);
    steals.add(stats.verify_steals);
  }
  engine_span.arg("makespan_ns", std::to_string(stats.makespan));
  engine_span.arg("overlap", std::to_string(stats.overlap_efficiency));
  engine_span.end();
  (log_debug() << "fleet engine run finished")
      .kv("sessions", jobs.size())
      .kv("pool", stats.pool_size)
      .kv("slices", stats.drive_slices)
      .kv("verify_batches", stats.verify_batches)
      .kv("makespan_s", sim::to_seconds(stats.makespan))
      .kv("thread_per_member_s",
          sim::to_seconds(stats.thread_per_member_makespan))
      .kv("overlap", stats.overlap_efficiency)
      .kv("host_ms", static_cast<double>(stats.host_ns) / 1e6);
  return out;
}

}  // namespace sacha::core
