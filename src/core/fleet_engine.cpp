#include "core/fleet_engine.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <utility>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sacha::core {

namespace {

/// A verify job in the simulated-makespan model: `ready` is the virtual
/// time the round's response finished arriving at the verifier, `cost` the
/// modelled verify-lane occupancy (words × verify_ns_per_word).
struct VerifyRec {
  sim::SimTime ready = 0;
  sim::SimDuration cost = 0;
};

/// Per-member runtime. The drive strand (step slices) and the verify
/// strand (deliver batches) never run concurrently *with themselves*; they
/// may run concurrently with each other (SessionMachine's contract). All
/// cross-strand hand-off goes through the engine mutex.
struct MemberRt {
  std::unique_ptr<SessionMachine> machine;
  /// Rounds produced by the drive strand, not yet delivered.
  std::deque<SessionMachine::Round> inbox;
  std::vector<VerifyRec> verify_recs;
  sim::SimTime vnow = 0;  // drive strand's virtual clock
  bool drive_done = false;
  bool verify_active = false;
  bool queued_for_verify = false;
  bool finished = false;
};

struct EngineState {
  std::vector<FleetSessionJob>* jobs = nullptr;
  const FleetEngineOptions* opts = nullptr;

  std::mutex mu;
  std::condition_variable cv;
  /// Virtual-time park heap: (wake time, member) for sessions waiting out
  /// their simulated channel transfers. Earliest virtual time drives next,
  /// so fleet members interleave the way a real event loop would.
  using Parked = std::pair<sim::SimTime, std::size_t>;
  std::priority_queue<Parked, std::vector<Parked>, std::greater<Parked>>
      parked;
  /// Members with undelivered rounds (or pending finalisation), FIFO.
  std::deque<std::size_t> verify_ready;
  std::vector<MemberRt> members;
  std::vector<AttestationReport> reports;
  std::size_t unfinished = 0;
  std::uint64_t drive_slices = 0;
  std::uint64_t verify_batches = 0;
  std::size_t peak_inbox = 0;
};

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Runs one drive slice for member `m`: up to rounds_per_slice command
/// rounds, advancing the member's virtual clock by each round's simulated
/// elapsed time, then re-parks the session (or marks its drive done).
/// Called with `lock` held; returns with it held.
void drive_slice(EngineState& st, std::size_t m,
                 std::unique_lock<std::mutex>& lock) {
  MemberRt& rt = st.members[m];
  FleetSessionJob& job = (*st.jobs)[m];
  lock.unlock();
  if (!rt.machine) {
    // First scheduling: construct the machine (runs verifier->begin()).
    // emit_spans = false — strands hop across pool threads and obs spans
    // are thread-affine; the engine's slice spans cover the timeline.
    rt.machine = std::make_unique<SessionMachine>(
        *job.verifier, *job.prover, job.options, job.hooks, false);
  }
  std::vector<SessionMachine::Round> produced;
  {
    std::optional<obs::Span> span;
    if (obs::enabled()) {
      span.emplace("engine.drive", rt.machine->trace_id(), "engine");
      span->arg("member", job.label);
    }
    for (std::uint32_t k = 0;
         k < st.opts->rounds_per_slice && !rt.machine->done(); ++k) {
      SessionMachine::Round round = rt.machine->step();
      rt.vnow += round.elapsed;
      const auto cost = static_cast<sim::SimDuration>(round.verify_words) *
                        st.opts->verify_ns_per_word;
      if (cost > 0) rt.verify_recs.push_back({rt.vnow, cost});
      produced.push_back(std::move(round));
    }
    if (span.has_value()) {
      span->arg("rounds", std::to_string(produced.size()));
    }
  }
  lock.lock();
  ++st.drive_slices;
  for (SessionMachine::Round& round : produced) {
    rt.inbox.push_back(std::move(round));
  }
  st.peak_inbox = std::max(st.peak_inbox, rt.inbox.size());
  if (rt.machine->done()) {
    rt.drive_done = true;
  } else {
    st.parked.push({rt.vnow, m});
  }
  // Hand the backlog to a verify strand — also when the inbox is already
  // drained and the drive just ended, so the verify strand finalises.
  if (!rt.verify_active && !rt.queued_for_verify &&
      (!rt.inbox.empty() || rt.drive_done)) {
    rt.queued_for_verify = true;
    st.verify_ready.push_back(m);
  }
  st.cv.notify_all();
}

/// Drains member `m`'s inbox through the verifier (streaming CMAC absorb +
/// masked compare per round) and finalises the session once its drive is
/// done and the backlog empty. Called with `lock` held (and `m` already
/// popped from verify_ready); returns with it held.
void verify_batch(EngineState& st, std::size_t m,
                  std::unique_lock<std::mutex>& lock) {
  MemberRt& rt = st.members[m];
  rt.verify_active = true;
  std::deque<SessionMachine::Round> batch;
  batch.swap(rt.inbox);
  lock.unlock();
  if (!batch.empty()) {
    std::optional<obs::Span> span;
    if (obs::enabled()) {
      span.emplace("engine.verify", rt.machine->trace_id(), "engine");
      span->arg("member", (*st.jobs)[m].label);
      span->arg("rounds", std::to_string(batch.size()));
    }
    for (SessionMachine::Round& round : batch) {
      rt.machine->deliver(std::move(round));
    }
  }
  lock.lock();
  if (!batch.empty()) ++st.verify_batches;
  rt.verify_active = false;
  if (!rt.inbox.empty()) {
    // The drive strand appended more rounds while we were absorbing.
    if (!rt.queued_for_verify) {
      rt.queued_for_verify = true;
      st.verify_ready.push_back(m);
    }
  } else if (rt.drive_done && !rt.finished) {
    rt.finished = true;
    lock.unlock();
    AttestationReport report = rt.machine->finish();
    rt.machine.reset();
    lock.lock();
    st.reports[m] = std::move(report);
    --st.unfinished;
  }
  st.cv.notify_all();
}

void worker_loop(EngineState& st) {
  std::unique_lock<std::mutex> lock(st.mu);
  while (st.unfinished > 0) {
    // Backpressure first: a member whose backlog crossed the high-water
    // mark gets drained before anyone drives further, bounding per-member
    // undelivered rounds (the streaming verifier stays O(1) memory).
    std::size_t pick = kNone;
    for (auto it = st.verify_ready.begin(); it != st.verify_ready.end();
         ++it) {
      if (st.members[*it].inbox.size() >= st.opts->inbox_high_water) {
        pick = *it;
        st.verify_ready.erase(it);
        break;
      }
    }
    if (pick != kNone) {
      st.members[pick].queued_for_verify = false;
      verify_batch(st, pick, lock);
      continue;
    }
    if (!st.parked.empty()) {
      const std::size_t m = st.parked.top().second;
      st.parked.pop();
      drive_slice(st, m, lock);
      continue;
    }
    if (!st.verify_ready.empty()) {
      const std::size_t m = st.verify_ready.front();
      st.verify_ready.pop_front();
      st.members[m].queued_for_verify = false;
      verify_batch(st, m, lock);
      continue;
    }
    // Nothing runnable: strands are in flight on other workers (or the
    // fleet just finished). Wake on any hand-off.
    st.cv.wait(lock);
  }
  st.cv.notify_all();
}

/// Simulated fleet makespan of the multiplexed schedule: every member's
/// drive occupies only its own virtual timeline (sessions park through
/// channel latency, so drives overlap freely), while verify jobs contend
/// for `lanes` virtual verify lanes, FIFO by arrival time and in order
/// within a member. Deterministic — it replays the recorded rounds, so
/// serial and threaded runs report the same number.
sim::SimDuration multiplexed_makespan(const std::vector<MemberRt>& members,
                                      std::size_t lanes) {
  struct Job {
    sim::SimTime ready = 0;
    std::size_t member = 0;
    sim::SimDuration cost = 0;
  };
  std::vector<Job> jobs;
  for (std::size_t m = 0; m < members.size(); ++m) {
    for (const VerifyRec& rec : members[m].verify_recs) {
      jobs.push_back({rec.ready, m, rec.cost});
    }
  }
  std::stable_sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.ready != b.ready) return a.ready < b.ready;
    return a.member < b.member;
  });
  std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                      std::greater<sim::SimTime>>
      lane_free;
  for (std::size_t k = 0; k < lanes; ++k) lane_free.push(0);
  std::vector<sim::SimTime> member_prev_end(members.size(), 0);
  std::vector<sim::SimTime> member_done(members.size(), 0);
  for (const Job& job : jobs) {
    const sim::SimTime lane = lane_free.top();
    lane_free.pop();
    const sim::SimTime start =
        std::max({job.ready, lane, member_prev_end[job.member]});
    const sim::SimTime end = start + job.cost;
    lane_free.push(end);
    member_prev_end[job.member] = end;
    member_done[job.member] = std::max(member_done[job.member], end);
  }
  sim::SimDuration makespan = 0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    makespan = std::max<sim::SimDuration>(
        makespan, std::max<sim::SimTime>(members[m].vnow, member_done[m]));
  }
  return makespan;
}

/// Baseline the engine is gated against: thread-per-member with `lanes`
/// verifier ports. Each session occupies a port for its whole duration
/// (drive and verify serialised per member — a blocking driver cannot
/// overlap its own latency); sessions pack FIFO onto the ports.
sim::SimDuration thread_per_member_makespan(
    const std::vector<MemberRt>& members,
    const std::vector<AttestationReport>& reports, std::size_t lanes) {
  std::priority_queue<sim::SimTime, std::vector<sim::SimTime>,
                      std::greater<sim::SimTime>>
      lane_free;
  for (std::size_t k = 0; k < lanes; ++k) lane_free.push(0);
  sim::SimDuration makespan = 0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    sim::SimDuration verify_cost = 0;
    for (const VerifyRec& rec : members[m].verify_recs) {
      verify_cost += rec.cost;
    }
    const sim::SimTime start = lane_free.top();
    lane_free.pop();
    const sim::SimTime end = start + reports[m].total_time + verify_cost;
    lane_free.push(end);
    makespan = std::max<sim::SimDuration>(makespan, end);
  }
  return makespan;
}

}  // namespace

std::size_t default_fleet_pool() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(hw == 0 ? 1 : hw, 8);
}

FleetRunResult run_fleet(std::vector<FleetSessionJob>& jobs,
                         const FleetEngineOptions& options,
                         const obs::TraceId& fleet_trace) {
  FleetEngineOptions opts = options;
  if (opts.pool_size == 0) opts.pool_size = default_fleet_pool();
  if (opts.rounds_per_slice == 0) opts.rounds_per_slice = 1;
  if (opts.inbox_high_water == 0) opts.inbox_high_water = 1;

  FleetRunResult out;
  out.stats.pool_size = opts.pool_size;
  if (jobs.empty()) return out;

  const auto host_start = std::chrono::steady_clock::now();
  obs::Span engine_span("fleet.engine", fleet_trace, "engine");
  engine_span.arg("sessions", std::to_string(jobs.size()));
  engine_span.arg("pool", std::to_string(opts.pool_size));

  EngineState st;
  st.jobs = &jobs;
  st.opts = &opts;
  st.members.resize(jobs.size());
  st.reports.resize(jobs.size());
  st.unfinished = jobs.size();
  for (std::size_t m = 0; m < jobs.size(); ++m) st.parked.push({0, m});

  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& sessions = registry.counter("sacha.engine.sessions");
    sessions.add(jobs.size());
  }

  // Each member holds at most two concurrent strands, so more workers than
  // 2N can never find work.
  const std::size_t workers =
      std::min<std::size_t>(opts.pool_size, jobs.size() * 2);
  if (workers <= 1) {
    worker_loop(st);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&st] { worker_loop(st); });
    }
    for (std::thread& t : pool) t.join();
  }

  out.reports = std::move(st.reports);
  FleetEngineStats& stats = out.stats;
  stats.makespan = multiplexed_makespan(st.members, opts.pool_size);
  stats.thread_per_member_makespan =
      thread_per_member_makespan(st.members, out.reports, opts.pool_size);
  for (std::size_t m = 0; m < out.reports.size(); ++m) {
    stats.total_work += out.reports[m].total_time;
    stats.channel_busy += out.reports[m].channel_time;
    for (const VerifyRec& rec : st.members[m].verify_recs) {
      stats.verify_busy += rec.cost;
    }
  }
  stats.overlap_efficiency =
      stats.makespan > 0 ? static_cast<double>(stats.total_work) /
                               static_cast<double>(stats.makespan)
                         : 0.0;
  stats.drive_slices = st.drive_slices;
  stats.verify_batches = st.verify_batches;
  stats.peak_inbox_rounds = st.peak_inbox;
  stats.host_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - host_start)
          .count());

  {
    auto& registry = obs::MetricsRegistry::global();
    static obs::Counter& slices = registry.counter("sacha.engine.slices");
    static obs::Counter& batches =
        registry.counter("sacha.engine.verify_batches");
    slices.add(stats.drive_slices);
    batches.add(stats.verify_batches);
  }
  engine_span.arg("makespan_ns", std::to_string(stats.makespan));
  engine_span.arg("overlap", std::to_string(stats.overlap_efficiency));
  engine_span.end();
  (log_debug() << "fleet engine run finished")
      .kv("sessions", jobs.size())
      .kv("pool", stats.pool_size)
      .kv("slices", stats.drive_slices)
      .kv("verify_batches", stats.verify_batches)
      .kv("makespan_s", sim::to_seconds(stats.makespan))
      .kv("thread_per_member_s",
          sim::to_seconds(stats.thread_per_member_makespan))
      .kv("overlap", stats.overlap_efficiency)
      .kv("host_ms", static_cast<double>(stats.host_ns) / 1e6);
  return out;
}

}  // namespace sacha::core
