// Hardware MAC engine model: AES-CMAC with the PoC's incremental timing.
//
// The AEScmac block in the TX clock domain (Fig. 10) is pipelined with the
// readback stream, so the *incremental* cost visible at the protocol level
// is small and constant per step: Table 3 gives 120 ns for MAC-init (A5),
// 128 ns per frame update (A6) and 136 ns for finalize (A7) — 15, 16 and
// 17 cycles of the 125 MHz TX clock. The engine wraps the bit-exact Cmac
// and accounts those cycles.
#pragma once

#include "crypto/cmac.hpp"
#include "sim/clock.hpp"

namespace sacha::core {

struct MacTiming {
  std::uint32_t init_cycles = 15;      // A5: 120 ns @ 125 MHz
  std::uint32_t update_cycles = 16;    // A6: 128 ns
  std::uint32_t finalize_cycles = 17;  // A7: 136 ns
};

class MacEngine {
 public:
  explicit MacEngine(const crypto::AesKey& key, MacTiming timing = {});

  void rekey(const crypto::AesKey& key);

  /// Starts a new MAC computation. Returns the init duration.
  sim::SimDuration init();

  /// Folds one readback frame into the MAC. Returns the update duration.
  sim::SimDuration update(ByteSpan frame_bytes);

  /// Frame fast path: folds readback words (big-endian on the wire and in
  /// the MAC, as everywhere in SACHa) without materialising a byte vector.
  /// Delegates to the word-span CMAC, which absorbs whole blocks straight
  /// from the word stream (the AES tier handles the big-endian mapping),
  /// so the per-frame heap allocation and serialisation both disappear.
  sim::SimDuration update(std::span<const std::uint32_t> frame_words);

  /// Completes the MAC. Returns the finalize duration via `duration`.
  crypto::Mac finalize(sim::SimDuration& duration);

  /// Discards an in-progress computation (a configuration command arriving
  /// mid-readback starts a new session; stale MAC state must not leak in).
  void abort();

  bool busy() const { return started_; }

 private:
  crypto::Cmac cmac_;
  MacTiming timing_;
  sim::ClockDomain tx_clock_;
  bool started_ = false;
};

}  // namespace sacha::core
