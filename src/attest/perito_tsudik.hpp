// Perito-Tsudik proofs of secure erasure / secure code update [1]
// (ESORICS'10) on the bounded-memory MCU — the scheme that inspired SACHa.
//
// The verifier sends firmware plus enough verifier-chosen randomness to
// fill the device's *entire* memory; because nothing else fits, returning
// the correct MAC over the whole memory proves any prior code is gone. The
// same run doubles as a secure code update: afterwards the device runs
// exactly the shipped firmware.
//
// The adversary knob `hidden_memory_bytes` models a device that secretly
// has more RAM than the verifier believes — the assumption whose violation
// breaks the scheme; the tests and bench_baselines quantify that cliff.
#pragma once

#include "attest/mcu.hpp"
#include "crypto/prg.hpp"
#include "sim/time.hpp"

namespace sacha::attest {

struct PoseReport {
  bool attested = false;
  std::uint64_t bytes_sent = 0;
  sim::SimDuration wire_time = 0;  // at GbE byte rate, for scale comparison
  std::string detail;
};

class PoseVerifier {
 public:
  PoseVerifier(crypto::AesKey key, std::size_t believed_memory_size);

  /// Runs one secure code update + proof of erasure: fills the device with
  /// `firmware` followed by session randomness, requests the checksum and
  /// compares against the locally computed expectation.
  PoseReport attest(BoundedMemoryMcu& device, ByteSpan firmware,
                    std::uint64_t session_seed);

 private:
  crypto::AesKey key_;
  std::size_t believed_size_;
};

/// A dishonest MCU wrapper that stashes `stash_size` bytes of prior content
/// into hidden memory before the fill and restores it afterwards. With
/// hidden memory < stash size the restore is impossible (bounded-memory
/// argument); with enough hidden memory the attack succeeds — which is why
/// the scheme's security rests entirely on knowing the true memory size.
class HidingMcu {
 public:
  HidingMcu(BoundedMemoryMcu& device, std::size_t hidden_memory_bytes);

  /// Attempts to preserve [offset, offset+size) across an attestation run.
  /// Returns true if the stash fits in hidden memory.
  bool stash(std::size_t offset, std::size_t size);

  /// Restores the stash after attestation. Returns true when a stash was
  /// active and has been written back.
  bool restore();

 private:
  BoundedMemoryMcu& device_;
  std::size_t hidden_capacity_;
  std::size_t stash_offset_ = 0;
  Bytes stash_;
};

}  // namespace sacha::attest
