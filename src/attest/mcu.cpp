#include "attest/mcu.hpp"

namespace sacha::attest {

BoundedMemoryMcu::BoundedMemoryMcu(std::size_t memory_size,
                                   const crypto::AesKey& key)
    : memory_(memory_size, 0), key_(key) {}

bool BoundedMemoryMcu::write(std::size_t offset, ByteSpan data) {
  if (offset + data.size() > memory_.size()) return false;
  std::copy(data.begin(), data.end(), memory_.begin() + static_cast<std::ptrdiff_t>(offset));
  return true;
}

crypto::Mac BoundedMemoryMcu::checksum(std::uint64_t nonce) const {
  crypto::Cmac cmac(key_);
  Bytes nonce_bytes;
  put_u64be(nonce_bytes, nonce);
  cmac.update(nonce_bytes);
  cmac.update(memory_);
  return cmac.finalize();
}

void BoundedMemoryMcu::infect(std::size_t offset, ByteSpan malware) {
  write(offset, malware);
}

}  // namespace sacha::attest
