// Drimer & Kuhn, "A protocol for secure remote updates of FPGA
// configurations" (ARC'09) — the secure-update baseline (§4.3).
//
// The bitstream lives in an external non-volatile memory; updates are
// authenticated with a MAC chain and a monotonic version counter (rollback
// protection), and "attestation" answers which version is stored and that
// the upload completed. The configuration memory itself is assumed
// tamper-proof. Our model implements the update protocol faithfully — and
// exposes the assumption gap: a SACHa-class adversary who rewrites the
// *running* configuration (not the NVM) is invisible to this scheme.
#pragma once

#include <optional>

#include "bitstream/frame.hpp"
#include "common/result.hpp"
#include "crypto/cmac.hpp"

namespace sacha::attest {

struct NvmSlot {
  std::uint32_t version = 0;
  Bytes bitstream;
  crypto::Mac tag{};
};

/// External flash holding the authenticated bitstream.
class ExternalNvm {
 public:
  const std::optional<NvmSlot>& slot() const { return slot_; }
  void program(NvmSlot slot) { slot_ = std::move(slot); }

 private:
  std::optional<NvmSlot> slot_;
};

/// The device-resident update/attestation logic.
class DrimerKuhnDevice {
 public:
  DrimerKuhnDevice(ExternalNvm& nvm, const crypto::AesKey& key);

  /// Applies an authenticated update: verifies the tag and the version
  /// monotonicity, then programs the NVM and (re)configures from it.
  Status apply_update(const NvmSlot& update);

  /// Attestation response: MAC_K(nonce || version || stored bitstream).
  /// Reports on the NVM contents — NOT on the running configuration.
  crypto::Mac attest(std::uint64_t nonce) const;

  std::uint32_t running_version() const { return running_version_; }

  /// The running configuration (loaded from NVM at apply_update). A
  /// SACHa-class adversary can overwrite this directly; attest() will not
  /// notice, by construction.
  Bytes& running_configuration() { return running_; }
  const Bytes& running_configuration() const { return running_; }

 private:
  ExternalNvm& nvm_;
  crypto::AesKey key_;
  Bytes running_;
  std::uint32_t running_version_ = 0;
};

/// Verifier-side helpers.
class DrimerKuhnVerifier {
 public:
  explicit DrimerKuhnVerifier(crypto::AesKey key) : key_(key) {}

  /// Builds an authenticated update for a bitstream.
  NvmSlot make_update(std::uint32_t version, Bytes bitstream) const;

  /// Checks an attestation response against the expected stored image.
  bool verify(std::uint64_t nonce, std::uint32_t version,
              ByteSpan expected_bitstream, const crypto::Mac& response) const;

 private:
  static crypto::Mac tag_of(const crypto::AesKey& key, std::uint32_t version,
                            ByteSpan bitstream);
  static crypto::Mac attest_mac(const crypto::AesKey& key, std::uint64_t nonce,
                                std::uint32_t version, ByteSpan bitstream);
  friend class DrimerKuhnDevice;

  crypto::AesKey key_;
};

}  // namespace sacha::attest
