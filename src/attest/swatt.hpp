// SWATT-style software-based attestation (Seshadri et al., S&P'04) — the
// timing-based baseline from the paper's related work (§4.1).
//
// The verifier seeds a pseudo-random walk over the device's memory; the
// device folds the visited bytes into a checksum. A compromised device that
// relocated the genuine code must redirect every memory access, which costs
// extra cycles per access; the verifier accepts only responses that are both
// correct and fast. The model exposes the scheme's two failure axes:
// insufficient iterations (walk misses the malware) and loose time bounds
// (redirection fits under the threshold) — §4.1's "strict timing
// constraints ... unfeasible over a network" critique becomes measurable
// when channel jitter exceeds the redirection overhead.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"
#include "sim/time.hpp"

namespace sacha::attest {

struct SwattConfig {
  std::uint32_t iterations = 4'096;      // memory accesses per challenge
  std::uint32_t cycles_per_access = 6;   // honest inner-loop cost
  std::uint32_t redirect_overhead = 3;   // extra cycles when redirecting
  std::uint32_t clock_mhz = 100;
};

/// The device side: memory plus an optional relocation of a compromised
/// region. When `redirected` is set, accesses to [reloc_from, reloc_from +
/// reloc_size) are served from a pristine copy at the cost of
/// `redirect_overhead` extra cycles each.
class SwattDevice {
 public:
  SwattDevice(Bytes memory, SwattConfig config = {});

  /// Compromises the region and keeps a pristine copy to serve redirected
  /// reads from (the classic SWATT adversary).
  void compromise(std::size_t offset, ByteSpan malware, bool redirect);

  struct Answer {
    crypto::Sha256Digest checksum{};
    std::uint64_t cycles = 0;
    sim::SimDuration time = 0;
  };
  /// Executes the pseudo-random walk for a challenge seed.
  Answer respond(std::uint64_t challenge) const;

  const Bytes& memory() const { return memory_; }

 private:
  Bytes memory_;
  Bytes pristine_;  // pre-compromise copy for redirection
  SwattConfig config_;
  bool redirected_ = false;
  std::size_t reloc_from_ = 0;
  std::size_t reloc_size_ = 0;
};

struct SwattVerdict {
  bool checksum_ok = false;
  bool time_ok = false;
  bool ok() const { return checksum_ok && time_ok; }
  sim::SimDuration measured = 0;
  sim::SimDuration bound = 0;
};

class SwattVerifier {
 public:
  SwattVerifier(Bytes golden_memory, SwattConfig config = {});

  /// `time_slack` loosens the acceptance bound above the honest time;
  /// `network_jitter` is added to the measured time (the over-a-network
  /// deployment problem).
  SwattVerdict attest(const SwattDevice& device, std::uint64_t challenge,
                      double time_slack = 0.05,
                      sim::SimDuration network_jitter = 0) const;

 private:
  Bytes golden_;
  SwattConfig config_;
};

}  // namespace sacha::attest
