#include "attest/smart.hpp"

#include "crypto/ct.hpp"

namespace sacha::attest {

SmartMcu::SmartMcu(std::size_t app_memory_size, const crypto::AesKey& key)
    : app_memory_(app_memory_size, 0), key_(key) {}

bool SmartMcu::write_app(std::size_t offset, ByteSpan data) {
  if (offset + data.size() > app_memory_.size()) return false;
  std::copy(data.begin(), data.end(),
            app_memory_.begin() + static_cast<std::ptrdiff_t>(offset));
  return true;
}

Result<crypto::AesKey> SmartMcu::read_key(ExecutionContext context) const {
  if (context != ExecutionContext::kRomAttest) {
    return Result<crypto::AesKey>::error(
        "MPU violation: attestation key is readable only from the ROM routine");
  }
  return key_;
}

crypto::Mac SmartMcu::mac_over_memory(const crypto::AesKey& key,
                                      std::uint64_t nonce) const {
  crypto::Cmac cmac(key);
  Bytes nonce_bytes;
  put_u64be(nonce_bytes, nonce);
  cmac.update(nonce_bytes);
  cmac.update(app_memory_);
  return cmac.finalize();
}

crypto::Mac SmartMcu::rom_attest(std::uint64_t nonce) const {
  // Executing inside ROM: the key read is authorised by the MPU.
  const auto key = read_key(ExecutionContext::kRomAttest);
  return mac_over_memory(key.value(), nonce);
}

Result<crypto::Mac> SmartMcu::forge_from_application(
    std::uint64_t nonce) const {
  auto key = read_key(ExecutionContext::kApplication);
  if (!key.ok()) return Result<crypto::Mac>::error(key.message());
  return mac_over_memory(key.value(), nonce);  // unreachable by design
}

SmartVerifier::SmartVerifier(crypto::AesKey key, Bytes expected_app_memory)
    : key_(key), expected_(std::move(expected_app_memory)) {}

bool SmartVerifier::verify(std::uint64_t nonce,
                           const crypto::Mac& response) const {
  crypto::Cmac cmac(key_);
  Bytes nonce_bytes;
  put_u64be(nonce_bytes, nonce);
  cmac.update(nonce_bytes);
  cmac.update(expected_);
  return crypto::ct_equal(cmac.finalize(), response);
}

}  // namespace sacha::attest
