// SMART-style hybrid attestation (El Defrawy et al., NDSS'12) — the §4.2
// scheme family: software/hardware co-design where minimal hardware
// (a ROM region + an access-controlled key) fixes software-only
// attestation's key-extraction flaw.
//
// The model: a bounded-memory MCU whose attestation routine lives in
// immutable ROM, with the attestation key readable *only while execution
// is inside that ROM* (the SMART MPU rule). Application code — including
// malware — can corrupt application memory at will but can neither modify
// the routine nor read the key. Attestation = MAC_K(nonce || app memory),
// computed by the ROM routine. Contrast experiments: a software-only
// scheme stores the key in ordinary memory, where a compromised
// application reads it and forges responses.
#pragma once

#include "attest/mcu.hpp"
#include "common/result.hpp"

namespace sacha::attest {

enum class ExecutionContext : std::uint8_t {
  kApplication,  // normal (possibly compromised) code
  kRomAttest,    // the immutable attestation routine
};

class SmartMcu {
 public:
  SmartMcu(std::size_t app_memory_size, const crypto::AesKey& key);

  std::size_t app_memory_size() const { return app_memory_.size(); }

  /// Application-context memory access (what malware can do freely).
  bool write_app(std::size_t offset, ByteSpan data);
  const Bytes& app_memory() const { return app_memory_; }

  /// The SMART MPU rule: the key is readable only from ROM context.
  Result<crypto::AesKey> read_key(ExecutionContext context) const;

  /// The ROM attestation routine: executes in kRomAttest context, so its
  /// key access succeeds; returns MAC_K(nonce || app memory).
  crypto::Mac rom_attest(std::uint64_t nonce) const;

  /// What compromised application code can attempt: compute the response
  /// itself. Fails at the key read — the scheme's central guarantee.
  Result<crypto::Mac> forge_from_application(std::uint64_t nonce) const;

 private:
  crypto::Mac mac_over_memory(const crypto::AesKey& key,
                              std::uint64_t nonce) const;

  Bytes app_memory_;
  crypto::AesKey key_;  // hardware-guarded: see read_key()
};

/// Verifier for the SMART scheme (knows key and expected app memory).
class SmartVerifier {
 public:
  SmartVerifier(crypto::AesKey key, Bytes expected_app_memory);

  bool verify(std::uint64_t nonce, const crypto::Mac& response) const;

 private:
  crypto::AesKey key_;
  Bytes expected_;
};

}  // namespace sacha::attest
