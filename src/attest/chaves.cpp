#include "attest/chaves.hpp"

namespace sacha::attest {

ChavesAttestor::ChavesAttestor(config::ConfigMemory& memory,
                               fabric::FrameRange restricted)
    : memory_(memory), restricted_(restricted) {}

Status ChavesAttestor::load(const std::vector<bitstream::Frame>& frames,
                            std::uint32_t first_frame) {
  if (first_frame < restricted_.first ||
      first_frame + frames.size() > restricted_.end()) {
    return Status::error("update outside the restricted area");
  }
  for (std::size_t i = 0; i < frames.size(); ++i) {
    memory_.write_frame(first_frame + static_cast<std::uint32_t>(i), frames[i]);
    hash_.update(frames[i].to_bytes());
  }
  return Status();
}

crypto::Sha256Digest ChavesAttestor::report() const {
  crypto::Sha256 copy = hash_;  // report without consuming the running state
  return copy.finalize();
}

void ChavesAttestor::reset() { hash_.reset(); }

crypto::Sha256Digest ChavesAttestor::expected(
    const std::vector<bitstream::Frame>& frames) {
  crypto::Sha256 hash;
  for (const bitstream::Frame& f : frames) hash.update(f.to_bytes());
  return hash.finalize();
}

}  // namespace sacha::attest
