#include "attest/perito_tsudik.hpp"

#include "crypto/ct.hpp"

namespace sacha::attest {

PoseVerifier::PoseVerifier(crypto::AesKey key, std::size_t believed_memory_size)
    : key_(key), believed_size_(believed_memory_size) {}

PoseReport PoseVerifier::attest(BoundedMemoryMcu& device, ByteSpan firmware,
                                std::uint64_t session_seed) {
  PoseReport report;
  if (firmware.size() > believed_size_) {
    report.detail = "firmware larger than device memory";
    return report;
  }

  // Fill = firmware || verifier randomness covering every remaining byte.
  crypto::Prg prg(session_seed, "pose-fill");
  const Bytes filler = prg.bytes(believed_size_ - firmware.size());
  const std::uint64_t nonce = crypto::Prg(session_seed, "pose-nonce").next_u64();

  if (!device.write(0, firmware) || !device.write(firmware.size(), filler)) {
    report.detail = "device rejected fill (memory smaller than believed)";
    return report;
  }
  report.bytes_sent = believed_size_;
  report.wire_time = static_cast<sim::SimDuration>(believed_size_) * 8;  // GbE

  const crypto::Mac received = device.checksum(nonce);

  // Expected checksum over the verifier's own copy of the full fill.
  crypto::Cmac expected(key_);
  Bytes nonce_bytes;
  put_u64be(nonce_bytes, nonce);
  expected.update(nonce_bytes);
  expected.update(firmware);
  expected.update(filler);
  const crypto::Mac want = expected.finalize();

  report.attested = crypto::ct_equal(received, want);
  report.detail = report.attested ? "erasure proven, firmware installed"
                                  : "checksum mismatch";
  return report;
}

HidingMcu::HidingMcu(BoundedMemoryMcu& device, std::size_t hidden_memory_bytes)
    : device_(device), hidden_capacity_(hidden_memory_bytes) {}

bool HidingMcu::stash(std::size_t offset, std::size_t size) {
  if (size > hidden_capacity_ || offset + size > device_.memory_size()) {
    return false;  // the bounded-memory premise holds: nowhere to hide
  }
  stash_offset_ = offset;
  stash_.assign(device_.memory().begin() + static_cast<std::ptrdiff_t>(offset),
                device_.memory().begin() + static_cast<std::ptrdiff_t>(offset + size));
  return true;
}

bool HidingMcu::restore() {
  if (stash_.empty()) return false;
  device_.write(stash_offset_, stash_);
  stash_.clear();
  return true;
}

}  // namespace sacha::attest
