#include "attest/drimer_kuhn.hpp"

#include "crypto/ct.hpp"

namespace sacha::attest {

namespace {
Bytes version_bytes(std::uint32_t version) {
  Bytes out;
  put_u32be(out, version);
  return out;
}
}  // namespace

crypto::Mac DrimerKuhnVerifier::tag_of(const crypto::AesKey& key,
                                       std::uint32_t version,
                                       ByteSpan bitstream) {
  crypto::Cmac cmac(key);
  cmac.update(bytes_of("dk-update"));
  cmac.update(version_bytes(version));
  cmac.update(bitstream);
  return cmac.finalize();
}

crypto::Mac DrimerKuhnVerifier::attest_mac(const crypto::AesKey& key,
                                           std::uint64_t nonce,
                                           std::uint32_t version,
                                           ByteSpan bitstream) {
  crypto::Cmac cmac(key);
  cmac.update(bytes_of("dk-attest"));
  Bytes nonce_bytes;
  put_u64be(nonce_bytes, nonce);
  cmac.update(nonce_bytes);
  cmac.update(version_bytes(version));
  cmac.update(bitstream);
  return cmac.finalize();
}

DrimerKuhnDevice::DrimerKuhnDevice(ExternalNvm& nvm, const crypto::AesKey& key)
    : nvm_(nvm), key_(key) {}

Status DrimerKuhnDevice::apply_update(const NvmSlot& update) {
  const crypto::Mac expected =
      DrimerKuhnVerifier::tag_of(key_, update.version, update.bitstream);
  if (!crypto::ct_equal(expected, update.tag)) {
    return Status::error("update authentication failed");
  }
  if (update.version <= running_version_ && running_version_ != 0) {
    return Status::error("rollback rejected: version " +
                         std::to_string(update.version) + " <= " +
                         std::to_string(running_version_));
  }
  nvm_.program(update);
  running_ = update.bitstream;  // configure from NVM
  running_version_ = update.version;
  return Status();
}

crypto::Mac DrimerKuhnDevice::attest(std::uint64_t nonce) const {
  const auto& slot = nvm_.slot();
  // Attestation covers the *stored* bitstream (the scheme's assumption that
  // stored == running is exactly what a SACHa-class adversary violates).
  const Bytes empty;
  const ByteSpan stored = slot.has_value() ? ByteSpan(slot->bitstream) : ByteSpan(empty);
  const std::uint32_t version = slot.has_value() ? slot->version : 0;
  return DrimerKuhnVerifier::attest_mac(key_, nonce, version, stored);
}

NvmSlot DrimerKuhnVerifier::make_update(std::uint32_t version,
                                        Bytes bitstream) const {
  NvmSlot slot;
  slot.version = version;
  slot.tag = tag_of(key_, version, bitstream);
  slot.bitstream = std::move(bitstream);
  return slot;
}

bool DrimerKuhnVerifier::verify(std::uint64_t nonce, std::uint32_t version,
                                ByteSpan expected_bitstream,
                                const crypto::Mac& response) const {
  const crypto::Mac expected =
      attest_mac(key_, nonce, version, expected_bitstream);
  return crypto::ct_equal(expected, response);
}

}  // namespace sacha::attest
