// Bounded-memory microcontroller model.
//
// The substrate for the Perito-Tsudik baseline (the scheme SACHa transplants
// to FPGAs) and for the motivating scenario of Fig. 1: a processor whose
// firmware the FPGA-based trusted module attests. The device has exactly
// `memory_size` bytes of RAM plus a tiny immutable ROM routine that can
// (1) write received data into RAM and (2) compute a keyed checksum of the
// *entire* RAM — nothing else survives across a fill.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/cmac.hpp"

namespace sacha::attest {

class BoundedMemoryMcu {
 public:
  BoundedMemoryMcu(std::size_t memory_size, const crypto::AesKey& key);

  std::size_t memory_size() const { return memory_.size(); }

  /// ROM routine 1: writes `data` at `offset`; false when out of range.
  bool write(std::size_t offset, ByteSpan data);

  /// ROM routine 2: MAC_K(nonce || full memory).
  crypto::Mac checksum(std::uint64_t nonce) const;

  /// Raw memory view (the verifier-side golden model uses this only in
  /// tests; the protocol never reads it directly).
  const Bytes& memory() const { return memory_; }

  /// Plants malware at an offset (test/experiment helper: the adversary has
  /// compromised the firmware before attestation).
  void infect(std::size_t offset, ByteSpan malware);

 private:
  Bytes memory_;
  crypto::AesKey key_;
};

}  // namespace sacha::attest
