#include "attest/swatt.hpp"

#include <cassert>

#include "common/rng.hpp"

namespace sacha::attest {

namespace {

/// The shared walk: visits `iterations` pseudo-random addresses, folding
/// (address, byte) pairs into a running SHA-256. `read` maps address ->
/// (byte, extra_cycles).
template <typename ReadFn>
SwattDevice::Answer walk(std::size_t memory_size, const SwattConfig& config,
                         std::uint64_t challenge, ReadFn read) {
  SwattDevice::Answer answer;
  Rng rng(challenge ^ 0x535741545400ULL);  // "SWATT"
  crypto::Sha256 hash;
  Bytes step(9);
  for (std::uint32_t i = 0; i < config.iterations; ++i) {
    const auto address = static_cast<std::size_t>(rng.below(memory_size));
    const auto [byte, extra] = read(address);
    step[0] = byte;
    step[1] = static_cast<std::uint8_t>(address >> 24);
    step[2] = static_cast<std::uint8_t>(address >> 16);
    step[3] = static_cast<std::uint8_t>(address >> 8);
    step[4] = static_cast<std::uint8_t>(address);
    step[5] = static_cast<std::uint8_t>(i >> 24);
    step[6] = static_cast<std::uint8_t>(i >> 16);
    step[7] = static_cast<std::uint8_t>(i >> 8);
    step[8] = static_cast<std::uint8_t>(i);
    hash.update(step);
    answer.cycles += config.cycles_per_access + extra;
  }
  answer.checksum = hash.finalize();
  answer.time = answer.cycles * (1'000 / config.clock_mhz);
  return answer;
}

}  // namespace

SwattDevice::SwattDevice(Bytes memory, SwattConfig config)
    : memory_(std::move(memory)), config_(config) {
  assert(!memory_.empty());
  assert(1'000 % config_.clock_mhz == 0);
}

void SwattDevice::compromise(std::size_t offset, ByteSpan malware,
                             bool redirect) {
  assert(offset + malware.size() <= memory_.size());
  if (redirect) {
    pristine_ = memory_;
    redirected_ = true;
    reloc_from_ = offset;
    reloc_size_ = malware.size();
  }
  std::copy(malware.begin(), malware.end(),
            memory_.begin() + static_cast<std::ptrdiff_t>(offset));
}

SwattDevice::Answer SwattDevice::respond(std::uint64_t challenge) const {
  return walk(memory_.size(), config_, challenge,
              [this](std::size_t address) -> std::pair<std::uint8_t, std::uint32_t> {
                if (redirected_ && address >= reloc_from_ &&
                    address < reloc_from_ + reloc_size_) {
                  return {pristine_[address], config_.redirect_overhead};
                }
                return {memory_[address], 0};
              });
}

SwattVerifier::SwattVerifier(Bytes golden_memory, SwattConfig config)
    : golden_(std::move(golden_memory)), config_(config) {}

SwattVerdict SwattVerifier::attest(const SwattDevice& device,
                                   std::uint64_t challenge, double time_slack,
                                   sim::SimDuration network_jitter) const {
  // Expected checksum and honest-time bound from the golden memory image.
  const SwattDevice::Answer expected =
      walk(golden_.size(), config_, challenge,
           [this](std::size_t address) -> std::pair<std::uint8_t, std::uint32_t> {
             return {golden_[address], 0};
           });

  const SwattDevice::Answer answer = device.respond(challenge);
  SwattVerdict verdict;
  verdict.measured = answer.time + network_jitter;
  verdict.bound = static_cast<sim::SimDuration>(
      static_cast<double>(expected.time) * (1.0 + time_slack));
  verdict.checksum_ok = answer.checksum == expected.checksum;
  verdict.time_ok = verdict.measured <= verdict.bound;
  return verdict;
}

}  // namespace sacha::attest
