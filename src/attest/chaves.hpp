// Chaves et al., "On-the-fly attestation of reconfigurable hardware"
// (FPL'08) — the closest prior FPGA-attestation baseline (§4.3).
//
// A trusted attestation core inside the FPGA hashes the partial bitstream
// *while it is being loaded* and reports the hash; the verifier compares
// against the hash of the intended bitstream. The core is assumed
// tamper-proof and assumed to be the only path into the restricted
// reconfigurable area. Our model makes both assumptions explicit and
// violable: configuration writes through the core are hashed; direct
// configuration-memory writes (which SACHa's stronger adversary can do)
// bypass the hash entirely — that gap is the paper's argument for
// self-attestation, and bench_baselines measures it.
#pragma once

#include "config/config_memory.hpp"
#include "crypto/sha256.hpp"
#include "fabric/partition.hpp"

namespace sacha::attest {

class ChavesAttestor {
 public:
  /// `restricted` is the frame range updates are allowed to touch.
  ChavesAttestor(config::ConfigMemory& memory, fabric::FrameRange restricted);

  /// Loads a partial bitstream through the trusted core: frames are written
  /// and simultaneously folded into the running hash. Writes outside the
  /// restricted area are refused (the core's only enforcement).
  Status load(const std::vector<bitstream::Frame>& frames,
              std::uint32_t first_frame);

  /// On-the-fly attestation report: hash of everything loaded through the
  /// core since reset().
  crypto::Sha256Digest report() const;

  void reset();

  /// What the verifier expects for a given intended bitstream.
  static crypto::Sha256Digest expected(
      const std::vector<bitstream::Frame>& frames);

 private:
  config::ConfigMemory& memory_;
  fabric::FrameRange restricted_;
  crypto::Sha256 hash_;
};

}  // namespace sacha::attest
