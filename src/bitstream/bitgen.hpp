// Synthetic "bitgen": turns a design specification into configuration
// frames, their register-state mask, and encoded bitstreams.
//
// We obviously cannot run Xilinx ISE here; what attestation needs from the
// toolchain is (a) deterministic frame content for a named design, so the
// verifier's golden reference and the device configuration agree bit for
// bit, (b) a register-bit mask per frame (the .msk file), and (c) packet
// encodings of full/partial bitstreams. Content is a deterministic function
// of (design name, seed, frame index); mask bits are a pseudo-random subset
// of each frame at the design's register density. Any single-bit change to
// a design spec changes essentially all frames, which is the property the
// experiments rely on.
#pragma once

#include <cstdint>
#include <string>

#include "bitstream/frame.hpp"
#include "bitstream/packet.hpp"
#include "fabric/device.hpp"
#include "fabric/partition.hpp"

namespace sacha::bitstream {

struct DesignSpec {
  std::string name;        // functional identity of the design
  std::uint64_t seed = 0;  // build seed (placement/routing variation)

  bool operator==(const DesignSpec&) const = default;
};

/// Architectural register-bit mask of a frame: bit 1 = configuration bit,
/// bit 0 = flip-flop state bit. Flip-flop positions are fixed in silicon,
/// so the mask is deterministic in (device name, frame index) and *shared*
/// by the device model's readback path and the verifier's golden Msk.
/// `density` is the flip-flop fraction of frame bits.
FrameMask architectural_mask(const fabric::DeviceModel& device,
                             std::uint32_t frame_index, double density = 0.02);

class BitGen {
 public:
  explicit BitGen(const fabric::DeviceModel& device);

  const fabric::DeviceModel& device() const { return device_; }

  /// Golden content + mask for every frame of `range`, deterministic in the
  /// spec. Frames are indexed relative to the range (frames[0] is the frame
  /// at linear index range.first).
  ConfigImage generate(const fabric::FrameRange& range,
                       const DesignSpec& spec) const;

  /// One frame embedding a 64-bit nonce in its first two words (§5.2.2's
  /// separate nonce-register partition). All bits are configuration bits.
  ConfigImage nonce_frame(std::uint64_t nonce) const;

  /// Encodes `image` as a single-burst partial bitstream starting at linear
  /// frame index `first_frame` (FAR auto-increment semantics).
  std::vector<std::uint32_t> assemble(const ConfigImage& image,
                                      std::uint32_t first_frame,
                                      std::uint32_t idcode) const;

  /// Encodes one frame write as a standalone command stream (what each
  /// ICAP_config network packet of the paper's protocol carries).
  std::vector<std::uint32_t> assemble_single_frame(const Frame& frame,
                                                   std::uint32_t frame_index,
                                                   std::uint32_t idcode) const;

  /// Device IDCODE used in our encodings.
  static constexpr std::uint32_t kIdcodeXc6vlx240t = 0x0424A093;

 private:
  fabric::DeviceModel device_;
};

/// FNV-1a over a string, for stable per-design seeding.
std::uint64_t fnv1a(std::string_view text);

}  // namespace sacha::bitstream
