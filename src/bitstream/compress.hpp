// Bitstream compression.
//
// The bounded-memory argument leans on [24] ("A single-chip solution for
// the secure remote configuration of FPGAs using bitstream compression"):
// even *compressed*, a bitstream covering a large partition does not fit
// in the fabric's BRAM. This module makes that claim testable: an LZ77-
// style compressor (from scratch — window search, length-distance tokens,
// literal runs) plus a trivial RLE baseline, both exact-roundtrip. The
// compression bench measures ratios on synthetic application bitstreams
// (high entropy, like routed designs) versus pathological all-zero input,
// and re-checks the BRAM bound under the best ratio an adversary could
// hope for.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace sacha::bitstream {

/// LZ77 with a 64 KiB window and 3..258-byte matches.
/// Token stream: [0x00 len8 lit...] literal run | [0x01 len8 dist16] match.
Bytes lz_compress(ByteSpan data);
Result<Bytes> lz_decompress(ByteSpan compressed);

/// Byte-level run-length encoding: [count8 byte] pairs.
Bytes rle_compress(ByteSpan data);
Result<Bytes> rle_decompress(ByteSpan compressed);

/// compressed size / original size (1.0 = incompressible, smaller = better).
double compression_ratio(std::size_t original, std::size_t compressed);

}  // namespace sacha::bitstream
