#include "bitstream/bitgen.hpp"

#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace sacha::bitstream {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

FrameMask architectural_mask(const fabric::DeviceModel& device,
                             std::uint32_t frame_index, double density) {
  const std::uint32_t words = device.geometry().words_per_frame();
  const std::uint32_t frame_bits = words * 32;
  const auto register_bits =
      static_cast<std::uint32_t>(std::lround(density * frame_bits));
  FrameMask mask(words, 0xffffffff);
  Rng rng(fnv1a(device.name()) ^ 0x5ca1ab1edeadbeefULL ^
          (static_cast<std::uint64_t>(frame_index) << 17));
  for (std::uint32_t b = 0; b < register_bits; ++b) {
    mask.set_bit(static_cast<std::uint32_t>(rng.below(frame_bits)), false);
  }
  return mask;
}

BitGen::BitGen(const fabric::DeviceModel& device) : device_(device) {}

ConfigImage BitGen::generate(const fabric::FrameRange& range,
                             const DesignSpec& spec) const {
  const std::uint32_t words = device_.geometry().words_per_frame();
  ConfigImage image;
  image.frames.reserve(range.count);
  image.masks.reserve(range.count);
  const std::uint64_t design_hash =
      fnv1a(spec.name) ^ (spec.seed * 0x9e3779b97f4a7c15ULL);
  for (std::uint32_t i = 0; i < range.count; ++i) {
    const std::uint32_t frame_index = range.first + i;
    Rng rng(design_hash ^ (static_cast<std::uint64_t>(frame_index) << 1 | 1));
    Frame frame(words);
    for (std::uint32_t w = 0; w < words; ++w) {
      frame.set_word(w, static_cast<std::uint32_t>(rng.next_u64()));
    }
    image.frames.push_back(std::move(frame));
    // The mask is architectural: flip-flop positions do not move with the
    // design, so the verifier's Msk and the device's readback merge agree.
    image.masks.push_back(architectural_mask(device_, frame_index));
  }
  return image;
}

ConfigImage BitGen::nonce_frame(std::uint64_t nonce) const {
  const std::uint32_t words = device_.geometry().words_per_frame();
  assert(words >= 2);
  Frame frame(words);
  frame.set_word(0, static_cast<std::uint32_t>(nonce >> 32));
  frame.set_word(1, static_cast<std::uint32_t>(nonce));
  ConfigImage image;
  image.frames.push_back(std::move(frame));
  image.masks.emplace_back(words, 0xffffffff);
  return image;
}

std::vector<std::uint32_t> BitGen::assemble(const ConfigImage& image,
                                            std::uint32_t first_frame,
                                            std::uint32_t idcode) const {
  PacketWriter writer;
  writer.sync();
  writer.noop();
  writer.write_idcode(idcode);
  writer.cmd(CmdOp::kWcfg);
  writer.write_far(device_.geometry().address_of(first_frame));
  std::vector<std::uint32_t> payload;
  payload.reserve(image.frames.size() * device_.geometry().words_per_frame());
  for (const Frame& frame : image.frames) {
    payload.insert(payload.end(), frame.words().begin(), frame.words().end());
  }
  writer.write_frames(payload);
  writer.crc(stream_crc(payload));
  writer.cmd(CmdOp::kDesync);
  writer.noop();
  return writer.words();
}

std::vector<std::uint32_t> BitGen::assemble_single_frame(
    const Frame& frame, std::uint32_t frame_index, std::uint32_t idcode) const {
  assert(frame.size() == device_.geometry().words_per_frame());
  PacketWriter writer;
  writer.sync();
  writer.write_idcode(idcode);
  writer.cmd(CmdOp::kWcfg);
  writer.write_far(device_.geometry().address_of(frame_index));
  writer.write_frames(frame.words());
  writer.cmd(CmdOp::kDesync);
  return writer.words();
}

}  // namespace sacha::bitstream
