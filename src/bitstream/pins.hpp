// Pin-connectivity view of the configuration.
//
// §7.2, fourth threat: "a local adversary connects another computing
// device to the Prv's FPGA ... the bitstream reflects which FPGA pins are
// connected to peripherals, such that the Vrf exactly knows if there are
// additional connections to external devices." This module gives that
// argument a concrete surface: each IOB pin has an architectural enable
// bit at a fixed (frame, bit) position in the logic configuration; a
// PinMap can be extracted from any set of frames (golden or readback) and
// diffed, naming exactly which pins changed.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/bitvec.hpp"
#include "fabric/device.hpp"

namespace sacha::bitstream {

struct PinBit {
  std::uint32_t frame = 0;
  std::uint32_t bit = 0;
};

/// Architectural location of pin `pin`'s output-enable bit. Deterministic
/// in (device, pin); always inside the logic block's frames.
PinBit pin_bit_location(const fabric::DeviceModel& device, std::uint32_t pin);

/// Reads the enable state of every IOB pin out of a frame view.
/// `frame_of` maps a linear frame index to its 32-bit words.
using FrameView = std::function<const std::vector<std::uint32_t>&(std::uint32_t)>;
BitVec extract_pin_map(const fabric::DeviceModel& device, const FrameView& frame_of);

struct PinDiff {
  std::vector<std::uint32_t> newly_enabled;   // connected but not expected
  std::vector<std::uint32_t> newly_disabled;  // expected but missing

  bool empty() const { return newly_enabled.empty() && newly_disabled.empty(); }
  std::string to_string() const;
};

/// Pins whose state differs between the expected and observed maps.
PinDiff diff_pin_maps(const BitVec& expected, const BitVec& observed);

}  // namespace sacha::bitstream
