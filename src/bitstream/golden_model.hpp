// Precompiled golden reference for streaming verification.
//
// The verifier's hot loop compares every readback frame against the golden
// configuration under the architectural register mask. Doing that from the
// region-structured images means, per frame per session: a linear scan over
// partition ranges, a fresh `architectural_mask` generation (an Rng walk over
// ~2% of the frame bits), a `bs::Frame` construction and a byte
// re-serialisation for the MAC. GoldenModel hoists all of it to build time:
// one flat frame-index-indexed table of mask words and pre-masked golden
// words, computed once per (device, floorplan, static design, application)
// and immutable afterwards, so a streamed masked compare is a single
// AND+compare pass over the incoming word span.
//
// Immutability is what makes the model shareable: a swarm fleet of N devices
// provisioned with the same floorplan and designs holds one GoldenModel via
// `shared_ptr` instead of N copies of the ~9.2 MB (Virtex-6) golden image.
// `GoldenModel::shared()` interns models in a process-wide cache keyed by
// device + partition layout + design specs; the cache holds weak references,
// so models die with their last verifier.
//
// The session nonce frame is deliberately *not* part of the model: its
// content changes every `begin()`, so the verifier overlays it per session.
// The model still carries that frame's architectural mask (flip-flop
// positions are silicon, not session, state).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bitstream/bitgen.hpp"
#include "bitstream/masked_compare.hpp"
#include "fabric/partition.hpp"

namespace sacha::bitstream {

class GoldenModel {
 public:
  /// Builds the full golden reference for `plan`: region images for command
  /// assembly, plus the flat mask / masked-golden tables for streaming
  /// compare. Prefer `shared()` so identical fleets intern one copy.
  GoldenModel(const fabric::Floorplan& plan, DesignSpec static_spec,
              DesignSpec app_spec);

  /// Interned construction: returns the cached model for this
  /// (device, partition layout, static spec, app spec) if one is alive,
  /// else builds and caches it. Thread-safe.
  static std::shared_ptr<const GoldenModel> shared(
      const fabric::Floorplan& plan, const DesignSpec& static_spec,
      const DesignSpec& app_spec);

  /// Live entries in the intern cache (expired entries are swept on each
  /// shared() call). Exposed for the sharing tests and the fleet bench.
  static std::size_t live_cache_entries();

  // -- On-disk cache --------------------------------------------------------
  //
  // The flat tables are deterministic per (device, partition layout, design
  // specs), so a fleet-verifier restart can skip BitGen + mask precompile:
  // models serialise to a versioned binary file named by the sha256 digest
  // of the same identity key the intern cache uses. Host-endian — a local
  // warm-start cache, not an interchange format.

  /// Hex sha256 of the model identity key; names the cache file.
  static std::string cache_digest(const fabric::Floorplan& plan,
                                  const DesignSpec& static_spec,
                                  const DesignSpec& app_spec);

  /// Serialises the model (all region images + flat tables) to `path`.
  /// `plan` must be the floorplan the model was built from — its digest is
  /// sealed into the header. Returns false on I/O failure.
  bool save(const std::string& path, const fabric::Floorplan& plan) const;

  /// Deserialises a model previously save()d for the same (device, plan,
  /// specs). Validates magic, version, identity digest and geometry, and
  /// rejects truncated or garbage-tailed files; returns nullptr on any
  /// mismatch or I/O/corruption error.
  static std::shared_ptr<const GoldenModel> load(
      const std::string& path, const fabric::Floorplan& plan,
      const DesignSpec& static_spec, const DesignSpec& app_spec);

  /// Like load(), but maps the file read-only (`MAP_SHARED`) and *borrows*
  /// the flat streaming tables straight from the mapping instead of copying
  /// them onto the heap. The format 64-byte-aligns both table payloads, so
  /// the borrowed pointers are valid `uint32_t` lanes for the SIMD compare.
  /// Every process on a host that maps the same `.sgm` shares one page-cache
  /// copy of the ~9 MB tables — the point of the shard coordinator's
  /// RSS-per-shard-flat property. Region images and specs are still copied
  /// (they are small and needed mutable-adjacent). Falls back to the heap
  /// `load()` path on non-Linux or `SACHA_PORTABLE` builds, and on any
  /// mmap failure. Same validation and nullptr-on-corruption contract.
  static std::shared_ptr<const GoldenModel> load_mapped(
      const std::string& path, const fabric::Floorplan& plan,
      const DesignSpec& static_spec, const DesignSpec& app_spec);

  /// True when this build can actually mmap (Linux, not SACHA_PORTABLE);
  /// false means load_mapped() degrades to the heap path.
  static bool mapping_supported();

  /// True iff this instance's flat tables live in a shared file mapping.
  bool tables_mapped() const { return map_base_ != nullptr; }

  /// Where shared_cached() found the model (restart-cost accounting).
  enum class CacheSource { kInterned, kLoaded, kMapped, kBuilt };

  /// Three-tier interned construction: process intern cache, then
  /// `cache_dir/<digest>.sgm` on disk, then a fresh build (persisted to the
  /// cache dir best-effort). Thread-safe; `source` (optional) reports which
  /// tier hit. With `prefer_mapped`, the disk tier uses load_mapped() (and
  /// a fresh build re-opens its own just-saved file mapped), so concurrent
  /// shard processes share one page-cache copy of the tables; the source
  /// for a mapped disk hit is kMapped.
  static std::shared_ptr<const GoldenModel> shared_cached(
      const fabric::Floorplan& plan, const DesignSpec& static_spec,
      const DesignSpec& app_spec, const std::string& cache_dir,
      CacheSource* source = nullptr, bool prefer_mapped = false);

  /// Bit-identity over everything serialised (specs, geometry, region
  /// images, flat tables) — what the round-trip test asserts.
  bool operator==(const GoldenModel& other) const;

  // -- Region structure (what SachaVerifier previously derived itself) -----

  /// Dynamic-partition ranges spanned by the application, ascending, with
  /// the nonce frame carved out of the last one.
  const std::vector<fabric::FrameRange>& app_ranges() const {
    return app_ranges_;
  }
  std::uint32_t app_frame_total() const { return app_frame_total_; }
  /// The single-frame nonce partition at the top of the last dynamic region.
  std::uint32_t nonce_frame() const { return nonce_frame_; }

  /// Golden image of the base static partition (starts at frame 0) — what
  /// the BootMem is provisioned with.
  const ConfigImage& static_image() const;
  /// Golden image of application region `region` (index into app_ranges()).
  const ConfigImage& app_image(std::size_t region) const {
    return app_images_[region];
  }

  /// Golden content of any frame except the nonce frame (whose content is
  /// per-session); the nonce frame and frames outside every partition
  /// resolve to the all-zero frame.
  const Frame& golden_frame(std::uint32_t index) const;
  const Frame& zero_frame() const { return zero_frame_; }

  // -- Flat streaming tables ------------------------------------------------

  std::uint32_t total_frames() const { return total_frames_; }
  std::uint32_t words_per_frame() const { return words_per_frame_; }

  /// Architectural register mask of `frame`, identical word-for-word to
  /// `architectural_mask(device, frame)`.
  std::span<const std::uint32_t> mask_words(std::uint32_t frame) const {
    return {mask_table_ + static_cast<std::size_t>(frame) * words_per_frame_,
            words_per_frame_};
  }

  /// Golden frame content with register bits already forced to zero
  /// (`golden & mask`). The nonce frame's slot is all-zero; the verifier
  /// overlays the session nonce.
  std::span<const std::uint32_t> masked_golden_words(std::uint32_t frame) const {
    return {golden_table_ + static_cast<std::size_t>(frame) * words_per_frame_,
            words_per_frame_};
  }

  /// Streaming masked compare: true iff `received` (one frame's words)
  /// agrees with the golden configuration on every mask=1 bit. Not valid
  /// for the nonce frame — its golden content lives in the session.
  bool frame_matches(std::uint32_t frame,
                     std::span<const std::uint32_t> received) const {
    const std::uint32_t* mask =
        mask_table_ + static_cast<std::size_t>(frame) * words_per_frame_;
    const std::uint32_t* golden =
        golden_table_ + static_cast<std::size_t>(frame) * words_per_frame_;
    return masked_words_match(received.data(), mask, golden, words_per_frame_);
  }

  /// Heap footprint of the model (flat tables + region images), for the
  /// fleet memory accounting in bench_swarm / bench_verifier.
  std::size_t footprint_bytes() const;

  const DesignSpec& static_spec() const { return static_spec_; }
  const DesignSpec& app_spec() const { return app_spec_; }

  /// Tables in mapped instances are borrowed from the mapping, so the
  /// table pointers cannot survive a copy.
  GoldenModel(const GoldenModel&) = delete;
  GoldenModel& operator=(const GoldenModel&) = delete;
  ~GoldenModel();

 private:
  GoldenModel() = default;  // load()/load_mapped() fill the fields directly

  friend struct ModelParser;  // shared load/load_mapped decoder

  DesignSpec static_spec_;
  DesignSpec app_spec_;
  std::uint32_t total_frames_ = 0;
  std::uint32_t words_per_frame_ = 0;
  std::uint32_t nonce_frame_ = 0;
  std::uint32_t app_frame_total_ = 0;

  std::vector<fabric::FrameRange> app_ranges_;
  std::vector<std::pair<fabric::FrameRange, ConfigImage>> static_images_;
  std::vector<ConfigImage> app_images_;
  Frame zero_frame_;

  // Flat streaming tables, total_frames * words_per_frame words each. The
  // accessors read through `mask_table_` / `golden_table_`: for built and
  // heap-loaded models they point at the owning vectors below; for mapped
  // models they point into `map_base_` and the vectors stay empty (which is
  // also what keeps footprint_bytes() honest about heap cost).
  std::vector<std::uint32_t> mask_words_;
  std::vector<std::uint32_t> masked_golden_;  // golden & mask
  const std::uint32_t* mask_table_ = nullptr;
  const std::uint32_t* golden_table_ = nullptr;
  void* map_base_ = nullptr;  // munmap'd by the dtor when non-null
  std::size_t map_len_ = 0;
};

}  // namespace sacha::bitstream
