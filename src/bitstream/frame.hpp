// Configuration frames and register-bit masks.
//
// A frame is the smallest addressable unit of configuration memory (81
// 32-bit words on the Virtex-6). Readback of a live device does not return
// the bitstream that was written: flip-flop state bits appear with their
// current runtime values (paper §6.1). The mask (the Xilinx .msk file, `Msk`
// in the paper) marks which bits are *configuration* — mask bit 1 — versus
// *live register state* — mask bit 0. Verifier-side comparison always
// happens after `apply_mask`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace sacha::bitstream {

/// One configuration frame: a fixed number of 32-bit words.
class Frame {
 public:
  Frame() = default;
  explicit Frame(std::uint32_t words, std::uint32_t fill = 0)
      : words_(words, fill) {}
  explicit Frame(std::vector<std::uint32_t> words) : words_(std::move(words)) {}

  std::uint32_t size() const { return static_cast<std::uint32_t>(words_.size()); }
  std::uint32_t word(std::uint32_t i) const { return words_[i]; }
  void set_word(std::uint32_t i, std::uint32_t v) { words_[i] = v; }

  const std::vector<std::uint32_t>& words() const { return words_; }
  std::vector<std::uint32_t>& words() { return words_; }

  bool operator==(const Frame&) const = default;

  /// Big-endian word serialisation (what travels on the wire and what the
  /// MAC engine consumes).
  Bytes to_bytes() const;
  static Frame from_bytes(ByteSpan data);

  /// Flips a single bit; bit index b addresses word b/32, bit b%32 (LSB 0).
  void flip_bit(std::uint32_t bit);
  bool get_bit(std::uint32_t bit) const;
  void set_bit(std::uint32_t bit, bool value);

  std::uint32_t bit_count() const { return size() * 32; }

 private:
  std::vector<std::uint32_t> words_;
};

/// Register-state mask with the same shape as a frame: bit 1 = configuration
/// bit (stable, compared), bit 0 = live register bit (ignored).
using FrameMask = Frame;

/// Returns frame & mask (register bits forced to zero).
Frame apply_mask(const Frame& frame, const FrameMask& mask);

/// True iff a and b agree on all configuration (mask=1) bits.
bool masked_equal(const Frame& a, const Frame& b, const FrameMask& mask);

/// A frame range's worth of golden configuration plus its mask.
struct ConfigImage {
  std::vector<Frame> frames;
  std::vector<FrameMask> masks;

  std::size_t size() const { return frames.size(); }
  bool operator==(const ConfigImage&) const = default;
};

}  // namespace sacha::bitstream
