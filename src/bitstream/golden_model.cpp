#include "bitstream/golden_model.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "crypto/sha256.hpp"

#if defined(__linux__) && !defined(SACHA_PORTABLE)
#define SACHA_GM_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace sacha::bitstream {

GoldenModel::GoldenModel(const fabric::Floorplan& plan, DesignSpec static_spec,
                         DesignSpec app_spec)
    : static_spec_(std::move(static_spec)), app_spec_(std::move(app_spec)) {
  assert(plan.validate().ok());
  const fabric::DeviceModel& device = plan.device();
  total_frames_ = device.total_frames();
  words_per_frame_ = device.geometry().words_per_frame();

  std::vector<fabric::FrameRange> stat_ranges;
  std::vector<fabric::FrameRange> dyn_ranges;
  for (const fabric::Partition& p : plan.partitions()) {
    if (p.kind == fabric::PartitionKind::kStatic) stat_ranges.push_back(p.frames);
    if (p.kind == fabric::PartitionKind::kDynamic) dyn_ranges.push_back(p.frames);
  }
  assert(!stat_ranges.empty() && !dyn_ranges.empty());
  const auto by_first = [](const fabric::FrameRange& a,
                           const fabric::FrameRange& b) {
    return a.first < b.first;
  };
  std::sort(stat_ranges.begin(), stat_ranges.end(), by_first);
  std::sort(dyn_ranges.begin(), dyn_ranges.end(), by_first);
  // The nonce occupies its own single-frame partition at the top of the
  // last dynamic region so it can be refreshed without touching the
  // application; the application spans every dynamic region (§2.1.2
  // allows one or more).
  assert(dyn_ranges.back().count >= 2 &&
         "need room for application + nonce frame");
  nonce_frame_ = dyn_ranges.back().end() - 1;
  app_ranges_ = dyn_ranges;
  app_ranges_.back().count -= 1;  // carve the nonce frame out
  if (app_ranges_.back().count == 0) app_ranges_.pop_back();
  for (const fabric::FrameRange& r : app_ranges_) app_frame_total_ += r.count;

  BitGen bitgen(device);
  for (const fabric::FrameRange& r : stat_ranges) {
    static_images_.emplace_back(r, bitgen.generate(r, static_spec_));
  }
  app_images_.reserve(app_ranges_.size());
  for (const fabric::FrameRange& r : app_ranges_) {
    app_images_.push_back(bitgen.generate(r, app_spec_));
  }
  zero_frame_ = Frame(words_per_frame_);

  // Flat tables: one architectural_mask generation per frame for the life of
  // the model (the per-session verifier previously regenerated every mask on
  // every finish()), and golden words pre-masked so the streaming compare is
  // a single AND+compare pass.
  const std::size_t table_words =
      static_cast<std::size_t>(total_frames_) * words_per_frame_;
  mask_words_.resize(table_words);
  masked_golden_.assign(table_words, 0);
  for (std::uint32_t f = 0; f < total_frames_; ++f) {
    const FrameMask mask = architectural_mask(device, f);
    std::uint32_t* mask_row =
        mask_words_.data() + static_cast<std::size_t>(f) * words_per_frame_;
    std::copy(mask.words().begin(), mask.words().end(), mask_row);
    if (f == nonce_frame_) continue;  // golden content is per-session
    const Frame& golden = golden_frame(f);
    std::uint32_t* golden_row =
        masked_golden_.data() + static_cast<std::size_t>(f) * words_per_frame_;
    for (std::uint32_t w = 0; w < words_per_frame_; ++w) {
      golden_row[w] = golden.word(w) & mask_row[w];
    }
  }
  mask_table_ = mask_words_.data();
  golden_table_ = masked_golden_.data();
}

GoldenModel::~GoldenModel() {
#if defined(SACHA_GM_MMAP)
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
#endif
}

const ConfigImage& GoldenModel::static_image() const {
  assert(!static_images_.empty() && static_images_.front().first.first == 0 &&
         "BootMem image must start at frame 0");
  return static_images_.front().second;
}

const Frame& GoldenModel::golden_frame(std::uint32_t index) const {
  if (index == nonce_frame_) return zero_frame_;
  for (std::size_t region = 0; region < app_ranges_.size(); ++region) {
    if (app_ranges_[region].contains(index)) {
      return app_images_[region].frames[index - app_ranges_[region].first];
    }
  }
  for (const auto& [range, image] : static_images_) {
    if (range.contains(index)) return image.frames[index - range.first];
  }
  // Frames outside every partition are never configured: golden is zero.
  return zero_frame_;
}

std::size_t GoldenModel::footprint_bytes() const {
  std::size_t bytes = (mask_words_.size() + masked_golden_.size()) * 4;
  const auto image_bytes = [](const ConfigImage& image) {
    std::size_t b = 0;
    for (const Frame& f : image.frames) b += f.words().size() * 4;
    for (const FrameMask& m : image.masks) b += m.words().size() * 4;
    return b;
  };
  for (const auto& [range, image] : static_images_) bytes += image_bytes(image);
  for (const ConfigImage& image : app_images_) bytes += image_bytes(image);
  return bytes;
}

namespace {

struct ModelCache {
  std::mutex mutex;
  std::unordered_map<std::string, std::weak_ptr<const GoldenModel>> entries;
};

ModelCache& model_cache() {
  static ModelCache cache;
  return cache;
}

/// Everything the model content depends on: device identity and geometry,
/// partition layout, and both design specs.
std::string cache_key(const fabric::Floorplan& plan,
                      const DesignSpec& static_spec,
                      const DesignSpec& app_spec) {
  std::string key = plan.device().name();
  key += '/' + std::to_string(plan.device().total_frames());
  key += 'x' + std::to_string(plan.device().geometry().words_per_frame());
  for (const fabric::Partition& p : plan.partitions()) {
    key += p.kind == fabric::PartitionKind::kStatic ? "|s" : "|d";
    key += std::to_string(p.frames.first) + '+' + std::to_string(p.frames.count);
  }
  key += "|static=" + static_spec.name + '#' + std::to_string(static_spec.seed);
  key += "|app=" + app_spec.name + '#' + std::to_string(app_spec.seed);
  return key;
}

}  // namespace

std::shared_ptr<const GoldenModel> GoldenModel::shared(
    const fabric::Floorplan& plan, const DesignSpec& static_spec,
    const DesignSpec& app_spec) {
  ModelCache& cache = model_cache();
  const std::string key = cache_key(plan, static_spec, app_spec);
  std::lock_guard<std::mutex> lock(cache.mutex);
  for (auto it = cache.entries.begin(); it != cache.entries.end();) {
    it = it->second.expired() ? cache.entries.erase(it) : std::next(it);
  }
  if (auto it = cache.entries.find(key); it != cache.entries.end()) {
    if (auto model = it->second.lock()) return model;
  }
  auto model = std::make_shared<const GoldenModel>(plan, static_spec, app_spec);
  cache.entries[key] = model;
  return model;
}

std::size_t GoldenModel::live_cache_entries() {
  ModelCache& cache = model_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  std::size_t live = 0;
  for (const auto& [key, entry] : cache.entries) {
    if (!entry.expired()) ++live;
  }
  return live;
}

// ---- On-disk cache ---------------------------------------------------------

namespace {

// Versioned binary layout (host-endian; a local warm-start cache, not an
// interchange format): magic, version, identity digest, geometry, specs,
// region structure, region images, flat tables. Format v2 64-byte-aligns
// both flat-table payloads (zero pad after the length word) so load_mapped()
// can hand the mapped bytes straight to the uint32 SIMD compare.
constexpr char kMagic[8] = {'S', 'A', 'C', 'H', 'A', 'G', 'M', '1'};
constexpr std::uint32_t kFormatVersion = 2;
constexpr std::size_t kTableAlign = 64;

struct Writer {
  std::ofstream out;
  bool ok = true;
  std::uint64_t written = 0;

  void raw(const void* data, std::size_t bytes) {
    if (ok) ok = !!out.write(static_cast<const char*>(data),
                             static_cast<std::streamsize>(bytes));
    if (ok) written += bytes;
  }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void words(const std::vector<std::uint32_t>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(std::uint32_t));
  }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void spec(const DesignSpec& s) {
    str(s.name);
    u64(s.seed);
  }
  void frame(const Frame& f) { words(f.words()); }
  void image(const ConfigImage& img) {
    u32(static_cast<std::uint32_t>(img.frames.size()));
    for (const Frame& f : img.frames) frame(f);
    u32(static_cast<std::uint32_t>(img.masks.size()));
    for (const FrameMask& m : img.masks) frame(m);
  }
  void align() {
    static constexpr char zeros[kTableAlign] = {};
    const std::size_t pad =
        (kTableAlign - static_cast<std::size_t>(written % kTableAlign)) %
        kTableAlign;
    raw(zeros, pad);
  }
  /// Flat-table payload: length word, pad to the next 64-byte file offset,
  /// then the raw words (so a mapping of the file yields aligned lanes).
  void table(const std::uint32_t* p, std::uint64_t n) {
    u64(n);
    align();
    raw(p, static_cast<std::size_t>(n) * sizeof(std::uint32_t));
  }
};

}  // namespace

/// Shared decoder for load() and load_mapped(): one bounds-checked pass over
/// an in-memory buffer (whole-file read or mmap). Every read is validated
/// against the remaining byte count, so a truncated file fails cleanly at
/// whatever section the cut landed in, and a final exact-length check
/// rejects garbage-tailed files — the corruption-matrix tests exercise both.
struct ModelParser {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;
  bool ok = true;
  /// Per-vector sanity cap: no table in a valid model exceeds this many
  /// words, so a corrupt length field fails fast instead of allocating.
  static constexpr std::uint64_t kMaxWords = 1u << 28;  // 1 GiB of words

  bool need(std::size_t bytes) {
    if (ok && size - pos >= bytes) return true;
    ok = false;
    return false;
  }
  void raw(void* out, std::size_t bytes) {
    if (need(bytes)) {
      std::memcpy(out, data + pos, bytes);
      pos += bytes;
    }
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    if (n > kMaxWords || !need(static_cast<std::size_t>(n))) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data + pos),
                  static_cast<std::size_t>(n));
    pos += static_cast<std::size_t>(n);
    return s;
  }
  DesignSpec spec() {
    DesignSpec s;
    s.name = str();
    s.seed = u64();
    return s;
  }
  std::vector<std::uint32_t> words() {
    const std::uint64_t n = u64();
    if (n > kMaxWords) {
      ok = false;
      return {};
    }
    std::vector<std::uint32_t> v(ok ? static_cast<std::size_t>(n) : 0);
    raw(v.data(), v.size() * sizeof(std::uint32_t));
    return v;
  }
  Frame frame() { return Frame(words()); }
  ConfigImage image() {
    ConfigImage img;
    const std::uint32_t frames = u32();
    if (frames > kMaxWords) {
      ok = false;
      return img;
    }
    for (std::uint32_t i = 0; ok && i < frames; ++i) {
      img.frames.push_back(frame());
    }
    const std::uint32_t masks = u32();
    if (masks > kMaxWords) {
      ok = false;
      return img;
    }
    for (std::uint32_t i = 0; ok && i < masks; ++i) {
      img.masks.push_back(frame());
    }
    return img;
  }
  void align() {
    const std::size_t target = (pos + (kTableAlign - 1)) & ~(kTableAlign - 1);
    if (!ok || target > size) {
      ok = false;
      return;
    }
    pos = target;
  }
  /// Length-checked flat table; returns a borrowed pointer into the buffer.
  const std::uint32_t* table(std::uint64_t expect_words) {
    const std::uint64_t n = u64();
    if (!ok || n != expect_words) {
      ok = false;
      return nullptr;
    }
    align();
    const std::size_t bytes =
        static_cast<std::size_t>(n) * sizeof(std::uint32_t);
    if (!need(bytes)) return nullptr;
    const auto* p = reinterpret_cast<const std::uint32_t*>(data + pos);
    pos += bytes;
    return p;
  }

  /// Full-file decode + validation. `borrow` keeps the flat tables as
  /// pointers into `data` (the caller must keep the buffer alive — the mmap
  /// path); otherwise they are copied onto the heap. Returns nullptr on any
  /// truncation, trailing garbage, or identity/geometry mismatch.
  static std::shared_ptr<GoldenModel> parse(
      const std::uint8_t* data, std::size_t size, const fabric::Floorplan& plan,
      const DesignSpec& static_spec, const DesignSpec& app_spec, bool borrow) {
    ModelParser p{data, size};
    char magic[sizeof(kMagic)] = {};
    p.raw(magic, sizeof(magic));
    if (!p.ok || !std::equal(std::begin(magic), std::end(magic), kMagic)) {
      return nullptr;
    }
    if (p.u32() != kFormatVersion) return nullptr;
    // The identity digest seals device, partition layout and specs: a stale
    // file for a different fleet configuration can never be mistaken for
    // this one.
    if (p.str() != GoldenModel::cache_digest(plan, static_spec, app_spec)) {
      return nullptr;
    }

    std::shared_ptr<GoldenModel> model(new GoldenModel());
    model->total_frames_ = p.u32();
    model->words_per_frame_ = p.u32();
    model->nonce_frame_ = p.u32();
    model->app_frame_total_ = p.u32();
    model->static_spec_ = p.spec();
    model->app_spec_ = p.spec();
    const std::uint32_t ranges = p.u32();
    if (ranges > kMaxWords) p.ok = false;
    for (std::uint32_t i = 0; p.ok && i < ranges; ++i) {
      fabric::FrameRange range;
      range.first = p.u32();
      range.count = p.u32();
      model->app_ranges_.push_back(range);
    }
    const std::uint32_t statics = p.u32();
    if (statics > kMaxWords) p.ok = false;
    for (std::uint32_t i = 0; p.ok && i < statics; ++i) {
      fabric::FrameRange range;
      range.first = p.u32();
      range.count = p.u32();
      model->static_images_.emplace_back(range, p.image());
    }
    const std::uint32_t apps = p.u32();
    if (apps > kMaxWords) p.ok = false;
    for (std::uint32_t i = 0; p.ok && i < apps; ++i) {
      model->app_images_.push_back(p.image());
    }
    if (!p.ok) return nullptr;

    // Geometry sanity against the live floorplan before trusting the table
    // lengths (truncated or corrupted tables must not produce a
    // quietly-wrong model).
    const fabric::DeviceModel& device = plan.device();
    if (model->total_frames_ != device.total_frames() ||
        model->words_per_frame_ != device.geometry().words_per_frame()) {
      return nullptr;
    }
    if (model->static_spec_ != static_spec || model->app_spec_ != app_spec) {
      return nullptr;
    }
    const std::uint64_t table_words =
        static_cast<std::uint64_t>(model->total_frames_) *
        model->words_per_frame_;
    const std::uint32_t* mask = p.table(table_words);
    const std::uint32_t* golden = p.table(table_words);
    if (!p.ok) return nullptr;
    // A well-formed file ends exactly at the second table: trailing bytes
    // mean the writer and this reader disagree about the format — reject
    // rather than silently ignoring them.
    if (p.pos != p.size) return nullptr;

    if (borrow) {
      model->mask_table_ = mask;
      model->golden_table_ = golden;
    } else {
      model->mask_words_.assign(mask, mask + table_words);
      model->masked_golden_.assign(golden, golden + table_words);
      model->mask_table_ = model->mask_words_.data();
      model->golden_table_ = model->masked_golden_.data();
    }
    model->zero_frame_ = Frame(model->words_per_frame_);
    return model;
  }
};

std::string GoldenModel::cache_digest(const fabric::Floorplan& plan,
                                      const DesignSpec& static_spec,
                                      const DesignSpec& app_spec) {
  const std::string key = cache_key(plan, static_spec, app_spec);
  const crypto::Sha256Digest digest = crypto::Sha256::compute(
      ByteSpan(reinterpret_cast<const std::uint8_t*>(key.data()), key.size()));
  std::string hex;
  hex.reserve(digest.size() * 2);
  for (const std::uint8_t byte : digest) {
    char buf[3];
    std::snprintf(buf, sizeof(buf), "%02x", byte);
    hex += buf;
  }
  return hex;
}

bool GoldenModel::save(const std::string& path,
                       const fabric::Floorplan& plan) const {
  Writer w;
  w.out.open(path, std::ios::binary | std::ios::trunc);
  if (!w.out.is_open()) return false;
  w.raw(kMagic, sizeof(kMagic));
  w.u32(kFormatVersion);
  w.str(cache_digest(plan, static_spec_, app_spec_));
  w.u32(total_frames_);
  w.u32(words_per_frame_);
  w.u32(nonce_frame_);
  w.u32(app_frame_total_);
  w.spec(static_spec_);
  w.spec(app_spec_);
  w.u32(static_cast<std::uint32_t>(app_ranges_.size()));
  for (const fabric::FrameRange& r : app_ranges_) {
    w.u32(r.first);
    w.u32(r.count);
  }
  w.u32(static_cast<std::uint32_t>(static_images_.size()));
  for (const auto& [range, image] : static_images_) {
    w.u32(range.first);
    w.u32(range.count);
    w.image(image);
  }
  w.u32(static_cast<std::uint32_t>(app_images_.size()));
  for (const ConfigImage& image : app_images_) w.image(image);
  const std::uint64_t table_words =
      static_cast<std::uint64_t>(total_frames_) * words_per_frame_;
  w.table(mask_table_, table_words);
  w.table(golden_table_, table_words);
  return w.ok && !!w.out.flush();
}

std::shared_ptr<const GoldenModel> GoldenModel::load(
    const std::string& path, const fabric::Floorplan& plan,
    const DesignSpec& static_spec, const DesignSpec& app_spec) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return nullptr;
  in.seekg(0, std::ios::end);
  const std::streamoff len = in.tellg();
  if (len <= 0) return nullptr;
  in.seekg(0);
  std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
  if (!in.read(reinterpret_cast<char*>(buf.data()),
               static_cast<std::streamsize>(buf.size()))) {
    return nullptr;
  }
  return ModelParser::parse(buf.data(), buf.size(), plan, static_spec,
                            app_spec, /*borrow=*/false);
}

bool GoldenModel::mapping_supported() {
#if defined(SACHA_GM_MMAP)
  return true;
#else
  return false;
#endif
}

std::shared_ptr<const GoldenModel> GoldenModel::load_mapped(
    const std::string& path, const fabric::Floorplan& plan,
    const DesignSpec& static_spec, const DesignSpec& app_spec) {
#if defined(SACHA_GM_MMAP)
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return nullptr;
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return nullptr;
  }
  const std::size_t len = static_cast<std::size_t>(st.st_size);
  void* base = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (base == MAP_FAILED) return nullptr;
  // Fault the tables in ahead of the verify hot loop instead of paying
  // one major fault per 4 KiB mid-session.
  (void)::madvise(base, len, MADV_WILLNEED);
  auto model = ModelParser::parse(static_cast<const std::uint8_t*>(base), len,
                                  plan, static_spec, app_spec, /*borrow=*/true);
  if (model == nullptr) {
    ::munmap(base, len);
    return nullptr;
  }
  model->map_base_ = base;
  model->map_len_ = len;
  return model;
#else
  // No mmap on this build tier: degrade to the heap copy so callers never
  // have to special-case portability.
  return load(path, plan, static_spec, app_spec);
#endif
}

bool GoldenModel::operator==(const GoldenModel& other) const {
  if (!(static_spec_ == other.static_spec_ && app_spec_ == other.app_spec_ &&
        total_frames_ == other.total_frames_ &&
        words_per_frame_ == other.words_per_frame_ &&
        nonce_frame_ == other.nonce_frame_ &&
        app_frame_total_ == other.app_frame_total_ &&
        app_ranges_ == other.app_ranges_ &&
        static_images_ == other.static_images_ &&
        app_images_ == other.app_images_)) {
    return false;
  }
  // Table contents, not storage: a mapped model compares equal to the heap
  // model it was serialised from.
  const std::size_t table_bytes = static_cast<std::size_t>(total_frames_) *
                                  words_per_frame_ * sizeof(std::uint32_t);
  return std::memcmp(mask_table_, other.mask_table_, table_bytes) == 0 &&
         std::memcmp(golden_table_, other.golden_table_, table_bytes) == 0;
}

std::shared_ptr<const GoldenModel> GoldenModel::shared_cached(
    const fabric::Floorplan& plan, const DesignSpec& static_spec,
    const DesignSpec& app_spec, const std::string& cache_dir,
    CacheSource* source, bool prefer_mapped) {
  ModelCache& cache = model_cache();
  const std::string key = cache_key(plan, static_spec, app_spec);
  std::lock_guard<std::mutex> lock(cache.mutex);
  for (auto it = cache.entries.begin(); it != cache.entries.end();) {
    it = it->second.expired() ? cache.entries.erase(it) : std::next(it);
  }
  if (auto it = cache.entries.find(key); it != cache.entries.end()) {
    if (auto model = it->second.lock()) {
      if (source != nullptr) *source = CacheSource::kInterned;
      return model;
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(cache_dir, ec);
  const std::string path =
      (std::filesystem::path(cache_dir) /
       (cache_digest(plan, static_spec, app_spec) + ".sgm"))
          .string();
  if (auto model = prefer_mapped
                       ? load_mapped(path, plan, static_spec, app_spec)
                       : load(path, plan, static_spec, app_spec)) {
    cache.entries[key] = model;
    if (source != nullptr) {
      *source = model->tables_mapped() ? CacheSource::kMapped
                                       : CacheSource::kLoaded;
    }
    return model;
  }
  auto model = std::make_shared<const GoldenModel>(plan, static_spec, app_spec);
  const bool saved = model->save(path, plan);  // best-effort persist
  if (saved && prefer_mapped) {
    // Re-open our own freshly-written file mapped: the builder shard then
    // shares the same page-cache copy as every later shard on the host.
    if (auto mapped = load_mapped(path, plan, static_spec, app_spec);
        mapped != nullptr && mapped->tables_mapped()) {
      cache.entries[key] = mapped;
      if (source != nullptr) *source = CacheSource::kBuilt;
      return mapped;
    }
  }
  cache.entries[key] = model;
  if (source != nullptr) *source = CacheSource::kBuilt;
  return model;
}

}  // namespace sacha::bitstream
