#include "bitstream/golden_model.hpp"

#include <algorithm>
#include <cassert>
#include <mutex>
#include <string>
#include <unordered_map>

namespace sacha::bitstream {

GoldenModel::GoldenModel(const fabric::Floorplan& plan, DesignSpec static_spec,
                         DesignSpec app_spec)
    : static_spec_(std::move(static_spec)), app_spec_(std::move(app_spec)) {
  assert(plan.validate().ok());
  const fabric::DeviceModel& device = plan.device();
  total_frames_ = device.total_frames();
  words_per_frame_ = device.geometry().words_per_frame();

  std::vector<fabric::FrameRange> stat_ranges;
  std::vector<fabric::FrameRange> dyn_ranges;
  for (const fabric::Partition& p : plan.partitions()) {
    if (p.kind == fabric::PartitionKind::kStatic) stat_ranges.push_back(p.frames);
    if (p.kind == fabric::PartitionKind::kDynamic) dyn_ranges.push_back(p.frames);
  }
  assert(!stat_ranges.empty() && !dyn_ranges.empty());
  const auto by_first = [](const fabric::FrameRange& a,
                           const fabric::FrameRange& b) {
    return a.first < b.first;
  };
  std::sort(stat_ranges.begin(), stat_ranges.end(), by_first);
  std::sort(dyn_ranges.begin(), dyn_ranges.end(), by_first);
  // The nonce occupies its own single-frame partition at the top of the
  // last dynamic region so it can be refreshed without touching the
  // application; the application spans every dynamic region (§2.1.2
  // allows one or more).
  assert(dyn_ranges.back().count >= 2 &&
         "need room for application + nonce frame");
  nonce_frame_ = dyn_ranges.back().end() - 1;
  app_ranges_ = dyn_ranges;
  app_ranges_.back().count -= 1;  // carve the nonce frame out
  if (app_ranges_.back().count == 0) app_ranges_.pop_back();
  for (const fabric::FrameRange& r : app_ranges_) app_frame_total_ += r.count;

  BitGen bitgen(device);
  for (const fabric::FrameRange& r : stat_ranges) {
    static_images_.emplace_back(r, bitgen.generate(r, static_spec_));
  }
  app_images_.reserve(app_ranges_.size());
  for (const fabric::FrameRange& r : app_ranges_) {
    app_images_.push_back(bitgen.generate(r, app_spec_));
  }
  zero_frame_ = Frame(words_per_frame_);

  // Flat tables: one architectural_mask generation per frame for the life of
  // the model (the per-session verifier previously regenerated every mask on
  // every finish()), and golden words pre-masked so the streaming compare is
  // a single AND+compare pass.
  const std::size_t table_words =
      static_cast<std::size_t>(total_frames_) * words_per_frame_;
  mask_words_.resize(table_words);
  masked_golden_.assign(table_words, 0);
  for (std::uint32_t f = 0; f < total_frames_; ++f) {
    const FrameMask mask = architectural_mask(device, f);
    std::uint32_t* mask_row =
        mask_words_.data() + static_cast<std::size_t>(f) * words_per_frame_;
    std::copy(mask.words().begin(), mask.words().end(), mask_row);
    if (f == nonce_frame_) continue;  // golden content is per-session
    const Frame& golden = golden_frame(f);
    std::uint32_t* golden_row =
        masked_golden_.data() + static_cast<std::size_t>(f) * words_per_frame_;
    for (std::uint32_t w = 0; w < words_per_frame_; ++w) {
      golden_row[w] = golden.word(w) & mask_row[w];
    }
  }
}

const ConfigImage& GoldenModel::static_image() const {
  assert(!static_images_.empty() && static_images_.front().first.first == 0 &&
         "BootMem image must start at frame 0");
  return static_images_.front().second;
}

const Frame& GoldenModel::golden_frame(std::uint32_t index) const {
  if (index == nonce_frame_) return zero_frame_;
  for (std::size_t region = 0; region < app_ranges_.size(); ++region) {
    if (app_ranges_[region].contains(index)) {
      return app_images_[region].frames[index - app_ranges_[region].first];
    }
  }
  for (const auto& [range, image] : static_images_) {
    if (range.contains(index)) return image.frames[index - range.first];
  }
  // Frames outside every partition are never configured: golden is zero.
  return zero_frame_;
}

std::size_t GoldenModel::footprint_bytes() const {
  std::size_t bytes = (mask_words_.size() + masked_golden_.size()) * 4;
  const auto image_bytes = [](const ConfigImage& image) {
    std::size_t b = 0;
    for (const Frame& f : image.frames) b += f.words().size() * 4;
    for (const FrameMask& m : image.masks) b += m.words().size() * 4;
    return b;
  };
  for (const auto& [range, image] : static_images_) bytes += image_bytes(image);
  for (const ConfigImage& image : app_images_) bytes += image_bytes(image);
  return bytes;
}

namespace {

struct ModelCache {
  std::mutex mutex;
  std::unordered_map<std::string, std::weak_ptr<const GoldenModel>> entries;
};

ModelCache& model_cache() {
  static ModelCache cache;
  return cache;
}

/// Everything the model content depends on: device identity and geometry,
/// partition layout, and both design specs.
std::string cache_key(const fabric::Floorplan& plan,
                      const DesignSpec& static_spec,
                      const DesignSpec& app_spec) {
  std::string key = plan.device().name();
  key += '/' + std::to_string(plan.device().total_frames());
  key += 'x' + std::to_string(plan.device().geometry().words_per_frame());
  for (const fabric::Partition& p : plan.partitions()) {
    key += p.kind == fabric::PartitionKind::kStatic ? "|s" : "|d";
    key += std::to_string(p.frames.first) + '+' + std::to_string(p.frames.count);
  }
  key += "|static=" + static_spec.name + '#' + std::to_string(static_spec.seed);
  key += "|app=" + app_spec.name + '#' + std::to_string(app_spec.seed);
  return key;
}

}  // namespace

std::shared_ptr<const GoldenModel> GoldenModel::shared(
    const fabric::Floorplan& plan, const DesignSpec& static_spec,
    const DesignSpec& app_spec) {
  ModelCache& cache = model_cache();
  const std::string key = cache_key(plan, static_spec, app_spec);
  std::lock_guard<std::mutex> lock(cache.mutex);
  for (auto it = cache.entries.begin(); it != cache.entries.end();) {
    it = it->second.expired() ? cache.entries.erase(it) : std::next(it);
  }
  if (auto it = cache.entries.find(key); it != cache.entries.end()) {
    if (auto model = it->second.lock()) return model;
  }
  auto model = std::make_shared<const GoldenModel>(plan, static_spec, app_spec);
  cache.entries[key] = model;
  return model;
}

std::size_t GoldenModel::live_cache_entries() {
  ModelCache& cache = model_cache();
  std::lock_guard<std::mutex> lock(cache.mutex);
  std::size_t live = 0;
  for (const auto& [key, entry] : cache.entries) {
    if (!entry.expired()) ++live;
  }
  return live;
}

}  // namespace sacha::bitstream
