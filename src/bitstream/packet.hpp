// Configuration packet codec.
//
// Xilinx configuration ports (ICAP included) speak a word-oriented command
// language: a sync word, then type-1 packets that read or write
// configuration registers (FAR, FDRI, FDRO, CMD, CRC, ...). We implement a
// faithful subset sufficient for partial configuration and readback; the
// synthetic partial bitstreams the verifier ships are encoded in this
// format, and the ICAP model decodes it. Parsing is defensive: attestation
// must survive malformed input from the network.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "fabric/geometry.hpp"

namespace sacha::bitstream {

inline constexpr std::uint32_t kSyncWord = 0xAA995566;
inline constexpr std::uint32_t kNoopWord = 0x20000000;

/// Configuration registers (subset of the Virtex-6 set).
enum class ConfigReg : std::uint32_t {
  kCrc = 0,
  kFar = 1,
  kFdri = 2,  // frame data input
  kFdro = 3,  // frame data output
  kCmd = 4,
  kIdcode = 12,
};

/// CMD register opcodes.
enum class CmdOp : std::uint32_t {
  kNull = 0,
  kWcfg = 1,    // enable configuration writes
  kRcfg = 4,    // enable configuration reads
  kDesync = 13,
};

// Decoded operations, in stream order.
struct OpSync {
  bool operator==(const OpSync&) const = default;
};
struct OpNoop {
  bool operator==(const OpNoop&) const = default;
};
struct OpWriteFar {
  fabric::FrameAddress address;
  bool operator==(const OpWriteFar&) const = default;
};
struct OpCmd {
  CmdOp op = CmdOp::kNull;
  bool operator==(const OpCmd&) const = default;
};
struct OpWriteIdcode {
  std::uint32_t idcode = 0;
  bool operator==(const OpWriteIdcode&) const = default;
};
struct OpWriteFrames {
  std::vector<std::uint32_t> words;  // multiple of words-per-frame
  bool operator==(const OpWriteFrames&) const = default;
};
struct OpReadRequest {
  std::uint32_t word_count = 0;
  bool operator==(const OpReadRequest&) const = default;
};
struct OpCrc {
  std::uint32_t value = 0;
  bool operator==(const OpCrc&) const = default;
};

using ConfigOp = std::variant<OpSync, OpNoop, OpWriteFar, OpCmd, OpWriteIdcode,
                              OpWriteFrames, OpReadRequest, OpCrc>;

/// Builds a word stream from operations.
class PacketWriter {
 public:
  void sync();
  void noop(std::uint32_t count = 1);
  void write_far(const fabric::FrameAddress& address);
  void cmd(CmdOp op);
  void write_idcode(std::uint32_t idcode);
  void write_frames(std::span<const std::uint32_t> words);
  void read_request(std::uint32_t word_count);
  void crc(std::uint32_t value);

  const std::vector<std::uint32_t>& words() const { return words_; }
  Bytes to_bytes() const;

 private:
  void type1(std::uint32_t opcode, ConfigReg reg, std::uint32_t word_count);
  void type2(std::uint32_t opcode, std::uint32_t word_count);
  std::vector<std::uint32_t> words_;
};

/// Parses a word stream back into operations. Returns an error for unknown
/// registers/opcodes, truncated payloads, or data before the sync word.
Result<std::vector<ConfigOp>> parse_packets(std::span<const std::uint32_t> words);

/// Convenience: bytes -> words (big-endian); size must be a multiple of 4.
Result<std::vector<std::uint32_t>> words_from_bytes(ByteSpan data);

/// CRC over a word stream (the model uses CRC-32/BZIP2-style polynomial over
/// big-endian bytes; the real device uses a hardware CRC — only internal
/// consistency matters here).
std::uint32_t stream_crc(std::span<const std::uint32_t> words);

}  // namespace sacha::bitstream
