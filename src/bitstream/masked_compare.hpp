// Wide masked golden-compare.
//
// The streaming verifier's second hot loop (next to the CMAC fold): per
// readback frame, check that the received words agree with the pre-masked
// golden words on every mask=1 bit. The scalar OR-reduction is already
// branch-free; this header lifts it to wide loads — four words per SSE2
// step (eight with AVX2 when the build opts in via -mavx2/-march=native) —
// so the compare costs a fraction of the AES fold it rides beside instead
// of a comparable number of scalar ops. SACHA_PORTABLE (the CI scalar-tier
// build) compiles the plain loop, which is also the cross-check oracle.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__SSE2__) && !defined(SACHA_PORTABLE)
#define SACHA_MASKED_COMPARE_SIMD 1
#if defined(__AVX2__)
#include <immintrin.h>
#else
#include <emmintrin.h>
#endif
#endif

namespace sacha::bitstream {

/// True iff ((received[i] & mask[i]) ^ golden[i]) == 0 for all i < n, with
/// `golden` already masked (golden & mask precomputed). OR-accumulates the
/// difference instead of early-exiting: frames are short (tens of words)
/// and almost always match, so the single wide pass beats a branchy scan.
inline bool masked_words_match(const std::uint32_t* received,
                               const std::uint32_t* mask,
                               const std::uint32_t* golden, std::size_t n) {
  std::size_t i = 0;
  std::uint32_t diff = 0;
#if defined(SACHA_MASKED_COMPARE_SIMD)
#if defined(__AVX2__)
  __m256i wide = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(received + i));
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    const __m256i g =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(golden + i));
    wide = _mm256_or_si256(wide, _mm256_xor_si256(_mm256_and_si256(r, m), g));
  }
  __m128i acc = _mm_or_si128(_mm256_castsi256_si128(wide),
                             _mm256_extracti128_si256(wide, 1));
#else
  __m128i acc = _mm_setzero_si128();
#endif
  for (; i + 4 <= n; i += 4) {
    const __m128i r =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(received + i));
    const __m128i m =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(mask + i));
    const __m128i g =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(golden + i));
    acc = _mm_or_si128(acc, _mm_xor_si128(_mm_and_si128(r, m), g));
  }
  // All-zero accumulator ⇔ every byte compares equal to zero.
  diff = static_cast<std::uint32_t>(
             _mm_movemask_epi8(_mm_cmpeq_epi8(acc, _mm_setzero_si128()))) ^
         0xFFFFu;
#endif
  for (; i < n; ++i) diff |= (received[i] & mask[i]) ^ golden[i];
  return diff == 0;
}

}  // namespace sacha::bitstream
