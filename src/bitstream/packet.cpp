#include "bitstream/packet.hpp"

#include <cassert>

namespace sacha::bitstream {

namespace {

// Type-1 packet header layout (Virtex-6 style):
//   [31:29] = 001, [28:27] = opcode (00 nop, 01 read, 10 write),
//   [26:13] = register address, [12:11] = reserved, [10:0] = word count.
// Type-2 packets ([31:29] = 010) extend the word count of the preceding
// type-1 packet to 27 bits for long FDRI/FDRO bursts.
constexpr std::uint32_t kType1 = 0x1u << 29;
constexpr std::uint32_t kType2 = 0x2u << 29;
constexpr std::uint32_t kOpcodeNop = 0x0u << 27;
constexpr std::uint32_t kOpcodeRead = 0x1u << 27;
constexpr std::uint32_t kOpcodeWrite = 0x2u << 27;
constexpr std::uint32_t kType1MaxCount = 0x7ff;
constexpr std::uint32_t kType2MaxCount = 0x07ffffff;

std::uint32_t header_type(std::uint32_t word) { return word >> 29; }
std::uint32_t header_opcode(std::uint32_t word) { return (word >> 27) & 0x3; }
std::uint32_t header_reg(std::uint32_t word) { return (word >> 13) & 0x3fff; }
std::uint32_t header_count1(std::uint32_t word) { return word & kType1MaxCount; }
std::uint32_t header_count2(std::uint32_t word) { return word & kType2MaxCount; }

}  // namespace

void PacketWriter::type1(std::uint32_t opcode, ConfigReg reg,
                         std::uint32_t word_count) {
  assert(word_count <= kType1MaxCount);
  words_.push_back(kType1 | opcode | (static_cast<std::uint32_t>(reg) << 13) |
                   word_count);
}

void PacketWriter::type2(std::uint32_t opcode, std::uint32_t word_count) {
  assert(word_count <= kType2MaxCount);
  words_.push_back(kType2 | opcode | word_count);
}

void PacketWriter::sync() { words_.push_back(kSyncWord); }

void PacketWriter::noop(std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) words_.push_back(kNoopWord);
}

void PacketWriter::write_far(const fabric::FrameAddress& address) {
  type1(kOpcodeWrite, ConfigReg::kFar, 1);
  words_.push_back(address.pack());
}

void PacketWriter::cmd(CmdOp op) {
  type1(kOpcodeWrite, ConfigReg::kCmd, 1);
  words_.push_back(static_cast<std::uint32_t>(op));
}

void PacketWriter::write_idcode(std::uint32_t idcode) {
  type1(kOpcodeWrite, ConfigReg::kIdcode, 1);
  words_.push_back(idcode);
}

void PacketWriter::write_frames(std::span<const std::uint32_t> words) {
  if (words.size() <= kType1MaxCount) {
    type1(kOpcodeWrite, ConfigReg::kFdri,
          static_cast<std::uint32_t>(words.size()));
  } else {
    // Long burst: zero-length type-1 header followed by a type-2 extension.
    type1(kOpcodeWrite, ConfigReg::kFdri, 0);
    type2(kOpcodeWrite, static_cast<std::uint32_t>(words.size()));
  }
  words_.insert(words_.end(), words.begin(), words.end());
}

void PacketWriter::read_request(std::uint32_t word_count) {
  if (word_count <= kType1MaxCount) {
    type1(kOpcodeRead, ConfigReg::kFdro, word_count);
  } else {
    type1(kOpcodeRead, ConfigReg::kFdro, 0);
    type2(kOpcodeRead, word_count);
  }
}

void PacketWriter::crc(std::uint32_t value) {
  type1(kOpcodeWrite, ConfigReg::kCrc, 1);
  words_.push_back(value);
}

Bytes PacketWriter::to_bytes() const {
  Bytes out;
  out.reserve(words_.size() * 4);
  for (std::uint32_t w : words_) put_u32be(out, w);
  return out;
}

Result<std::vector<ConfigOp>> parse_packets(
    std::span<const std::uint32_t> words) {
  std::vector<ConfigOp> ops;
  std::size_t i = 0;
  bool synced = false;
  while (i < words.size()) {
    const std::uint32_t w = words[i];
    if (!synced) {
      if (w == kSyncWord) {
        ops.push_back(OpSync{});
        synced = true;
        ++i;
        continue;
      }
      return Result<std::vector<ConfigOp>>::error(
          "data before sync word at offset " + std::to_string(i));
    }
    if (w == kNoopWord) {
      ops.push_back(OpNoop{});
      ++i;
      continue;
    }
    if (header_type(w) != 1) {
      return Result<std::vector<ConfigOp>>::error(
          "unexpected packet type at offset " + std::to_string(i));
    }
    const std::uint32_t opcode = header_opcode(w);
    const std::uint32_t reg = header_reg(w);
    std::uint32_t count = header_count1(w);
    ++i;
    // A zero-count type-1 may be extended by a type-2 packet.
    if (count == 0 && i < words.size() && header_type(words[i]) == 2) {
      if (header_opcode(words[i]) != opcode) {
        return Result<std::vector<ConfigOp>>::error(
            "type-2 opcode mismatch at offset " + std::to_string(i));
      }
      count = header_count2(words[i]);
      ++i;
    }
    if (opcode == kOpcodeRead >> 27) {
      if (static_cast<ConfigReg>(reg) != ConfigReg::kFdro) {
        return Result<std::vector<ConfigOp>>::error(
            "read from unsupported register " + std::to_string(reg));
      }
      ops.push_back(OpReadRequest{count});
      continue;
    }
    if (opcode != kOpcodeWrite >> 27) {
      return Result<std::vector<ConfigOp>>::error(
          "unsupported opcode at offset " + std::to_string(i - 1));
    }
    if (i + count > words.size()) {
      return Result<std::vector<ConfigOp>>::error(
          "truncated payload: need " + std::to_string(count) + " words at offset " +
          std::to_string(i));
    }
    switch (static_cast<ConfigReg>(reg)) {
      case ConfigReg::kFar:
        if (count != 1) {
          return Result<std::vector<ConfigOp>>::error("FAR write count != 1");
        }
        ops.push_back(OpWriteFar{fabric::FrameAddress::unpack(words[i])});
        break;
      case ConfigReg::kCmd: {
        if (count != 1) {
          return Result<std::vector<ConfigOp>>::error("CMD write count != 1");
        }
        const std::uint32_t op = words[i];
        if (op != static_cast<std::uint32_t>(CmdOp::kNull) &&
            op != static_cast<std::uint32_t>(CmdOp::kWcfg) &&
            op != static_cast<std::uint32_t>(CmdOp::kRcfg) &&
            op != static_cast<std::uint32_t>(CmdOp::kDesync)) {
          return Result<std::vector<ConfigOp>>::error("unknown CMD opcode " +
                                                      std::to_string(op));
        }
        ops.push_back(OpCmd{static_cast<CmdOp>(op)});
        break;
      }
      case ConfigReg::kIdcode:
        if (count != 1) {
          return Result<std::vector<ConfigOp>>::error("IDCODE write count != 1");
        }
        ops.push_back(OpWriteIdcode{words[i]});
        break;
      case ConfigReg::kFdri: {
        OpWriteFrames op;
        op.words.assign(words.begin() + static_cast<std::ptrdiff_t>(i),
                        words.begin() + static_cast<std::ptrdiff_t>(i + count));
        ops.push_back(std::move(op));
        break;
      }
      case ConfigReg::kCrc:
        if (count != 1) {
          return Result<std::vector<ConfigOp>>::error("CRC write count != 1");
        }
        ops.push_back(OpCrc{words[i]});
        break;
      default:
        return Result<std::vector<ConfigOp>>::error(
            "write to unsupported register " + std::to_string(reg));
    }
    i += count;
  }
  return ops;
}

Result<std::vector<std::uint32_t>> words_from_bytes(ByteSpan data) {
  if (data.size() % 4 != 0) {
    return Result<std::vector<std::uint32_t>>::error(
        "byte stream not word aligned: " + std::to_string(data.size()));
  }
  std::vector<std::uint32_t> words(data.size() / 4);
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = get_u32be(data, i * 4);
  }
  return words;
}

std::uint32_t stream_crc(std::span<const std::uint32_t> words) {
  // CRC-32 (reflected, poly 0xEDB88320) over the big-endian byte expansion.
  std::uint32_t crc = 0xffffffff;
  auto feed = [&crc](std::uint8_t byte) {
    crc ^= byte;
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  };
  for (std::uint32_t w : words) {
    feed(static_cast<std::uint8_t>(w >> 24));
    feed(static_cast<std::uint8_t>(w >> 16));
    feed(static_cast<std::uint8_t>(w >> 8));
    feed(static_cast<std::uint8_t>(w));
  }
  return ~crc;
}

}  // namespace sacha::bitstream
