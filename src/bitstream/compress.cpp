#include "bitstream/compress.hpp"

#include <array>
#include <cstring>
#include <vector>

namespace sacha::bitstream {

namespace {
constexpr std::size_t kWindow = 64 * 1024;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kMaxLiteralRun = 255;
constexpr std::uint8_t kLiteralTag = 0x00;
constexpr std::uint8_t kMatchTag = 0x01;

/// 3-byte hash chaining for match search.
std::uint32_t hash3(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 16 ^
          static_cast<std::uint32_t>(p[1]) << 8 ^ p[2]) *
             2654435761u >>
         18;
}
}  // namespace

Bytes lz_compress(ByteSpan data) {
  Bytes out;
  out.reserve(data.size() / 2 + 16);
  put_u32be(out, static_cast<std::uint32_t>(data.size()));

  std::vector<std::int64_t> head(1u << 14, -1);
  std::vector<std::int64_t> prev(data.size(), -1);

  Bytes literals;
  const auto flush_literals = [&] {
    std::size_t pos = 0;
    while (pos < literals.size()) {
      const std::size_t run = std::min(kMaxLiteralRun, literals.size() - pos);
      out.push_back(kLiteralTag);
      out.push_back(static_cast<std::uint8_t>(run));
      out.insert(out.end(), literals.begin() + static_cast<std::ptrdiff_t>(pos),
                 literals.begin() + static_cast<std::ptrdiff_t>(pos + run));
      pos += run;
    }
    literals.clear();
  };

  std::size_t i = 0;
  while (i < data.size()) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= data.size()) {
      const std::uint32_t h = hash3(&data[i]);
      std::int64_t candidate = head[h];
      int probes = 16;
      while (candidate >= 0 && probes-- > 0 &&
             i - static_cast<std::size_t>(candidate) <= kWindow) {
        const auto c = static_cast<std::size_t>(candidate);
        std::size_t len = 0;
        const std::size_t limit = std::min(kMaxMatch, data.size() - i);
        while (len < limit && data[c + len] == data[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
        }
        candidate = prev[c];
      }
      // Insert into the chain.
      prev[i] = head[h];
      head[h] = static_cast<std::int64_t>(i);
    }
    if (best_len >= kMinMatch) {
      flush_literals();
      out.push_back(kMatchTag);
      out.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      put_u16be(out, static_cast<std::uint16_t>(best_dist));
      // Insert skipped positions into the chain so later matches see them.
      for (std::size_t k = 1; k < best_len && i + k + 2 < data.size(); ++k) {
        const std::uint32_t h = hash3(&data[i + k]);
        prev[i + k] = head[h];
        head[h] = static_cast<std::int64_t>(i + k);
      }
      i += best_len;
    } else {
      literals.push_back(data[i]);
      ++i;
    }
  }
  flush_literals();
  return out;
}

Result<Bytes> lz_decompress(ByteSpan compressed) {
  using R = Result<Bytes>;
  if (compressed.size() < 4) return R::error("truncated header");
  const std::uint32_t original = get_u32be(compressed, 0);
  Bytes out;
  out.reserve(original);
  std::size_t i = 4;
  while (i < compressed.size()) {
    const std::uint8_t tag = compressed[i++];
    if (tag == kLiteralTag) {
      if (i >= compressed.size()) return R::error("truncated literal run");
      const std::size_t run = compressed[i++];
      if (i + run > compressed.size()) return R::error("literal overruns input");
      out.insert(out.end(), compressed.begin() + static_cast<std::ptrdiff_t>(i),
                 compressed.begin() + static_cast<std::ptrdiff_t>(i + run));
      i += run;
    } else if (tag == kMatchTag) {
      if (i + 3 > compressed.size()) return R::error("truncated match token");
      const std::size_t len = kMinMatch + compressed[i];
      const std::size_t dist = get_u16be(compressed, i + 1);
      i += 3;
      if (dist == 0 || dist > out.size()) return R::error("bad match distance");
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[out.size() - dist]);
      }
    } else {
      return R::error("unknown token tag");
    }
    if (out.size() > original) return R::error("output exceeds declared size");
  }
  if (out.size() != original) return R::error("size mismatch after decompress");
  return out;
}

Bytes rle_compress(ByteSpan data) {
  Bytes out;
  put_u32be(out, static_cast<std::uint32_t>(data.size()));
  std::size_t i = 0;
  while (i < data.size()) {
    std::size_t run = 1;
    while (i + run < data.size() && run < 255 && data[i + run] == data[i]) {
      ++run;
    }
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(data[i]);
    i += run;
  }
  return out;
}

Result<Bytes> rle_decompress(ByteSpan compressed) {
  using R = Result<Bytes>;
  if (compressed.size() < 4) return R::error("truncated header");
  const std::uint32_t original = get_u32be(compressed, 0);
  if ((compressed.size() - 4) % 2 != 0) return R::error("odd token stream");
  Bytes out;
  out.reserve(original);
  for (std::size_t i = 4; i + 1 < compressed.size(); i += 2) {
    const std::size_t run = compressed[i];
    if (run == 0) return R::error("zero-length run");
    out.insert(out.end(), run, compressed[i + 1]);
    if (out.size() > original) return R::error("output exceeds declared size");
  }
  if (out.size() != original) return R::error("size mismatch after decompress");
  return out;
}

double compression_ratio(std::size_t original, std::size_t compressed) {
  if (original == 0) return 1.0;
  return static_cast<double>(compressed) / static_cast<double>(original);
}

}  // namespace sacha::bitstream
