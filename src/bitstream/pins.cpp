#include "bitstream/pins.hpp"

#include "bitstream/bitgen.hpp"

#include <sstream>

namespace sacha::bitstream {

namespace {
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

PinBit pin_bit_location(const fabric::DeviceModel& device, std::uint32_t pin) {
  const std::uint32_t logic_frames =
      device.geometry().block(fabric::BlockType::kLogic).frames();
  const std::uint32_t frame_bits = device.geometry().words_per_frame() * 32;
  // Deterministic spread over the logic frames; stable per device name.
  std::uint64_t h = mix((static_cast<std::uint64_t>(pin) << 32) ^
                        fnv1a(device.name()) ^ 0x10Bu);
  PinBit location;
  // Re-salt until the chosen position is a configuration (mask-1) bit: an
  // IOB enable is configuration, never runtime flip-flop state.
  for (std::uint64_t salt = 0;; ++salt) {
    const std::uint64_t g = mix(h ^ (salt * 0x9e3779b97f4a7c15ULL));
    location.frame = static_cast<std::uint32_t>(g % logic_frames);
    location.bit = static_cast<std::uint32_t>(mix(g ^ 0x9e3779b9ULL) % frame_bits);
    if (architectural_mask(device, location.frame).get_bit(location.bit)) break;
  }
  return location;
}

BitVec extract_pin_map(const fabric::DeviceModel& device, const FrameView& frame_of) {
  const std::uint32_t pins = device.totals().iob;
  BitVec map(pins);
  for (std::uint32_t pin = 0; pin < pins; ++pin) {
    const PinBit loc = pin_bit_location(device, pin);
    const std::vector<std::uint32_t>& words = frame_of(loc.frame);
    map.set(pin, (words[loc.bit / 32] >> (loc.bit % 32)) & 1u);
  }
  return map;
}

PinDiff diff_pin_maps(const BitVec& expected, const BitVec& observed) {
  PinDiff diff;
  for (std::size_t pin = 0; pin < expected.size(); ++pin) {
    if (expected.get(pin) == observed.get(pin)) continue;
    if (observed.get(pin)) {
      diff.newly_enabled.push_back(static_cast<std::uint32_t>(pin));
    } else {
      diff.newly_disabled.push_back(static_cast<std::uint32_t>(pin));
    }
  }
  return diff;
}

std::string PinDiff::to_string() const {
  std::ostringstream os;
  if (empty()) return "no pin changes";
  if (!newly_enabled.empty()) {
    os << "unexpected connections on pin(s):";
    for (std::uint32_t p : newly_enabled) os << ' ' << p;
  }
  if (!newly_disabled.empty()) {
    if (!newly_enabled.empty()) os << "; ";
    os << "missing expected connections on pin(s):";
    for (std::uint32_t p : newly_disabled) os << ' ' << p;
  }
  return os.str();
}

}  // namespace sacha::bitstream
