#include "bitstream/frame.hpp"

#include <cassert>

namespace sacha::bitstream {

Bytes Frame::to_bytes() const {
  Bytes out;
  out.reserve(words_.size() * 4);
  for (std::uint32_t w : words_) put_u32be(out, w);
  return out;
}

Frame Frame::from_bytes(ByteSpan data) {
  assert(data.size() % 4 == 0);
  std::vector<std::uint32_t> words(data.size() / 4);
  for (std::size_t i = 0; i < words.size(); ++i) {
    words[i] = get_u32be(data, i * 4);
  }
  return Frame(std::move(words));
}

void Frame::flip_bit(std::uint32_t bit) {
  assert(bit < bit_count());
  words_[bit / 32] ^= (1u << (bit % 32));
}

bool Frame::get_bit(std::uint32_t bit) const {
  assert(bit < bit_count());
  return (words_[bit / 32] >> (bit % 32)) & 1u;
}

void Frame::set_bit(std::uint32_t bit, bool value) {
  assert(bit < bit_count());
  const std::uint32_t mask = 1u << (bit % 32);
  if (value) {
    words_[bit / 32] |= mask;
  } else {
    words_[bit / 32] &= ~mask;
  }
}

Frame apply_mask(const Frame& frame, const FrameMask& mask) {
  assert(frame.size() == mask.size());
  Frame out = frame;
  for (std::uint32_t i = 0; i < out.size(); ++i) {
    out.set_word(i, out.word(i) & mask.word(i));
  }
  return out;
}

bool masked_equal(const Frame& a, const Frame& b, const FrameMask& mask) {
  assert(a.size() == b.size() && a.size() == mask.size());
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    if ((a.word(i) & mask.word(i)) != (b.word(i) & mask.word(i))) return false;
  }
  return true;
}

}  // namespace sacha::bitstream
