// Attack test-bench environment.
//
// Builds fresh, mutually consistent verifier/prover pairs so each adversary
// experiment starts from a clean provisioned device. Two device scales are
// provided: the 16-frame test device (fast, used by tests) and the full
// Virtex-6 proof-of-concept floorplan (used by the security bench).
#pragma once

#include "core/prover.hpp"
#include "core/session.hpp"
#include "core/verifier.hpp"

namespace sacha::attacks {

struct AttackEnv {
  fabric::Floorplan plan;
  bitstream::DesignSpec static_spec{"sacha-static-v1", 1};
  bitstream::DesignSpec app_spec{"intended-app-v1", 1};
  crypto::AesKey key{};
  std::uint64_t seed = 1;
  core::VerifierOptions verifier_options{};
  core::SessionOptions session_options{};
  core::ProverOptions prover_options{};

  core::SachaVerifier make_verifier() const;

  /// A provisioned device. `genuine_key` false models an impersonator or a
  /// cloned board that never went through enrollment.
  core::SachaProver make_prover(bool genuine_key = true) const;

  /// 16-frame device, sub-millisecond sessions.
  static AttackEnv small(std::uint64_t seed = 1);
  /// Full XC6VLX240T floorplan (28,488 frames).
  static AttackEnv virtex6(std::uint64_t seed = 1);
};

}  // namespace sacha::attacks
