#include "attacks/library.hpp"

#include "bitstream/bitgen.hpp"
#include "bitstream/pins.hpp"
#include "config/bram_buffer.hpp"
#include "crypto/prg.hpp"

namespace sacha::attacks {

namespace bs = sacha::bitstream;
using core::AttestationReport;
using core::Response;
using core::ResponseType;
using core::run_attestation;
using core::SessionHooks;

const char* to_string(AttackResult result) {
  switch (result) {
    case AttackResult::kDetected: return "DETECTED";
    case AttackResult::kPrevented: return "PREVENTED";
    case AttackResult::kUndetected: return "UNDETECTED";
  }
  return "?";
}

namespace {

/// First dynamic frame of the floorplan.
std::uint32_t first_dyn_frame(const AttackEnv& env) {
  for (const auto& p : env.plan.partitions()) {
    if (p.kind == fabric::PartitionKind::kDynamic) return p.frames.first;
  }
  return 0;
}

AttackOutcome outcome_from(const Attack& attack, const AttestationReport& report,
                           std::string evidence_if_detected) {
  AttackOutcome outcome;
  outcome.name = attack.name();
  outcome.verdict = report.verdict;
  if (report.verdict.ok()) {
    outcome.result = AttackResult::kUndetected;
    outcome.evidence = "verifier accepted a compromised run";
  } else {
    outcome.result = AttackResult::kDetected;
    outcome.evidence = std::move(evidence_if_detected) + " (" +
                       report.verdict.detail + ")";
  }
  return outcome;
}

}  // namespace

// ------------------------------------------------------- DynPartTamper

std::string DynPartTamperAttack::description() const {
  return "malicious hardware module inserted in the dynamic partition after "
         "configuration";
}

AttackOutcome DynPartTamperAttack::run(const AttackEnv& env) const {
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const std::uint32_t target = first_dyn_frame(env) + 1;
  SessionHooks hooks;
  hooks.after_config = [target](core::SachaProver& p) {
    bs::Frame frame = p.memory().config_frame(target);
    frame.flip_bit(64);  // reroute one LUT input: a minimal hardware trojan
    p.memory().write_frame(target, frame);
  };
  const auto report = run_attestation(verifier, prover, env.session_options, hooks);
  return outcome_from(*this, report,
                      "masked compare caught the modified dynamic frame");
}

// ------------------------------------------------------ StatPartTamper

std::string StatPartTamperAttack::description() const {
  return "malicious logic added to the static partition";
}

AttackOutcome StatPartTamperAttack::run(const AttackEnv& env) const {
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  SessionHooks hooks;
  hooks.after_config = [](core::SachaProver& p) {
    bs::Frame frame = p.memory().config_frame(0);  // StatPart frame
    frame.flip_bit(10);
    p.memory().write_frame(0, frame);
  };
  const auto report = run_attestation(verifier, prover, env.session_options, hooks);
  return outcome_from(*this, report,
                      "full-memory readback covers the static partition too");
}

// ------------------------------------------------------- Impersonation

std::string ImpersonationAttack::description() const {
  return "cloned/impersonated prover answering without the device key";
}

AttackOutcome ImpersonationAttack::run(const AttackEnv& env) const {
  auto verifier = env.make_verifier();
  auto prover = env.make_prover(/*genuine_key=*/false);
  const auto report = run_attestation(verifier, prover, env.session_options);
  return outcome_from(*this, report, "MAC keyed by the PUF-bound device key");
}

// ------------------------------------------------------------ ProxyMac

std::string ProxyMacAttack::description() const {
  return "external device computes/forges the MAC while observing all frames";
}

AttackOutcome ProxyMacAttack::run(const AttackEnv& env) const {
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  // The proxy sees every frame on the public channel and MACs them with its
  // best guess of the key, substituting the device's answer.
  crypto::Prg prg(env.seed, "proxy-key-guess");
  const crypto::AesKey proxy_key = prg.key();
  auto proxy_mac = std::make_shared<crypto::Cmac>(proxy_key);
  SessionHooks hooks;
  hooks.on_response = [proxy_mac](Bytes& reply) {
    auto decoded = Response::decode(reply);
    if (!decoded.ok()) return true;
    Response response = std::move(decoded).take();
    if (response.type == ResponseType::kFrameData) {
      Bytes frame_bytes;
      for (std::uint32_t w : response.frame_words) put_u32be(frame_bytes, w);
      proxy_mac->update(frame_bytes);
      return true;
    }
    if (response.type == ResponseType::kMacValue) {
      response.mac = proxy_mac->finalize();  // forge
      reply = response.encode();
    }
    return true;
  };
  const auto report = run_attestation(verifier, prover, env.session_options, hooks);
  return outcome_from(*this, report,
                      "proxy cannot produce MAC_K without the shared key");
}

// -------------------------------------------------------------- Replay

std::string ReplayAttack::description() const {
  return "responses of an earlier honest session replayed to mask tampering";
}

AttackOutcome ReplayAttack::run(const AttackEnv& env) const {
  // One long-lived verifier and device: the nonce and readback order roll
  // over between the two sessions, which is exactly what defeats the replay.
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();

  // Session 1: honest; the adversary records every response.
  auto recorded = std::make_shared<std::vector<Bytes>>();
  {
    SessionHooks record_hooks;
    record_hooks.on_response = [recorded](Bytes& reply) {
      recorded->push_back(reply);
      return true;
    };
    (void)run_attestation(verifier, prover, env.session_options, record_hooks);
  }

  // Session 2: the device is compromised; the adversary substitutes the
  // recorded transcript for the live responses.
  const std::uint32_t target = first_dyn_frame(env);
  auto cursor = std::make_shared<std::size_t>(0);
  SessionHooks hooks;
  hooks.after_config = [target](core::SachaProver& p) {
    bs::Frame frame = p.memory().config_frame(target);
    frame.flip_bit(5);
    p.memory().write_frame(target, frame);
  };
  hooks.on_response = [recorded, cursor](Bytes& reply) {
    if (*cursor < recorded->size()) {
      reply = (*recorded)[(*cursor)++];
    }
    return true;
  };
  const auto report = run_attestation(verifier, prover, env.session_options, hooks);
  return outcome_from(*this, report,
                      "fresh nonce and fresh readback order invalidate the "
                      "recorded transcript");
}

// --------------------------------------------------------- NonceFreeze

std::string NonceFreezeAttack::description() const {
  return "nonce-update configuration command suppressed to keep the old nonce";
}

AttackOutcome NonceFreezeAttack::run(const AttackEnv& env) const {
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const std::uint32_t nonce_frame = verifier.nonce_frame_index();
  const auto& geometry = env.plan.device().geometry();
  SessionHooks hooks;
  hooks.on_command = [nonce_frame, &geometry](Bytes& packet) {
    auto decoded = core::Command::decode(packet);
    if (!decoded.ok() || decoded.value().type != core::CommandType::kIcapConfig) {
      return true;
    }
    // Inspect the embedded ICAP program for a FAR write to the nonce frame.
    auto parsed = bs::parse_packets(decoded.value().stream);
    if (!parsed.ok()) return true;
    for (const auto& op : parsed.value()) {
      if (const auto* far = std::get_if<bs::OpWriteFar>(&op)) {
        if (geometry.valid(far->address) &&
            geometry.linear_index(far->address) == nonce_frame) {
          return false;  // drop the nonce configuration
        }
      }
    }
    return true;
  };
  const auto report = run_attestation(verifier, prover, env.session_options, hooks);
  return outcome_from(*this, report,
                      "stale nonce frame fails the masked golden compare");
}

// --------------------------------------------------------- BramStaging

std::string BramStagingAttack::description() const {
  return "resident malware tries to stash itself in on-fabric BRAM across "
         "the overwrite";
}

AttackOutcome BramStagingAttack::run(const AttackEnv& env) const {
  AttackOutcome outcome;
  outcome.name = name();

  // Layer 1 — capacity: the snapshot the malware needs is the dynamic
  // region's bitstream; the staging memory it controls is the DynPart BRAM.
  fabric::ResourceCounts dyn_resources;
  for (const auto& p : env.plan.partitions()) {
    if (p.kind == fabric::PartitionKind::kDynamic) dyn_resources = p.resources;
  }
  const std::uint32_t dyn_count =
      env.plan.frames_of_kind(fabric::PartitionKind::kDynamic);
  const std::uint64_t snapshot_bytes =
      env.plan.device().bitstream_bytes(dyn_count);
  config::BramBuffer staging(fabric::bram_capacity_bytes(dyn_resources));
  const bool capacity_allows =
      staging.store("probe", Bytes(std::min<std::uint64_t>(
                                       snapshot_bytes, staging.capacity() + 1),
                                   0)) &&
      snapshot_bytes <= staging.capacity();
  staging.clear();

  // Layer 2 — even if capacity allowed it, BRAM *content is part of the
  // configuration memory*: the stash lives in BRAM-content frames, which
  // the protocol overwrites and reads back like any other frame. Model the
  // stash as content planted in the dynamic BRAM frames, then run.
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  const auto& geometry = env.plan.device().geometry();
  const std::uint32_t logic_frames =
      geometry.block(fabric::BlockType::kLogic).frames();
  std::vector<std::uint32_t> stash_frames;
  for (std::uint32_t f = first_dyn_frame(env); f < first_dyn_frame(env) + dyn_count;
       ++f) {
    if (f >= logic_frames) stash_frames.push_back(f);  // BRAM-content frame
  }
  const bs::Frame stash_pattern(geometry.words_per_frame(), 0xE71Lu);
  for (std::uint32_t f : stash_frames) {
    prover.memory().write_frame(f, stash_pattern);
  }

  const auto report = run_attestation(verifier, prover, env.session_options);
  outcome.verdict = report.verdict;

  bool stash_survived = false;
  for (std::uint32_t f : stash_frames) {
    if (prover.memory().config_frame(f) == stash_pattern) stash_survived = true;
  }

  if (stash_survived && report.verdict.ok()) {
    outcome.result = AttackResult::kUndetected;
    outcome.evidence = "stash survived an accepted session";
  } else if (!report.verdict.ok()) {
    outcome.result = AttackResult::kDetected;
    outcome.evidence = report.verdict.detail;
  } else {
    outcome.result = AttackResult::kPrevented;
    outcome.evidence =
        std::string("stash destroyed: BRAM-content frames are overwritten and "
                    "read back like all configuration memory") +
        (capacity_allows
             ? " (toy device: capacity alone would have allowed the stash)"
             : "; capacity also insufficient (" +
                   std::to_string(snapshot_bytes) + " B snapshot vs " +
                   std::to_string(staging.capacity()) + " B BRAM)");
  }
  return outcome;
}

// -------------------------------------------------------- HiddenModule

std::string HiddenModuleAttack::description() const {
  return "malicious module parked in unused dynamic fabric before attestation";
}

AttackOutcome HiddenModuleAttack::run(const AttackEnv& env) const {
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();

  // Park a module in the last application frame (it looks "unused").
  const std::uint32_t dyn_first = first_dyn_frame(env);
  const std::uint32_t parked = verifier.nonce_frame_index() - 1;
  const bs::BitGen gen(env.plan.device());
  const auto trojan = gen.generate(fabric::FrameRange{parked, 1}, {"trojan", 7});
  prover.memory().write_frame(parked, trojan.frames[0]);

  const auto report = run_attestation(verifier, prover, env.session_options);

  AttackOutcome outcome;
  outcome.name = name();
  outcome.verdict = report.verdict;
  const bool erased =
      prover.memory().config_frame(parked) != trojan.frames[0];
  if (report.verdict.ok() && erased) {
    outcome.result = AttackResult::kPrevented;
    outcome.evidence = "the full-DynMem overwrite erased the parked module; "
                       "full readback confirmed frame " +
                       std::to_string(parked) + " now holds the intended "
                       "application (first dyn frame " +
                       std::to_string(dyn_first) + ")";
  } else if (!report.verdict.ok()) {
    outcome.result = AttackResult::kDetected;
    outcome.evidence = report.verdict.detail;
  } else {
    outcome.result = AttackResult::kUndetected;
    outcome.evidence = "parked module survived an accepted session";
  }
  return outcome;
}

// -------------------------------------------- MaliciousUpdateInjection

std::string MaliciousUpdateInjection::description() const {
  return "man-in-the-middle swaps the shipped application for its own";
}

AttackOutcome MaliciousUpdateInjection::run(const AttackEnv& env) const {
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();
  SessionHooks hooks;
  hooks.on_command = [](Bytes& packet) {
    auto decoded = core::Command::decode(packet);
    if (!decoded.ok() || decoded.value().type != core::CommandType::kIcapConfig) {
      return true;
    }
    core::Command command = std::move(decoded).take();
    // Flip one bit inside the FDRI frame data: the single-frame stream
    // layout is sync(1) idcode(2) wcfg(2) far(2) fdri-header(1), so the
    // payload starts at word 8. Any change to the configured content must
    // be caught by the golden compare after readback.
    if (command.stream.size() > 8) {
      command.stream[8] ^= 0x1;
      packet = command.encode();
    }
    return true;
  };
  const auto report = run_attestation(verifier, prover, env.session_options, hooks);
  return outcome_from(*this, report,
                      "readback reflects the injected content, golden "
                      "compare rejects it");
}

// --------------------------------------------------------- ExternalTap

std::string ExternalTapAttack::description() const {
  return "external device wired to unused FPGA pins (IOB enabled post-config)";
}

AttackOutcome ExternalTapAttack::run(const AttackEnv& env) const {
  auto verifier = env.make_verifier();
  auto prover = env.make_prover();

  // The verifier's golden pin map: which pins the intended design drives.
  verifier.begin();
  const auto& device = env.plan.device();
  const BitVec golden_pins = bs::extract_pin_map(
      device, [&verifier](std::uint32_t f) -> const std::vector<std::uint32_t>& {
        return verifier.golden_frame(f).words();
      });

  // Pick a pin the design leaves unconnected; the adversary taps it.
  std::optional<std::uint32_t> target_pin;
  for (std::uint32_t pin = 0; pin < golden_pins.size(); ++pin) {
    if (!golden_pins.get(pin)) {
      target_pin = pin;
      break;
    }
  }
  AttackOutcome outcome;
  outcome.name = name();
  if (!target_pin.has_value()) {
    outcome.result = AttackResult::kPrevented;
    outcome.evidence = "design drives every pin; nothing to tap";
    return outcome;
  }
  const bs::PinBit tap = bs::pin_bit_location(device, *target_pin);

  SessionHooks hooks;
  hooks.after_config = [tap](core::SachaProver& p) {
    bs::Frame frame = p.memory().config_frame(tap.frame);
    frame.set_bit(tap.bit, true);  // enable the IOB: wire goes out
    p.memory().write_frame_preserving_registers(tap.frame, frame);
  };
  const auto report = run_attestation(verifier, prover, env.session_options, hooks);

  outcome.verdict = report.verdict;
  if (report.verdict.ok()) {
    outcome.result = AttackResult::kUndetected;
    outcome.evidence = "tap on pin " + std::to_string(*target_pin) +
                       " survived an accepted session";
    return outcome;
  }
  // Name the tapped pin from the device's own configuration.
  const BitVec observed = bs::extract_pin_map(
      device, [&prover](std::uint32_t f) -> const std::vector<std::uint32_t>& {
        return prover.memory().config_frame(f).words();
      });
  outcome.result = AttackResult::kDetected;
  outcome.evidence = bs::diff_pin_maps(golden_pins, observed).to_string() +
                     " (" + report.verdict.detail + ")";
  return outcome;
}

std::vector<std::unique_ptr<Attack>> standard_suite() {
  std::vector<std::unique_ptr<Attack>> suite;
  suite.push_back(std::make_unique<DynPartTamperAttack>());
  suite.push_back(std::make_unique<StatPartTamperAttack>());
  suite.push_back(std::make_unique<ImpersonationAttack>());
  suite.push_back(std::make_unique<ProxyMacAttack>());
  suite.push_back(std::make_unique<ReplayAttack>());
  suite.push_back(std::make_unique<NonceFreezeAttack>());
  suite.push_back(std::make_unique<BramStagingAttack>());
  suite.push_back(std::make_unique<HiddenModuleAttack>());
  suite.push_back(std::make_unique<MaliciousUpdateInjection>());
  suite.push_back(std::make_unique<ExternalTapAttack>());
  return suite;
}

}  // namespace sacha::attacks
