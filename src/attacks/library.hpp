// Adversary library — §7.2's security evaluation as executable experiments.
//
// Each attack instantiates one threat from the paper's case analysis (plus
// two the prose implies), runs a full attestation session with the
// adversary in place, and reports whether SACHa detected or structurally
// prevented it. `standard_suite()` is the set behind the security-matrix
// bench and the attack_demo example.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attacks/env.hpp"

namespace sacha::attacks {

enum class AttackResult : std::uint8_t {
  kDetected,    // session ran; the verifier rejected
  kPrevented,   // the attack could not take effect at all
  kUndetected,  // the verifier accepted a compromised device (a finding!)
};

const char* to_string(AttackResult result);

struct AttackOutcome {
  std::string name;
  AttackResult result = AttackResult::kUndetected;
  std::string evidence;  // what the verifier (or the attacker) observed
  core::SachaVerifier::Verdict verdict;
};

class Attack {
 public:
  virtual ~Attack() = default;
  virtual std::string name() const = 0;
  /// One-line threat description (the §7.2 bullet).
  virtual std::string description() const = 0;
  virtual AttackOutcome run(const AttackEnv& env) const = 0;
};

/// §7.2 bullet 1: a local adversary adds a malicious hardware module to the
/// dynamic partition (after the verifier's configuration phase).
class DynPartTamperAttack : public Attack {
 public:
  std::string name() const override { return "dynpart-tamper"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// §7.2 bullet 2: malicious logic squeezed into the static partition.
class StatPartTamperAttack : public Attack {
 public:
  std::string name() const override { return "statpart-tamper"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// §7.2 bullet 3: impersonating the prover without the device key.
class ImpersonationAttack : public Attack {
 public:
  std::string name() const override { return "impersonation"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// §7.2 bullet 4: an external helper computes the MAC while the FPGA runs
/// malicious code — modelled as a man-in-the-middle that forges the MAC
/// response (it observes all frames but not the key).
class ProxyMacAttack : public Attack {
 public:
  std::string name() const override { return "proxy-mac"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// §7.2 bullet 5: replaying the responses of an earlier (honest) session
/// to hide a tampered configuration.
class ReplayAttack : public Attack {
 public:
  std::string name() const override { return "replay"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// §7.2 bullet 5 (second clause): suppressing the nonce update so the old
/// nonce stays configured.
class NonceFreezeAttack : public Attack {
 public:
  std::string name() const override { return "nonce-freeze"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// §5.2 bounded-memory premise: the resident malicious application tries to
/// stash itself in on-fabric BRAM across the overwrite and restore after.
class BramStagingAttack : public Attack {
 public:
  std::string name() const override { return "bram-staging"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// A malicious module pre-installed in "unused" dynamic fabric before the
/// session: the full-partition overwrite must erase it and the full
/// readback must confirm that.
class HiddenModuleAttack : public Attack {
 public:
  std::string name() const override { return "hidden-module"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// Man-in-the-middle swaps the verifier's intended application for its own
/// during the configuration phase.
class MaliciousUpdateInjection : public Attack {
 public:
  std::string name() const override { return "update-injection"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// §7.2 bullet 4: a local adversary wires an external computing device to
/// unused FPGA pins (to outsource the MAC or exfiltrate data). The
/// bitstream reflects pin connectivity, so enabling the IOB shows up in
/// readback; the evidence names the tapped pin.
class ExternalTapAttack : public Attack {
 public:
  std::string name() const override { return "external-tap"; }
  std::string description() const override;
  AttackOutcome run(const AttackEnv& env) const override;
};

/// All of the above, in §7.2 order.
std::vector<std::unique_ptr<Attack>> standard_suite();

}  // namespace sacha::attacks
