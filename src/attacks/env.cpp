#include "attacks/env.hpp"

#include "crypto/prg.hpp"

namespace sacha::attacks {

namespace {

fabric::Floorplan small_plan() {
  fabric::Floorplan plan(fabric::DeviceModel::small_test_device());
  plan.add_partition({"StatPart",
                      fabric::PartitionKind::kStatic,
                      fabric::FrameRange{0, 4},
                      {.clb = 20, .bram18 = 2, .iob = 4, .dcm = 1, .icap = 1}});
  plan.add_partition({"DynPart",
                      fabric::PartitionKind::kDynamic,
                      fabric::FrameRange{4, 12},
                      {.clb = 80, .bram18 = 6, .iob = 12, .dcm = 1, .icap = 0}});
  return plan;
}

crypto::AesKey provisioned_key(std::uint64_t seed) {
  crypto::Prg prg(seed, "attack-env-device-key");
  return prg.key();
}

}  // namespace

core::SachaVerifier AttackEnv::make_verifier() const {
  return core::SachaVerifier(plan, static_spec, app_spec, key, seed,
                             verifier_options);
}

core::SachaProver AttackEnv::make_prover(bool genuine_key) const {
  crypto::AesKey device_key = key;
  if (!genuine_key) {
    crypto::Prg prg(seed, "attacker-guessed-key");
    device_key = prg.key();
  }
  core::SachaProver prover(plan.device(), "dev-under-attack", device_key,
                           prover_options);
  // BootMem provisioning: static image from the same design the verifier
  // holds golden.
  const core::SachaVerifier verifier = make_verifier();
  prover.boot(verifier.static_image());
  return prover;
}

AttackEnv AttackEnv::small(std::uint64_t seed) {
  AttackEnv env{.plan = small_plan()};
  env.seed = seed;
  env.key = provisioned_key(seed);
  return env;
}

AttackEnv AttackEnv::virtex6(std::uint64_t seed) {
  AttackEnv env{.plan = fabric::sacha_reference_floorplan()};
  env.seed = seed;
  env.key = provisioned_key(seed);
  return env;
}

}  // namespace sacha::attacks
