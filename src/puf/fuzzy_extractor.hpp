// Fuzzy extractor (secure sketch + strong extractor) for PUF key derivation.
//
// Code-offset construction over a repetition code: Gen() draws a random
// 128-bit key, encodes each key bit as an r-fold repetition, and publishes
// helper = codeword XOR response. Rep() XORs a fresh noisy response with the
// helper and majority-decodes each block; a hash commitment in the helper
// data detects decode failure instead of silently yielding a wrong key.
// With per-bit noise p, a block fails when > r/2 cells flip, so r trades
// PUF area for reliability — bench_puf sweeps exactly that trade-off.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bitvec.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "puf/sram_puf.hpp"

namespace sacha::puf {

inline constexpr std::size_t kKeyBits = 128;

struct HelperData {
  BitVec offset;                           // codeword XOR enrollment response
  std::array<std::uint8_t, 32> check{};    // SHA-256 commitment to the key
  std::uint32_t repetition = 0;            // r

  bool operator==(const HelperData&) const = default;
};

struct Enrollment {
  crypto::AesKey key{};
  HelperData helper;
};

/// Cells needed for a given repetition factor.
constexpr std::size_t required_cells(std::uint32_t repetition) {
  return kKeyBits * repetition;
}

/// Gen: derives (key, helper) from an enrollment-time response. The response
/// must have at least required_cells(repetition) bits; `key_rng` supplies
/// the key randomness.
Enrollment generate(const BitVec& response, std::uint32_t repetition,
                    Rng& key_rng);

/// Rep: reproduces the key from a fresh noisy response and the helper.
/// Returns nullopt when decoding fails the commitment check.
std::optional<crypto::AesKey> reproduce(const BitVec& response,
                                        const HelperData& helper);

}  // namespace sacha::puf
