// Verifier-side PUF enrollment.
//
// §5.2.1: each PUF "needs to have gone through an enrollment phase before
// the deployment of the FPGA" and "the Vrf needs to keep a database of PUF
// circuits and corresponding keys". EnrollmentDb is that database. Enrolling
// averages repeated power-up reads (majority vote) to approximate the
// nominal response, runs Gen, stores the key + helper under a (device, PUF
// circuit) pair, and hands the helper back so it can be provisioned to (or
// shipped with) the device.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "puf/fuzzy_extractor.hpp"

namespace sacha::puf {

class EnrollmentDb {
 public:
  /// Majority-votes `reads` noisy responses, generates key + helper, and
  /// stores them under (device_id, circuit_id). Returns the helper data the
  /// device needs at key-regeneration time.
  HelperData enroll(const std::string& device_id, const std::string& circuit_id,
                    const SramPuf& puf, Rng& rng, std::uint32_t repetition = 15,
                    std::uint32_t reads = 9);

  std::optional<crypto::AesKey> key_of(const std::string& device_id,
                                       const std::string& circuit_id) const;
  std::optional<HelperData> helper_of(const std::string& device_id,
                                      const std::string& circuit_id) const;

  /// Removes a circuit's record (key rotation drops the old circuit).
  bool revoke(const std::string& device_id, const std::string& circuit_id);

  std::size_t size() const { return records_.size(); }

 private:
  std::map<std::pair<std::string, std::string>, Enrollment> records_;
};

}  // namespace sacha::puf
