#include "puf/sram_puf.hpp"

namespace sacha::puf {

SramPuf::SramPuf(std::uint64_t device_entropy, std::size_t cells, double noise)
    : nominal_(cells), noise_(noise) {
  Rng rng(device_entropy ^ 0x9f7a3c5e1b2d4680ULL);
  for (std::size_t i = 0; i < cells; ++i) {
    nominal_.set(i, rng.chance(0.5));
  }
}

BitVec SramPuf::read(Rng& noise_rng) const {
  BitVec response = nominal_;
  for (std::size_t i = 0; i < response.size(); ++i) {
    if (noise_rng.chance(noise_)) response.flip(i);
  }
  return response;
}

}  // namespace sacha::puf
