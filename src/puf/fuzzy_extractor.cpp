#include "puf/fuzzy_extractor.hpp"

#include <cassert>

#include "crypto/sha256.hpp"

namespace sacha::puf {

namespace {

/// Key = first 16 bytes of SHA-256("sacha-puf-key" || bits); commitment =
/// SHA-256("sacha-puf-chk" || bits). Separate labels so the commitment does
/// not leak key bytes.
crypto::AesKey derive_key(const BitVec& key_bits) {
  Bytes material = bytes_of("sacha-puf-key");
  append(material, key_bits.bytes());
  const auto digest = crypto::Sha256::compute(material);
  return crypto::to_aes_key(ByteSpan(digest.data(), crypto::kAesKeySize));
}

std::array<std::uint8_t, 32> derive_check(const BitVec& key_bits) {
  Bytes material = bytes_of("sacha-puf-chk");
  append(material, key_bits.bytes());
  return crypto::Sha256::compute(material);
}

}  // namespace

Enrollment generate(const BitVec& response, std::uint32_t repetition,
                    Rng& key_rng) {
  assert(repetition >= 1);
  assert(response.size() >= required_cells(repetition));

  BitVec key_bits(kKeyBits);
  for (std::size_t i = 0; i < kKeyBits; ++i) {
    key_bits.set(i, key_rng.chance(0.5));
  }

  // codeword = key bits, each repeated `repetition` times.
  BitVec offset(required_cells(repetition));
  for (std::size_t i = 0; i < kKeyBits; ++i) {
    for (std::uint32_t r = 0; r < repetition; ++r) {
      const std::size_t pos = i * repetition + r;
      offset.set(pos, key_bits.get(i) ^ response.get(pos));
    }
  }

  Enrollment out;
  out.key = derive_key(key_bits);
  out.helper.offset = std::move(offset);
  out.helper.check = derive_check(key_bits);
  out.helper.repetition = repetition;
  return out;
}

std::optional<crypto::AesKey> reproduce(const BitVec& response,
                                        const HelperData& helper) {
  const std::uint32_t r = helper.repetition;
  if (r == 0 || helper.offset.size() != required_cells(r) ||
      response.size() < required_cells(r)) {
    return std::nullopt;
  }
  BitVec key_bits(kKeyBits);
  for (std::size_t i = 0; i < kKeyBits; ++i) {
    std::uint32_t ones = 0;
    for (std::uint32_t j = 0; j < r; ++j) {
      const std::size_t pos = i * r + j;
      ones += (response.get(pos) ^ helper.offset.get(pos)) ? 1 : 0;
    }
    key_bits.set(i, ones * 2 > r);  // majority (ties decode to 0)
  }
  if (derive_check(key_bits) != helper.check) return std::nullopt;
  return derive_key(key_bits);
}

}  // namespace sacha::puf
