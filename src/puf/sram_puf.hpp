// Weak PUF model.
//
// SACHa derives the MAC key from a weak (key-generating) PUF in either the
// static or the dynamic partition (§5.2.1). We model an SRAM-style PUF:
// each cell has a device-unique preferred power-up value plus a per-cell
// instability; a read returns the preferred values with independent bit
// flips at the noise rate. The model is intentionally ideal in the paper's
// sense ("we assume an ideal key-generating PUF") — no ageing, no
// temperature drift — but noisy enough to require the fuzzy extractor.
#pragma once

#include <cstdint>

#include "common/bitvec.hpp"
#include "common/rng.hpp"

namespace sacha::puf {

class SramPuf {
 public:
  /// `device_entropy` determines the device-unique cell biases; `cells` is
  /// the response width in bits; `noise` is the per-cell flip probability
  /// of a single read (typical silicon: 0.05-0.15).
  SramPuf(std::uint64_t device_entropy, std::size_t cells, double noise);

  std::size_t cells() const { return nominal_.size(); }
  double noise() const { return noise_; }

  /// The noiseless preferred response (ground truth; enrollment approximates
  /// it by majority over repeated reads).
  const BitVec& nominal() const { return nominal_; }

  /// One noisy power-up read.
  BitVec read(Rng& noise_rng) const;

 private:
  BitVec nominal_;
  double noise_;
};

}  // namespace sacha::puf
