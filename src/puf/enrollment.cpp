#include "puf/enrollment.hpp"

#include <vector>

namespace sacha::puf {

HelperData EnrollmentDb::enroll(const std::string& device_id,
                                const std::string& circuit_id,
                                const SramPuf& puf, Rng& rng,
                                std::uint32_t repetition, std::uint32_t reads) {
  // Majority over repeated reads to estimate the nominal response.
  std::vector<std::uint32_t> ones(puf.cells(), 0);
  for (std::uint32_t r = 0; r < reads; ++r) {
    const BitVec response = puf.read(rng);
    for (std::size_t i = 0; i < response.size(); ++i) {
      ones[i] += response.get(i) ? 1 : 0;
    }
  }
  BitVec reference(puf.cells());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    reference.set(i, ones[i] * 2 > reads);
  }

  Enrollment enrollment = generate(reference, repetition, rng);
  const HelperData helper = enrollment.helper;
  records_[{device_id, circuit_id}] = std::move(enrollment);
  return helper;
}

std::optional<crypto::AesKey> EnrollmentDb::key_of(
    const std::string& device_id, const std::string& circuit_id) const {
  if (auto it = records_.find({device_id, circuit_id}); it != records_.end()) {
    return it->second.key;
  }
  return std::nullopt;
}

std::optional<HelperData> EnrollmentDb::helper_of(
    const std::string& device_id, const std::string& circuit_id) const {
  if (auto it = records_.find({device_id, circuit_id}); it != records_.end()) {
    return it->second.helper;
  }
  return std::nullopt;
}

bool EnrollmentDb::revoke(const std::string& device_id,
                          const std::string& circuit_id) {
  return records_.erase({device_id, circuit_id}) > 0;
}

}  // namespace sacha::puf
