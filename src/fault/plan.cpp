#include "fault/plan.hpp"

#include <charconv>
#include <sstream>
#include <vector>

namespace sacha::fault {

namespace {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (!text.empty()) {
    const std::size_t pos = text.find(sep);
    parts.push_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return parts;
}

bool parse_double(std::string_view text, double& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_u32(std::string_view text, std::uint32_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool parse_probability(std::string_view text, double& out) {
  return parse_double(text, out) && out >= 0.0 && out <= 1.0;
}

Result<FaultPlan> clause_error(std::string_view clause,
                               std::string_view why) {
  return Result<FaultPlan>::error("bad fault clause \"" +
                                  std::string(clause) + "\": " +
                                  std::string(why));
}

}  // namespace

Result<FaultPlan> FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  for (const std::string_view clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      return clause_error(clause, "expected key=value");
    }
    const std::string_view key = clause.substr(0, eq);
    const std::vector<std::string_view> vals =
        split(clause.substr(eq + 1), ':');
    if (key == "burst") {
      if (vals.size() != 3) return clause_error(clause, "want enter:exit:loss");
      if (!parse_probability(vals[0], plan.burst.p_good_to_bad) ||
          !parse_probability(vals[1], plan.burst.p_bad_to_good) ||
          !parse_probability(vals[2], plan.burst.loss_bad)) {
        return clause_error(clause, "probabilities must be in [0,1]");
      }
      if (plan.burst.p_good_to_bad > 0.0 && plan.burst.p_bad_to_good <= 0.0) {
        return clause_error(clause, "exit probability must be > 0");
      }
    } else if (key == "uplink") {
      if (vals.size() != 4) {
        return clause_error(clause, "want group:enter:exit:loss");
      }
      UplinkFault uplink;
      if (!parse_u32(vals[0], uplink.group)) {
        return clause_error(clause, "group must be an unsigned integer");
      }
      if (!parse_probability(vals[1], uplink.burst.p_good_to_bad) ||
          !parse_probability(vals[2], uplink.burst.p_bad_to_good) ||
          !parse_probability(vals[3], uplink.burst.loss_bad)) {
        return clause_error(clause, "probabilities must be in [0,1]");
      }
      if (uplink.burst.p_good_to_bad > 0.0 &&
          uplink.burst.p_bad_to_good <= 0.0) {
        return clause_error(clause, "exit probability must be > 0");
      }
      plan.uplink = uplink;
    } else if (key == "corrupt") {
      if (vals.size() != 1 ||
          !parse_probability(vals[0], plan.corrupt_probability)) {
        return clause_error(clause, "want a probability in [0,1]");
      }
    } else if (key == "crash") {
      if (vals.empty() || vals.size() > 2) {
        return clause_error(clause, "want at_command[:reboot_after]");
      }
      CrashFault crash;
      if (!parse_u32(vals[0], crash.at_command) ||
          (vals.size() == 2 && !parse_u32(vals[1], crash.reboot_after))) {
        return clause_error(clause, "counts must be unsigned integers");
      }
      plan.crash = crash;
    } else if (key == "stall") {
      if (vals.size() != 2) return clause_error(clause, "want at_command:packets");
      StallFault stall;
      if (!parse_u32(vals[0], stall.at_command) ||
          !parse_u32(vals[1], stall.packets) || stall.packets == 0) {
        return clause_error(clause, "want unsigned integers, packets > 0");
      }
      plan.stall = stall;
    } else if (key == "spike") {
      if (vals.size() != 2) return clause_error(clause, "want p:max_us");
      std::uint32_t max_us = 0;
      if (!parse_probability(vals[0], plan.spike_probability) ||
          !parse_u32(vals[1], max_us)) {
        return clause_error(clause, "want probability:max_us");
      }
      plan.spike_max = static_cast<sim::SimDuration>(max_us) * sim::kMicrosecond;
    } else if (key == "seu") {
      if (vals.size() != 1 || !parse_u32(vals[0], plan.seu_flips)) {
        return clause_error(clause, "want a flip count");
      }
    } else {
      return clause_error(clause, "unknown fault kind");
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  if (empty()) return "none";
  std::ostringstream out;
  const char* sep = "";
  if (burst.enabled()) {
    out << sep << "burst=" << burst.p_good_to_bad << ':' << burst.p_bad_to_good
        << ':' << burst.loss_bad;
    sep = ";";
  }
  if (uplink) {
    out << sep << "uplink=" << uplink->group << ':'
        << uplink->burst.p_good_to_bad << ':' << uplink->burst.p_bad_to_good
        << ':' << uplink->burst.loss_bad;
    sep = ";";
  }
  if (corrupt_probability > 0.0) {
    out << sep << "corrupt=" << corrupt_probability;
    sep = ";";
  }
  if (crash) {
    out << sep << "crash=" << crash->at_command << ':' << crash->reboot_after;
    sep = ";";
  }
  if (stall) {
    out << sep << "stall=" << stall->at_command << ':' << stall->packets;
    sep = ";";
  }
  if (spike_probability > 0.0) {
    out << sep << "spike=" << spike_probability << ':'
        << spike_max / sim::kMicrosecond;
    sep = ";";
  }
  if (seu_flips > 0) {
    out << sep << "seu=" << seu_flips;
  }
  return out.str();
}

}  // namespace sacha::fault
