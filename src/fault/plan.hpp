// Declarative fault plans.
//
// A FaultPlan names the faults one attestation session is exposed to:
// Gilbert–Elliott burst loss and latency spikes on the channel, response
// corruption on the wire, a device crash (power-cycle with optional
// reboot), an ICAP stall window, and radiation upsets (SEUs) in the
// configuration memory. Plans are data, not code — the same plan drives a
// unit test, a bench fault-matrix cell, and the CLI's `--fault-plan` flag,
// so every layer exercises the identical fault process.
//
// The textual form is a `;`-separated clause list:
//
//   burst=<p_enter>:<p_exit>:<loss_bad>   two-state burst loss
//   uplink=<group>:<p_enter>:<p_exit>:<loss_bad>
//                                         correlated burst loss: members
//                                         armed with the same group share
//                                         ONE chain (co-located uplink)
//   corrupt=<p>                           per-response corruption prob.
//   crash=<at_command>[:<reboot_after>]   crash at command k, reboot after
//                                         n further packets (0 = stay dead)
//   stall=<at_command>:<packets>          ICAP stall swallowing n packets
//   spike=<p>:<max_us>                    latency spikes (slow member)
//   seu=<flips>                           config-bit upsets after config
//
// e.g. "burst=0.05:0.4:1.0;crash=12:3;seu=2". An empty spec parses to the
// empty plan, which by contract injects nothing and leaves the session's
// randomness stream untouched (bit-identity with an un-faulted run).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "net/channel.hpp"
#include "sim/time.hpp"

namespace sacha::fault {

/// Device crash: the prover drops everything from command `at_command`
/// onward; after `reboot_after` further incoming packets it power-cycles
/// (volatile configuration lost, static partition reloaded from BootMem).
/// reboot_after = 0 keeps the device dead for the rest of the session.
struct CrashFault {
  std::uint32_t at_command = 0;
  std::uint32_t reboot_after = 0;
};

/// ICAP stall: from command `at_command` the device silently swallows the
/// next `packets` packets (configuration engine wedged), then recovers.
struct StallFault {
  std::uint32_t at_command = 0;
  std::uint32_t packets = 1;
};

/// Correlated uplink loss: every member whose plan names the same group id
/// is attached to one shared Gilbert–Elliott chain (net::SharedBurstState),
/// so co-located members see correlated bursts instead of independent ones.
struct UplinkFault {
  std::uint32_t group = 0;
  net::BurstLossParams burst{};
};

struct FaultPlan {
  /// Burst loss on the channel (enabled when p_good_to_bad > 0).
  net::BurstLossParams burst{};
  /// Correlated fleet-wide burst loss keyed by uplink group.
  std::optional<UplinkFault> uplink;
  /// Probability that a delivered response has one wire bit flipped.
  double corrupt_probability = 0.0;
  std::optional<CrashFault> crash;
  std::optional<StallFault> stall;
  /// Latency spikes: each transfer gains uniform(0, spike_max) extra
  /// latency with this probability (the slow swarm member).
  double spike_probability = 0.0;
  sim::SimDuration spike_max = 0;
  /// Configuration-bit upsets injected after the configuration phase.
  std::uint32_t seu_flips = 0;

  bool empty() const {
    return !burst.enabled() && !uplink && corrupt_probability <= 0.0 &&
           !crash && !stall && spike_probability <= 0.0 && seu_flips == 0;
  }

  /// Human-readable clause list in the textual form above ("none" when
  /// empty). parse(describe()) round-trips.
  std::string describe() const;

  /// Parses the textual form. Unknown clauses, malformed numbers and
  /// out-of-range probabilities are errors, not silently ignored.
  static Result<FaultPlan> parse(std::string_view spec);
};

}  // namespace sacha::fault
