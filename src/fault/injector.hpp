// Fault injector: arms a FaultPlan onto one attestation session.
//
// arm() translates the declarative plan into the session's existing
// extension points — channel parameters for burst loss and latency
// spikes, SessionHooks for wire corruption and the device-fault triggers
// (crash / ICAP stall keyed on protocol progress), and the SEU injector
// for post-configuration upsets. Existing hooks are chained, not
// replaced, so an adversary and a fault plan compose.
//
// The injector owns the randomness for its faults (derived from its own
// seed, independent of the session's channel stream) and the one-shot
// trigger state, so it must outlive the session it is armed on. Re-arming
// resets the triggers: each armed session experiences the plan afresh,
// and the caller (e.g. a SwarmMember::configure callback) decides which
// attempts are exposed. Arming an empty plan is a no-op by contract —
// the session's randomness stream is untouched (bit-identity).
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "core/session.hpp"
#include "fault/plan.hpp"

namespace sacha::fault {

/// Process-wide registry of shared uplink chains. Every injector arming a
/// plan with `uplink=<group>:...` attaches the same net::SharedBurstState
/// for that group, so co-located members burst together. The chain is
/// created on first use with the first caller's parameters and its seed is
/// derived from the group id alone — each member's own session streams are
/// untouched. The first parameters win; later callers with a different
/// BurstLossParams for the same group share the existing chain.
std::shared_ptr<net::SharedBurstState> uplink_burst(
    std::uint32_t group, const net::BurstLossParams& params);

/// Drops every registered uplink chain (test / bench-cell isolation: each
/// cell should start with fresh chain state).
void reset_uplink_bursts();

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  /// Applies the plan to the session: channel faults into `options`,
  /// device/wire faults chained onto `hooks`. Resets one-shot triggers.
  void arm(core::SessionOptions& options, core::SessionHooks& hooks);

  const FaultPlan& plan() const { return plan_; }

  /// What actually fired across all armed sessions.
  struct Stats {
    std::uint64_t sessions_armed = 0;
    std::uint64_t responses_corrupted = 0;
    std::uint64_t crashes_fired = 0;
    std::uint64_t stalls_fired = 0;
    std::uint64_t seu_flips = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  std::uint64_t seed_;
  Rng rng_;
  Stats stats_;
  bool crash_fired_ = false;
  bool stall_fired_ = false;
  bool seu_fired_ = false;
};

}  // namespace sacha::fault
