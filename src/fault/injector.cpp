#include "fault/injector.hpp"

#include <map>
#include <mutex>

#include "common/log.hpp"
#include "config/seu.hpp"
#include "obs/metrics.hpp"

namespace sacha::fault {

namespace {

std::mutex g_uplink_mu;
std::map<std::uint32_t, std::shared_ptr<net::SharedBurstState>>& uplinks() {
  static std::map<std::uint32_t, std::shared_ptr<net::SharedBurstState>> map;
  return map;
}

}  // namespace

std::shared_ptr<net::SharedBurstState> uplink_burst(
    std::uint32_t group, const net::BurstLossParams& params) {
  std::lock_guard<std::mutex> lock(g_uplink_mu);
  auto& chain = uplinks()[group];
  if (!chain) {
    chain = std::make_shared<net::SharedBurstState>(
        params, derive_seed(0x5ac4au, "fault.uplink", group));
  }
  return chain;
}

void reset_uplink_bursts() {
  std::lock_guard<std::mutex> lock(g_uplink_mu);
  uplinks().clear();
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(plan),
      seed_(seed),
      // The injector's own stream: wire corruption draws from here, so a
      // plan without stochastic faults leaves the session streams alone.
      rng_(derive_seed(seed, "fault.wire")) {}

void FaultInjector::arm(core::SessionOptions& options,
                        core::SessionHooks& hooks) {
  ++stats_.sessions_armed;
  crash_fired_ = false;
  stall_fired_ = false;
  seu_fired_ = false;
  if (plan_.empty()) return;

  if (plan_.burst.enabled()) {
    options.channel.burst = plan_.burst;
  }
  if (plan_.uplink) {
    options.channel.shared_burst =
        uplink_burst(plan_.uplink->group, plan_.uplink->burst);
  }
  if (plan_.spike_probability > 0.0) {
    options.channel.spike_probability = plan_.spike_probability;
    options.channel.spike_max = plan_.spike_max;
  }

  if (plan_.crash || plan_.stall) {
    // Triggers are keyed on protocol progress (command index), the only
    // clock a device fault can meaningfully reference; `>=` so a fault
    // aimed past the last command of a short session still fires.
    auto chained = hooks.before_command;
    hooks.before_command = [this, chained](std::size_t index,
                                           core::SachaProver& prover) {
      if (chained) chained(index, prover);
      if (plan_.stall && !stall_fired_ && index >= plan_.stall->at_command) {
        stall_fired_ = true;
        ++stats_.stalls_fired;
        prover.inject_stall(plan_.stall->packets);
      }
      if (plan_.crash && !crash_fired_ && index >= plan_.crash->at_command) {
        crash_fired_ = true;
        ++stats_.crashes_fired;
        prover.inject_crash(plan_.crash->reboot_after);
      }
    };
  }

  if (plan_.corrupt_probability > 0.0) {
    auto chained = hooks.on_response;
    hooks.on_response = [this, chained](Bytes& bytes) {
      if (chained && !chained(bytes)) return false;
      if (!bytes.empty() && rng_.chance(plan_.corrupt_probability)) {
        ++stats_.responses_corrupted;
        static obs::Counter& corrupted =
            obs::MetricsRegistry::global().counter(
                "sacha.fault.corrupted_responses");
        corrupted.add(1);
        const std::size_t byte = rng_.below(bytes.size());
        bytes[byte] ^= static_cast<std::uint8_t>(1u << rng_.below(8));
      }
      return true;
    };
  }

  if (plan_.seu_flips > 0) {
    auto chained = hooks.after_config;
    // One strike per armed session, after configuration (the readback then
    // detects it, §2.1.3); seeded per session so retries see independent
    // strike positions.
    const std::uint64_t strike_seed =
        derive_seed(seed_, "fault.seu", stats_.sessions_armed);
    hooks.after_config = [this, chained,
                          strike_seed](core::SachaProver& prover) {
      if (chained) chained(prover);
      if (seu_fired_) return;
      seu_fired_ = true;
      config::SeuInjector injector(strike_seed);
      const auto hits =
          injector.inject_config_bits(prover.memory(), plan_.seu_flips);
      stats_.seu_flips += hits.size();
      static obs::Counter& flips =
          obs::MetricsRegistry::global().counter("sacha.fault.seu_flips");
      flips.add(hits.size());
    };
  }

  (log_debug() << "fault plan armed").kv("plan", plan_.describe());
}

}  // namespace sacha::fault
