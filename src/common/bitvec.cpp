#include "common/bitvec.hpp"

#include <bit>
#include <cassert>

namespace sacha {

BitVec::BitVec(std::size_t nbits, bool value)
    : bytes_((nbits + 7) / 8, value ? 0xff : 0x00), nbits_(nbits) {
  if (value && nbits_ % 8 != 0) {
    // Keep the invariant that bits beyond size() are zero.
    bytes_.back() = static_cast<std::uint8_t>(0xff >> (8 - nbits_ % 8));
  }
}

BitVec BitVec::from_bytes(ByteSpan packed, std::size_t nbits) {
  assert(packed.size() >= (nbits + 7) / 8);
  BitVec v(nbits);
  for (std::size_t i = 0; i < nbits; ++i) {
    if ((packed[i / 8] >> (i % 8)) & 1) v.set(i, true);
  }
  return v;
}

bool BitVec::get(std::size_t i) const {
  assert(i < nbits_);
  return (bytes_[i / 8] >> (i % 8)) & 1;
}

void BitVec::set(std::size_t i, bool value) {
  assert(i < nbits_);
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (i % 8));
  if (value) {
    bytes_[i / 8] |= mask;
  } else {
    bytes_[i / 8] &= static_cast<std::uint8_t>(~mask);
  }
}

void BitVec::flip(std::size_t i) { set(i, !get(i)); }

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (std::uint8_t b : bytes_) n += static_cast<std::size_t>(std::popcount(b));
  return n;
}

std::size_t BitVec::hamming(const BitVec& other) const {
  assert(nbits_ == other.nbits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    n += static_cast<std::size_t>(
        std::popcount(static_cast<std::uint8_t>(bytes_[i] ^ other.bytes_[i])));
  }
  return n;
}

BitVec BitVec::operator^(const BitVec& other) const {
  assert(nbits_ == other.nbits_);
  BitVec out(nbits_);
  for (std::size_t i = 0; i < bytes_.size(); ++i) {
    out.bytes_[i] = bytes_[i] ^ other.bytes_[i];
  }
  return out;
}

}  // namespace sacha
