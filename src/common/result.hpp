// Minimal expected/outcome type used for fallible operations that should not
// throw (packet parsing, protocol steps, fuzzy-extractor reproduction).
//
// We deliberately keep this simpler than std::expected (not available on the
// toolchain floor we target): the error channel is always a human-readable
// string, which is what the verifier logs and the tests assert on.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sacha {

/// Error-or-nothing outcome for operations without a payload.
class Status {
 public:
  Status() = default;  // success
  static Status error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return !message_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Error text; empty string when ok().
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

/// Error-or-value outcome. `Result<T>` is either a T or an error string.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  static Result error(std::string message) { return Result(std::move(message), 0); }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& take() && {
    assert(ok());
    return std::move(*value_);
  }

  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : error_;
  }

 private:
  Result(std::string message, int) : error_(std::move(message)) {}
  std::optional<T> value_;
  std::string error_;
};

}  // namespace sacha
