// Deterministic pseudo-random source for simulations and tests.
//
// Everything stochastic in the repository (PUF cell noise, network jitter,
// adversary choices, verifier readback permutations in tests) draws from this
// xoshiro256** generator so that every experiment is reproducible from a
// seed. Cryptographic randomness (nonces, keys) instead goes through
// crypto::Prg, which is deterministic-from-seed as well but domain-separated
// and AES-based.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace sacha {

/// One stateless splitmix64 step: mixes `x` through the full avalanche
/// finalizer. Use this (not addition) to derive independent sub-seeds —
/// `seed + index` schemes collide across adjacent base seeds, splitmix64
/// output does not.
std::uint64_t splitmix64_mix(std::uint64_t x);

/// Derives an independent seed from a base seed and a string label (e.g. a
/// fleet member id): FNV-1a over the label, then splitmix64-mixed with the
/// base seed. Adjacent base seeds and similar labels land far apart.
std::uint64_t derive_seed(std::uint64_t seed, std::string_view label,
                          std::uint64_t lane = 0);

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t next_u64();

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling so the
  /// distribution is exactly uniform.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Uniform double in [0, 1).
  double uniform();

  Bytes bytes(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace sacha
