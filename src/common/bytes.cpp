#include "common/bytes.hpp"

#include <cassert>

namespace sacha {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

void put_u16be(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32be(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64be(Bytes& out, std::uint64_t v) {
  put_u32be(out, static_cast<std::uint32_t>(v >> 32));
  put_u32be(out, static_cast<std::uint32_t>(v));
}

std::uint16_t get_u16be(ByteSpan in, std::size_t offset) {
  assert(offset + 2 <= in.size());
  return static_cast<std::uint16_t>((in[offset] << 8) | in[offset + 1]);
}

std::uint32_t get_u32be(ByteSpan in, std::size_t offset) {
  assert(offset + 4 <= in.size());
  return (static_cast<std::uint32_t>(in[offset]) << 24) |
         (static_cast<std::uint32_t>(in[offset + 1]) << 16) |
         (static_cast<std::uint32_t>(in[offset + 2]) << 8) |
         static_cast<std::uint32_t>(in[offset + 3]);
}

std::uint64_t get_u64be(ByteSpan in, std::size_t offset) {
  return (static_cast<std::uint64_t>(get_u32be(in, offset)) << 32) |
         get_u32be(in, offset + 4);
}

void xor_into(std::span<std::uint8_t> a, ByteSpan b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

Bytes xor_bytes(ByteSpan a, ByteSpan b) {
  assert(a.size() == b.size());
  Bytes out(a.begin(), a.end());
  xor_into(out, b);
  return out;
}

void append(Bytes& head, ByteSpan tail) {
  head.insert(head.end(), tail.begin(), tail.end());
}

}  // namespace sacha
