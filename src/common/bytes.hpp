// Byte-buffer utilities shared by every SACHa module.
//
// The wire protocol, the bitstream codec and the crypto layer all operate on
// flat byte buffers; this header centralises the (de)serialisation helpers so
// endianness decisions live in exactly one place. All multi-byte integers on
// the SACHa wire and in the synthetic bitstream format are big-endian, which
// matches both network order and the Xilinx configuration packet convention.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sacha {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Lowercase hex encoding of a byte buffer ("" for empty input).
std::string to_hex(ByteSpan data);

/// Parses lowercase/uppercase hex; returns nullopt on odd length or a
/// non-hex character. Whitespace is not accepted: callers strip it.
std::optional<Bytes> from_hex(std::string_view hex);

/// Copies the raw characters of a string into a byte buffer (no encoding).
Bytes bytes_of(std::string_view text);

// -- Big-endian integer packing -------------------------------------------

void put_u16be(Bytes& out, std::uint16_t v);
void put_u32be(Bytes& out, std::uint32_t v);
void put_u64be(Bytes& out, std::uint64_t v);

std::uint16_t get_u16be(ByteSpan in, std::size_t offset);
std::uint32_t get_u32be(ByteSpan in, std::size_t offset);
std::uint64_t get_u64be(ByteSpan in, std::size_t offset);

/// XORs `b` into `a` element-wise; the buffers must have equal size.
void xor_into(std::span<std::uint8_t> a, ByteSpan b);

/// Returns a ^ b for equal-sized buffers.
Bytes xor_bytes(ByteSpan a, ByteSpan b);

/// Appends `tail` to `head`.
void append(Bytes& head, ByteSpan tail);

}  // namespace sacha
