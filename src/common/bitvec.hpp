// Compact bit vector used by the PUF model (cell arrays), the bitstream mask
// (Msk covers individual register bits inside frames) and the fuzzy
// extractor. std::vector<bool> is avoided on purpose: we need stable byte
// access for hashing and wire transport.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.hpp"

namespace sacha {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false);

  /// Wraps bits packed LSB-first into bytes; `nbits` may trim the last byte.
  static BitVec from_bytes(ByteSpan packed, std::size_t nbits);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void flip(std::size_t i);

  /// Number of set bits.
  std::size_t popcount() const;

  /// Hamming distance; both vectors must have equal size.
  std::size_t hamming(const BitVec& other) const;

  /// XOR with an equal-sized vector.
  BitVec operator^(const BitVec& other) const;

  bool operator==(const BitVec& other) const = default;

  /// Bits packed LSB-first; unused bits of the final byte are zero.
  const Bytes& bytes() const { return bytes_; }

 private:
  Bytes bytes_;
  std::size_t nbits_ = 0;
};

}  // namespace sacha
