#include "common/rng.hpp"

#include <cassert>
#include <numeric>

namespace sacha {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64_mix(std::uint64_t x) {
  return splitmix64(x);  // the stateful step: advances and finalizes
}

std::uint64_t derive_seed(std::uint64_t seed, std::string_view label,
                          std::uint64_t lane) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 over the label
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t x = seed ^ splitmix64(h);
  x ^= splitmix64(lane);
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling: draw until the value falls in the largest multiple
  // of `bound` representable in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::uniform() {
  // 53 bits of mantissa.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Bytes Rng::bytes(std::size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    std::uint64_t v = next_u64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<std::uint8_t>(v));
      v >>= 8;
    }
  }
  return out;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> v(n);
  std::iota(v.begin(), v.end(), 0u);
  shuffle(v);
  return v;
}

}  // namespace sacha
