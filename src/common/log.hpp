// Tiny leveled logger. Examples use it to narrate protocol traces; the
// libraries log only at kDebug so tests stay quiet by default.
//
// Every line carries a monotonic timestamp (seconds since the first log
// call, microsecond resolution) and the caller's thread id, so interleaved
// fleet sessions on a worker pool stay attributable:
//   [   0.001234] [DEBUG] [tid 3] session finished device=node-7 verdict=ok
// Structured context goes through LogLine::kv(), which appends a
// " key=value" suffix — grep-able, and consistent across the library
// (the convention: human text first, kv() pairs after).
#pragma once

#include <sstream>
#include <string>

namespace sacha {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True when `level` passes the current threshold — callers can skip
/// message formatting entirely for discarded levels.
inline bool log_enabled(LogLevel level) {
  return level >= log_level() && level != LogLevel::kOff;
}

void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level)
      : level_(level), live_(log_enabled(level)) {}
  ~LogLine() {
    if (live_) log_message(level_, stream_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (live_) stream_ << v;
    return *this;
  }
  /// Appends a structured " key=value" pair.
  template <typename T>
  LogLine& kv(const char* key, const T& value) {
    if (live_) stream_ << ' ' << key << '=' << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool live_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace sacha
