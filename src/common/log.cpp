#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace sacha {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

/// Monotonic epoch shared by all log lines (first log call wins).
std::chrono::steady_clock::time_point log_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Small per-thread ordinal (assignment order), far more readable in
/// interleaved worker-pool logs than the raw std::thread::id hash.
unsigned thread_ordinal() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal = next.fetch_add(1);
  return ordinal;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    log_epoch())
          .count();
  std::fprintf(stderr, "[%11.6f] [%s] [tid %u] %s\n", seconds,
               level_tag(level), thread_ordinal(), message.c_str());
}

}  // namespace sacha
