// Mapping between softcore architectural state and fabric flip-flops.
//
// On silicon, each CPU register bit is one flip-flop whose value appears at
// a fixed position inside a fixed configuration frame during readback (the
// positions the mask Msk normally blanks out). StateMap allocates one
// mask-0 (flip-flop) position per architectural state bit within a frame
// range, and provides both directions:
//   - device side: imprint a live CpuState into ConfigMemory's register
//     layer (the running processor's flip-flops);
//   - verifier side: imprint the *expected* state onto golden frames and
//     widen the mask so those positions are compared instead of ignored —
//     the §8 extension from configuration attestation to state attestation.
#pragma once

#include <vector>

#include "common/bitvec.hpp"
#include "common/result.hpp"
#include "config/config_memory.hpp"
#include "fabric/partition.hpp"
#include "softcore/cpu.hpp"

namespace sacha::softcore {

class StateMap {
 public:
  /// Allocates CpuState::kStateBits flip-flop positions from `range` (in
  /// frame order). Fails if the range does not contain enough register
  /// bits. Deterministic in the device, so verifier and device agree.
  static Result<StateMap> build(const fabric::DeviceModel& device,
                                fabric::FrameRange range);

  /// State bits in map order: regs r0..r7 (LSB first), pc, halted.
  static BitVec state_bits(const CpuState& state);
  static CpuState state_from_bits(const BitVec& bits);

  /// Device side: writes the live state into the memory's register layer.
  void sync_to_memory(const CpuState& state, config::ConfigMemory& memory) const;

  /// Verifier side: returns `golden` with the expected state imprinted at
  /// this frame's mapped positions (other bits untouched).
  bitstream::Frame imprint(std::uint32_t frame_index,
                           const bitstream::Frame& golden,
                           const CpuState& expected) const;

  /// Verifier side: the frame's mask with mapped positions re-enabled
  /// (state bits become *compared* bits).
  bitstream::FrameMask widened_mask(std::uint32_t frame_index,
                                    const bitstream::FrameMask& mask) const;

  /// Frames containing at least one mapped bit, ascending.
  const std::vector<std::uint32_t>& frames_touched() const {
    return frames_touched_;
  }

  std::size_t bit_count() const { return bits_.size(); }

 private:
  struct BitRef {
    std::uint32_t frame = 0;
    std::uint32_t bit = 0;
  };
  std::vector<BitRef> bits_;  // bits_[i] backs architectural state bit i
  std::vector<std::uint32_t> frames_touched_;
};

}  // namespace sacha::softcore
