#include "softcore/assembler.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace sacha::softcore {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ';' || c == '#') break;  // comment
    if (std::isspace(static_cast<unsigned char>(c)) || c == ',') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

std::optional<std::uint8_t> parse_register(const std::string& token) {
  if (token.size() < 2 || token[0] != 'r') return std::nullopt;
  int value = 0;
  for (std::size_t i = 1; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) return std::nullopt;
    value = value * 10 + (token[i] - '0');
  }
  if (value < 0 || value >= static_cast<int>(kNumRegisters)) return std::nullopt;
  return static_cast<std::uint8_t>(value);
}

std::optional<std::uint16_t> parse_number(const std::string& token) {
  try {
    std::size_t pos = 0;
    const long value = std::stol(token, &pos, 0);  // handles 0x..., decimal
    if (pos != token.size() || value < -32768 || value > 65535) {
      return std::nullopt;
    }
    return static_cast<std::uint16_t>(value);
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<Opcode> parse_mnemonic(const std::string& token) {
  for (std::uint8_t op = 0; valid_opcode(op); ++op) {
    if (token == mnemonic(static_cast<Opcode>(op))) {
      return static_cast<Opcode>(op);
    }
  }
  return std::nullopt;
}

}  // namespace

Result<Program> assemble(std::string_view source) {
  using R = Result<Program>;
  // Pass 1: collect labels.
  std::map<std::string, std::uint16_t> labels;
  {
    std::istringstream in{std::string(source)};
    std::string line;
    std::uint16_t address = 0;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      auto tokens = tokenize(line);
      if (tokens.empty()) continue;
      if (tokens[0].back() == ':') {
        const std::string label = tokens[0].substr(0, tokens[0].size() - 1);
        if (label.empty() || labels.count(label) != 0) {
          return R::error("line " + std::to_string(line_no) +
                          ": bad or duplicate label");
        }
        labels[label] = address;
        tokens.erase(tokens.begin());
      }
      if (!tokens.empty()) ++address;
    }
  }

  // Pass 2: encode.
  Program program;
  std::istringstream in{std::string(source)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto tokens = tokenize(line);
    if (!tokens.empty() && tokens[0].back() == ':') tokens.erase(tokens.begin());
    if (tokens.empty()) continue;

    const auto fail = [&](const std::string& why) {
      return R::error("line " + std::to_string(line_no) + ": " + why);
    };
    const auto opcode = parse_mnemonic(tokens[0]);
    if (!opcode.has_value()) return fail("unknown mnemonic '" + tokens[0] + "'");

    const auto reg = [&](std::size_t i) -> std::optional<std::uint8_t> {
      return i < tokens.size() ? parse_register(tokens[i]) : std::nullopt;
    };
    const auto imm_or_label = [&](std::size_t i) -> std::optional<std::uint16_t> {
      if (i >= tokens.size()) return std::nullopt;
      if (auto it = labels.find(tokens[i]); it != labels.end()) return it->second;
      return parse_number(tokens[i]);
    };

    Instruction inst;
    inst.op = *opcode;
    switch (*opcode) {
      case Opcode::kNop:
      case Opcode::kHalt:
        break;
      case Opcode::kLdi: {
        const auto rd = reg(1);
        const auto imm = imm_or_label(2);
        if (!rd || !imm) return fail("ldi rd, imm");
        inst.rd = *rd;
        inst.imm = *imm;
        break;
      }
      case Opcode::kMov: {
        const auto rd = reg(1), rs1 = reg(2);
        if (!rd || !rs1) return fail("mov rd, rs1");
        inst.rd = *rd;
        inst.rs1 = *rs1;
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor: {
        const auto rd = reg(1), rs1 = reg(2), rs2 = reg(3);
        if (!rd || !rs1 || !rs2) return fail("op rd, rs1, rs2");
        inst.rd = *rd;
        inst.rs1 = *rs1;
        inst.imm = *rs2;
        break;
      }
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kAddi: {
        const auto rd = reg(1), rs1 = reg(2);
        const auto imm = imm_or_label(3);
        if (!rd || !rs1 || !imm) return fail("op rd, rs1, imm");
        inst.rd = *rd;
        inst.rs1 = *rs1;
        inst.imm = *imm;
        break;
      }
      case Opcode::kLd:
      case Opcode::kSt: {
        const auto rd = reg(1), rs1 = reg(2);
        const auto imm = imm_or_label(3);
        if (!rd || !rs1) return fail("ld/st rd, rs1[, imm]");
        inst.rd = *rd;
        inst.rs1 = *rs1;
        inst.imm = imm.value_or(0);
        break;
      }
      case Opcode::kJmp: {
        const auto imm = imm_or_label(1);
        if (!imm) return fail("jmp target");
        inst.imm = *imm;
        break;
      }
      case Opcode::kBeq:
      case Opcode::kBne: {
        const auto rd = reg(1), rs1 = reg(2);
        const auto imm = imm_or_label(3);
        if (!rd || !rs1 || !imm) return fail("beq/bne rd, rs1, target");
        inst.rd = *rd;
        inst.rs1 = *rs1;
        inst.imm = *imm;
        break;
      }
    }
    program.push_back(inst);
  }
  return program;
}

std::string disassemble(const Program& program) {
  std::ostringstream os;
  for (std::size_t i = 0; i < program.size(); ++i) {
    os << i << ": " << program[i].to_string() << "\n";
  }
  return os.str();
}

}  // namespace sacha::softcore
