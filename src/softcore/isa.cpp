#include "softcore/isa.hpp"

#include <sstream>

namespace sacha::softcore {

bool valid_opcode(std::uint8_t op) {
  return op <= static_cast<std::uint8_t>(Opcode::kBne);
}

const char* mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kLdi: return "ldi";
    case Opcode::kMov: return "mov";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAddi: return "addi";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kJmp: return "jmp";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
  }
  return "?";
}

std::uint32_t Instruction::encode() const {
  return (static_cast<std::uint32_t>(op) << 24) |
         (static_cast<std::uint32_t>(rd & 0x0f) << 20) |
         (static_cast<std::uint32_t>(rs1 & 0x0f) << 16) | imm;
}

std::optional<Instruction> Instruction::decode(std::uint32_t word) {
  const std::uint8_t op = static_cast<std::uint8_t>(word >> 24);
  if (!valid_opcode(op)) return std::nullopt;
  Instruction inst;
  inst.op = static_cast<Opcode>(op);
  inst.rd = static_cast<std::uint8_t>((word >> 20) & 0x0f);
  inst.rs1 = static_cast<std::uint8_t>((word >> 16) & 0x0f);
  inst.imm = static_cast<std::uint16_t>(word);
  if (inst.rd >= kNumRegisters || inst.rs1 >= kNumRegisters) return std::nullopt;
  return inst;
}

std::string Instruction::to_string() const {
  std::ostringstream os;
  os << mnemonic(op) << " r" << int{rd} << ", r" << int{rs1} << ", 0x"
     << std::hex << imm;
  return os.str();
}

}  // namespace sacha::softcore
