#include "softcore/cpu.hpp"

namespace sacha::softcore {

SoftCore::SoftCore(Program program, std::size_t data_words)
    : program_(std::move(program)), data_(data_words, 0) {}

void SoftCore::step() {
  if (state_.halted) return;
  if (state_.pc >= program_.size()) {
    state_.halted = true;  // ran off the end: trap
    return;
  }
  const Instruction inst = program_[state_.pc];
  auto& r = state_.regs;
  std::uint16_t next_pc = static_cast<std::uint16_t>(state_.pc + 1);

  const auto mem_address = [&](std::uint16_t base, std::uint16_t offset) {
    return static_cast<std::size_t>(
        static_cast<std::uint16_t>(base + offset));
  };

  switch (inst.op) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      state_.halted = true;
      return;
    case Opcode::kLdi:
      r[inst.rd] = inst.imm;
      break;
    case Opcode::kMov:
      r[inst.rd] = r[inst.rs1];
      break;
    case Opcode::kAdd:
      r[inst.rd] = static_cast<std::uint16_t>(r[inst.rs1] + r[inst.rs2()]);
      break;
    case Opcode::kSub:
      r[inst.rd] = static_cast<std::uint16_t>(r[inst.rs1] - r[inst.rs2()]);
      break;
    case Opcode::kAnd:
      r[inst.rd] = r[inst.rs1] & r[inst.rs2()];
      break;
    case Opcode::kOr:
      r[inst.rd] = r[inst.rs1] | r[inst.rs2()];
      break;
    case Opcode::kXor:
      r[inst.rd] = r[inst.rs1] ^ r[inst.rs2()];
      break;
    case Opcode::kShl:
      r[inst.rd] = static_cast<std::uint16_t>(r[inst.rs1] << (inst.imm & 15));
      break;
    case Opcode::kShr:
      r[inst.rd] = static_cast<std::uint16_t>(r[inst.rs1] >> (inst.imm & 15));
      break;
    case Opcode::kAddi:
      r[inst.rd] = static_cast<std::uint16_t>(r[inst.rs1] + inst.imm);
      break;
    case Opcode::kLd: {
      const std::size_t address = mem_address(r[inst.rs1], inst.imm);
      if (address >= data_.size()) {
        state_.halted = true;
        return;
      }
      r[inst.rd] = data_[address];
      break;
    }
    case Opcode::kSt: {
      const std::size_t address = mem_address(r[inst.rs1], inst.imm);
      if (address >= data_.size()) {
        state_.halted = true;
        return;
      }
      data_[address] = r[inst.rd];
      break;
    }
    case Opcode::kJmp:
      next_pc = inst.imm;
      break;
    case Opcode::kBeq:
      if (r[inst.rd] == r[inst.rs1]) next_pc = inst.imm;
      break;
    case Opcode::kBne:
      if (r[inst.rd] != r[inst.rs1]) next_pc = inst.imm;
      break;
  }
  state_.pc = next_pc;
}

std::uint64_t SoftCore::run(std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (steps < max_steps && !state_.halted) {
    step();
    ++steps;
  }
  return steps;
}

}  // namespace sacha::softcore
