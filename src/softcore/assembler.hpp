// A small two-pass assembler for the softcore.
//
// Syntax, one instruction per line:
//   loop:                ; labels end with ':'
//     ldi  r1, 10        ; decimal or 0x-hex immediates
//     addi r0, r0, 1
//     bne  r0, r1, loop  ; branch targets may be labels or numbers
//     st   r0, r2, 4     ; mem[r2 + 4] <- r0
//     halt
// Comments start with ';' or '#'. Register-register ops take three
// registers (add r0, r1, r2). Errors report the line number.
#pragma once

#include <string_view>

#include "common/result.hpp"
#include "softcore/cpu.hpp"

namespace sacha::softcore {

Result<Program> assemble(std::string_view source);

/// Disassembles for debugging / golden tests.
std::string disassemble(const Program& program);

}  // namespace sacha::softcore
