// Instruction set of the embedded softcore.
//
// The paper's future-work section (§8) proposes following "the trend of
// embedding softcore processors in an FPGA" and extending attestation to
// "the current state of the FPGA application (including the state of the
// embedded processor)". This module provides that processor: a small
// 8-register, 16-bit load/store machine whose architectural state lives in
// fabric flip-flops (mapped to configuration-frame register bits by
// softcore::StateMap) and whose data memory lives in BRAM.
//
// Encoding: one 32-bit word per instruction:
//   [31:24] opcode  [23:20] rd  [19:16] rs1  [15:0] imm/rs2
// Register-register ops keep rs2 in imm[3:0].
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sacha::softcore {

enum class Opcode : std::uint8_t {
  kNop = 0x00,
  kHalt = 0x01,
  kLdi = 0x02,   // rd <- imm16
  kMov = 0x03,   // rd <- rs1
  kAdd = 0x04,   // rd <- rs1 + rs2
  kSub = 0x05,   // rd <- rs1 - rs2
  kAnd = 0x06,
  kOr = 0x07,
  kXor = 0x08,
  kShl = 0x09,   // rd <- rs1 << (imm & 15)
  kShr = 0x0a,   // rd <- rs1 >> (imm & 15)
  kAddi = 0x0b,  // rd <- rs1 + simm16
  kLd = 0x0c,    // rd <- mem[rs1 + simm]
  kSt = 0x0d,    // mem[rs1 + simm] <- rd
  kJmp = 0x0e,   // pc <- imm16
  kBeq = 0x0f,   // if rd == rs1: pc <- imm16
  kBne = 0x10,   // if rd != rs1: pc <- imm16
};

inline constexpr std::uint32_t kNumRegisters = 8;

struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint16_t imm = 0;  // also carries rs2 in imm[3:0] for reg-reg ops

  std::uint8_t rs2() const { return static_cast<std::uint8_t>(imm & 0x0f); }

  std::uint32_t encode() const;
  static std::optional<Instruction> decode(std::uint32_t word);

  std::string to_string() const;
  bool operator==(const Instruction&) const = default;
};

/// True for opcodes defined above (decode rejects anything else).
bool valid_opcode(std::uint8_t op);

/// Mnemonic ("ldi", "beq", ...) or "?" for invalid.
const char* mnemonic(Opcode op);

}  // namespace sacha::softcore
