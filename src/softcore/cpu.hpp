// The softcore processor.
//
// Deterministic 16-bit machine: 8 general registers, a 16-bit program
// counter, a halted flag, and a small word-addressed BRAM data memory.
// Identical programs stepped the same number of times yield identical
// state on the verifier's golden copy and the device — which is exactly
// what state attestation compares.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "softcore/isa.hpp"

namespace sacha::softcore {

using Program = std::vector<Instruction>;

struct CpuState {
  std::array<std::uint16_t, kNumRegisters> regs{};
  std::uint16_t pc = 0;
  bool halted = false;

  bool operator==(const CpuState&) const = default;

  /// Architectural state bits: 8x16 registers + 16 pc + 1 halted.
  static constexpr std::size_t kStateBits = kNumRegisters * 16 + 16 + 1;
};

class SoftCore {
 public:
  SoftCore(Program program, std::size_t data_words = 64);

  const CpuState& state() const { return state_; }
  const std::vector<std::uint16_t>& data_memory() const { return data_; }
  const Program& program() const { return program_; }

  bool halted() const { return state_.halted; }

  /// Executes one instruction; no-op once halted. Out-of-range pc or memory
  /// access halts the core (hardware traps to a safe state).
  void step();

  /// Steps up to `max_steps` times or until halted; returns steps executed.
  std::uint64_t run(std::uint64_t max_steps);

  /// Direct state manipulation — used by experiments to model a glitched or
  /// tampered processor.
  CpuState& mutable_state() { return state_; }
  std::vector<std::uint16_t>& mutable_data() { return data_; }

 private:
  Program program_;
  CpuState state_;
  std::vector<std::uint16_t> data_;
};

}  // namespace sacha::softcore
