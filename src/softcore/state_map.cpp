#include "softcore/state_map.hpp"

#include <algorithm>

#include "bitstream/bitgen.hpp"

namespace sacha::softcore {

Result<StateMap> StateMap::build(const fabric::DeviceModel& device,
                                 fabric::FrameRange range) {
  StateMap map;
  for (std::uint32_t f = range.first; f < range.end(); ++f) {
    const bitstream::FrameMask mask = bitstream::architectural_mask(device, f);
    for (std::uint32_t b = 0; b < mask.bit_count(); ++b) {
      if (!mask.get_bit(b)) {
        map.bits_.push_back(BitRef{f, b});
        if (map.bits_.size() == CpuState::kStateBits) break;
      }
    }
    if (map.bits_.size() == CpuState::kStateBits) break;
  }
  if (map.bits_.size() < CpuState::kStateBits) {
    return Result<StateMap>::error(
        "frame range holds only " + std::to_string(map.bits_.size()) +
        " flip-flop positions; softcore state needs " +
        std::to_string(CpuState::kStateBits));
  }
  for (const BitRef& ref : map.bits_) {
    if (map.frames_touched_.empty() || map.frames_touched_.back() != ref.frame) {
      map.frames_touched_.push_back(ref.frame);
    }
  }
  return map;
}

BitVec StateMap::state_bits(const CpuState& state) {
  BitVec bits(CpuState::kStateBits);
  std::size_t pos = 0;
  for (std::uint16_t reg : state.regs) {
    for (int b = 0; b < 16; ++b) bits.set(pos++, (reg >> b) & 1);
  }
  for (int b = 0; b < 16; ++b) bits.set(pos++, (state.pc >> b) & 1);
  bits.set(pos++, state.halted);
  return bits;
}

CpuState StateMap::state_from_bits(const BitVec& bits) {
  CpuState state;
  std::size_t pos = 0;
  for (auto& reg : state.regs) {
    reg = 0;
    for (int b = 0; b < 16; ++b) {
      reg = static_cast<std::uint16_t>(reg | (bits.get(pos++) << b));
    }
  }
  state.pc = 0;
  for (int b = 0; b < 16; ++b) {
    state.pc = static_cast<std::uint16_t>(state.pc | (bits.get(pos++) << b));
  }
  state.halted = bits.get(pos++);
  return state;
}

void StateMap::sync_to_memory(const CpuState& state,
                              config::ConfigMemory& memory) const {
  const BitVec bits = state_bits(state);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    memory.set_register_bit(bits_[i].frame, bits_[i].bit, bits.get(i));
  }
}

bitstream::Frame StateMap::imprint(std::uint32_t frame_index,
                                   const bitstream::Frame& golden,
                                   const CpuState& expected) const {
  bitstream::Frame out = golden;
  const BitVec bits = state_bits(expected);
  for (std::size_t i = 0; i < bits_.size(); ++i) {
    if (bits_[i].frame == frame_index) out.set_bit(bits_[i].bit, bits.get(i));
  }
  return out;
}

bitstream::FrameMask StateMap::widened_mask(
    std::uint32_t frame_index, const bitstream::FrameMask& mask) const {
  bitstream::FrameMask out = mask;
  for (const BitRef& ref : bits_) {
    if (ref.frame == frame_index) out.set_bit(ref.bit, true);
  }
  return out;
}

}  // namespace sacha::softcore
