#include "update/manifest.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include "crypto/lamport.hpp"

namespace sacha::update {

namespace {

constexpr std::string_view kManifestDomain = "sacha-update-manifest";

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  while (!text.empty()) {
    const std::size_t pos = text.find(sep);
    parts.push_back(text.substr(0, pos));
    if (pos == std::string_view::npos) break;
    text.remove_prefix(pos + 1);
  }
  return parts;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

void put_string(Bytes& out, std::string_view text) {
  put_u16be(out, static_cast<std::uint16_t>(text.size()));
  append(out, bytes_of(text));
}

bool get_string(ByteSpan in, std::size_t& offset, std::string& out) {
  if (offset + 2 > in.size()) return false;
  const std::uint16_t len = get_u16be(in, offset);
  offset += 2;
  if (offset + len > in.size()) return false;
  out.assign(reinterpret_cast<const char*>(in.data() + offset), len);
  offset += len;
  return true;
}

void put_digest(Bytes& out, const crypto::Sha256Digest& digest) {
  out.insert(out.end(), digest.begin(), digest.end());
}

bool get_digest(ByteSpan in, std::size_t& offset,
                crypto::Sha256Digest& out) {
  if (offset + out.size() > in.size()) return false;
  std::copy_n(in.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
              out.begin());
  offset += out.size();
  return true;
}

void put_preimage(Bytes& out, const std::array<std::uint8_t, 32>& block) {
  out.insert(out.end(), block.begin(), block.end());
}

bool get_preimage(ByteSpan in, std::size_t& offset,
                  std::array<std::uint8_t, 32>& out) {
  if (offset + out.size() > in.size()) return false;
  std::copy_n(in.begin() + static_cast<std::ptrdiff_t>(offset), out.size(),
              out.begin());
  offset += out.size();
  return true;
}

}  // namespace

crypto::Sha256Digest payload_digest(const bitstream::GoldenModel& model) {
  crypto::Sha256 hash;
  Bytes frame_bytes;
  for (std::size_t region = 0; region < model.app_ranges().size(); ++region) {
    const bitstream::ConfigImage& image = model.app_image(region);
    for (const bitstream::Frame& frame : image.frames) {
      frame_bytes.clear();
      frame_bytes.reserve(frame.words().size() * 4);
      for (std::uint32_t w : frame.words()) put_u32be(frame_bytes, w);
      hash.update(frame_bytes);
    }
  }
  return hash.finalize();
}

std::uint64_t payload_frame_bytes(const bitstream::GoldenModel& model) {
  std::uint64_t bytes = 0;
  for (std::size_t region = 0; region < model.app_ranges().size(); ++region) {
    for (const bitstream::Frame& frame : model.app_image(region).frames) {
      bytes += frame.words().size() * 4;
    }
  }
  return bytes;
}

Bytes UpdateManifest::encode() const {
  Bytes out;
  put_u64be(out, version);
  put_string(out, device_type);
  put_string(out, app.name);
  put_u64be(out, app.seed);
  put_digest(out, payload);
  put_u64be(out, payload_bytes);
  return out;
}

Result<UpdateManifest> UpdateManifest::decode(ByteSpan data) {
  UpdateManifest manifest;
  std::size_t offset = 0;
  if (data.size() < 8) {
    return Result<UpdateManifest>::error("manifest truncated");
  }
  manifest.version = get_u64be(data, offset);
  offset += 8;
  if (!get_string(data, offset, manifest.device_type) ||
      !get_string(data, offset, manifest.app.name)) {
    return Result<UpdateManifest>::error("manifest truncated");
  }
  if (offset + 8 > data.size()) {
    return Result<UpdateManifest>::error("manifest truncated");
  }
  manifest.app.seed = get_u64be(data, offset);
  offset += 8;
  if (!get_digest(data, offset, manifest.payload)) {
    return Result<UpdateManifest>::error("manifest truncated");
  }
  if (offset + 8 > data.size()) {
    return Result<UpdateManifest>::error("manifest truncated");
  }
  manifest.payload_bytes = get_u64be(data, offset);
  offset += 8;
  if (offset != data.size()) {
    return Result<UpdateManifest>::error("manifest has trailing bytes");
  }
  return manifest;
}

crypto::Sha256Digest UpdateManifest::digest() const {
  crypto::Sha256 hash;
  hash.update(bytes_of(kManifestDomain));
  hash.update(encode());
  return hash.finalize();
}

std::string UpdateManifest::describe() const {
  std::ostringstream out;
  out << "v" << version << " app=" << app.name << ':' << app.seed
      << " device=" << device_type << " payload=" << payload_bytes << "B "
      << to_hex(ByteSpan(payload.data(), 8));
  return out.str();
}

Result<UpdateManifest> UpdateManifest::parse(std::string_view spec) {
  UpdateManifest manifest;
  bool have_version = false;
  bool have_app = false;
  for (const std::string_view clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      return Result<UpdateManifest>::error("bad manifest clause \"" +
                                           std::string(clause) +
                                           "\": expected key=value");
    }
    const std::string_view key = clause.substr(0, eq);
    const std::string_view value = clause.substr(eq + 1);
    if (key == "version") {
      if (!parse_u64(value, manifest.version) || manifest.version == 0) {
        return Result<UpdateManifest>::error(
            "manifest version must be a positive integer");
      }
      have_version = true;
    } else if (key == "app") {
      const std::vector<std::string_view> parts = split(value, ':');
      if (parts.empty() || parts.size() > 2 || parts[0].empty()) {
        return Result<UpdateManifest>::error(
            "manifest app must be <name>[:<build_seed>]");
      }
      manifest.app.name = std::string(parts[0]);
      if (parts.size() == 2 && !parse_u64(parts[1], manifest.app.seed)) {
        return Result<UpdateManifest>::error(
            "manifest app build seed must be an integer");
      }
      have_app = true;
    } else if (key == "device") {
      manifest.device_type = std::string(value);
    } else {
      return Result<UpdateManifest>::error("unknown manifest key \"" +
                                           std::string(key) + "\"");
    }
  }
  if (!have_version || !have_app) {
    return Result<UpdateManifest>::error(
        "manifest needs at least version=<v>;app=<name>[:<seed>]");
  }
  return manifest;
}

Bytes SignedManifest::encode() const {
  Bytes out;
  const Bytes body = manifest.encode();
  put_u32be(out, static_cast<std::uint32_t>(body.size()));
  append(out, body);
  put_u32be(out, tree_height);
  put_u32be(out, signature.leaf_index);
  put_u32be(out, static_cast<std::uint32_t>(
                     signature.leaf_public.hashes.size()));
  for (const crypto::Sha256Digest& digest : signature.leaf_public.hashes) {
    put_digest(out, digest);
  }
  put_u32be(out, static_cast<std::uint32_t>(signature.ots.revealed.size()));
  for (const auto& preimage : signature.ots.revealed) {
    put_preimage(out, preimage);
  }
  put_u32be(out, static_cast<std::uint32_t>(signature.auth_path.size()));
  for (const crypto::Sha256Digest& digest : signature.auth_path) {
    put_digest(out, digest);
  }
  return out;
}

Result<SignedManifest> SignedManifest::decode(ByteSpan data) {
  SignedManifest out;
  std::size_t offset = 0;
  const auto fail = [](std::string_view why) {
    return Result<SignedManifest>::error("signed manifest: " +
                                         std::string(why));
  };
  if (data.size() < 4) return fail("truncated");
  const std::uint32_t body_len = get_u32be(data, offset);
  offset += 4;
  if (offset + body_len > data.size()) return fail("truncated body");
  Result<UpdateManifest> manifest =
      UpdateManifest::decode(data.subspan(offset, body_len));
  if (!manifest.ok()) return fail(manifest.message());
  out.manifest = std::move(manifest).take();
  offset += body_len;
  if (offset + 12 > data.size()) return fail("truncated signature header");
  out.tree_height = get_u32be(data, offset);
  offset += 4;
  out.signature.leaf_index = get_u32be(data, offset);
  offset += 4;
  const std::uint32_t public_hashes = get_u32be(data, offset);
  offset += 4;
  if (public_hashes != crypto::kLamportChains) {
    return fail("wrong public-key size");
  }
  out.signature.leaf_public.hashes.resize(public_hashes);
  for (crypto::Sha256Digest& digest : out.signature.leaf_public.hashes) {
    if (!get_digest(data, offset, digest)) return fail("truncated public key");
  }
  if (offset + 4 > data.size()) return fail("truncated");
  const std::uint32_t revealed = get_u32be(data, offset);
  offset += 4;
  if (revealed != crypto::kSha256DigestSize * 8) {
    return fail("wrong signature size");
  }
  out.signature.ots.revealed.resize(revealed);
  for (auto& preimage : out.signature.ots.revealed) {
    if (!get_preimage(data, offset, preimage)) return fail("truncated OTS");
  }
  if (offset + 4 > data.size()) return fail("truncated");
  const std::uint32_t path = get_u32be(data, offset);
  offset += 4;
  if (path != out.tree_height || path > 32) {
    return fail("auth path does not match tree height");
  }
  out.signature.auth_path.resize(path);
  for (crypto::Sha256Digest& digest : out.signature.auth_path) {
    if (!get_digest(data, offset, digest)) return fail("truncated auth path");
  }
  if (offset != data.size()) return fail("trailing bytes");
  return out;
}

Result<SignedManifest> sign_manifest(const UpdateManifest& manifest,
                                     crypto::HashSigner& signer) {
  const auto signature = signer.sign(manifest.digest());
  if (!signature.has_value()) {
    return Result<SignedManifest>::error(
        "signing identity exhausted (all one-time leaves used)");
  }
  SignedManifest out;
  out.manifest = manifest;
  out.tree_height = 0;
  for (std::uint32_t capacity = signer.capacity(); capacity > 1;
       capacity >>= 1) {
    ++out.tree_height;
  }
  out.signature = *signature;
  return out;
}

ManifestCheck verify_manifest(const SignedManifest& signed_manifest,
                              const crypto::Sha256Digest& trusted_root,
                              core::LeafPolicy& policy,
                              std::string_view device_type) {
  ManifestCheck check;
  const UpdateManifest& manifest = signed_manifest.manifest;
  check.version_ok = manifest.version > 0;
  check.device_ok =
      device_type.empty() || manifest.device_type == device_type;
  check.signature_ok =
      crypto::merkle_verify(trusted_root, signed_manifest.tree_height,
                            manifest.digest(), signed_manifest.signature);
  // A leaf is only consumed by a signature that actually chains to the
  // root: garbage offers must not burn the operator's one-time leaves.
  check.leaf_fresh =
      check.signature_ok && policy.accept(signed_manifest.signature.leaf_index);
  if (check.ok()) {
    check.detail = "manifest verified (leaf " +
                   std::to_string(signed_manifest.signature.leaf_index) + ")";
  } else if (!check.signature_ok) {
    check.detail = "signature does not chain to the trusted update root";
  } else if (!check.leaf_fresh) {
    check.detail = "one-time manifest leaf reused";
  } else if (!check.device_ok) {
    check.detail = "manifest targets device type \"" + manifest.device_type +
                   "\", not \"" + std::string(device_type) + "\"";
  } else {
    check.detail = "manifest version must be positive";
  }
  return check;
}

}  // namespace sacha::update
