// UpdateGate — the attestation-gated activation state machine.
//
//   Idle → Staged → PreAttest → Activating → PostAttest → Committed
//                        |            |            |
//                        +------------+------------+--→ RolledBack
//
// The gate is the explicit, testable core of the secure update pipeline
// (the alternative — activation decisions scattered through retry logic —
// is exactly what the motivation warns against). It is a pure event-driven
// machine: callers feed it manifest checks and attestation outcomes, it
// enforces the transition relation and the pipeline's central invariant:
//
//   Committed is unreachable without BOTH a passing pre-activation
//   attestation of the running image AND a passing post-activation
//   attestation of the new image.
//
// That invariant is structural (checked on every transition, not by caller
// discipline), so a driver bug cannot commit an unattested image — at worst
// it rolls back. Every transition is recorded in an audit trail with its
// reason; benches and the fault-matrix gate assert over the trail.
//
// Crash-during-activation rule: a device that loses power while Activating
// reboots from BootMem holding only the old *static* image — the dynamic
// application is gone. The driver therefore maps any crash/timeout in
// Activating to RolledBack, reinstalls the old application with a full
// fresh-nonce session, and re-attests it (UpdateReport::old_image_attested).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/failure.hpp"
#include "update/manifest.hpp"

namespace sacha::update {

enum class UpdateState : std::uint8_t {
  kIdle = 0,
  kStaged = 1,
  kPreAttest = 2,
  kActivating = 3,
  kPostAttest = 4,
  kCommitted = 5,
  kRolledBack = 6,
};

constexpr const char* to_string(UpdateState state) {
  switch (state) {
    case UpdateState::kIdle:
      return "Idle";
    case UpdateState::kStaged:
      return "Staged";
    case UpdateState::kPreAttest:
      return "PreAttest";
    case UpdateState::kActivating:
      return "Activating";
    case UpdateState::kPostAttest:
      return "PostAttest";
    case UpdateState::kCommitted:
      return "Committed";
    case UpdateState::kRolledBack:
      return "RolledBack";
  }
  return "unknown";
}

class UpdateGate {
 public:
  struct Transition {
    UpdateState from = UpdateState::kIdle;
    UpdateState to = UpdateState::kIdle;
    std::string reason;
  };

  /// Idle → Staged. Refused (state unchanged) unless the manifest check
  /// passed — an unverified manifest never enters the pipeline.
  Status stage(const ManifestCheck& check, std::uint64_t version);

  /// Staged → PreAttest (the pre-activation session is running).
  Status begin_pre_attest();

  /// PreAttest → Activating on a passing full attestation of the *current*
  /// image; PreAttest → RolledBack otherwise (a device that cannot prove
  /// what it runs must not be handed new configuration).
  Status on_pre_attest(bool attested, core::FailureKind failure);

  /// Activating → PostAttest when the new image installed cleanly;
  /// Activating → RolledBack on failure, crash, or timeout.
  Status on_activation(bool installed, core::FailureKind failure);

  /// PostAttest → Committed on a passing full attestation of the *new*
  /// image; PostAttest → RolledBack otherwise. Committed additionally
  /// requires the structural two-attestation invariant.
  Status on_post_attest(bool attested, core::FailureKind failure);

  /// Annotates a RolledBack gate with the outcome of the old-image
  /// recovery attestation (no state change; RolledBack is terminal).
  Status on_rollback_attest(bool attested, core::FailureKind failure);

  UpdateState state() const { return state_; }
  bool terminal() const {
    return state_ == UpdateState::kCommitted ||
           state_ == UpdateState::kRolledBack;
  }
  bool pre_attested() const { return pre_attested_; }
  bool post_attested() const { return post_attested_; }
  bool old_image_attested() const { return old_image_attested_; }
  std::uint64_t staged_version() const { return staged_version_; }
  /// First failure that drove the gate off the happy path (kNone when
  /// Committed).
  core::FailureKind failure() const { return failure_; }

  /// Audit invariant: a Committed gate passed both attestations. False is
  /// a driver bug; the bench fault-matrix asserts this over every cell.
  bool commit_invariant_ok() const {
    return state_ != UpdateState::kCommitted ||
           (pre_attested_ && post_attested_);
  }

  const std::vector<Transition>& trail() const { return trail_; }
  std::string describe_trail() const;

 private:
  Status move_to(UpdateState next, std::string reason);
  Status refuse(std::string_view why) const;
  void note_failure(core::FailureKind failure);

  UpdateState state_ = UpdateState::kIdle;
  bool pre_attested_ = false;
  bool post_attested_ = false;
  bool old_image_attested_ = false;
  std::uint64_t staged_version_ = 0;
  core::FailureKind failure_ = core::FailureKind::kNone;
  std::vector<Transition> trail_;
};

}  // namespace sacha::update
