// EpochScheduler — continuous attestation for a fleet.
//
// Between full attestations a fleet's members decay: the verifier knows
// what each device ran at its last full session, nothing since. The
// scheduler keeps that decay bounded with three mechanisms per epoch tick:
//
//   probes      cheap sampled refresh-only sessions (§5.2.2 nonce refresh
//               with probe_coverage of the memory read back) for every
//               member not otherwise scheduled. A probe PASS is only "no
//               new evidence of staleness" — it never refreshes a member's
//               last_full_epoch and never feeds an update gate, because a
//               tamper outside the sample is invisible to the probe (the
//               escalation-soundness property test pins this down).
//   escalation  a probe mismatch or transport exhaustion escalates the
//               member to a fresh-nonce FULL re-attestation (complete
//               reinstall, swarm-supervisor retries); persistent failure
//               quarantines it with its typed cause.
//   budget      a rolling re-attestation budget (full_budget_fraction of
//               the fleet per epoch, oldest first) keeps members inside
//               the freshness window; the achieved fraction is tracked as
//               an SLO and exported via obs::SloTracker under
//               sacha.epoch.freshness_*.
//
// A staged signed update rides the same loop: each tick, up to update_wave
// members run the full attestation-gated pipeline (run_update) instead of
// their probe — a committed update counts as a fresh full attestation, a
// rollback with a re-attested old image keeps the member fresh on the old
// version, and members that exhaust their update attempts are quarantined.
//
// Sessions run through the swarm supervisor / fleet engine
// (SwarmSchedule::kMultiplexed by default: probe and verify steps multiplex
// on the engine's drive strand and verify lanes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/swarm.hpp"
#include "obs/slo.hpp"
#include "update/pipeline.hpp"

namespace sacha::update {

struct EpochMember {
  std::string id;
  core::SachaVerifier* verifier = nullptr;
  core::SachaProver* prover = nullptr;
  /// Per-session customisation (fault arming), chained into every probe,
  /// full, and update-phase session this member runs.
  std::function<void(core::SessionOptions&, core::SessionHooks&,
                     std::uint32_t attempt)>
      configure;
};

enum class Freshness : std::uint8_t {
  kFresh = 0,        // last full attestation within the freshness window
  kStale = 1,        // window exceeded (budget pressure) — not yet failed
  kQuarantined = 2,  // escalation/full re-attest failed; operator attention
};

constexpr const char* to_string(Freshness health) {
  switch (health) {
    case Freshness::kFresh:
      return "fresh";
    case Freshness::kStale:
      return "stale";
    case Freshness::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

struct EpochMemberState {
  std::string id;
  Freshness health = Freshness::kFresh;
  /// Epoch of the last PASSING full attestation (0 = the provisioning
  /// attestation before the scheduler started).
  std::uint64_t last_full_epoch = 0;
  std::uint64_t probes = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t escalations = 0;
  std::uint64_t full_attests = 0;
  std::uint64_t healed = 0;
  core::FailureKind last_failure = core::FailureKind::kNone;
  /// Update progress (when an update is staged).
  std::uint32_t update_attempts = 0;
  bool update_committed = false;
};

struct EpochOptions {
  core::SessionOptions session{};
  core::SwarmSchedule schedule = core::SwarmSchedule::kMultiplexed;
  core::FleetEngineOptions engine{};
  /// Fraction of the configuration memory a probe session reads back.
  double probe_coverage = 0.10;
  /// Epochs a full attestation keeps a member fresh.
  std::uint64_t freshness_window = 4;
  /// Fraction of active members granted a budgeted full re-attestation per
  /// epoch (oldest first); at least one when any member is due.
  double full_budget_fraction = 0.25;
  /// Swarm retry budget for escalations and budgeted fulls.
  std::uint32_t retry_budget = 1;
  /// Members running the staged update pipeline per epoch (update wave).
  std::uint32_t update_wave = 8;
  /// Complete pipeline re-runs granted to a member whose update rolled
  /// back with the old image re-attested; exhaustion quarantines.
  std::uint32_t update_attempt_budget = 2;
  /// Freshness SLO: target fraction of active members within the window.
  double slo_target = 0.95;
};

struct EpochTickReport {
  std::uint64_t epoch = 0;
  std::size_t probed = 0;
  std::size_t probe_passed = 0;
  std::size_t escalated = 0;
  std::size_t healed = 0;
  std::size_t full_attested = 0;
  std::size_t newly_quarantined = 0;
  std::size_t updates_run = 0;
  std::size_t updates_committed = 0;
  std::size_t updates_rolled_back = 0;
  // Fleet health after the tick.
  std::size_t fresh = 0;
  std::size_t stale = 0;
  std::size_t quarantined = 0;
  std::uint64_t oldest_age_epochs = 0;
  /// Fraction of non-quarantined members within the freshness window.
  std::int64_t within_window_ppm = 0;
  /// Freshness SLO over the WHOLE fleet (quarantined members burn budget).
  bool slo_met = false;
};

class EpochScheduler {
 public:
  EpochScheduler(std::vector<EpochMember> members, EpochOptions options);

  /// Stages a signed update for the fleet. The manifest is verified once
  /// at the coordinator (signature, device type of the first member's
  /// floorplan, one-time leaf) and again per member inside run_update.
  Status stage_update(const SignedManifest& manifest,
                      const crypto::Sha256Digest& trusted_root);

  /// Runs one epoch: update wave, budgeted fulls, probes, escalations,
  /// then health/SLO accounting.
  EpochTickReport tick();

  /// Every non-quarantined member committed the staged update (true with
  /// no update staged).
  bool update_complete() const;

  const std::vector<EpochMemberState>& members() const { return states_; }
  const std::vector<UpdateReport>& update_reports() const {
    return update_reports_;
  }
  const obs::SloTracker& slo() const { return slo_; }
  std::uint64_t epoch() const { return epoch_; }

 private:
  struct StagedUpdate {
    SignedManifest manifest;
    crypto::Sha256Digest trusted_root{};
  };

  /// Builds a swarm for `indices` and runs it with a per-epoch derived
  /// session seed (results in index order).
  core::SwarmReport run_swarm(const std::vector<std::size_t>& indices,
                              std::string_view label,
                              std::uint32_t retry_budget);
  /// Runs full fresh-nonce sessions for `indices` through the swarm
  /// supervisor; updates last_full_epoch / health / counters.
  void run_full(const std::vector<std::size_t>& indices, bool escalation,
                EpochTickReport& report);
  void publish(const EpochTickReport& report);

  std::vector<EpochMember> members_;
  std::vector<EpochMemberState> states_;
  /// Operator-level one-time-leaf enforcement across staged manifests.
  core::LeafPolicy coordinator_policy_;
  EpochOptions options_;
  std::uint64_t epoch_ = 0;
  std::optional<StagedUpdate> staged_;
  std::vector<UpdateReport> update_reports_;
  obs::SloTracker slo_;
  obs::Gauge& g_fresh_;
  obs::Gauge& g_stale_;
  obs::Gauge& g_quarantined_;
  obs::Gauge& g_within_ppm_;
  obs::Gauge& g_oldest_age_;
  obs::Gauge& g_epoch_;
};

}  // namespace sacha::update
