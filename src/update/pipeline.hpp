// run_update — binds the UpdateGate to a real verifier/prover pair.
//
// The pipeline maps the gate's phases onto SACHa sessions:
//
//   PreAttest   one full fresh-nonce session attesting the image the
//               device runs *now* (an unattestable device gets nothing);
//   Activating  set_app_spec(new) + one full session — in SACHa the
//               protocol itself ships the configuration, so activation IS
//               an install-and-attest session of the staged design;
//   PostAttest  a second, independent fresh-nonce full session over the
//               new image (fresh nonce, fresh readback order);
//   rollback    on any failure past PreAttest: set_app_spec(old) + one
//               full session that reinstalls and re-attests the previous
//               application. A device that crashed mid-activation reboots
//               from BootMem holding only the old static image — this
//               session is what brings it back up attested on the old
//               design (the crash-during-Activating rule).
//
// Transport failures within a phase are retried with complete fresh-nonce
// sessions (never a mid-stream resume), bounded by attest_retry_budget;
// crypto verdict failures (MAC / masked-compare mismatch) are never
// retried — retrying cannot help and must not mask tamper.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/session.hpp"
#include "update/gate.hpp"
#include "update/manifest.hpp"

namespace sacha::update {

/// Phase labels used for per-phase seed derivation and fault arming.
namespace phases {
inline constexpr std::string_view kPre = "update.pre";
inline constexpr std::string_view kActivate = "update.activate";
inline constexpr std::string_view kPost = "update.post";
inline constexpr std::string_view kRollback = "update.rollback";
}  // namespace phases

struct UpdateRunOptions {
  core::SessionOptions session{};
  /// Extra complete fresh-nonce sessions granted per phase when the phase
  /// failed with a *transport* cause (loss/timeout). 0 = one shot.
  std::uint32_t attest_retry_budget = 1;
  /// Per-phase session customisation, run after the phase seed is derived:
  /// the fault harness arms phase-targeted faults here (burst during
  /// activation, crash at command k of the post-attest, ...).
  std::function<void(core::SessionOptions&, core::SessionHooks&,
                     std::string_view phase, std::uint32_t attempt)>
      configure;
  /// Refuse activation when the staged payload digest does not match the
  /// manifest (on: the OTA artifact is checked against what was signed).
  bool verify_payload = true;
};

struct UpdatePhaseOutcome {
  std::string phase;
  std::uint32_t attempts = 1;
  core::AttestationReport report;
};

struct UpdateReport {
  UpdateState final_state = UpdateState::kIdle;
  std::uint64_t version = 0;
  bool manifest_ok = false;
  bool pre_attested = false;
  bool post_attested = false;
  /// After a rollback: the recovery session re-attested the old image.
  bool old_image_attested = false;
  /// Gate invariant audit (Committed ⇒ both attestations). False is a
  /// pipeline bug; the bench fault matrix gates on it.
  bool invariant_ok = true;
  core::FailureKind failure = core::FailureKind::kNone;
  std::vector<UpdateGate::Transition> trail;
  std::vector<UpdatePhaseOutcome> phases;
  sim::SimDuration total_time = 0;
  std::string detail;

  bool committed() const { return final_state == UpdateState::kCommitted; }
};

/// Runs the full attestation-gated update pipeline on one device. The
/// verifier is forced into full-session mode (refresh/probe modes off) for
/// the duration; on commit it holds the new app spec, on rollback the old
/// one — matching what the device runs either way.
UpdateReport run_update(core::SachaVerifier& verifier,
                        core::SachaProver& prover,
                        const SignedManifest& manifest,
                        const crypto::Sha256Digest& trusted_root,
                        core::LeafPolicy& policy,
                        const UpdateRunOptions& options = {});

}  // namespace sacha::update
