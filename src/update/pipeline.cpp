#include "update/pipeline.hpp"

#include <utility>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace sacha::update {

namespace {

core::FailureKind failure_of(const core::AttestationReport& report) {
  return report.failure != core::FailureKind::kNone ? report.failure
                                                    : report.verdict.kind;
}

}  // namespace

UpdateReport run_update(core::SachaVerifier& verifier,
                        core::SachaProver& prover,
                        const SignedManifest& manifest,
                        const crypto::Sha256Digest& trusted_root,
                        core::LeafPolicy& policy,
                        const UpdateRunOptions& options) {
  auto& registry = obs::MetricsRegistry::global();
  static obs::Counter& runs = registry.counter("sacha.update.runs");
  static obs::Counter& committed = registry.counter("sacha.update.committed");
  static obs::Counter& rolled_back =
      registry.counter("sacha.update.rolled_back");
  static obs::Counter& rejected =
      registry.counter("sacha.update.manifests_rejected");
  runs.add(1);

  UpdateReport report;
  report.version = manifest.manifest.version;
  UpdateGate gate;

  // The pipeline speaks full sessions only; a probe/refresh mode left on
  // the verifier by an epoch scheduler must not weaken the gate.
  verifier.set_refresh_only(false);
  verifier.set_probe_coverage(1.0);

  // One complete phase with fresh-nonce transport retries. Crypto verdict
  // failures are terminal for the phase: a MAC or masked-compare mismatch
  // is evidence, not noise.
  const auto attest_phase =
      [&](std::string_view phase) -> core::AttestationReport {
    UpdatePhaseOutcome outcome;
    outcome.phase = std::string(phase);
    core::AttestationReport last;
    for (std::uint32_t attempt = 0;; ++attempt) {
      core::SessionOptions session = options.session;
      session.seed = derive_seed(options.session.seed, phase, attempt);
      core::SessionHooks hooks;
      if (options.configure) {
        options.configure(session, hooks, phase, attempt);
      }
      last = core::run_attestation(verifier, prover, session, hooks);
      outcome.attempts = attempt + 1;
      report.total_time += last.total_time;
      if (last.verdict.ok() ||
          !core::is_transport_failure(failure_of(last)) ||
          attempt >= options.attest_retry_budget) {
        break;
      }
    }
    outcome.report = last;
    report.phases.push_back(std::move(outcome));
    return last;
  };

  const auto seal = [&]() {
    report.final_state = gate.state();
    report.pre_attested = gate.pre_attested();
    report.post_attested = gate.post_attested();
    report.old_image_attested = gate.old_image_attested();
    report.invariant_ok = gate.commit_invariant_ok();
    report.failure = gate.failure();
    report.trail = gate.trail();
    if (report.detail.empty() && !report.trail.empty()) {
      report.detail = report.trail.back().reason;
    }
    if (report.committed()) {
      committed.add(1);
    } else if (report.final_state == UpdateState::kRolledBack) {
      rolled_back.add(1);
    }
    return report;
  };

  // Rollback recovery: reinstall + re-attest the previous application with
  // one full session. A crashed device rebooted from BootMem onto the old
  // static image alone; this session restores the old dynamic design.
  const auto recover_old_image = [&](const bitstream::DesignSpec& old_spec) {
    verifier.set_app_spec(old_spec);
    const core::AttestationReport recovery =
        attest_phase(phases::kRollback);
    gate.on_rollback_attest(recovery.verdict.ok(), failure_of(recovery));
  };

  // -- Stage: manifest signature, target device, one-time leaf ------------
  const ManifestCheck check =
      verify_manifest(manifest, trusted_root, policy,
                      verifier.floorplan().device().name());
  report.manifest_ok = check.ok();
  if (!gate.stage(check, manifest.manifest.version).ok()) {
    rejected.add(1);
    report.detail = check.detail;
    return seal();
  }

  // -- PreAttest: prove the image the device runs now ---------------------
  gate.begin_pre_attest();
  const core::AttestationReport pre = attest_phase(phases::kPre);
  gate.on_pre_attest(pre.verdict.ok(), failure_of(pre));
  if (gate.state() == UpdateState::kRolledBack) {
    // The staged image was never touched: the device still holds the old
    // design, it just failed to prove it. Nothing to reinstall; the caller
    // (epoch scheduler / operator) escalates or quarantines.
    return seal();
  }

  // -- Activating: install the staged design, attested in the same session
  const bitstream::DesignSpec old_spec = verifier.app_spec();
  verifier.set_app_spec(manifest.manifest.app);
  if (options.verify_payload) {
    const crypto::Sha256Digest staged =
        payload_digest(*verifier.golden_model());
    if (staged != manifest.manifest.payload) {
      // The artifact does not match what was signed — refuse before any
      // frame reaches the device. The old image is intact and was just
      // attested by the pre-attest session.
      gate.on_activation(false, core::FailureKind::kDecodeError);
      verifier.set_app_spec(old_spec);
      gate.on_rollback_attest(true, core::FailureKind::kNone);
      report.detail = "staged payload digest does not match manifest";
      return seal();
    }
  }
  const core::AttestationReport activate = attest_phase(phases::kActivate);
  gate.on_activation(activate.verdict.ok(), failure_of(activate));
  if (gate.state() == UpdateState::kRolledBack) {
    recover_old_image(old_spec);
    return seal();
  }

  // -- PostAttest: independent fresh-nonce session over the new image -----
  const core::AttestationReport post = attest_phase(phases::kPost);
  gate.on_post_attest(post.verdict.ok(), failure_of(post));
  if (gate.state() == UpdateState::kRolledBack) {
    recover_old_image(old_spec);
    return seal();
  }

  (log_info() << "update committed")
      .kv("version", manifest.manifest.version)
      .kv("app", manifest.manifest.app.name)
      .kv("trail", gate.describe_trail());
  return seal();
}

}  // namespace sacha::update
