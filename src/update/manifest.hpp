// Signed update manifests — the trust anchor of the OTA pipeline.
//
// An UpdateManifest names a staged application bitstream: the version it
// carries, the device type its frames were generated for, the digest of the
// staged payload (the golden application frames, region by region) and its
// size. The manifest is authenticated exactly like attestation evidence
// (signed_attest machinery): the operator's hash-based signing identity — a
// Merkle tree of Lamport one-time keys — signs
//
//     digest = SHA-256("sacha-update-manifest" || manifest.encode())
//
// with its next one-time leaf, and a device-side verifier checks the
// signature against the trusted root it was provisioned with, enforcing the
// one-time property through the same LeafPolicy. A manifest that fails any
// check never reaches the UpdateGate: staging is the first transition the
// gate refuses without a verified signature.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "bitstream/bitgen.hpp"
#include "bitstream/golden_model.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"
#include "core/signed_attest.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"

namespace sacha::update {

/// Digest of a staged payload: SHA-256 over the application's golden frames
/// (big-endian words, app regions in ascending order). Computed from the
/// same golden model the verifier attests against, so a payload that does
/// not match its manifest is caught *before* activation.
crypto::Sha256Digest payload_digest(const bitstream::GoldenModel& model);

/// Total bytes of the application's golden frames (the staged artifact
/// size the manifest advertises).
std::uint64_t payload_frame_bytes(const bitstream::GoldenModel& model);

struct UpdateManifest {
  /// Monotonically increasing release version; the gate refuses version 0.
  std::uint64_t version = 0;
  /// Device type the payload's frames were generated for (DeviceModel
  /// name); a manifest for the wrong silicon must never activate.
  std::string device_type;
  /// The staged application design (what set_app_spec installs).
  bitstream::DesignSpec app;
  /// Digest + size of the staged bitstream payload.
  crypto::Sha256Digest payload{};
  std::uint64_t payload_bytes = 0;

  Bytes encode() const;
  static Result<UpdateManifest> decode(ByteSpan data);

  /// The digest the signing identity covers:
  /// SHA-256("sacha-update-manifest" || encode()).
  crypto::Sha256Digest digest() const;

  std::string describe() const;

  /// Textual form for CLI staging: "version=<v>;app=<name>:<build_seed>"
  /// with optional ";device=<type>". Payload digest/size are computed by
  /// the stager, not parsed.
  static Result<UpdateManifest> parse(std::string_view spec);

  bool operator==(const UpdateManifest&) const = default;
};

/// Manifest plus its Merkle/Lamport signature, as staged on a device or
/// shipped in an UPDATE_OFFER wire frame.
struct SignedManifest {
  UpdateManifest manifest;
  std::uint32_t tree_height = 0;
  crypto::MerkleSignature signature;

  Bytes encode() const;
  static Result<SignedManifest> decode(ByteSpan data);
};

/// Signs with the operator identity's next one-time leaf. Returns an error
/// when the identity is exhausted.
Result<SignedManifest> sign_manifest(const UpdateManifest& manifest,
                                     crypto::HashSigner& signer);

/// Outcome of the device-side manifest check.
struct ManifestCheck {
  bool signature_ok = false;  // OTS + Merkle path chain to the trusted root
  bool leaf_fresh = false;    // one-time property respected
  bool device_ok = false;     // payload targets this device type
  bool version_ok = false;    // version > 0
  std::string detail;

  bool ok() const {
    return signature_ok && leaf_fresh && device_ok && version_ok;
  }
};

/// Verifies a staged manifest against the trusted root learned at
/// provisioning. `policy` persists across manifests to enforce one-time
/// leaves; a leaf is only consumed when the signature itself verifies.
/// `device_type` is the accepting device's type (empty skips the check —
/// an operator-side lint that has no device in hand).
ManifestCheck verify_manifest(const SignedManifest& signed_manifest,
                              const crypto::Sha256Digest& trusted_root,
                              core::LeafPolicy& policy,
                              std::string_view device_type);

}  // namespace sacha::update
