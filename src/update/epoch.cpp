#include "update/epoch.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace sacha::update {

namespace {

obs::SloTracker::Options freshness_slo_options(const EpochOptions& options) {
  obs::SloTracker::Options slo;
  slo.latency_objective_ns = 0;  // freshness is a pass/fail objective
  slo.target = options.slo_target;
  slo.metric_prefix = "sacha.epoch.freshness";
  return slo;
}

}  // namespace

EpochScheduler::EpochScheduler(std::vector<EpochMember> members,
                               EpochOptions options)
    : members_(std::move(members)),
      options_(std::move(options)),
      slo_(freshness_slo_options(options_)),
      g_fresh_(obs::MetricsRegistry::global().gauge(
          "sacha.epoch.freshness_fresh")),
      g_stale_(obs::MetricsRegistry::global().gauge(
          "sacha.epoch.freshness_stale")),
      g_quarantined_(obs::MetricsRegistry::global().gauge(
          "sacha.epoch.freshness_quarantined")),
      g_within_ppm_(obs::MetricsRegistry::global().gauge(
          "sacha.epoch.freshness_within_window_ppm")),
      g_oldest_age_(obs::MetricsRegistry::global().gauge(
          "sacha.epoch.freshness_oldest_age_epochs")),
      g_epoch_(obs::MetricsRegistry::global().gauge("sacha.epoch.current")) {
  states_.reserve(members_.size());
  for (const EpochMember& member : members_) {
    EpochMemberState state;
    state.id = member.id;
    states_.push_back(std::move(state));
  }
}

Status EpochScheduler::stage_update(const SignedManifest& manifest,
                                    const crypto::Sha256Digest& trusted_root) {
  // Coordinator-side check: signature, device type, and the operator-level
  // one-time leaf (a re-signed manifest reusing a leaf is refused here,
  // before it reaches any device).
  std::string device_type;
  if (!members_.empty() && members_.front().verifier != nullptr) {
    device_type = members_.front().verifier->floorplan().device().name();
  }
  const ManifestCheck check =
      verify_manifest(manifest, trusted_root, coordinator_policy_, device_type);
  if (!check.ok()) {
    return Status::error("stage_update: " + check.detail);
  }
  staged_ = StagedUpdate{manifest, trusted_root};
  for (EpochMemberState& state : states_) {
    state.update_attempts = 0;
    state.update_committed = false;
  }
  (log_info() << "update staged for fleet")
      .kv("manifest", manifest.manifest.describe())
      .kv("members", members_.size());
  return Status();
}

core::SwarmReport EpochScheduler::run_swarm(
    const std::vector<std::size_t>& indices, std::string_view label,
    std::uint32_t retry_budget) {
  std::vector<core::SwarmMember> fleet;
  fleet.reserve(indices.size());
  for (std::size_t i : indices) {
    core::SwarmMember member;
    member.id = members_[i].id;
    member.verifier = members_[i].verifier;
    member.prover = members_[i].prover;
    member.configure = members_[i].configure;
    fleet.push_back(std::move(member));
  }
  core::SwarmOptions swarm;
  swarm.session = options_.session;
  swarm.session.seed = derive_seed(options_.session.seed, label, epoch_);
  swarm.schedule = options_.schedule;
  swarm.retry_budget = retry_budget;
  swarm.engine = options_.engine;
  return core::attest_swarm(fleet, swarm);
}

void EpochScheduler::run_full(const std::vector<std::size_t>& indices,
                              bool escalation, EpochTickReport& report) {
  if (indices.empty()) return;
  for (std::size_t i : indices) {
    members_[i].verifier->set_refresh_only(false);
    members_[i].verifier->set_probe_coverage(1.0);
  }
  const core::SwarmReport swarm = run_swarm(
      indices, escalation ? "epoch.escalate" : "epoch.full",
      options_.retry_budget);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    EpochMemberState& state = states_[indices[k]];
    const core::SwarmMemberResult& result = swarm.members[k];
    ++state.full_attests;
    if (result.verdict.ok()) {
      state.last_full_epoch = epoch_;
      state.health = Freshness::kFresh;
      state.last_failure = core::FailureKind::kNone;
      ++report.full_attested;
      if (escalation) {
        ++state.healed;
        ++report.healed;
      }
    } else {
      // A full fresh-nonce re-attestation (with supervisor retries) failed:
      // the member cannot prove its configuration — quarantine with the
      // typed cause. Probe passes can never undo this.
      state.last_failure = result.failure;
      state.health = Freshness::kQuarantined;
      ++report.newly_quarantined;
    }
  }
}

EpochTickReport EpochScheduler::tick() {
  EpochTickReport report;
  report.epoch = ++epoch_;

  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i].health != Freshness::kQuarantined) active.push_back(i);
  }
  std::vector<char> busy(states_.size(), 0);

  // -- Update wave: run the gated pipeline on the next batch --------------
  if (staged_.has_value()) {
    std::vector<std::size_t> wave;
    for (std::size_t i : active) {
      if (states_[i].update_committed ||
          states_[i].update_attempts >= options_.update_attempt_budget) {
        continue;
      }
      wave.push_back(i);
      if (wave.size() >= options_.update_wave) break;
    }
    for (std::size_t i : wave) {
      busy[i] = 1;
      EpochMemberState& state = states_[i];
      ++state.update_attempts;
      UpdateRunOptions run;
      run.session = options_.session;
      run.session.seed =
          derive_seed(options_.session.seed, members_[i].id, epoch_);
      run.attest_retry_budget = options_.retry_budget;
      if (members_[i].configure) {
        run.configure = [cfg = members_[i].configure](
                            core::SessionOptions& session,
                            core::SessionHooks& hooks, std::string_view,
                            std::uint32_t attempt) {
          cfg(session, hooks, attempt);
        };
      }
      // Each device re-checks the staged manifest itself; a fresh policy
      // per run models the device re-verifying the same signed artifact
      // after a rollback (operator-level leaf reuse is enforced once, at
      // stage_update).
      core::LeafPolicy device_policy;
      UpdateReport result =
          run_update(*members_[i].verifier, *members_[i].prover,
                     staged_->manifest, staged_->trusted_root, device_policy,
                     run);
      ++report.updates_run;
      if (result.committed()) {
        state.update_committed = true;
        state.last_full_epoch = epoch_;
        state.health = Freshness::kFresh;
        state.last_failure = core::FailureKind::kNone;
        ++state.full_attests;
        ++report.updates_committed;
      } else {
        if (result.final_state == UpdateState::kRolledBack) {
          ++report.updates_rolled_back;
        }
        state.last_failure = result.failure;
        if (result.old_image_attested) {
          // Rolled back onto an attested old image: still fresh, retries
          // next epoch until the attempt budget runs out.
          state.last_full_epoch = epoch_;
          state.health = Freshness::kFresh;
          ++state.full_attests;
        } else {
          state.health = Freshness::kQuarantined;
          ++report.newly_quarantined;
        }
        if (state.health != Freshness::kQuarantined &&
            state.update_attempts >= options_.update_attempt_budget) {
          // Healthy but persistently un-updatable — operator attention.
          state.health = Freshness::kQuarantined;
          ++report.newly_quarantined;
        }
      }
      update_reports_.push_back(std::move(result));
    }
  }

  // -- Budgeted full re-attestations: oldest members first ----------------
  std::vector<std::size_t> due;
  for (std::size_t i : active) {
    if (busy[i]) continue;
    if (epoch_ - states_[i].last_full_epoch >= options_.freshness_window) {
      due.push_back(i);
    }
  }
  std::sort(due.begin(), due.end(), [this](std::size_t a, std::size_t b) {
    return states_[a].last_full_epoch != states_[b].last_full_epoch
               ? states_[a].last_full_epoch < states_[b].last_full_epoch
               : a < b;
  });
  const auto budget = static_cast<std::size_t>(std::max(
      due.empty() ? 0.0 : 1.0,
      options_.full_budget_fraction * static_cast<double>(active.size())));
  if (due.size() > budget) due.resize(budget);
  for (std::size_t i : due) busy[i] = 1;
  run_full(due, /*escalation=*/false, report);

  // -- Probes: sampled refresh sessions for everyone else -----------------
  std::vector<std::size_t> probing;
  for (std::size_t i : active) {
    if (!busy[i] && states_[i].health != Freshness::kQuarantined) {
      probing.push_back(i);
    }
  }
  std::vector<std::size_t> escalate;
  if (!probing.empty()) {
    for (std::size_t i : probing) {
      members_[i].verifier->set_refresh_only(true);
      members_[i].verifier->set_probe_coverage(options_.probe_coverage);
    }
    const core::SwarmReport probes =
        run_swarm(probing, "epoch.probe", /*retry_budget=*/0);
    for (std::size_t k = 0; k < probing.size(); ++k) {
      const std::size_t i = probing[k];
      EpochMemberState& state = states_[i];
      ++state.probes;
      ++report.probed;
      const core::SwarmMemberResult& result = probes.members[k];
      if (result.verdict.ok()) {
        // A probe pass is NOT a full attestation: last_full_epoch stays —
        // the sample proves only the probed frames.
        ++report.probe_passed;
      } else {
        ++state.probe_failures;
        state.last_failure = result.failure;
        escalate.push_back(i);
      }
    }
    for (std::size_t i : probing) {
      members_[i].verifier->set_refresh_only(false);
      members_[i].verifier->set_probe_coverage(1.0);
    }
  }

  // -- Escalation: probe mismatch / transport exhaustion → fresh full -----
  for (std::size_t i : escalate) ++states_[i].escalations;
  report.escalated = escalate.size();
  run_full(escalate, /*escalation=*/true, report);

  // -- Health + freshness SLO ---------------------------------------------
  std::size_t within = 0;
  std::size_t active_now = 0;
  for (EpochMemberState& state : states_) {
    if (state.health == Freshness::kQuarantined) {
      ++report.quarantined;
      slo_.record(0, false);
      continue;
    }
    ++active_now;
    const std::uint64_t age = epoch_ - state.last_full_epoch;
    report.oldest_age_epochs = std::max(report.oldest_age_epochs, age);
    const bool in_window = age <= options_.freshness_window;
    state.health = in_window ? Freshness::kFresh : Freshness::kStale;
    if (in_window) {
      ++within;
      ++report.fresh;
    } else {
      ++report.stale;
    }
    slo_.record(0, in_window);
  }
  report.within_window_ppm =
      active_now == 0
          ? 0
          : static_cast<std::int64_t>(1e6 * static_cast<double>(within) /
                                      static_cast<double>(active_now));
  // The SLO judges the whole fleet: a quarantined member is a member the
  // operator cannot trust, so it burns budget like a stale one.
  report.slo_met = states_.empty() ||
                   static_cast<double>(within) >=
                       options_.slo_target *
                           static_cast<double>(states_.size());
  publish(report);
  return report;
}

bool EpochScheduler::update_complete() const {
  if (!staged_.has_value()) return true;
  for (const EpochMemberState& state : states_) {
    if (state.health == Freshness::kQuarantined) continue;
    if (!state.update_committed) return false;
  }
  return true;
}

void EpochScheduler::publish(const EpochTickReport& report) {
  g_fresh_.set(static_cast<std::int64_t>(report.fresh));
  g_stale_.set(static_cast<std::int64_t>(report.stale));
  g_quarantined_.set(static_cast<std::int64_t>(report.quarantined));
  g_within_ppm_.set(report.within_window_ppm);
  g_oldest_age_.set(static_cast<std::int64_t>(report.oldest_age_epochs));
  g_epoch_.set(static_cast<std::int64_t>(report.epoch));
}

}  // namespace sacha::update
