#include "update/gate.hpp"

#include <sstream>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace sacha::update {

Status UpdateGate::move_to(UpdateState next, std::string reason) {
  static obs::Counter& transitions =
      obs::MetricsRegistry::global().counter("sacha.update.gate_transitions");
  transitions.add(1);
  (log_debug() << "update gate transition")
      .kv("from", to_string(state_))
      .kv("to", to_string(next))
      .kv("reason", reason);
  trail_.push_back(Transition{state_, next, std::move(reason)});
  state_ = next;
  return Status();
}

Status UpdateGate::refuse(std::string_view why) const {
  return Status::error("update gate (" + std::string(to_string(state_)) +
                       "): " + std::string(why));
}

void UpdateGate::note_failure(core::FailureKind failure) {
  if (failure_ == core::FailureKind::kNone &&
      failure != core::FailureKind::kNone) {
    failure_ = failure;
  }
}

Status UpdateGate::stage(const ManifestCheck& check, std::uint64_t version) {
  if (state_ != UpdateState::kIdle) {
    return refuse("only an Idle gate can stage a manifest");
  }
  if (!check.ok()) {
    return refuse("manifest rejected: " + check.detail);
  }
  staged_version_ = version;
  return move_to(UpdateState::kStaged, "manifest verified: " + check.detail);
}

Status UpdateGate::begin_pre_attest() {
  if (state_ != UpdateState::kStaged) {
    return refuse("pre-attestation requires a staged manifest");
  }
  return move_to(UpdateState::kPreAttest,
                 "attesting current image before activation");
}

Status UpdateGate::on_pre_attest(bool attested, core::FailureKind failure) {
  if (state_ != UpdateState::kPreAttest) {
    return refuse("no pre-attestation in flight");
  }
  if (!attested) {
    note_failure(failure);
    return move_to(UpdateState::kRolledBack,
                   "pre-attestation failed: " +
                       std::string(core::to_string(failure)));
  }
  pre_attested_ = true;
  return move_to(UpdateState::kActivating, "current image attested");
}

Status UpdateGate::on_activation(bool installed, core::FailureKind failure) {
  if (state_ != UpdateState::kActivating) {
    return refuse("no activation in flight");
  }
  if (!installed) {
    note_failure(failure);
    return move_to(UpdateState::kRolledBack,
                   "activation failed: " +
                       std::string(core::to_string(failure)));
  }
  return move_to(UpdateState::kPostAttest, "new image installed");
}

Status UpdateGate::on_post_attest(bool attested, core::FailureKind failure) {
  if (state_ != UpdateState::kPostAttest) {
    return refuse("no post-attestation in flight");
  }
  if (!attested) {
    note_failure(failure);
    return move_to(UpdateState::kRolledBack,
                   "post-attestation failed: " +
                       std::string(core::to_string(failure)));
  }
  post_attested_ = true;
  // Structural form of the pipeline invariant: both flags, not caller
  // discipline, gate the commit.
  if (!pre_attested_) {
    note_failure(core::FailureKind::kMaskedCompareMismatch);
    return move_to(UpdateState::kRolledBack,
                   "commit refused: pre-attestation missing");
  }
  return move_to(UpdateState::kCommitted, "new image attested");
}

Status UpdateGate::on_rollback_attest(bool attested,
                                      core::FailureKind failure) {
  if (state_ != UpdateState::kRolledBack) {
    return refuse("rollback attestation only annotates a RolledBack gate");
  }
  old_image_attested_ = attested;
  if (!attested) note_failure(failure);
  trail_.push_back(Transition{
      state_, state_,
      attested ? "old image re-attested after rollback"
               : "old image failed recovery attestation: " +
                     std::string(core::to_string(failure))});
  return Status();
}

std::string UpdateGate::describe_trail() const {
  std::ostringstream out;
  out << to_string(UpdateState::kIdle);
  for (const Transition& t : trail_) {
    if (t.from == t.to) continue;  // annotations, not transitions
    out << " -> " << to_string(t.to);
  }
  return out.str();
}

}  // namespace sacha::update
