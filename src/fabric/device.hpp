// Device models.
//
// DeviceModel couples a resource inventory with a configuration-memory
// geometry. Two factory devices are provided:
//  - xc6vlx240t(): the Virtex-6 part of the paper's proof of concept, with
//    the exact frame count (28,488), frame size (81 x 32-bit words) and
//    Table 2 resource totals (18,840 CLB / 832 BRAM18 / 1 ICAP / 12 DCM).
//  - small_test_device(): a 16-frame toy device so unit tests run protocol
//    sweeps in microseconds.
#pragma once

#include <string>

#include "fabric/geometry.hpp"
#include "fabric/resources.hpp"

namespace sacha::fabric {

class DeviceModel {
 public:
  DeviceModel(std::string name, ResourceCounts totals, ConfigGeometry geometry);

  const std::string& name() const { return name_; }
  const ResourceCounts& totals() const { return totals_; }
  const ConfigGeometry& geometry() const { return geometry_; }

  std::uint32_t total_frames() const { return geometry_.total_frames(); }
  std::uint32_t frame_bytes() const { return geometry_.frame_bytes(); }

  /// Size of a bitstream covering `frames` frames, in bytes (payload only,
  /// excluding packet framing).
  std::uint64_t bitstream_bytes(std::uint32_t frames) const {
    return static_cast<std::uint64_t>(frames) * frame_bytes();
  }

  /// The paper's proof-of-concept device (Xilinx Virtex-6 XC6VLX240T).
  static DeviceModel xc6vlx240t();

  /// Tiny device for fast tests: 16 frames of 8 words.
  static DeviceModel small_test_device();

  /// Mid-size test device with enough flip-flop positions in its dynamic
  /// region to host the softcore's architectural state (36 frames of 16
  /// words; ~10 register bits per frame at the 2% architectural density).
  static DeviceModel softcore_test_device();

 private:
  std::string name_;
  ResourceCounts totals_;
  ConfigGeometry geometry_;
};

/// Number of configuration frames the XC6VLX240T exposes (paper §6.1).
inline constexpr std::uint32_t kVirtex6TotalFrames = 28'488;
/// Frames belonging to the dynamic partition in the proof of concept
/// (paper §7.1, Table 4: ICAP_config repeated 26,400 times).
inline constexpr std::uint32_t kVirtex6DynamicFrames = 26'400;
/// 32-bit words per Virtex-6 frame (paper §6.1).
inline constexpr std::uint32_t kVirtex6WordsPerFrame = 81;

}  // namespace sacha::fabric
