// Resource accounting for the configurable fabric.
//
// The paper's Table 2 reports occupied CLBs, 18-kbit BRAMs, ICAPs and DCMs
// for the whole device, the static partition, the MAC core and the dynamic
// partition. ResourceCounts is the common currency for those numbers: device
// capacities, partition region sizes and per-component usage all use it.
#pragma once

#include <cstdint>
#include <string>

namespace sacha::fabric {

struct ResourceCounts {
  std::uint32_t clb = 0;     // configurable logic blocks
  std::uint32_t bram18 = 0;  // 18-kbit block RAMs
  std::uint32_t iob = 0;     // input/output blocks
  std::uint32_t dcm = 0;     // digital clock managers
  std::uint32_t icap = 0;    // internal configuration access ports

  ResourceCounts& operator+=(const ResourceCounts& other);
  friend ResourceCounts operator+(ResourceCounts a, const ResourceCounts& b) {
    a += b;
    return a;
  }
  bool operator==(const ResourceCounts&) const = default;

  /// True iff every field of *this is <= the corresponding field of `cap`.
  bool fits_within(const ResourceCounts& cap) const;

  /// "clb=1400 bram18=72 iob=0 dcm=1 icap=1"
  std::string to_string() const;
};

/// Capacity of one 18-kbit BRAM in bits (data bits only, no parity).
inline constexpr std::uint64_t kBram18Bits = 18 * 1024;

/// Total BRAM storage of a resource set, in bytes (rounded down).
std::uint64_t bram_capacity_bytes(const ResourceCounts& r);

}  // namespace sacha::fabric
