#include "fabric/resources.hpp"

#include <sstream>

namespace sacha::fabric {

ResourceCounts& ResourceCounts::operator+=(const ResourceCounts& other) {
  clb += other.clb;
  bram18 += other.bram18;
  iob += other.iob;
  dcm += other.dcm;
  icap += other.icap;
  return *this;
}

bool ResourceCounts::fits_within(const ResourceCounts& cap) const {
  return clb <= cap.clb && bram18 <= cap.bram18 && iob <= cap.iob &&
         dcm <= cap.dcm && icap <= cap.icap;
}

std::string ResourceCounts::to_string() const {
  std::ostringstream os;
  os << "clb=" << clb << " bram18=" << bram18 << " iob=" << iob
     << " dcm=" << dcm << " icap=" << icap;
  return os.str();
}

std::uint64_t bram_capacity_bytes(const ResourceCounts& r) {
  return r.bram18 * kBram18Bits / 8;
}

}  // namespace sacha::fabric
