#include "fabric/geometry.hpp"

#include <cassert>
#include <sstream>

namespace sacha::fabric {

std::string FrameAddress::to_string() const {
  std::ostringstream os;
  os << (block == BlockType::kLogic ? "LOGIC" : "BRAM") << "[r" << row << ",c"
     << col << ",m" << minor << "]";
  return os.str();
}

std::uint32_t FrameAddress::pack() const {
  return (static_cast<std::uint32_t>(block) << 28) | ((row & 0xff) << 20) |
         ((col & 0xfff) << 8) | (minor & 0xff);
}

FrameAddress FrameAddress::unpack(std::uint32_t word) {
  FrameAddress addr;
  addr.block = static_cast<BlockType>((word >> 28) & 0xf);
  addr.row = (word >> 20) & 0xff;
  addr.col = (word >> 8) & 0xfff;
  addr.minor = word & 0xff;
  return addr;
}

ConfigGeometry::ConfigGeometry(BlockGeometry logic, BlockGeometry bram,
                               std::uint32_t words_per_frame)
    : logic_(logic), bram_(bram), words_per_frame_(words_per_frame) {
  assert(words_per_frame_ > 0);
}

std::uint32_t ConfigGeometry::total_frames() const {
  return logic_.frames() + bram_.frames();
}

const BlockGeometry& ConfigGeometry::block(BlockType type) const {
  return type == BlockType::kLogic ? logic_ : bram_;
}

bool ConfigGeometry::valid(const FrameAddress& addr) const {
  if (addr.block != BlockType::kLogic && addr.block != BlockType::kBramContent) {
    return false;
  }
  const BlockGeometry& g = block(addr.block);
  return addr.row < g.rows && addr.col < g.cols && addr.minor < g.minors;
}

std::uint32_t ConfigGeometry::linear_index(const FrameAddress& addr) const {
  assert(valid(addr));
  const BlockGeometry& g = block(addr.block);
  const std::uint32_t within =
      (addr.row * g.cols + addr.col) * g.minors + addr.minor;
  return addr.block == BlockType::kLogic ? within : logic_.frames() + within;
}

FrameAddress ConfigGeometry::address_of(std::uint32_t index) const {
  assert(index < total_frames());
  FrameAddress addr;
  std::uint32_t within = index;
  if (index < logic_.frames()) {
    addr.block = BlockType::kLogic;
  } else {
    addr.block = BlockType::kBramContent;
    within -= logic_.frames();
  }
  const BlockGeometry& g = block(addr.block);
  addr.minor = within % g.minors;
  within /= g.minors;
  addr.col = within % g.cols;
  addr.row = within / g.cols;
  return addr;
}

}  // namespace sacha::fabric
