#include "fabric/device.hpp"

#include <cassert>
#include <utility>

namespace sacha::fabric {

DeviceModel::DeviceModel(std::string name, ResourceCounts totals,
                         ConfigGeometry geometry)
    : name_(std::move(name)), totals_(totals), geometry_(std::move(geometry)) {}

DeviceModel DeviceModel::xc6vlx240t() {
  // Geometry chosen so logic + BRAM-content frames total exactly 28,488:
  //   logic: 6 rows x 121 columns x 36 minors = 26,136 frames
  //   bram:  6 rows x  28 columns x 14 minors =  2,352 frames
  // The split approximates the real device (most frames configure
  // interconnect/logic; a small tail holds BRAM content).
  const ConfigGeometry geometry(BlockGeometry{6, 121, 36},
                                BlockGeometry{6, 28, 14},
                                kVirtex6WordsPerFrame);
  assert(geometry.total_frames() == kVirtex6TotalFrames);
  // Resource totals are Table 2's "Entire FPGA" row.
  return DeviceModel("XC6VLX240T",
                     ResourceCounts{.clb = 18'840,
                                    .bram18 = 832,
                                    .iob = 600,
                                    .dcm = 12,
                                    .icap = 1},
                     geometry);
}

DeviceModel DeviceModel::softcore_test_device() {
  const ConfigGeometry geometry(BlockGeometry{1, 8, 4},  // 32 logic frames
                                BlockGeometry{1, 2, 2},  //  4 bram frames
                                /*words_per_frame=*/16);
  return DeviceModel(
      "TESTSC36",
      ResourceCounts{.clb = 400, .bram18 = 16, .iob = 32, .dcm = 2, .icap = 1},
      geometry);
}

DeviceModel DeviceModel::small_test_device() {
  const ConfigGeometry geometry(BlockGeometry{1, 4, 3},  // 12 logic frames
                                BlockGeometry{1, 2, 2},  //  4 bram frames
                                /*words_per_frame=*/8);
  return DeviceModel(
      "TEST16",
      ResourceCounts{.clb = 100, .bram18 = 8, .iob = 16, .dcm = 2, .icap = 1},
      geometry);
}

}  // namespace sacha::fabric
