#include "fabric/partition.hpp"

#include <sstream>

namespace sacha::fabric {

Floorplan::Floorplan(DeviceModel device) : device_(std::move(device)) {}

void Floorplan::add_partition(Partition partition) {
  partitions_.push_back(std::move(partition));
}

void Floorplan::add_component(Component component) {
  components_.push_back(std::move(component));
}

const Partition* Floorplan::find_partition(std::string_view name) const {
  for (const Partition& p : partitions_) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

ResourceCounts Floorplan::component_usage(std::string_view partition_name) const {
  ResourceCounts usage;
  for (const Component& c : components_) {
    if (c.partition == partition_name) usage += c.resources;
  }
  return usage;
}

Status Floorplan::validate() const {
  const std::uint32_t total_frames = device_.total_frames();
  ResourceCounts region_total;
  for (std::size_t i = 0; i < partitions_.size(); ++i) {
    const Partition& p = partitions_[i];
    if (p.frames.end() > total_frames || p.frames.count == 0) {
      return Status::error("partition '" + p.name + "' frame range out of bounds");
    }
    for (std::size_t j = i + 1; j < partitions_.size(); ++j) {
      if (p.frames.overlaps(partitions_[j].frames)) {
        return Status::error("partitions '" + p.name + "' and '" +
                             partitions_[j].name + "' overlap");
      }
      if (p.name == partitions_[j].name) {
        return Status::error("duplicate partition name '" + p.name + "'");
      }
    }
    region_total += p.resources;
  }
  if (!region_total.fits_within(device_.totals())) {
    return Status::error("partition regions exceed device capacity: " +
                         region_total.to_string() + " vs " +
                         device_.totals().to_string());
  }
  for (const Component& c : components_) {
    if (find_partition(c.partition) == nullptr) {
      return Status::error("component '" + c.name + "' targets unknown partition '" +
                           c.partition + "'");
    }
  }
  for (const Partition& p : partitions_) {
    const ResourceCounts usage = component_usage(p.name);
    if (!usage.fits_within(p.resources)) {
      return Status::error("components overflow partition '" + p.name +
                           "': " + usage.to_string() + " vs " +
                           p.resources.to_string());
    }
  }
  return Status();
}

const Partition* Floorplan::partition_of_frame(std::uint32_t index) const {
  for (const Partition& p : partitions_) {
    if (p.frames.contains(index)) return &p;
  }
  return nullptr;
}

std::uint32_t Floorplan::frames_of_kind(PartitionKind kind) const {
  std::uint32_t n = 0;
  for (const Partition& p : partitions_) {
    if (p.kind == kind) n += p.frames.count;
  }
  return n;
}

Floorplan sacha_reference_floorplan() {
  using namespace component_names;
  Floorplan plan(DeviceModel::xc6vlx240t());

  const std::uint32_t static_frames =
      kVirtex6TotalFrames - kVirtex6DynamicFrames;  // 2,088

  // Partition regions: Table 2's StatPart and DynPart rows tile the device
  // exactly (1,400 + 17,440 CLB = 18,840; 72 + 760 BRAM = 832; 1 + 11 DCM).
  plan.add_partition(Partition{
      .name = "StatPart",
      .kind = PartitionKind::kStatic,
      .frames = FrameRange{0, static_frames},
      .resources = {.clb = 1'400, .bram18 = 72, .iob = 20, .dcm = 1, .icap = 1},
  });
  plan.add_partition(Partition{
      .name = "DynPart",
      .kind = PartitionKind::kDynamic,
      .frames = FrameRange{static_frames, kVirtex6DynamicFrames},
      .resources = {.clb = 17'440, .bram18 = 760, .iob = 580, .dcm = 11, .icap = 0},
  });

  // Static-partition components (Fig. 10 block diagram). The AES-CMAC entry
  // is the paper's "MAC (+FIFO)" row: 283 CLB, 8 BRAM. The remaining blocks
  // are decomposed so the partition totals equal Table 2's StatPart row.
  plan.add_component({kEthCore, "StatPart", {.clb = 620, .bram18 = 4}});
  plan.add_component({kRxFsm, "StatPart", {.clb = 95}});
  plan.add_component({kCmdBram, "StatPart", {.clb = 20, .bram18 = 4}});
  plan.add_component({kIcapCtrl, "StatPart", {.clb = 130, .icap = 1}});
  plan.add_component({kReadbackFifo, "StatPart", {.clb = 60, .bram18 = 48}});
  plan.add_component({kHeaderFifo, "StatPart", {.clb = 30, .bram18 = 8}});
  plan.add_component({kAesCmac, "StatPart", {.clb = 283, .bram18 = 8}});
  plan.add_component({kTxFsm, "StatPart", {.clb = 110}});
  plan.add_component({kClocking, "StatPart", {.clb = 12, .dcm = 1}});
  plan.add_component({kKeyGlue, "StatPart", {.clb = 40}});

  // Dynamic partition: the intended application fills most of the region;
  // the nonce register is its own tiny reconfigurable island (§5.2.2).
  plan.add_component({kApplication, "DynPart",
                      {.clb = 17'400, .bram18 = 760, .dcm = 11}});
  plan.add_component({kNonceRegister, "DynPart", {.clb = 8}});

  return plan;
}

}  // namespace sacha::fabric
