// Configuration-memory geometry and frame addressing.
//
// Xilinx devices address configuration memory through the Frame Address
// Register (FAR) as (block type, row, major column, minor frame); a frame is
// the smallest addressable unit (81 x 32-bit words on Virtex-6). We model
// two block types — interconnect/logic configuration and BRAM content — with
// per-type (rows x cols x minors) geometry, and provide the bijection
// between FAR-style addresses and a linear frame index that the protocol
// uses ("frame_nb" in the paper's ICAP_readback command).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sacha::fabric {

enum class BlockType : std::uint8_t {
  kLogic = 0,        // CLB/IOB/CLK interconnect and configuration
  kBramContent = 1,  // block RAM initial/current content
};

struct FrameAddress {
  BlockType block = BlockType::kLogic;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  std::uint32_t minor = 0;

  bool operator==(const FrameAddress&) const = default;
  std::string to_string() const;

  /// Packs into the 32-bit FAR word layout used on the wire:
  /// [31:24] block, [23:16] row, [15:8] col... cols can exceed 255 on large
  /// devices, so the layout is [31:28] block, [27:20] row, [19:8] col,
  /// [7:0] minor.
  std::uint32_t pack() const;
  static FrameAddress unpack(std::uint32_t word);
};

struct BlockGeometry {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::uint32_t minors = 0;  // frames per (row, col)

  std::uint32_t frames() const { return rows * cols * minors; }
};

class ConfigGeometry {
 public:
  ConfigGeometry(BlockGeometry logic, BlockGeometry bram,
                 std::uint32_t words_per_frame);

  std::uint32_t words_per_frame() const { return words_per_frame_; }
  std::uint32_t frame_bytes() const { return words_per_frame_ * 4; }
  std::uint32_t total_frames() const;
  const BlockGeometry& block(BlockType type) const;

  bool valid(const FrameAddress& addr) const;

  /// Linear index: logic frames first in (row, col, minor) order, then BRAM
  /// content frames. Requires valid(addr).
  std::uint32_t linear_index(const FrameAddress& addr) const;

  /// Inverse of linear_index. Requires index < total_frames().
  FrameAddress address_of(std::uint32_t index) const;

 private:
  BlockGeometry logic_;
  BlockGeometry bram_;
  std::uint32_t words_per_frame_;
};

}  // namespace sacha::fabric
