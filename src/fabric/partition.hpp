// Partitions and floorplans.
//
// A Floorplan splits a device into a static partition (always configured,
// loaded from BootMem at power-on) and one or more dynamic partitions
// (run-time reconfigurable through the ICAP), assigns each a contiguous
// configuration-frame range and a resource budget, and places named
// components (ETH core, AES-CMAC, FIFOs, ...) into partitions. Table 2 is
// the resource report of `sacha_reference_floorplan()`.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "fabric/device.hpp"

namespace sacha::fabric {

enum class PartitionKind : std::uint8_t { kStatic, kDynamic };

/// Contiguous range of linear frame indices [first, first + count).
struct FrameRange {
  std::uint32_t first = 0;
  std::uint32_t count = 0;

  std::uint32_t end() const { return first + count; }
  bool contains(std::uint32_t index) const {
    return index >= first && index < end();
  }
  bool overlaps(const FrameRange& other) const {
    return first < other.end() && other.first < end();
  }
  bool operator==(const FrameRange&) const = default;
};

struct Partition {
  std::string name;
  PartitionKind kind = PartitionKind::kStatic;
  FrameRange frames;
  ResourceCounts resources;  // region capacity (Table 2 partition rows)
};

struct Component {
  std::string name;
  std::string partition;     // owning partition name
  ResourceCounts resources;  // occupied resources (Table 2 component rows)
};

class Floorplan {
 public:
  explicit Floorplan(DeviceModel device);

  const DeviceModel& device() const { return device_; }

  void add_partition(Partition partition);
  void add_component(Component component);

  const std::vector<Partition>& partitions() const { return partitions_; }
  const std::vector<Component>& components() const { return components_; }

  const Partition* find_partition(std::string_view name) const;

  /// Sum of component usage inside a partition.
  ResourceCounts component_usage(std::string_view partition_name) const;

  /// Checks: partition frame ranges are in bounds and non-overlapping;
  /// partition resources tile within the device totals; each component's
  /// partition exists; per-partition component usage fits the region.
  Status validate() const;

  /// The partition owning a linear frame index, or nullptr if unassigned.
  const Partition* partition_of_frame(std::uint32_t index) const;

  /// Frame counts by kind.
  std::uint32_t frames_of_kind(PartitionKind kind) const;

 private:
  DeviceModel device_;
  std::vector<Partition> partitions_;
  std::vector<Component> components_;
};

/// Floorplan of the paper's proof of concept on the XC6VLX240T, reproducing
/// Table 2: StatPart 1,400 CLB / 72 BRAM / 1 ICAP / 1 DCM holding the
/// communication + MAC stack (the MAC core itself at 283 CLB / 8 BRAM) and
/// DynPart 17,440 CLB / 760 BRAM / 11 DCM with 26,400 configuration frames.
Floorplan sacha_reference_floorplan();

/// Component names used by sacha_reference_floorplan().
namespace component_names {
inline constexpr const char* kEthCore = "eth_core";
inline constexpr const char* kRxFsm = "rx_fsm";
inline constexpr const char* kCmdBram = "cmd_bram";
inline constexpr const char* kIcapCtrl = "icap_ctrl";
inline constexpr const char* kReadbackFifo = "readback_fifo";
inline constexpr const char* kHeaderFifo = "header_fifo";
inline constexpr const char* kAesCmac = "aes_cmac";
inline constexpr const char* kTxFsm = "tx_fsm";
inline constexpr const char* kClocking = "clocking";
inline constexpr const char* kKeyGlue = "key_register_glue";
inline constexpr const char* kApplication = "intended_application";
inline constexpr const char* kNonceRegister = "nonce_register";
}  // namespace component_names

}  // namespace sacha::fabric
