// Sharded verifier coordinator: one front door, N attestd shard processes.
//
// A single attestd scales to one process's cores; a fleet of a million
// devices wants several verifier processes on the host without giving up
// the single well-known endpoint or the single trust summary. The
// coordinator provides both:
//
//  - Routing. Device ids are consistent-hashed (HashRing, virtual nodes)
//    onto N forked shard processes, each a full AttestServer on its own
//    ephemeral port. A v4 prover gets a redirect HELLO_ACK naming its
//    owning shard and reconnects there (one extra round-trip at session
//    start, then zero coordinator involvement); a v1-v3 prover is proxied
//    — the coordinator forwards its buffered HELLO bytes upstream and
//    pumps bytes both ways for the session's lifetime, so old peers keep
//    working unchanged.
//  - Repair. A control thread reaps dead shard children (waitpid) and
//    probes /statusz liveness; a shard that dies or stops answering is
//    removed from the ring — consistent hashing moves only its ~1/N of
//    the device space to the survivors — and accounted in shards_lost,
//    quarantine-style (recorded, logged, never a coordinator crash).
//  - Rollup. Each shard hash-chains its sessions into an audit log; the
//    coordinator folds every shard's chain head into one fleet Merkle
//    root (crypto::merkle_root), so "what did this host attest" is a
//    single digest covering every shard's tamper-evident history. The
//    /metrics endpoint re-exports the union of every shard's scrape
//    (counters summed, histogram buckets merged) plus the coordinator's
//    own routing counters; /statusz shows the shard table, the ring, and
//    the fleet root.
//
// start() forks the shard children BEFORE creating any coordinator thread
// — call it from a single-threaded process (attest_coord's main, a test's
// main thread) like any fork-based supervisor.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"
#include "crypto/sha256.hpp"
#include "shard/hash_ring.hpp"

namespace sacha::shard {

struct CoordinatorOptions {
  std::string host = "127.0.0.1";
  /// Coordinator (front-door) port; 0 = ephemeral, read back via port().
  std::uint16_t port = 0;
  /// Shard processes to fork. Each is a full attestd on an ephemeral port.
  std::size_t shards = 2;
  /// Virtual nodes per shard on the hash ring.
  std::size_t vnodes = 64;
  /// Verify workers per shard (0 = auto). On a small host pin this to 1:
  /// the shards are the parallelism.
  std::size_t shard_pool = 1;
  /// Members per CMAC batch drain inside each shard.
  std::size_t verify_batch_width = 4;
  /// Idle session cut-off inside each shard (ms, 0 = never).
  std::uint64_t session_timeout_ms = 30000;
  /// Golden-model `.sgm` cache directory shared by every shard; with
  /// model_map the shards mmap the cached models MAP_SHARED, so the ~MB
  /// flat tables exist once in page cache instead of once per process.
  std::string model_cache_dir;
  bool model_map = true;
  bool prefer_epoll = true;
  /// Control-thread cadence: child reaping, /statusz health probes,
  /// metric scrapes, fleet-root refresh.
  std::uint64_t health_interval_ms = 200;
  /// Consecutive failed health probes (process still alive) before a shard
  /// is declared wedged, killed, and removed from the ring.
  std::size_t probe_failure_limit = 15;
  int listen_backlog = 1024;
};

/// Snapshot of one shard's state as the coordinator last saw it.
struct ShardInfo {
  std::size_t index = 0;
  pid_t pid = -1;
  std::uint16_t port = 0;
  bool alive = false;
  /// At least one /statusz scrape succeeded (the fields below are real).
  bool scraped = false;
  std::uint64_t sessions_completed = 0;
  std::uint64_t sessions_attested = 0;
  std::uint64_t audit_entries = 0;
  /// Head digest of the shard's hash-chained audit log — the shard's leaf
  /// in the fleet Merkle root. Survives the shard's death (last scrape).
  crypto::Sha256Digest audit_head{};
};

struct CoordinatorStats {
  /// Connections accepted on the front door.
  std::uint64_t accepted = 0;
  /// v4 HELLOs answered with a shard redirect.
  std::uint64_t redirects = 0;
  /// v1-v3 HELLOs proxied to their owning shard.
  std::uint64_t proxied = 0;
  std::uint64_t http_requests = 0;
  /// Shards removed from the ring (child exit or probe failure).
  std::uint64_t shards_lost = 0;
  /// Front-door connections open right now (sniffing / HTTP / proxy legs).
  std::uint64_t active = 0;
};

/// Host-level attestation summary: the Merkle root over every shard's
/// audit chain head, leaves in shard-index order.
struct FleetRollup {
  crypto::Sha256Digest root{};
  std::vector<crypto::Sha256Digest> leaves;
  /// Shards contributing a leaf (every shard that ever reported a head —
  /// a dead shard's last-known head stays covered).
  std::size_t shards_covered = 0;
  /// Sum of audit entries across the covered shards.
  std::uint64_t audit_entries = 0;
};

class ShardCoordinator {
 public:
  explicit ShardCoordinator(const CoordinatorOptions& options = {});
  ~ShardCoordinator();
  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Forks the shards, builds the ring, binds the front door, starts the
  /// loop + control threads. Fork happens first — call single-threaded.
  Status start();
  /// Stops the threads, closes every connection, shuts the shards down
  /// (life-pipe EOF, SIGKILL fallback) and reaps them. Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }
  std::size_t shard_count() const;
  std::size_t alive_shards() const;
  ShardInfo shard(std::size_t index) const;
  /// Ring owner of a device id; shard_count() when the ring is empty.
  std::size_t owner_index(std::string_view device_id) const;
  CoordinatorStats stats() const;

  /// Fault hook for tests and the bench: SIGKILL shard `index` (the
  /// FaultPlan crash vocabulary applied to a verifier process). The
  /// control thread reaps it and repairs the ring; poll alive_shards().
  Status kill_shard(std::size_t index);

  /// One synchronous control pass (reap + probe + scrape + root refresh)
  /// — what the control thread does every health_interval_ms, callable
  /// from tests to avoid sleeping on its cadence.
  void refresh();

  /// refresh() + the current fleet Merkle root.
  FleetRollup rollup();

 private:
  struct Impl;
  Impl* impl_ = nullptr;
  CoordinatorOptions options_;
  std::uint16_t port_ = 0;
};

}  // namespace sacha::shard
