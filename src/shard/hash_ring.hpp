// Consistent-hash ring for the shard coordinator.
//
// Devices are routed to verifier shards by hashing the device id onto a
// ring of virtual nodes: each shard owns `vnodes` points placed by
// SHA-256("sacha-shard-ring|<node>|<vnode>"), a key is owned by the first
// point clockwise of SHA-256("sacha-shard-key|<key>"). Two properties the
// coordinator leans on:
//
//  - Determinism: the placement depends only on the node labels and the
//    vnode count, never on insertion order or process state, so every
//    coordinator (and every test oracle) derives the identical routing
//    table from the fleet spec alone.
//  - Bounded movement: removing one of N shards moves only the keys that
//    shard owned (~1/N of the space, spread over the survivors by the
//    vnode scatter); everything else keeps its owner, which is what keeps
//    a shard crash from stampeding the whole fleet onto cold verifiers.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sacha::shard {

class HashRing {
 public:
  /// `vnodes` points per node; more vnodes = smoother ownership split at
  /// the cost of a larger table (64 keeps the max/min owner imbalance of
  /// an 8-shard ring under ~2x).
  explicit HashRing(std::size_t vnodes = 64);

  /// Adds a node (idempotent).
  void add_node(const std::string& node);
  /// Removes a node and its vnode points (idempotent). Keys it owned move
  /// to their next-clockwise survivors; nothing else moves.
  void remove_node(const std::string& node);
  bool contains(const std::string& node) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t vnodes_per_node() const { return vnodes_; }
  bool empty() const { return nodes_.empty(); }
  /// Node labels in sorted order.
  std::vector<std::string> nodes() const;

  /// Owning node of `key` (empty string on an empty ring).
  const std::string& owner(std::string_view key) const;

  /// Ring position of a key (exposed for tests and movement accounting).
  static std::uint64_t key_point(std::string_view key);

 private:
  static std::uint64_t ring_point(std::string_view node, std::size_t vnode);

  std::size_t vnodes_;
  /// Sorted (point, node) table; owner lookup is a binary search.
  std::vector<std::pair<std::uint64_t, std::string>> ring_;
  std::set<std::string> nodes_;
};

}  // namespace sacha::shard
