#include "shard/coordinator.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/log.hpp"
#include "crypto/merkle.hpp"
#include "net/attest_server.hpp"
#include "net/tcp.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace sacha::shard {

namespace {

using Clock = std::chrono::steady_clock;

std::string shard_node_label(std::size_t index) {
  return "shard-" + std::to_string(index);
}

/// Blocking HTTP GET against a local shard with a receive timeout; returns
/// the body ("" on any failure — the probe failure path).
std::string http_get_body(const std::string& host, std::uint16_t port,
                          const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return {};
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return {};
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: shard\r\nConnection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return {};
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = reply.find("\r\n\r\n");
  if (split == std::string::npos) return {};
  return reply.substr(split + 4);
}

/// Extracts the integer right after `"<key>":` at/after `from`.
bool json_u64_after(const std::string& body, std::size_t from,
                    const std::string& key, std::uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle, from);
  if (at == std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v =
      std::strtoull(body.c_str() + at + needle.size(), &end, 10);
  if (end == body.c_str() + at + needle.size()) return false;
  *out = v;
  return true;
}

bool parse_digest_hex(const std::string& hex, crypto::Sha256Digest* out) {
  const auto bytes = from_hex(hex);
  if (!bytes.has_value() || bytes->size() != out->size()) return false;
  std::copy(bytes->begin(), bytes->end(), out->begin());
  return true;
}

std::string json_str(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Shard child body: a full attestd on an ephemeral port, reporting the
/// bound port over `port_fd`, parked on `life_fd` until the coordinator
/// closes its end (or dies — EOF either way), then a clean exit. Runs in
/// the forked child; never returns.
[[noreturn]] void run_shard_child(const CoordinatorOptions& opts,
                                  std::size_t index, int port_fd,
                                  int life_fd) {
  net::AttestServerOptions shard_opts;
  shard_opts.host = opts.host;
  shard_opts.port = 0;
  shard_opts.pool_size = opts.shard_pool;
  shard_opts.verify_batch_width = opts.verify_batch_width;
  shard_opts.session_timeout_ms = opts.session_timeout_ms;
  shard_opts.model_cache_dir = opts.model_cache_dir;
  shard_opts.model_map = opts.model_map;
  shard_opts.prefer_epoll = opts.prefer_epoll;
  net::AttestServer server(shard_opts);
  const Status started = server.start();
  std::uint16_t port = started.ok() ? server.port() : 0;
  std::uint8_t wire[2] = {static_cast<std::uint8_t>(port >> 8),
                          static_cast<std::uint8_t>(port & 0xff)};
  (void)!::write(port_fd, wire, sizeof(wire));
  ::close(port_fd);
  if (!started.ok()) {
    log_warn() << "shard " << index << " failed to start: "
               << started.message();
    ::_exit(1);
  }
  char byte;
  while (::read(life_fd, &byte, 1) > 0) {
  }
  server.stop();
  ::_exit(0);
}

}  // namespace

struct ShardCoordinator::Impl {
  explicit Impl(const CoordinatorOptions& opts)
      : opts(opts), ring(opts.vnodes), loop(opts.prefer_epoll) {}

  CoordinatorOptions opts;

  /// One live (or dead) shard child. `info` carries the scrape-derived
  /// fields the public ShardInfo exposes.
  struct Shard {
    ShardInfo info;
    int life_wr = -1;  // closing it tells the child to exit
    std::size_t probe_failures = 0;
    obs::MetricsSnapshot metrics;  // last /metrics scrape
  };

  /// Guards shards, ring, rollup, merged — shared by the loop thread
  /// (routing), the control thread (repair + scrape), and the accessors.
  mutable std::mutex mu;
  std::vector<Shard> shards;
  HashRing ring;
  FleetRollup current_rollup;
  obs::MetricsSnapshot merged;  // shards' metrics + coordinator counters

  /// Serialises control passes (the thread's cadence vs refresh()).
  std::mutex control_mu;

  net::SocketListener listener;
  net::EventLoop loop;
  Clock::time_point start_time = Clock::now();

  std::thread loop_thread;
  std::thread control_thread;
  std::atomic<bool> stopping{false};

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> redirects{0};
  std::atomic<std::uint64_t> proxied{0};
  std::atomic<std::uint64_t> http_requests{0};
  std::atomic<std::uint64_t> shards_lost{0};
  std::atomic<std::uint64_t> active{0};

  // ---- front-door loop -----------------------------------------------------
  //
  // Raw-fd connection handling: the coordinator never decodes past the
  // first frame, so it buffers bytes itself instead of running a
  // FrameDecoder per connection. States: sniffing the first bytes (HTTP
  // verb vs wire magic), serving one HTTP request, or pumping a proxy leg.

  struct Conn {
    int fd = -1;
    enum class State { kSniff, kHttp, kProxyConnecting, kProxy } state =
        State::kSniff;
    Bytes in;                     // sniffed bytes (replayed upstream)
    Bytes out;                    // pending writes to this fd
    std::size_t out_off = 0;
    int peer_fd = -1;             // the other leg of a proxy pair
    bool close_when_flushed = false;
    Clock::time_point last_activity = Clock::now();
  };

  std::unordered_map<int, Conn> conns;  // loop-thread only

  void loop_main() {
    std::vector<net::PollEvent> events;
    while (!stopping.load(std::memory_order_relaxed)) {
      (void)loop.wait(events, /*timeout_ms=*/100);
      if (stopping.load(std::memory_order_relaxed)) break;
      for (const net::PollEvent& ev : events) {
        if (ev.fd == listener.fd()) {
          accept_pending();
          continue;
        }
        auto it = conns.find(ev.fd);
        if (it == conns.end()) continue;
        if (ev.writable || ev.error) on_writable(ev.fd);
        if ((ev.readable || ev.error) && conns.count(ev.fd) != 0) {
          on_readable(ev.fd);
        }
      }
    }
    for (auto& [fd, conn] : conns) {
      loop.remove(fd);
      ::close(fd);
    }
    conns.clear();
    active.store(0, std::memory_order_relaxed);
  }

  void accept_pending() {
    for (;;) {
      auto accepted_sock = listener.accept_one();
      if (!accepted_sock.ok() || !accepted_sock.value().has_value()) return;
      net::Socket sock = std::move(*accepted_sock.value());
      const int fd = sock.release();
      (void)net::set_nonblocking(fd);
      (void)net::set_nodelay(fd);
      Conn conn;
      conn.fd = fd;
      conns.emplace(fd, std::move(conn));
      (void)loop.add(fd, /*want_read=*/true, /*want_write=*/false);
      accepted.fetch_add(1, std::memory_order_relaxed);
      active.store(conns.size(), std::memory_order_relaxed);
    }
  }

  void close_conn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    const int peer = it->second.peer_fd;
    loop.remove(fd);
    ::close(fd);
    conns.erase(it);
    if (peer >= 0) {
      auto pit = conns.find(peer);
      if (pit != conns.end()) {
        // Let the other leg flush what it already holds, then close.
        pit->second.peer_fd = -1;
        if (pit->second.out_off >= pit->second.out.size()) {
          loop.remove(peer);
          ::close(peer);
          conns.erase(pit);
        } else {
          pit->second.close_when_flushed = true;
          update_interest(peer);
        }
      }
    }
    active.store(conns.size(), std::memory_order_relaxed);
  }

  void update_interest(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    const Conn& conn = it->second;
    const bool want_write = conn.out_off < conn.out.size() ||
                            conn.state == Conn::State::kProxyConnecting;
    const bool want_read = conn.state != Conn::State::kProxyConnecting &&
                           !conn.close_when_flushed;
    (void)loop.modify(fd, want_read, want_write);
  }

  void queue_bytes(int fd, const std::uint8_t* data, std::size_t size) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    it->second.out.insert(it->second.out.end(), data, data + size);
    flush_conn(fd);
  }

  void flush_conn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    Conn& conn = it->second;
    while (conn.out_off < conn.out.size()) {
      const ssize_t n =
          ::send(fd, conn.out.data() + conn.out_off,
                 conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(fd);
      return;
    }
    if (conn.out_off >= conn.out.size()) {
      conn.out.clear();
      conn.out_off = 0;
      if (conn.close_when_flushed) {
        close_conn(fd);
        return;
      }
    }
    update_interest(fd);
  }

  void on_writable(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    if (it->second.state == Conn::State::kProxyConnecting) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        close_conn(fd);  // tears the client leg down too
        return;
      }
      it->second.state = Conn::State::kProxy;
      update_interest(fd);
    }
    flush_conn(fd);
  }

  void on_readable(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    Conn& conn = it->second;
    std::uint8_t buf[16384];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        conn.last_activity = Clock::now();
        if (!ingest(fd, buf, static_cast<std::size_t>(n))) return;
        if (conns.count(fd) == 0) return;
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      close_conn(fd);  // EOF or hard error
      return;
    }
  }

  /// Routes freshly read bytes by connection state. Returns false when the
  /// connection was torn down.
  bool ingest(int fd, const std::uint8_t* data, std::size_t size) {
    auto it = conns.find(fd);
    if (it == conns.end()) return false;
    Conn& conn = it->second;
    switch (conn.state) {
      case Conn::State::kProxy:
      case Conn::State::kProxyConnecting: {
        if (conn.peer_fd < 0) {
          close_conn(fd);
          return false;
        }
        queue_bytes(conn.peer_fd, data, size);
        return conns.count(fd) != 0;
      }
      case Conn::State::kHttp:
      case Conn::State::kSniff:
        conn.in.insert(conn.in.end(), data, data + size);
        return sniff(fd);
    }
    return true;
  }

  bool sniff(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return false;
    Conn& conn = it->second;
    if (conn.in.empty()) return true;
    if (conn.state == Conn::State::kSniff) {
      if (conn.in[0] == 'G' || conn.in[0] == 'H') {
        conn.state = Conn::State::kHttp;
      }
    }
    if (conn.state == Conn::State::kHttp) {
      const std::string request(reinterpret_cast<const char*>(conn.in.data()),
                                conn.in.size());
      if (request.find("\r\n\r\n") == std::string::npos) {
        if (conn.in.size() > 16384) {
          close_conn(fd);
          return false;
        }
        return true;
      }
      serve_http(fd, request);
      return conns.count(fd) != 0;
    }
    // Wire mode: wait for the complete first frame, decode the HELLO.
    if (conn.in.size() < net::kFrameHeaderBytes) return true;
    const ByteSpan head(conn.in.data(), conn.in.size());
    if (get_u16be(head, 0) != net::kWireMagic) {
      close_conn(fd);
      return false;
    }
    const std::uint8_t version = conn.in[2];
    const std::uint8_t kind = conn.in[3];
    const std::uint32_t length = get_u32be(head, 4);
    if (version < net::kWireVersionMin || version > net::kWireVersion ||
        kind != static_cast<std::uint8_t>(net::FrameKind::kHello) ||
        length > net::kMaxFramePayload) {
      send_error_and_close(fd, core::FailureKind::kDecodeError,
                           "coordinator expects a HELLO frame first");
      return false;
    }
    if (conn.in.size() < net::kFrameHeaderBytes + length) return true;
    auto hello = net::HelloMsg::decode(
        ByteSpan(conn.in.data() + net::kFrameHeaderBytes, length));
    if (!hello.ok()) {
      send_error_and_close(fd, core::FailureKind::kDecodeError,
                           hello.message());
      return false;
    }
    return route(fd, hello.value());
  }

  /// First frame decoded: answer a v4 peer with a redirect to the owning
  /// shard, splice a v1-v3 peer through a proxy pair.
  bool route(int fd, const net::HelloMsg& hello) {
    std::uint16_t shard_port = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      const std::string& node = ring.owner(hello.device_id);
      if (!node.empty()) {
        for (const Shard& shard : shards) {
          if (shard.info.alive &&
              shard_node_label(shard.info.index) == node) {
            shard_port = shard.info.port;
            break;
          }
        }
      }
    }
    if (shard_port == 0) {
      send_error_and_close(fd, core::FailureKind::kDeviceError,
                           "no shard available for device");
      return false;
    }
    if (hello.proto >= 4) {
      net::HelloAckMsg ack;
      ack.command_count = 0;  // the owning shard states the real schedule
      ack.redirect_host = opts.host;
      ack.redirect_port = shard_port;
      const Bytes frame = net::encode_frame(
          net::Frame{net::FrameKind::kHelloAck, ack.encode()});
      redirects.fetch_add(1, std::memory_order_relaxed);
      auto it = conns.find(fd);
      if (it == conns.end()) return false;
      it->second.close_when_flushed = true;
      queue_bytes(fd, frame.data(), frame.size());
      return conns.count(fd) != 0;
    }
    // Legacy peer: open the upstream leg and replay everything buffered so
    // far (the HELLO frame plus any pipelined bytes behind it).
    const int up = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (up < 0) {
      send_error_and_close(fd, core::FailureKind::kDeviceError,
                           "proxy socket failed");
      return false;
    }
    (void)net::set_nonblocking(up);
    (void)net::set_nodelay(up);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(shard_port);
    if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1) {
      ::close(up);
      send_error_and_close(fd, core::FailureKind::kDeviceError,
                           "proxy address invalid");
      return false;
    }
    const int rc = ::connect(up, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(up);
      send_error_and_close(fd, core::FailureKind::kDeviceError,
                           "proxy connect failed");
      return false;
    }
    auto it = conns.find(fd);
    if (it == conns.end()) {
      ::close(up);
      return false;
    }
    Conn upstream;
    upstream.fd = up;
    upstream.state = rc == 0 ? Conn::State::kProxy
                             : Conn::State::kProxyConnecting;
    upstream.peer_fd = fd;
    upstream.out = std::move(it->second.in);
    it->second.in.clear();
    it->second.state = Conn::State::kProxy;
    it->second.peer_fd = up;
    conns.emplace(up, std::move(upstream));
    (void)loop.add(up, /*want_read=*/rc == 0, /*want_write=*/true);
    proxied.fetch_add(1, std::memory_order_relaxed);
    active.store(conns.size(), std::memory_order_relaxed);
    if (rc == 0) flush_conn(up);
    return conns.count(fd) != 0;
  }

  void send_error_and_close(int fd, core::FailureKind kind,
                            std::string detail) {
    net::ErrorMsg msg;
    msg.failure = kind;
    msg.detail = std::move(detail);
    const Bytes frame =
        net::encode_frame(net::Frame{net::FrameKind::kError, msg.encode()});
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    it->second.close_when_flushed = true;
    queue_bytes(fd, frame.data(), frame.size());
  }

  // ---- HTTP (front-door operability) ---------------------------------------

  void serve_http(int fd, const std::string& request) {
    http_requests.fetch_add(1, std::memory_order_relaxed);
    std::istringstream request_line(
        request.substr(0, request.find("\r\n")));
    std::string method, target;
    request_line >> method >> target;
    const std::string path = target.substr(0, target.find('?'));
    std::string status = "200 OK";
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    if (method != "GET" && method != "HEAD") {
      status = "405 Method Not Allowed";
      body = "only GET and HEAD are served\n";
    } else if (path == "/metrics") {
      content_type = "text/plain; version=0.0.4";
      std::lock_guard<std::mutex> lock(mu);
      body = obs::prometheus_text(merged);
    } else if (path == "/statusz") {
      content_type = "application/json";
      body = statusz_json();
    } else if (path == "/healthz") {
      content_type = "application/json";
      std::size_t alive = 0;
      {
        std::lock_guard<std::mutex> lock(mu);
        for (const Shard& shard : shards) alive += shard.info.alive ? 1 : 0;
      }
      if (alive == 0) status = "503 Service Unavailable";
      body = std::string("{\"status\":") +
             (alive != 0 ? "\"ok\"" : "\"no-shards\"") +
             ",\"shards_alive\":" + std::to_string(alive) + "}\n";
    } else {
      status = "404 Not Found";
      body = "not found: served paths are /metrics /healthz /statusz\n";
    }
    std::string response = "HTTP/1.1 " + status + "\r\nContent-Type: " +
                           content_type + "\r\nContent-Length: " +
                           std::to_string(body.size()) +
                           "\r\nConnection: close\r\n\r\n";
    if (method != "HEAD") response += body;
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    it->second.close_when_flushed = true;
    queue_bytes(fd, reinterpret_cast<const std::uint8_t*>(response.data()),
                response.size());
  }

  std::string statusz_json() {
    std::ostringstream out;
    std::lock_guard<std::mutex> lock(mu);
    out << "{\"role\":\"coordinator\",\"uptime_ms\":"
        << std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - start_time)
               .count()
        << ",\"routing\":{\"accepted\":"
        << accepted.load(std::memory_order_relaxed)
        << ",\"redirects\":" << redirects.load(std::memory_order_relaxed)
        << ",\"proxied\":" << proxied.load(std::memory_order_relaxed)
        << ",\"http_requests\":"
        << http_requests.load(std::memory_order_relaxed)
        << ",\"shards_lost\":" << shards_lost.load(std::memory_order_relaxed)
        << "}"
        << ",\"ring\":{\"vnodes\":" << ring.vnodes_per_node()
        << ",\"nodes\":[";
    bool first = true;
    for (const std::string& node : ring.nodes()) {
      if (!first) out << ',';
      first = false;
      out << json_str(node);
    }
    out << "]},\"shards\":[";
    first = true;
    for (const Shard& shard : shards) {
      if (!first) out << ',';
      first = false;
      out << "{\"index\":" << shard.info.index
          << ",\"pid\":" << shard.info.pid
          << ",\"port\":" << shard.info.port
          << ",\"alive\":" << (shard.info.alive ? "true" : "false")
          << ",\"sessions_completed\":" << shard.info.sessions_completed
          << ",\"sessions_attested\":" << shard.info.sessions_attested
          << ",\"audit_entries\":" << shard.info.audit_entries
          << ",\"audit_head\":"
          << json_str(to_hex(ByteSpan(shard.info.audit_head.data(),
                                      shard.info.audit_head.size())))
          << "}";
    }
    out << "],\"fleet\":{\"merkle_root\":"
        << json_str(to_hex(ByteSpan(current_rollup.root.data(),
                                    current_rollup.root.size())))
        << ",\"shards_covered\":" << current_rollup.shards_covered
        << ",\"audit_entries\":" << current_rollup.audit_entries << "}}\n";
    return out.str();
  }

  // ---- control thread ------------------------------------------------------

  void control_main() {
    while (!stopping.load(std::memory_order_relaxed)) {
      control_pass();
      const auto interval =
          std::chrono::milliseconds(std::max<std::uint64_t>(
              opts.health_interval_ms, 10));
      const auto deadline = Clock::now() + interval;
      while (!stopping.load(std::memory_order_relaxed) &&
             Clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }

  /// One repair + scrape + rollup cycle. Serialised by control_mu so the
  /// control thread's cadence and a test's refresh() never interleave.
  void control_pass() {
    std::lock_guard<std::mutex> control_lock(control_mu);
    reap_children();
    scrape_shards();
    recompute_rollup();
  }

  void reap_children() {
    std::lock_guard<std::mutex> lock(mu);
    for (Shard& shard : shards) {
      if (!shard.info.alive || shard.info.pid <= 0) continue;
      int wstatus = 0;
      const pid_t got = ::waitpid(shard.info.pid, &wstatus, WNOHANG);
      if (got == shard.info.pid) {
        mark_shard_dead_locked(shard, "child exited");
      }
    }
  }

  /// Ring repair, quarantine-style: the shard keeps its table entry (and
  /// its last audit head — its chain stays covered by the fleet root) but
  /// leaves the ring, so only its ~1/N of the device space moves.
  void mark_shard_dead_locked(Shard& shard, const char* why) {
    shard.info.alive = false;
    ring.remove_node(shard_node_label(shard.info.index));
    shards_lost.fetch_add(1, std::memory_order_relaxed);
    (log_warn() << "coordinator lost shard")
        .kv("shard", shard.info.index)
        .kv("pid", shard.info.pid)
        .kv("why", why)
        .kv("ring_nodes", ring.node_count());
  }

  void scrape_shards() {
    // Snapshot the scrape targets without holding `mu` across the HTTP
    // round-trips (the loop thread routes under `mu`).
    struct Target {
      std::size_t index;
      std::uint16_t port;
    };
    std::vector<Target> targets;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (const Shard& shard : shards) {
        if (shard.info.alive) {
          targets.push_back({shard.info.index, shard.info.port});
        }
      }
    }
    const int timeout_ms =
        static_cast<int>(std::max<std::uint64_t>(opts.health_interval_ms, 50));
    struct Scrape {
      std::size_t index;
      bool ok = false;
      std::uint64_t completed = 0;
      std::uint64_t attested = 0;
      std::uint64_t audit_entries = 0;
      crypto::Sha256Digest audit_head{};
      obs::MetricsSnapshot metrics;
    };
    std::vector<Scrape> scrapes;
    for (const Target& target : targets) {
      Scrape scrape;
      scrape.index = target.index;
      const std::string status =
          http_get_body(opts.host, target.port, "/statusz", timeout_ms);
      if (!status.empty()) {
        scrape.ok = true;
        const std::size_t sessions = status.find("\"sessions\":{");
        if (sessions != std::string::npos) {
          (void)json_u64_after(status, sessions, "completed",
                               &scrape.completed);
          (void)json_u64_after(status, sessions, "attested",
                               &scrape.attested);
        }
        const std::size_t audit = status.find("\"audit\":{");
        if (audit != std::string::npos) {
          (void)json_u64_after(status, audit, "entries",
                               &scrape.audit_entries);
          const std::string head_key = "\"head\":\"";
          const std::size_t head = status.find(head_key, audit);
          if (head != std::string::npos) {
            (void)parse_digest_hex(
                status.substr(head + head_key.size(), 64),
                &scrape.audit_head);
          }
        }
        const std::string metrics_text =
            http_get_body(opts.host, target.port, "/metrics", timeout_ms);
        if (!metrics_text.empty()) {
          scrape.metrics = obs::parse_prometheus_text(metrics_text);
        }
      }
      scrapes.push_back(std::move(scrape));
    }
    std::lock_guard<std::mutex> lock(mu);
    for (Scrape& scrape : scrapes) {
      if (scrape.index >= shards.size()) continue;
      Shard& shard = shards[scrape.index];
      if (!scrape.ok) {
        if (!shard.info.alive) continue;
        if (++shard.probe_failures >= opts.probe_failure_limit) {
          // Wedged but not exited: kill it so the kernel reclaims the
          // port, then repair the ring the same way as a crash.
          if (shard.info.pid > 0) (void)::kill(shard.info.pid, SIGKILL);
          mark_shard_dead_locked(shard, "health probe failures");
        }
        continue;
      }
      shard.probe_failures = 0;
      shard.info.scraped = true;
      shard.info.sessions_completed = scrape.completed;
      shard.info.sessions_attested = scrape.attested;
      shard.info.audit_entries = scrape.audit_entries;
      shard.info.audit_head = scrape.audit_head;
      shard.metrics = std::move(scrape.metrics);
    }
  }

  void recompute_rollup() {
    std::lock_guard<std::mutex> lock(mu);
    FleetRollup rollup;
    for (const Shard& shard : shards) {
      if (!shard.info.scraped) continue;
      rollup.leaves.push_back(shard.info.audit_head);
      rollup.audit_entries += shard.info.audit_entries;
      ++rollup.shards_covered;
    }
    rollup.root = crypto::merkle_root(
        std::span<const crypto::Sha256Digest>(rollup.leaves));
    current_rollup = std::move(rollup);
    // Re-merge the fleet /metrics view: coordinator counters first, then
    // every shard's last scrape folded in (counters summed, histogram
    // buckets merged element-wise).
    obs::MetricsSnapshot next;
    next.counters.push_back(
        {"sacha.coord.accepted", accepted.load(std::memory_order_relaxed)});
    next.counters.push_back(
        {"sacha.coord.redirects", redirects.load(std::memory_order_relaxed)});
    next.counters.push_back(
        {"sacha.coord.proxied", proxied.load(std::memory_order_relaxed)});
    next.counters.push_back(
        {"sacha.coord.shards_lost",
         shards_lost.load(std::memory_order_relaxed)});
    for (const Shard& shard : shards) {
      obs::merge_into(next, shard.metrics);
    }
    merged = std::move(next);
  }
};

ShardCoordinator::ShardCoordinator(const CoordinatorOptions& options)
    : options_(options) {}

ShardCoordinator::~ShardCoordinator() { stop(); }

Status ShardCoordinator::start() {
  if (impl_ != nullptr) return Status::error("coordinator already started");
  if (options_.shards == 0) return Status::error("shards must be >= 1");
  auto impl = std::make_unique<Impl>(options_);
  // Fork every shard before any coordinator thread exists: fork() from a
  // multithreaded process would clone only the calling thread and leave
  // the child's locks in undefined hands.
  for (std::size_t i = 0; i < options_.shards; ++i) {
    int port_pipe[2];
    int life_pipe[2];
    if (::pipe(port_pipe) != 0) return Status::error("pipe failed");
    if (::pipe(life_pipe) != 0) {
      ::close(port_pipe[0]);
      ::close(port_pipe[1]);
      return Status::error("pipe failed");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(port_pipe[0]);
      ::close(port_pipe[1]);
      ::close(life_pipe[0]);
      ::close(life_pipe[1]);
      return Status::error("fork failed");
    }
    if (pid == 0) {
      ::close(port_pipe[0]);
      ::close(life_pipe[1]);
      // Drop the life-pipe write ends inherited from earlier siblings so
      // shard k's exit is not kept pending by shard k+1 holding them open.
      for (const Impl::Shard& sibling : impl->shards) {
        if (sibling.life_wr >= 0) ::close(sibling.life_wr);
      }
      run_shard_child(options_, i, port_pipe[1], life_pipe[0]);
    }
    ::close(port_pipe[1]);
    ::close(life_pipe[0]);
    std::uint8_t wire[2] = {0, 0};
    std::size_t got = 0;
    while (got < sizeof(wire)) {
      const ssize_t n =
          ::read(port_pipe[0], wire + got, sizeof(wire) - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    ::close(port_pipe[0]);
    const std::uint16_t shard_port =
        static_cast<std::uint16_t>((wire[0] << 8) | wire[1]);
    if (got != sizeof(wire) || shard_port == 0) {
      ::close(life_pipe[1]);
      (void)::kill(pid, SIGKILL);
      (void)::waitpid(pid, nullptr, 0);
      // Tear down the shards already started before reporting failure.
      for (Impl::Shard& shard : impl->shards) {
        if (shard.life_wr >= 0) ::close(shard.life_wr);
        if (shard.info.pid > 0) {
          (void)::kill(shard.info.pid, SIGKILL);
          (void)::waitpid(shard.info.pid, nullptr, 0);
        }
      }
      return Status::error("shard " + std::to_string(i) +
                           " failed to start");
    }
    Impl::Shard shard;
    shard.info.index = i;
    shard.info.pid = pid;
    shard.info.port = shard_port;
    shard.info.alive = true;
    shard.life_wr = life_pipe[1];
    impl->shards.push_back(std::move(shard));
    impl->ring.add_node(shard_node_label(i));
  }

  auto listener =
      net::SocketListener::listen(options_.host, options_.port,
                                  options_.listen_backlog);
  if (!listener.ok()) {
    for (Impl::Shard& shard : impl->shards) {
      if (shard.life_wr >= 0) ::close(shard.life_wr);
      if (shard.info.pid > 0) {
        (void)::kill(shard.info.pid, SIGKILL);
        (void)::waitpid(shard.info.pid, nullptr, 0);
      }
    }
    return Status::error(listener.message());
  }
  impl->listener = std::move(listener).take();
  Status st = impl->loop.add(impl->listener.fd(), true, false);
  if (!st.ok()) return st;
  port_ = impl->listener.bound_port();
  impl_ = impl.release();
  impl_->loop_thread = std::thread([this] { impl_->loop_main(); });
  impl_->control_thread = std::thread([this] { impl_->control_main(); });
  (log_info() << "coordinator listening")
      .kv("host", options_.host)
      .kv("port", port_)
      .kv("shards", options_.shards)
      .kv("vnodes", options_.vnodes);
  return Status();
}

void ShardCoordinator::stop() {
  if (impl_ == nullptr) return;
  impl_->stopping.store(true, std::memory_order_relaxed);
  if (impl_->loop_thread.joinable()) impl_->loop_thread.join();
  if (impl_->control_thread.joinable()) impl_->control_thread.join();
  impl_->listener.close();
  // Life-pipe EOF asks each child to drain and exit; SIGKILL after a
  // bounded wait covers a wedged child.
  for (Impl::Shard& shard : impl_->shards) {
    if (shard.life_wr >= 0) {
      ::close(shard.life_wr);
      shard.life_wr = -1;
    }
  }
  for (Impl::Shard& shard : impl_->shards) {
    if (shard.info.pid <= 0) continue;
    bool reaped = false;
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (::waitpid(shard.info.pid, nullptr, WNOHANG) == shard.info.pid) {
        reaped = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (!reaped) {
      (void)::kill(shard.info.pid, SIGKILL);
      (void)::waitpid(shard.info.pid, nullptr, 0);
    }
    shard.info.alive = false;
  }
  delete impl_;
  impl_ = nullptr;
}

std::size_t ShardCoordinator::shard_count() const {
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->shards.size();
}

std::size_t ShardCoordinator::alive_shards() const {
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::size_t alive = 0;
  for (const Impl::Shard& shard : impl_->shards) {
    alive += shard.info.alive ? 1 : 0;
  }
  return alive;
}

ShardInfo ShardCoordinator::shard(std::size_t index) const {
  if (impl_ == nullptr) return ShardInfo{};
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (index >= impl_->shards.size()) return ShardInfo{};
  return impl_->shards[index].info;
}

std::size_t ShardCoordinator::owner_index(std::string_view device_id) const {
  if (impl_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::string& node = impl_->ring.owner(device_id);
  for (const Impl::Shard& shard : impl_->shards) {
    if (shard_node_label(shard.info.index) == node) return shard.info.index;
  }
  return impl_->shards.size();
}

CoordinatorStats ShardCoordinator::stats() const {
  CoordinatorStats out;
  if (impl_ == nullptr) return out;
  out.accepted = impl_->accepted.load(std::memory_order_relaxed);
  out.redirects = impl_->redirects.load(std::memory_order_relaxed);
  out.proxied = impl_->proxied.load(std::memory_order_relaxed);
  out.http_requests = impl_->http_requests.load(std::memory_order_relaxed);
  out.shards_lost = impl_->shards_lost.load(std::memory_order_relaxed);
  out.active = impl_->active.load(std::memory_order_relaxed);
  return out;
}

Status ShardCoordinator::kill_shard(std::size_t index) {
  if (impl_ == nullptr) return Status::error("coordinator not started");
  pid_t pid = -1;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (index >= impl_->shards.size()) {
      return Status::error("no such shard");
    }
    if (!impl_->shards[index].info.alive) {
      return Status::error("shard already dead");
    }
    pid = impl_->shards[index].info.pid;
  }
  if (pid <= 0 || ::kill(pid, SIGKILL) != 0) {
    return Status::error("kill failed");
  }
  return Status();
}

void ShardCoordinator::refresh() {
  if (impl_ == nullptr) return;
  impl_->control_pass();
}

FleetRollup ShardCoordinator::rollup() {
  if (impl_ == nullptr) return FleetRollup{};
  impl_->control_pass();
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->current_rollup;
}

}  // namespace sacha::shard
