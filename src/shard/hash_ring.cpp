#include "shard/hash_ring.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace sacha::shard {

namespace {

std::uint64_t first8_be(const crypto::Sha256Digest& digest) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v = (v << 8) | digest[i];
  }
  return v;
}

}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(std::max<std::size_t>(vnodes, 1)) {}

std::uint64_t HashRing::ring_point(std::string_view node, std::size_t vnode) {
  std::string label = "sacha-shard-ring|";
  label.append(node);
  label.push_back('|');
  label.append(std::to_string(vnode));
  return first8_be(crypto::Sha256::compute(bytes_of(label)));
}

std::uint64_t HashRing::key_point(std::string_view key) {
  std::string label = "sacha-shard-key|";
  label.append(key);
  return first8_be(crypto::Sha256::compute(bytes_of(label)));
}

void HashRing::add_node(const std::string& node) {
  if (!nodes_.insert(node).second) return;
  ring_.reserve(ring_.size() + vnodes_);
  for (std::size_t v = 0; v < vnodes_; ++v) {
    ring_.emplace_back(ring_point(node, v), node);
  }
  // Sorting by (point, node) makes the rare point collision deterministic
  // too: the lexicographically smaller label wins regardless of add order.
  std::sort(ring_.begin(), ring_.end());
}

void HashRing::remove_node(const std::string& node) {
  if (nodes_.erase(node) == 0) return;
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [&](const auto& p) { return p.second == node; }),
              ring_.end());
}

bool HashRing::contains(const std::string& node) const {
  return nodes_.count(node) != 0;
}

std::vector<std::string> HashRing::nodes() const {
  return std::vector<std::string>(nodes_.begin(), nodes_.end());
}

const std::string& HashRing::owner(std::string_view key) const {
  static const std::string kEmpty;
  if (ring_.empty()) return kEmpty;
  const std::uint64_t point = key_point(key);
  // First vnode clockwise of the key's point, wrapping at the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const auto& entry, std::uint64_t p) { return entry.first < p; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

}  // namespace sacha::shard
