#include "obs/slo.hpp"

#include <algorithm>
#include <utility>

namespace sacha::obs {

SloTracker::SloTracker(Options options)
    : options_(std::move(options)),
      g_total_(MetricsRegistry::global().gauge(options_.metric_prefix +
                                               ".sessions_total")),
      g_good_(MetricsRegistry::global().gauge(options_.metric_prefix +
                                              ".sessions_good")),
      g_budget_ppm_(MetricsRegistry::global().gauge(
          options_.metric_prefix + ".error_budget_remaining_ppm")),
      g_burn_milli_(MetricsRegistry::global().gauge(options_.metric_prefix +
                                                    ".burn_rate_milli")),
      g_objective_ms_(MetricsRegistry::global().gauge(
          options_.metric_prefix + ".latency_objective_ms")),
      g_target_ppm_(MetricsRegistry::global().gauge(options_.metric_prefix +
                                                    ".target_ppm")) {
  options_.target = std::clamp(options_.target, 0.0, 0.999999);
  g_objective_ms_.set(
      static_cast<std::int64_t>(options_.latency_objective_ns / 1'000'000));
  g_target_ppm_.set(static_cast<std::int64_t>(options_.target * 1e6));
}

void SloTracker::record(std::uint64_t latency_ns, bool ok) {
  const bool within = options_.latency_objective_ns == 0 ||
                      latency_ns <= options_.latency_objective_ns;
  total_.add(1);
  if (ok && within) good_.add(1);
  publish();
}

std::int64_t SloTracker::budget_remaining_ppm() const {
  const std::uint64_t n = total_.value();
  if (n == 0) return 1'000'000;
  const double allowed = (1.0 - options_.target) * static_cast<double>(n);
  const double bad = static_cast<double>(n - good_.value());
  if (allowed <= 0.0) return bad > 0.0 ? 0 : 1'000'000;
  const double remaining = std::max(0.0, 1.0 - bad / allowed);
  return static_cast<std::int64_t>(remaining * 1e6);
}

std::int64_t SloTracker::burn_rate_milli() const {
  const std::uint64_t n = total_.value();
  if (n == 0) return 0;
  const double allowed_frac = 1.0 - options_.target;
  const double bad_frac =
      static_cast<double>(n - good_.value()) / static_cast<double>(n);
  if (allowed_frac <= 0.0) return bad_frac > 0.0 ? 1'000'000'000 : 0;
  return static_cast<std::int64_t>(bad_frac / allowed_frac * 1000.0);
}

void SloTracker::publish() {
  g_total_.set(static_cast<std::int64_t>(total_.value()));
  g_good_.set(static_cast<std::int64_t>(good_.value()));
  g_budget_ppm_.set(budget_remaining_ppm());
  g_burn_milli_.set(burn_rate_milli());
}

}  // namespace sacha::obs
