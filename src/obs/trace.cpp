#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <unordered_map>

namespace sacha::obs {

namespace {

/// Current nesting depth of active spans on this thread.
thread_local std::uint32_t t_depth = 0;

std::uint64_t this_thread_id() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

/// FNV-1a, the same simple non-cryptographic mix everywhere in the repo's
/// synthetic id derivations. The trace id only needs to be collision-free
/// across one fleet run, not adversarially strong.
std::uint64_t fnv1a(std::uint64_t seed, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Sampler& Sampler::global() {
  static Sampler* sampler = new Sampler([] {
    if (const char* env = std::getenv("SACHA_OBS_SAMPLE")) {
      char* end = nullptr;
      const double rate = std::strtod(env, &end);
      if (end != env) return rate;
    }
    return 1.0;  // full tracing: the pre-sampling behaviour
  }());
  return *sampler;
}

double Sampler::rate() const {
  const std::uint64_t t = threshold_.load(std::memory_order_relaxed);
  if (t == ~0ULL) return 1.0;
  return static_cast<double>(t) / 18446744073709551616.0;  // 2^64
}

void Sampler::set_rate(double rate) {
  std::uint64_t t;
  if (rate >= 1.0) {
    t = ~0ULL;
  } else if (rate <= 0.0) {
    t = 0;
  } else {
    t = static_cast<std::uint64_t>(rate * 18446744073709551616.0);
  }
  threshold_.store(t, std::memory_order_relaxed);
}

bool Sampler::should_sample(const TraceId& id) const {
  if (!id.valid()) return false;
  const std::uint64_t t = threshold_.load(std::memory_order_relaxed);
  if (t == ~0ULL) return true;
  // Re-mix rather than use id.lo directly: wire trace ids arrive already
  // FNV-mixed, but re-hashing under a distinct seed decorrelates the keep
  // set from anything else keyed on the raw id bits.
  std::uint64_t h = fnv1a(0x53414d504c455230ULL,  // "SAMPLER0"
                          &id, sizeof(id));
  return h < t;
}

bool should_trace(const TraceId& id) {
  return enabled() && Sampler::global().should_sample(id);
}

TraceId make_trace_id(std::string_view device_id, std::uint64_t nonce) {
  TraceId id;
  id.hi = fnv1a(0x53414348614f6273ULL,  // "SACHaObs"
                device_id.data(), device_id.size());
  id.lo = fnv1a(id.hi, &nonce, sizeof(nonce));
  if (!id.valid()) id.lo = 1;  // reserve {0,0} for "no trace"
  return id;
}

std::string to_string(const TraceId& id) {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(id.hi),
                static_cast<unsigned long long>(id.lo));
  return buf;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // never destroyed
  return *tracer;
}

std::uint64_t Tracer::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void observe_phase_duration(const std::string& phase,
                            std::uint64_t duration_ns) {
  if (!enabled()) return;
  // Same hot-path treatment as any instrument call site: the registry
  // lookup (name concat + mutex + map walk) happens once per phase name
  // per thread, then a thread-local cache serves the pointer. Deliberately
  // NOT wired into Tracer::append — the in-process engines close
  // microsecond-scale RAII phase spans back-to-back, and even a cached
  // lookup between two of those reads as a timeline gap on a loaded host
  // (the 95%-coverage acceptance test catches exactly that). The
  // wire-session emitters call this explicitly; their phases are
  // milliseconds.
  thread_local std::unordered_map<std::string, Histogram*> t_phase_hist;
  auto it = t_phase_hist.find(phase);
  if (it == t_phase_hist.end()) {
    Histogram& hist = MetricsRegistry::global().quantile_histogram(
        "sacha.phase." + phase + "_ns");
    it = t_phase_hist.emplace(phase, &hist).first;
  }
  it->second->observe(duration_ns);
}

void Tracer::append(SpanRecord&& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= kMaxRecords) {
    static Counter& dropped =
        MetricsRegistry::global().counter("sacha.obs.spans_dropped");
    dropped.add(1);
    return;
  }
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::vector<SpanRecord> Tracer::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out = std::move(records_);
  records_.clear();
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

Span::Span(std::string name, TraceId trace, std::string category) {
  if (!enabled()) return;  // the one disabled-path branch
  active_ = true;
  record_.name = std::move(name);
  record_.category = std::move(category);
  record_.trace = trace;
  record_.thread_id = this_thread_id();
  record_.depth = t_depth++;
  record_.start_ns = Tracer::global().now_ns();
}

Span::Span(Span&& other) noexcept
    : active_(other.active_), record_(std::move(other.record_)) {
  other.active_ = false;
}

Span& Span::arg(std::string key, std::string value) {
  if (active_) record_.args.emplace_back(std::move(key), std::move(value));
  return *this;
}

void Span::end() {
  if (!active_) return;
  active_ = false;
  record_.duration_ns = Tracer::global().now_ns() - record_.start_ns;
  --t_depth;
  Tracer::global().append(std::move(record_));
}

double timeline_coverage(const std::vector<SpanRecord>& records,
                         const TraceId& id, std::string_view session_name) {
  const SpanRecord* session = nullptr;
  for (const SpanRecord& r : records) {
    if (r.trace == id && r.name == session_name) {
      session = &r;
      break;
    }
  }
  if (session == nullptr || session->duration_ns == 0) return 0.0;

  // Union of the direct children's intervals, clipped to the session span.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> intervals;
  const std::uint64_t s0 = session->start_ns;
  const std::uint64_t s1 = session->start_ns + session->duration_ns;
  for (const SpanRecord& r : records) {
    if (&r == session || r.trace != id) continue;
    if (r.thread_id != session->thread_id || r.depth != session->depth + 1) {
      continue;
    }
    const std::uint64_t a = std::max(r.start_ns, s0);
    const std::uint64_t b = std::min(r.start_ns + r.duration_ns, s1);
    if (b > a) intervals.emplace_back(a, b);
  }
  std::sort(intervals.begin(), intervals.end());
  std::uint64_t covered = 0;
  std::uint64_t cursor = s0;
  for (const auto& [a, b] : intervals) {
    const std::uint64_t from = std::max(a, cursor);
    if (b > from) {
      covered += b - from;
      cursor = b;
    }
  }
  return static_cast<double>(covered) /
         static_cast<double>(session->duration_ns);
}

}  // namespace sacha::obs
